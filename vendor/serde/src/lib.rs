//! Offline stand-in for `serde` (1.x API subset).
//!
//! The real serde is a zero-copy visitor framework; this stand-in is a
//! value-tree framework, which is all the workspace needs: every consumer
//! (de)serializes whole documents through `serde_json`. Types convert to
//! and from a [`Value`] tree:
//!
//! - [`Serialize`] renders `self` into a [`Value`];
//! - [`Deserialize`] parses out of a [`Value`];
//! - the `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//!   companion `serde_derive` stand-in) generate those impls with serde's
//!   data-model conventions: structs as objects, enums externally tagged
//!   (or internally via `#[serde(tag = "...")]`), newtype structs
//!   transparent, `#[serde(default)]`/`#[serde(default = "path")]` and
//!   `#[serde(rename_all = "kebab-case")]` honored.
//!
//! Object keys keep insertion order (a `Vec` of pairs, not a map), so
//! serialized output is deterministic and follows field declaration order
//! exactly like the real serde.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Num(Number),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object, in insertion order.
    Obj(Vec<(String, Value)>),
}

/// A JSON number: integers keep exactness, everything else is `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer (only produced for negative integers).
    I(i64),
    /// Unsigned integer.
    U(u64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// Widen to `f64` (always possible).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::I(v) => v as f64,
            Number::U(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// As `u64` if exactly representable.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::I(v) => u64::try_from(v).ok(),
            Number::U(v) => Some(v),
            Number::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            Number::F(_) => None,
        }
    }

    /// As `i64` if exactly representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::I(v) => Some(v),
            Number::U(v) => i64::try_from(v).ok(),
            Number::F(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F(_) => None,
        }
    }
}

impl Value {
    /// The object pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Render `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types parseable out of a [`Value`].
pub trait Deserialize: Sized {
    /// Parse from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Num(n) => n.as_u64(),
                    _ => None,
                };
                n.and_then(|u| <$t>::try_from(u).ok()).ok_or_else(|| {
                    DeError::custom(format!(
                        "expected {}, found {}", stringify!($t), v.kind()
                    ))
                })
            }
        }
    )*};
}
serde_uint!(u8, u16, u32, u64, usize);

macro_rules! serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Num(Number::U(v as u64))
                } else {
                    Value::Num(Number::I(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Num(n) => n.as_i64(),
                    _ => None,
                };
                n.and_then(|i| <$t>::try_from(i).ok()).ok_or_else(|| {
                    DeError::custom(format!(
                        "expected {}, found {}", stringify!($t), v.kind()
                    ))
                })
            }
        }
    )*};
}
serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Num(n) => Ok(n.as_f64()),
            other => Err(DeError::custom(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_arr()
            .ok_or_else(|| DeError::custom(format!("expected array, found {}", v.kind())))?;
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_arr().ok_or_else(|| {
                    DeError::custom(format!("expected array, found {}", v.kind()))
                })?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {expected}, found {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Support plumbing used by the derive-generated code. Not part of the
/// public serde API surface; the derive macros emit fully qualified paths
/// into this module.
pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Look up a key in an object's pair list.
    pub fn obj_get<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Handle an absent field without a `#[serde(default)]`: `Option`
    /// fields become `None` (they deserialize from `Null`); anything else
    /// reports a missing field.
    pub fn missing_field<T: Deserialize>(field: &str, ty: &str) -> Result<T, DeError> {
        T::from_value(&Value::Null)
            .map_err(|_| DeError::custom(format!("missing field `{field}` in {ty}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_convert_exactly() {
        assert_eq!(Number::U(7).as_i64(), Some(7));
        assert_eq!(Number::I(-3).as_u64(), None);
        assert_eq!(Number::F(2.0).as_u64(), Some(2));
        assert_eq!(Number::F(2.5).as_u64(), None);
        assert_eq!(Number::I(-9).as_f64(), -9.0);
    }

    #[test]
    fn options_and_arrays_round_trip() {
        let v = Some(vec![1u32, 2, 3]).to_value();
        let back: Option<Vec<u32>> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, Some(vec![1, 2, 3]));
        let none: Option<u32> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(none, None);
        let arr = [1.5f64, 2.5];
        let back: [f64; 2] = Deserialize::from_value(&arr.to_value()).unwrap();
        assert_eq!(back, arr);
    }

    #[test]
    fn wrong_kinds_error() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(<Vec<u32>>::from_value(&Value::Bool(true)).is_err());
        assert!(<[f64; 2]>::from_value(&vec![1.0].to_value()).is_err());
    }
}
