//! Offline stand-in for `criterion` (0.5 API subset).
//!
//! Measures wall-clock time only: each `bench_function` auto-calibrates
//! an iteration count per sample (targeting ~5 ms of work), takes
//! `sample_size` samples, and prints min / median / mean per-iteration
//! times to stdout. No HTML reports, no statistical regression analysis,
//! no baselines — the numbers are for eyeballing relative performance
//! and for harnesses that parse the stdout lines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock measurement marker types (`criterion::measurement`).
pub mod measurement {
    /// The only measurement this stand-in supports.
    pub struct WallTime;
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Set the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
            _measurement: std::marker::PhantomData,
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_benchmark(&id.into(), sample_size, f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
    _measurement: std::marker::PhantomData<M>,
}

impl<'a, M> BenchmarkGroup<'a, M> {
    /// Override the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Benchmark a function under `group-name/id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// End the group (printing is immediate, so this is a no-op hook).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`, black-boxing each return value.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: grow the per-sample iteration count until one sample
    // takes ~5 ms, so short functions aren't dominated by timer noise.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));

    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{:<50} time: [min {} median {} mean {}] ({} samples x {} iters)",
        id,
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        sample_size,
        iters,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

/// Define a benchmark group function calling each target with a shared
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("noop", |b| b.iter(|| calls = calls.wrapping_add(1)));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn fmt_time_picks_units() {
        assert!(fmt_time(2e-9).ends_with("ns"));
        assert!(fmt_time(2e-6).ends_with("us"));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2.0).ends_with(" s"));
    }
}
