//! Offline stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize`/`serde::Deserialize` impls against the
//! value-tree `serde` stand-in. Because `syn`/`quote` are unavailable
//! offline, parsing walks the raw `proc_macro::TokenStream`: the derive
//! only needs the type's *shape* — field and variant names plus the serde
//! attributes — never the field types (generated code lets inference
//! resolve them).
//!
//! Supported shapes and attributes (the subset the workspace uses):
//!
//! - named structs, tuple structs (newtype and wider), unit structs;
//! - enums with unit, newtype/tuple, and struct variants;
//! - external tagging (default) and `#[serde(tag = "...")]` internal
//!   tagging;
//! - `#[serde(default)]`, `#[serde(default = "path")]` on fields;
//! - `#[serde(rename_all = "kebab-case" | "snake_case" | "lowercase")]`
//!   on enums (applied to variant names).
//!
//! Generics are not supported (nothing in the workspace derives on a
//! generic type); the macro panics with a clear message if it meets one.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct TypeDef {
    name: String,
    attrs: ContainerAttrs,
    kind: Kind,
}

#[derive(Default)]
struct ContainerAttrs {
    tag: Option<String>,
    rename_all: Option<String>,
}

enum Kind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// `None`: required; `Some(None)`: `#[serde(default)]`;
    /// `Some(Some(path))`: `#[serde(default = "path")]`.
    default: Option<Option<String>>,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_type(input);
    gen_serialize(&def).parse().expect("serde_derive: generated Serialize impl must parse")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_type(input);
    gen_deserialize(&def).parse().expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_type(input: TokenStream) -> TypeDef {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut attrs = ContainerAttrs::default();
    let mut i = 0;
    let mut is_enum = false;
    // Header: attributes and visibility before `struct`/`enum`.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    parse_outer_attr(&g.stream(), &mut attrs);
                    i += 2;
                } else {
                    panic!("serde_derive: `#` not followed by an attribute");
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                i += 1;
                break;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                is_enum = true;
                i += 1;
                break;
            }
            other => panic!("serde_derive: unexpected token in item header: {other:?}"),
        }
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (deriving on `{name}`)");
    }
    let kind = if is_enum {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body, found {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
            other => panic!("serde_derive: expected struct body, found {other:?}"),
        }
    };
    TypeDef { name, attrs, kind }
}

/// Parse one `#[...]` attribute body; records serde container attributes,
/// ignores everything else (doc comments, std derives, etc.).
fn parse_outer_attr(stream: &TokenStream, attrs: &mut ContainerAttrs) {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else { return };
    for (key, value) in parse_attr_args(args.stream()) {
        match key.as_str() {
            "tag" => attrs.tag = value,
            "rename_all" => attrs.rename_all = value,
            // Field-level keys handled elsewhere; unknown keys at the
            // container level are rejected loudly rather than silently
            // changing the format.
            other => panic!("serde_derive: unsupported container attribute `{other}`"),
        }
    }
}

/// Parse a field/variant `#[serde(...)]` body into a default spec.
fn parse_field_attr(stream: &TokenStream, field_default: &mut Option<Option<String>>) {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else { return };
    for (key, value) in parse_attr_args(args.stream()) {
        match key.as_str() {
            "default" => *field_default = Some(value),
            other => panic!("serde_derive: unsupported field attribute `{other}`"),
        }
    }
}

/// Split `key`, `key = "value"` pairs separated by commas.
fn parse_attr_args(stream: TokenStream) -> Vec<(String, Option<String>)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let key = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected attribute key, found {other:?}"),
        };
        i += 1;
        let mut value = None;
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            match &tokens.get(i) {
                Some(TokenTree::Literal(lit)) => {
                    value = Some(unquote(&lit.to_string()));
                    i += 1;
                }
                other => panic!("serde_derive: expected string after `=`, found {other:?}"),
            }
        }
        out.push((key, value));
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    out
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pending_default: Option<Option<String>> = None;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    parse_field_attr(&g.stream(), &mut pending_default);
                    i += 2;
                } else {
                    panic!("serde_derive: `#` not followed by an attribute in field list");
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                match &tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                    other => {
                        panic!("serde_derive: expected `:` after field `{name}`, found {other:?}")
                    }
                }
                // Skip the type: everything up to a comma at angle depth 0.
                let mut depth = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                        _ => {}
                    }
                    i += 1;
                }
                i += 1; // past the comma (or end)
                fields.push(Field { name, default: pending_default.take() });
            }
            other => panic!("serde_derive: unexpected token in field list: {other:?}"),
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut saw_content_since_comma = true;
    for (idx, tok) in tokens.iter().enumerate() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                // Trailing comma adds no field.
                if idx + 1 < tokens.len() {
                    count += 1;
                }
                saw_content_since_comma = false;
            }
            _ => saw_content_since_comma = true,
        }
    }
    let _ = saw_content_since_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Variant attributes: only doc comments occur; serde
                // variant attributes are unsupported and rejected.
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde")
                    {
                        panic!("serde_derive: variant-level serde attributes are not supported");
                    }
                    i += 2;
                } else {
                    panic!("serde_derive: `#` not followed by an attribute in enum body");
                }
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let kind = match &tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        VariantKind::Named(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        i += 1;
                        VariantKind::Tuple(count_tuple_fields(g.stream()))
                    }
                    _ => VariantKind::Unit,
                };
                if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    i += 1;
                }
                variants.push(Variant { name, kind });
            }
            other => panic!("serde_derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

// ---------------------------------------------------------------------
// Name transforms
// ---------------------------------------------------------------------

fn apply_rename(name: &str, rule: Option<&str>) -> String {
    match rule {
        None => name.to_string(),
        Some("lowercase") => name.to_lowercase(),
        Some("kebab-case") => camel_to_separated(name, '-'),
        Some("snake_case") => camel_to_separated(name, '_'),
        Some(other) => panic!("serde_derive: unsupported rename_all rule `{other}`"),
    }
}

fn camel_to_separated(name: &str, sep: char) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push(sep);
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------

fn push_field_serialize(out: &mut String, obj: &str, field_expr: &str, key: &str) {
    out.push_str(&format!(
        "{obj}.push(({key:?}.to_string(), ::serde::Serialize::to_value({field_expr})));\n"
    ));
}

fn gen_serialize(def: &TypeDef) -> String {
    let name = &def.name;
    let mut body = String::new();
    match &def.kind {
        Kind::Unit => body.push_str("::serde::Value::Null\n"),
        Kind::Tuple(1) => body.push_str("::serde::Serialize::to_value(&self.0)\n"),
        Kind::Tuple(n) => {
            body.push_str("::serde::Value::Arr(vec![");
            for i in 0..*n {
                body.push_str(&format!("::serde::Serialize::to_value(&self.{i}), "));
            }
            body.push_str("])\n");
        }
        Kind::Named(fields) => {
            body.push_str(
                "let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields {
                push_field_serialize(&mut body, "__obj", &format!("&self.{}", f.name), &f.name);
            }
            body.push_str("::serde::Value::Obj(__obj)\n");
        }
        Kind::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let vname = &v.name;
                if let Some(tag) = &def.attrs.tag {
                    let renamed = apply_rename(vname, def.attrs.rename_all.as_deref());
                    match &v.kind {
                        VariantKind::Unit => body.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::Obj(vec![({tag:?}.to_string(), \
                             ::serde::Value::Str({renamed:?}.to_string()))]),\n"
                        )),
                        VariantKind::Named(fields) => {
                            let binders: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            body.push_str(&format!(
                                "{name}::{vname} {{ {} }} => {{\n",
                                binders.join(", ")
                            ));
                            body.push_str(&format!(
                                "let mut __obj = vec![({tag:?}.to_string(), \
                                 ::serde::Value::Str({renamed:?}.to_string()))];\n"
                            ));
                            for f in fields {
                                push_field_serialize(&mut body, "__obj", &f.name, &f.name);
                            }
                            body.push_str("::serde::Value::Obj(__obj)\n}\n");
                        }
                        VariantKind::Tuple(_) => panic!(
                            "serde_derive: tuple variants are incompatible with internal tagging"
                        ),
                    }
                } else {
                    match &v.kind {
                        VariantKind::Unit => body.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),\n"
                        )),
                        VariantKind::Tuple(1) => body.push_str(&format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Obj(vec![\
                             ({vname:?}.to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                        )),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            body.push_str(&format!(
                                "{name}::{vname}({}) => ::serde::Value::Obj(vec![\
                                 ({vname:?}.to_string(), ::serde::Value::Arr(vec![",
                                binders.join(", ")
                            ));
                            for b in &binders {
                                body.push_str(&format!("::serde::Serialize::to_value({b}), "));
                            }
                            body.push_str("]))]),\n");
                        }
                        VariantKind::Named(fields) => {
                            let binders: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            body.push_str(&format!(
                                "{name}::{vname} {{ {} }} => {{\n",
                                binders.join(", ")
                            ));
                            body.push_str(
                                "let mut __inner: ::std::vec::Vec<(::std::string::String, \
                                 ::serde::Value)> = ::std::vec::Vec::new();\n",
                            );
                            for f in fields {
                                push_field_serialize(&mut body, "__inner", &f.name, &f.name);
                            }
                            body.push_str(&format!(
                                "::serde::Value::Obj(vec![({vname:?}.to_string(), \
                                 ::serde::Value::Obj(__inner))])\n}}\n"
                            ));
                        }
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}}}\n}}\n"
    )
}

// ---------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------

/// The `field: <expr>,` initializer for one named field read from `obj`.
fn field_init(f: &Field, obj: &str, ty_name: &str) -> String {
    let key = &f.name;
    let fallback = match &f.default {
        None => format!("::serde::__private::missing_field({key:?}, {ty_name:?})?"),
        Some(None) => "::std::default::Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
    };
    format!(
        "{key}: match ::serde::__private::obj_get({obj}, {key:?}) {{\n\
         ::std::option::Option::Some(__fv) => ::serde::Deserialize::from_value(__fv)?,\n\
         ::std::option::Option::None => {fallback},\n}},\n"
    )
}

fn gen_deserialize(def: &TypeDef) -> String {
    let name = &def.name;
    let mut body = String::new();
    match &def.kind {
        Kind::Unit => {
            body.push_str(&format!("let _ = __v; ::std::result::Result::Ok({name})\n"));
        }
        Kind::Tuple(1) => body.push_str(&format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))\n"
        )),
        Kind::Tuple(n) => {
            body.push_str(&format!(
                "let __arr = __v.as_arr().ok_or_else(|| ::serde::DeError::custom(\
                 format!(\"expected array for {name}, found {{}}\", __v.kind())))?;\n\
                 if __arr.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"expected {n} elements for {name}, found {{}}\", __arr.len())));\n}}\n"
            ));
            body.push_str(&format!("::std::result::Result::Ok({name}("));
            for i in 0..*n {
                body.push_str(&format!("::serde::Deserialize::from_value(&__arr[{i}])?, "));
            }
            body.push_str("))\n");
        }
        Kind::Named(fields) => {
            body.push_str(&format!(
                "let __obj = __v.as_obj().ok_or_else(|| ::serde::DeError::custom(\
                 format!(\"expected object for {name}, found {{}}\", __v.kind())))?;\n"
            ));
            body.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                body.push_str(&field_init(f, "__obj", name));
            }
            body.push_str("})\n");
        }
        Kind::Enum(variants) => {
            if let Some(tag) = &def.attrs.tag {
                body.push_str(&format!(
                    "let __obj = __v.as_obj().ok_or_else(|| ::serde::DeError::custom(\
                     format!(\"expected object for {name}, found {{}}\", __v.kind())))?;\n\
                     let __tag = ::serde::__private::obj_get(__obj, {tag:?})\
                     .and_then(::serde::Value::as_str)\
                     .ok_or_else(|| ::serde::DeError::custom(\
                     \"missing or non-string tag `{tag}` for {name}\"))?;\n\
                     match __tag {{\n"
                ));
                for v in variants {
                    let vname = &v.name;
                    let renamed = apply_rename(vname, def.attrs.rename_all.as_deref());
                    match &v.kind {
                        VariantKind::Unit => body.push_str(&format!(
                            "{renamed:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                        )),
                        VariantKind::Named(fields) => {
                            body.push_str(&format!(
                                "{renamed:?} => ::std::result::Result::Ok({name}::{vname} {{\n"
                            ));
                            for f in fields {
                                body.push_str(&field_init(f, "__obj", name));
                            }
                            body.push_str("}),\n");
                        }
                        VariantKind::Tuple(_) => panic!(
                            "serde_derive: tuple variants are incompatible with internal tagging"
                        ),
                    }
                }
                body.push_str(&format!(
                    "__other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"unknown {name} variant `{{__other}}`\"))),\n}}\n"
                ));
            } else {
                // External tagging: a plain string for unit variants, a
                // single-key object otherwise.
                body.push_str("match __v {\n::serde::Value::Str(__s) => match __s.as_str() {\n");
                for v in variants {
                    if matches!(v.kind, VariantKind::Unit) {
                        let vname = &v.name;
                        body.push_str(&format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                }
                body.push_str(&format!(
                    "__other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"unknown {name} variant `{{__other}}`\"))),\n}},\n"
                ));
                body.push_str(
                    "::serde::Value::Obj(__pairs) if __pairs.len() == 1 => {\n\
                     let (__k, __content) = &__pairs[0];\nmatch __k.as_str() {\n",
                );
                for v in variants {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => body.push_str(&format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                        )),
                        VariantKind::Tuple(1) => body.push_str(&format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__content)?)),\n"
                        )),
                        VariantKind::Tuple(n) => {
                            body.push_str(&format!(
                                "{vname:?} => {{\n\
                                 let __arr = __content.as_arr().ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected array for {name}::{vname}\"))?;\n\
                                 if __arr.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::DeError::custom(\
                                 \"wrong tuple arity for {name}::{vname}\"));\n}}\n\
                                 ::std::result::Result::Ok({name}::{vname}("
                            ));
                            for i in 0..*n {
                                body.push_str(&format!(
                                    "::serde::Deserialize::from_value(&__arr[{i}])?, "
                                ));
                            }
                            body.push_str("))\n},\n");
                        }
                        VariantKind::Named(fields) => {
                            body.push_str(&format!(
                                "{vname:?} => {{\n\
                                 let __inner = __content.as_obj().ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected object for {name}::{vname}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{\n"
                            ));
                            for f in fields {
                                body.push_str(&field_init(f, "__inner", name));
                            }
                            body.push_str("})\n},\n");
                        }
                    }
                }
                body.push_str(&format!(
                    "__other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"unknown {name} variant `{{__other}}`\"))),\n}}\n}},\n"
                ));
                body.push_str(&format!(
                    "__other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"expected {name} variant, found {{}}\", __other.kind()))),\n}}\n"
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> \
         {{\n{body}}}\n}}\n"
    )
}
