//! Offline stand-in for `parking_lot` (0.12 API subset).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning
//! interface: `lock()` returns a guard directly rather than a `Result`.
//! A poisoned std lock (a holder panicked) is recovered by taking the
//! inner guard — matching parking_lot, whose locks never poison.

use std::sync;

/// Non-poisoning mutex (mirrors `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock (mirrors `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
