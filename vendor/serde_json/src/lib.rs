//! Offline stand-in for `serde_json` (1.x API subset).
//!
//! Bridges JSON text and the value-tree model of the vendored `serde`
//! stand-in: `from_str` parses JSON into a `serde::Value` and then lets
//! the target type's `Deserialize` impl walk the tree; `to_string_pretty`
//! renders a `Serialize`able type with two-space indentation, object keys
//! in field declaration order.
//!
//! Numbers print through Rust's shortest-round-trip float formatting;
//! integral values are kept as integers end to end. Non-finite floats
//! (which JSON cannot represent) render as `null`, matching serde_json.

use serde::{DeError, Deserialize, Number, Serialize, Value};

/// Error raised by parsing or printing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Parse a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

/// Render `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Render `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

// ---------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, it, d| {
            write_value(o, it, indent, d)
        }),
        Value::Obj(pairs) => {
            write_seq(out, pairs.iter(), indent, depth, ('{', '}'), |o, (k, it), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, it, indent, d);
            })
        }
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, usize),
{
    out.push(brackets.0);
    let n = items.len();
    if n == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(brackets.1);
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::I(v) => out.push_str(&v.to_string()),
        Number::U(v) => out.push_str(&v.to_string()),
        Number::F(v) if v.is_finite() => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                // Keep a float marker so the value re-parses as a float
                // (serde_json prints 1.0, not 1).
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&v.to_string());
            }
        }
        Number::F(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not handled; BMP only.
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<String>(r#""a\nb""#).unwrap(), "a\nb");
    }

    #[test]
    fn nested_structures_parse() {
        let v: Vec<Vec<f64>> = from_str("[[1.0, 2.0], [3.5]]").unwrap();
        assert_eq!(v, vec![vec![1.0, 2.0], vec![3.5]]);
    }

    #[test]
    fn pretty_printing_shape() {
        let v = Value::Obj(vec![
            ("a".to_string(), Value::Num(Number::U(1))),
            ("b".to_string(), Value::Arr(vec![Value::Bool(true)])),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let s = to_string_pretty(&Raw(v)).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
    }

    #[test]
    fn floats_keep_a_decimal_marker() {
        let mut out = String::new();
        write_number(&mut out, Number::F(1.0));
        assert_eq!(out, "1.0");
        let mut out = String::new();
        write_number(&mut out, Number::F(0.118));
        assert_eq!(out, "0.118");
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<u32>("4x").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(parse_value("{\"a\": }").is_err());
    }
}
