//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access and no registry cache, so
//! the real `rand` cannot be resolved. This crate implements the slice of
//! the 0.8 API the workspace actually uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! `gen`/`gen_range`/`gen_bool` — on top of a deterministic xoshiro256++
//! core seeded via SplitMix64.
//!
//! Determinism is the contract: every figure, trace, and property test in
//! the workspace derives its randomness from explicit seeds, so the only
//! requirements are (a) a fixed, platform-independent stream per seed and
//! (b) reasonable statistical quality. xoshiro256++ provides both. The
//! streams differ from upstream `rand`'s ChaCha12-based `StdRng`, which is
//! fine: nothing in the repo depends on upstream's exact streams.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value from its standard distribution (`f64` in `[0, 1)`,
    /// full range for integers).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = Standard.sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The standard distribution marker (mirrors `rand::distributions::Standard`).
pub struct Standard;

/// Distributions that can produce a `T` (mirrors
/// `rand::distributions::Distribution`).
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1), the canonical conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled from (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one sample from the range; panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add((rng.next_u64() as $u % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as $u % span) as $t)
            }
        }
    )*};
}
range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard.sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard the open upper bound against rounding.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u: f64 = Standard.sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f32 = Standard.sample(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure for
            // the xoshiro family.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Minimal prelude (mirrors `rand::prelude`).
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(1.0f64..2.0)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let v = draw(&mut rng);
        assert!((1.0..2.0).contains(&v));
    }
}
