//! Offline stand-in for the `bytes` crate (1.x API subset).
//!
//! [`Bytes`] is a cheaply cloneable, sliceable view over shared immutable
//! storage (an `Arc<Vec<u8>>` here instead of upstream's refcounted vtable
//! machinery); [`BytesMut`] is a growable buffer that freezes into
//! [`Bytes`]. The [`Buf`]/[`BufMut`] traits carry the little-endian
//! cursor-style accessors the trace codec uses.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer (mirrors `bytes::Bytes`).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer borrowing from static data (copied here; the upstream
    /// zero-copy optimization is irrelevant at these sizes).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Bytes remaining in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this buffer; shares storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Copy the view into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer that freezes into [`Bytes`] (mirrors
/// `bytes::BytesMut`).
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Cursor-style reader over a byte source (mirrors `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy exactly `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

/// Cursor-style writer into a byte sink (mirrors `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"HDR!");
        w.put_u32_le(7);
        w.put_u64_le(99);
        w.put_f64_le(1.5);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 4 + 4 + 8 + 8);
        let mut hdr = [0u8; 4];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), 99);
        assert_eq!(r.get_f64_le(), 1.5);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slices_share_and_bound() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&*s, &[2, 3, 4]);
        let t = s.slice(1..);
        assert_eq!(t.to_vec(), vec![3, 4]);
        assert_eq!(b.len(), 6, "parent untouched");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        let _ = b.get_u32_le();
    }
}
