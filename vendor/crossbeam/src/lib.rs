//! Offline stand-in for `crossbeam` (0.8 API subset).
//!
//! Two modules are provided, mirroring the names the workspace imports:
//!
//! - [`thread`]: scoped threads in crossbeam's shape — the closure passed
//!   to [`thread::scope`] and to `Scope::spawn` receives a `&Scope`
//!   argument, and `scope` returns a `Result` — implemented over
//!   `std::thread::scope` (stabilized since the original crossbeam
//!   scoped-thread design).
//! - [`channel`]: multi-producer channels with cloneable senders, backed
//!   by `std::sync::mpsc`. `bounded(cap)` maps to `sync_channel`,
//!   `unbounded()` to `channel`.

/// Scoped threads (mirrors `crossbeam::thread` / `crossbeam_utils::thread`).
pub mod thread {
    use std::thread as stdthread;

    /// Result of joining a thread or closing a scope.
    pub type Result<T> = stdthread::Result<T>;

    /// Handle for spawning threads tied to a scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined before
    /// this returns. Unjoined-thread panics surface as `Err` (matching
    /// crossbeam); explicitly joined panics surface through
    /// [`ScopedJoinHandle::join`].
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            stdthread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

/// Multi-producer channels (mirrors `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// Error returned when the receiving side is gone; carries the value.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    enum SenderInner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// Cloneable sending half.
    pub struct Sender<T> {
        inner: SenderInner<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let inner = match &self.inner {
                SenderInner::Unbounded(tx) => SenderInner::Unbounded(tx.clone()),
                SenderInner::Bounded(tx) => SenderInner::Bounded(tx.clone()),
            };
            Sender { inner }
        }
    }

    impl<T> Sender<T> {
        /// Send a value, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderInner::Unbounded(tx) => {
                    tx.send(value).map_err(|mpsc::SendError(v)| SendError(v))
                }
                SenderInner::Bounded(tx) => {
                    tx.send(value).map_err(|mpsc::SendError(v)| SendError(v))
                }
            }
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Block until a value arrives, every sender is dropped, or the
        /// timeout elapses (mirrors `crossbeam::channel::Receiver::recv_timeout`).
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Blocking iterator over received values.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// A channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: SenderInner::Unbounded(tx) }, Receiver { inner: rx })
    }

    /// A channel holding at most `cap` in-flight values (`cap == 0` is a
    /// rendezvous channel).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: SenderInner::Bounded(tx) }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&v| scope.spawn(move |_| v * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 20);
    }

    #[test]
    fn nested_spawn_from_scope_arg() {
        let out = super::thread::scope(|scope| {
            scope.spawn(|inner| inner.spawn(|_| 7).join().unwrap()).join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 7);
    }

    #[test]
    fn channels_fan_in() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert!(rx.recv().is_err(), "all senders dropped");
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        use std::time::Duration;
        let (tx, rx) = super::channel::unbounded();
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(super::channel::RecvTimeoutError::Timeout)
        ));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)).unwrap(), 9);
        drop(tx);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(super::channel::RecvTimeoutError::Disconnected)
        ));
    }

    #[test]
    fn bounded_rendezvous_works_across_threads() {
        let (tx, rx) = super::channel::bounded(1);
        super::thread::scope(|scope| {
            scope.spawn(move |_| tx.send(42).unwrap());
            assert_eq!(rx.recv().unwrap(), 42);
        })
        .unwrap();
    }
}
