//! Offline stand-in for `proptest` (1.x API subset).
//!
//! Differences from the real proptest, deliberate and documented:
//!
//! - **No shrinking.** A failing case panics with the case number and the
//!   failure message; inputs are reproducible because generation is
//!   seeded deterministically per test (FNV-1a of the test's module
//!   path + name), so a failure recurs on every run until fixed.
//! - **No `proptest-regressions` persistence.** Seed files checked into
//!   the repo are ignored.
//! - **Default case count is 64** (real proptest: 256). Property tests
//!   here run heavyweight simulations; tests that need more set
//!   `ProptestConfig::with_cases` explicitly, which is honored.
//!
//! The [`Strategy`] trait is generation-only (`gen` produces a value from
//! the test's RNG), with the combinators the workspace uses: ranges,
//! [`Just`], tuples, `prop_map`, `prop_flat_map`, `prop_oneof!`,
//! [`collection::vec`], [`option::of`], and [`any`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-test random source.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed from a test's fully qualified name (FNV-1a), so every test
    /// has a stable, independent stream.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { inner: StdRng::seed_from_u64(hash) }
    }
}

/// Outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed; the property does not hold.
    Fail(String),
    /// The case was rejected by `prop_assume!`; try another.
    Reject(String),
}

impl TestCaseError {
    /// A failed case with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected case with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generate a value, then a strategy from it, then its value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Discard generated values failing the predicate (retried by the
    /// runner through the reject mechanism).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, reason, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.gen(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn gen(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.gen(rng)).gen(rng)
    }
}

/// `prop_filter` adapter. Rejection is handled by resampling with a
/// bounded retry count (the real proptest reports a global rejection; a
/// local bound keeps the runner simple and the failure mode loud).
pub struct Filter<S, F> {
    source: S,
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn gen(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.gen(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values: {}", self.reason);
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Type-erased strategy (`Strategy::boxed`, `prop_oneof!`).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        self.0.gen(rng)
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Choose uniformly among `options` per generated value.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        let idx = rng.inner.gen_range(0..self.options.len());
        self.options[idx].gen(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy type `any` returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain scalar strategy backing [`any`].
pub struct AnyScalar<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_scalar {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyScalar<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut StdRng) -> $t = $gen;
                f(&mut rng.inner)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyScalar<$t>;
            fn arbitrary() -> AnyScalar<$t> {
                AnyScalar { _marker: std::marker::PhantomData }
            }
        }
    )*};
}
arbitrary_scalar! {
    bool => |r| r.gen::<bool>(),
    u8 => |r| r.gen::<u8>(),
    u16 => |r| r.gen::<u16>(),
    u32 => |r| r.gen::<u32>(),
    u64 => |r| r.gen::<u64>(),
    usize => |r| r.gen::<usize>(),
    i8 => |r| r.gen::<i8>(),
    i16 => |r| r.gen::<i16>(),
    i32 => |r| r.gen::<i32>(),
    i64 => |r| r.gen::<i64>(),
    // Finite, sign-balanced, wide-magnitude floats (the real any::<f64>()
    // includes infinities/NaN; nothing here wants those).
    f64 => |r| {
        let mag = 10f64.powf(r.gen_range(-3.0f64..6.0));
        let sign = if r.gen::<bool>() { 1.0 } else { -1.0 };
        sign * mag * r.gen::<f64>()
    },
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Acceptable size arguments for [`vec`].
    pub trait IntoSizeRange {
        /// Sample a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.inner.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.inner.gen_range(self.clone())
        }
    }

    /// Strategy for vectors of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.gen(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `None` about a quarter of the time, otherwise
    /// `Some` of the inner strategy's value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.inner.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.gen(rng))
            }
        }
    }
}

/// Compatibility module mirroring `proptest::strategy`.
pub mod strategy {
    pub use super::{BoxedStrategy, FlatMap, Just, Map, OneOf, Strategy};
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Define property tests. See the crate docs for the supported grammar:
/// an optional `#![proptest_config(expr)]` header followed by
/// `fn name(pat in strategy, ...) { body }` items (each carrying its own
/// `#[test]` attribute, as in the real proptest).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion target of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __case: u32 = 0;
            let mut __rejects: u32 = 0;
            while __case < __cfg.cases {
                $(let $pat = $crate::Strategy::gen(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __result {
                    ::std::result::Result::Ok(()) => {
                        __case += 1;
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Reject(__why)) => {
                        __rejects += 1;
                        if __rejects > 4 * __cfg.cases + 64 {
                            panic!(
                                "proptest {}: too many rejected cases ({}): {}",
                                stringify!($name), __rejects, __why,
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__why)) => {
                        panic!(
                            "proptest {} failed at case {} (deterministic seed): {}",
                            stringify!($name), __case, __why,
                        );
                    }
                }
            }
        }
    )*};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = &$a;
        let __b = &$b;
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {:?} == {:?}", __a, __b,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = &$a;
        let __b = &$b;
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}: {:?} != {:?}", format!($($fmt)+), __a, __b,
            )));
        }
    }};
}

/// Fail the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = &$a;
        let __b = &$b;
        if __a == __b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}",
                __a, __b,
            )));
        }
    }};
}

/// Reject the current case (resampled, not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Choose uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_rng_is_stable() {
        let mut a = super::TestRng::deterministic("x::y");
        let mut b = super::TestRng::deterministic("x::y");
        let s = (0u32..100).prop_map(|v| v * 2);
        for _ in 0..50 {
            assert_eq!(s.gen(&mut a), s.gen(&mut b));
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 3usize..17, f in 0.25f64..0.75, w in -5i32..=5) {
            prop_assert!((3..17).contains(&v));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((-5..=5).contains(&w));
        }

        #[test]
        fn combinators_compose(
            xs in crate::collection::vec(0u32..10, 1..=4),
            o in crate::option::of(1u32..=3),
            pick in prop_oneof![Just(10u32), Just(20u32)],
        ) {
            prop_assert!(!xs.is_empty() && xs.len() <= 4);
            prop_assert!(xs.iter().all(|&x| x < 10));
            if let Some(v) = o {
                prop_assert!((1..=3).contains(&v));
            }
            prop_assert!(pick == 10 || pick == 20);
        }

        #[test]
        fn flat_map_threads_values(
            (n, xs) in (1usize..=5).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0u32..100, n))
            }),
        ) {
            prop_assert_eq!(xs.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_cases_are_honored(_v in 0u32..10) {
            // Runs without exhausting anything; the count itself is
            // validated by the rejects bound below.
        }
    }

    proptest! {
        #[test]
        fn assume_rejects_without_failing(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
        }
    }
}
