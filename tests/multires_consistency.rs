//! The two-resource simulator must degenerate to the single-resource one
//! when the network is effectively infinite: service times, thresholds,
//! scheduling, and redirection all coincide (at unit CPU capacity the
//! bundle unit equals a work-second).

use sharing_agreements::flow::Structure;
use sharing_agreements::proxysim::{
    run_multires, MultiResConfig, PolicyKind, SharingConfig, SimConfig, Simulator,
};
use sharing_agreements::trace::{ProxyTrace, Request, ServiceModel};

fn burst(proxy: usize, t0: f64, count: usize, spacing: f64, len: u64) -> ProxyTrace {
    ProxyTrace {
        proxy,
        requests: (0..count)
            .map(|i| Request { arrival: t0 + i as f64 * spacing, response_len: len })
            .collect(),
    }
}

fn sharing(n: usize) -> SharingConfig {
    SharingConfig {
        agreements: Structure::Complete { n, share: 0.4 }.build().unwrap(),
        level: n - 1,
        policy: PolicyKind::Lp,
        redirect_cost: 0.0,
        schedule: Vec::new(),
    }
}

#[test]
fn multires_degenerates_to_single_resource() {
    const N: usize = 3;
    let traces = vec![
        burst(0, 0.0, 120, 1.0, 1_900_000),
        burst(1, 30.0, 40, 2.0, 400_000),
        burst(2, 0.0, 0, 1.0, 0),
    ];

    let single_cfg = SimConfig {
        n: N,
        capacity: 1.0,
        per_proxy_capacity: None,
        epoch: 10.0,
        threshold_epochs: 1.0,
        horizon_epochs: 1.0,
        service: ServiceModel::PAPER,
        sharing: Some(sharing(N)),
        max_drain: 4.0 * 86_400.0,
        warmup_days: 0,
        record_decisions: false,
        discipline: sharing_agreements::proxysim::QueueDiscipline::Fifo,
    };
    let single = Simulator::new(single_cfg).unwrap().run(&traces).unwrap();

    let multi_cfg = MultiResConfig {
        n: N,
        cpu_capacity: 1.0,
        net_capacity: 1e12, // network never binds
        service: ServiceModel::PAPER,
        epoch: 10.0,
        threshold_epochs: 1.0,
        sharing: Some(sharing(N)),
        warmup_days: 0,
        max_drain: 4.0 * 86_400.0,
    };
    let multi = run_multires(&multi_cfg, &traces).unwrap();

    assert_eq!(single.served, multi.served);
    assert!(single.redirected > 0, "sharing exercised");
    assert_eq!(single.redirected, multi.redirected);
    assert_eq!(single.consultations, multi.consultations);
    assert!(
        (single.total_wait - multi.total_wait).abs() < 1e-6,
        "waits diverged: single {} vs multi {}",
        single.total_wait,
        multi.total_wait
    );
}
