//! Physical invariants of the case-study simulator that the paper's
//! methodology depends on.

use sharing_agreements::proxysim::{SimConfig, Simulator};
use sharing_agreements::trace::{ResponseLenDist, TraceConfig};

fn traces(requests: usize, gap: f64, n: usize) -> Vec<sharing_agreements::trace::ProxyTrace> {
    let mut cfg = TraceConfig::paper(requests, 77);
    cfg.lengths = ResponseLenDist { tail_prob: 0.0, ..ResponseLenDist::web1996() };
    cfg.generate(n, gap)
}

/// Without sharing, every proxy replays the same day shifted in time, so
/// in the *cyclic* steady state (one warmup day) the system-wide average
/// wait must not depend on the skew at all. This is the invariant that
/// justifies comparing Figure 6's gap sweep against a single no-sharing
/// baseline — and it only holds because of the warmup day (a cold start
/// splits the midnight peak across the day boundary differently at each
/// skew).
#[test]
fn no_sharing_average_wait_is_skew_invariant() {
    const N: usize = 4;
    const REQUESTS: usize = 15_000;
    let mut cfg = SimConfig::calibrated(N, REQUESTS, 0.105, 1.03);
    cfg.epoch = 60.0;
    let run =
        |gap: f64| Simulator::new(cfg.clone()).unwrap().run(&traces(REQUESTS, gap, N)).unwrap();
    let baseline = run(0.0);
    assert!(baseline.avg_wait() > 0.1, "load hot enough to queue");
    for gap in [1800.0, 3600.0, 7200.0] {
        let skewed = run(gap);
        assert_eq!(baseline.served, skewed.served);
        assert!(
            (baseline.avg_wait() - skewed.avg_wait()).abs() < 1e-9,
            "gap {gap}: {} vs {}",
            baseline.avg_wait(),
            skewed.avg_wait()
        );
    }
}

/// Doubling capacity can only reduce every proxy's waits.
#[test]
fn more_capacity_never_hurts() {
    const N: usize = 3;
    const REQUESTS: usize = 10_000;
    let mut cfg = SimConfig::calibrated(N, REQUESTS, 0.105, 1.05);
    cfg.epoch = 60.0;
    let t = traces(REQUESTS, 3600.0, N);
    let base = Simulator::new(cfg.clone()).unwrap().run(&t).unwrap();
    let big = Simulator::new(cfg.with_capacity_factor(2.0)).unwrap().run(&t).unwrap();
    assert!(big.total_wait <= base.total_wait);
    for p in 0..N {
        assert!(big.proxy_avg_wait(p) <= base.proxy_avg_wait(p) + 1e-9);
    }
}

/// The warmup day changes measured waits only through queue carry-over:
/// at trivial load, warmup on/off must agree exactly.
#[test]
fn warmup_is_invisible_at_light_load() {
    const N: usize = 2;
    const REQUESTS: usize = 2_000;
    let t = traces(REQUESTS, 3600.0, N);
    let mut cfg = SimConfig::calibrated(N, REQUESTS, 0.105, 0.2); // very cold
    cfg.epoch = 60.0;
    let with = Simulator::new(cfg.clone()).unwrap().run(&t).unwrap();
    cfg.warmup_days = 0;
    let without = Simulator::new(cfg).unwrap().run(&t).unwrap();
    assert_eq!(with.served, without.served);
    assert!(
        (with.total_wait - without.total_wait).abs() < 1e-6,
        "{} vs {}",
        with.total_wait,
        without.total_wait
    );
}
