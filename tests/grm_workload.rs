//! Driving the GRM/LRM runtime with a concurrent job workload: the
//! §3.2 architecture exercised end to end on real threads.

use sharing_agreements::flow::AgreementMatrix;
use sharing_agreements::grm::{GrmError, GrmServer, Lrm};
use sharing_agreements::sched::SchedError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn complete(n: usize, share: f64) -> AgreementMatrix {
    let mut s = AgreementMatrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s.set(i, j, share).unwrap();
            }
        }
    }
    s
}

/// Multiple client threads submit jobs against their LRMs; every granted
/// unit must be backed by real pool decrements, and the sum of grants and
/// leftovers must equal the initial endowment.
#[test]
fn concurrent_job_stream_conserves_resources() {
    const N: usize = 6;
    const INITIAL: f64 = 30.0;
    let grm = GrmServer::spawn(complete(N, 0.4), N - 1);
    let lrms: Arc<Vec<Lrm>> =
        Arc::new((0..N).map(|i| Lrm::new(i, INITIAL, grm.handle()).unwrap()).collect());
    // Fixed-point arithmetic for exact cross-thread accounting.
    let granted_milli = Arc::new(AtomicU64::new(0));

    crossbeam::thread::scope(|scope| {
        for t in 0..N {
            let lrms = Arc::clone(&lrms);
            let granted_milli = Arc::clone(&granted_milli);
            scope.spawn(move |_| {
                // Each client submits several jobs of varying size at its
                // own LRM; every draw is fulfilled at the owning LRMs.
                for k in 0..5 {
                    let amount = 2.0 + (t as f64) * 0.5 + (k as f64) * 0.25;
                    match lrms[t].submit(amount) {
                        Ok(alloc) => {
                            let mut total = 0.0;
                            for lrm in lrms.iter() {
                                total += lrm.fulfil(&alloc).unwrap();
                            }
                            // Under concurrency a fulfilment can be
                            // clamped when another client's report races
                            // the GRM's commit (the protocol is
                            // optimistic; see Lrm::fulfil docs) - but it
                            // can never exceed the grant.
                            assert!(
                                total <= alloc.amount + 1e-6,
                                "fulfilled {total} beyond grant {}",
                                alloc.amount
                            );
                            granted_milli
                                .fetch_add((total * 1000.0).round() as u64, Ordering::Relaxed);
                        }
                        Err(GrmError::Sched(SchedError::InsufficientCapacity { .. })) => {
                            // Pool exhausted for this requester: fine.
                        }
                        Err(e) => panic!("unexpected GRM error: {e}"),
                    }
                }
            });
        }
    })
    .unwrap();

    let granted = granted_milli.load(Ordering::Relaxed) as f64 / 1000.0;
    let leftover: f64 = lrms.iter().map(|l| l.available()).sum();
    assert!(
        (granted + leftover - INITIAL * N as f64).abs() < 1e-6,
        "granted {granted} + leftover {leftover} != {}",
        INITIAL * N as f64
    );
    // After a final round of reports the GRM's availability view agrees
    // with the LRM ground truth exactly.
    for lrm in lrms.iter() {
        lrm.report().unwrap();
    }
    let view: f64 = grm.handle().availability().unwrap().iter().sum();
    assert!((view - leftover).abs() < 1e-6, "GRM view {view} vs LRM pools {leftover}");
    grm.shutdown();
}

/// Releases return capacity to the system and later requests can use it.
#[test]
fn release_cycle_allows_reuse() {
    let grm = GrmServer::spawn(complete(2, 1.0), 1);
    let a = Lrm::new(0, 0.0, grm.handle()).unwrap();
    let b = Lrm::new(1, 10.0, grm.handle()).unwrap();
    let _ = (&a, &b);

    // Drain everything.
    let alloc1 = a.submit(10.0).unwrap();
    assert!(a.submit(1.0).is_err(), "nothing left");
    // Job finishes; give it back.
    grm.handle().release(alloc1).unwrap();
    let alloc2 = a.submit(10.0).unwrap();
    assert!((alloc2.amount - 10.0).abs() < 1e-9);
    grm.shutdown();
}

/// Dynamic agreement management mid-stream: revoking an agreement stops
/// future draws from that owner but does not disturb the availability
/// bookkeeping.
#[test]
fn agreement_update_mid_stream() {
    let grm = GrmServer::spawn(complete(3, 0.5), 2);
    let h = grm.handle();
    for i in 0..3 {
        h.report(i, 10.0).unwrap();
    }
    let before = h.request(0, 12.0).unwrap();
    assert!(before.draws[1] > 0.0 && before.draws[2] > 0.0);

    // Owner 2 pulls out entirely (direct and transitive routes).
    h.set_agreement(2, 0, 0.0).unwrap();
    h.set_agreement(2, 1, 0.0).unwrap();
    h.set_agreement(1, 2, 0.0).unwrap();
    let view = h.availability().unwrap();
    let reach_without_2 = view[0] + 0.5 * view[1];
    match h.request(0, reach_without_2 + 1.0) {
        Err(GrmError::Sched(SchedError::InsufficientCapacity { capacity, .. })) => {
            assert!((capacity - reach_without_2).abs() < 1e-6);
        }
        other => panic!("expected capacity rejection, got {other:?}"),
    }
    grm.shutdown();
}
