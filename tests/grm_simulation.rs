//! Full circle: the web-proxy case study scheduled through a **live GRM
//! server thread** (availability reports + allocation RPCs over
//! channels) produces exactly the same simulation as the in-process LP
//! policy. This is the paper's architecture claim made executable: the
//! GRM service boundary adds no scheduling difference, only distribution.

use sharing_agreements::flow::Structure;
use sharing_agreements::grm::{GrmBackedPolicy, GrmServer};
use sharing_agreements::proxysim::{PolicyKind, SharingConfig, SimConfig, Simulator};
use sharing_agreements::trace::{ResponseLenDist, TraceConfig};

#[test]
fn simulation_through_live_grm_matches_in_process() {
    const N: usize = 6;
    const REQUESTS: usize = 8_000;
    let mut tcfg = TraceConfig::paper(REQUESTS, 31);
    tcfg.lengths = ResponseLenDist { tail_prob: 0.0, ..ResponseLenDist::web1996() };
    let traces = tcfg.generate(N, 3600.0);

    let agreements = Structure::Complete { n: N, share: 0.15 }.build().unwrap();
    let sharing = SharingConfig {
        agreements: agreements.clone(),
        level: N - 1,
        policy: PolicyKind::Lp,
        redirect_cost: 0.0,
        schedule: Vec::new(),
    };
    let mut cfg = SimConfig::calibrated(N, REQUESTS, 0.105, 1.04);
    cfg.epoch = 60.0;
    cfg.threshold_epochs = 1.0;
    cfg = cfg.with_sharing(sharing);

    // In-process LP.
    let local = Simulator::new(cfg.clone()).unwrap().run(&traces).unwrap();

    // Through the GRM service boundary.
    let grm = GrmServer::spawn(agreements, N - 1);
    let sim = Simulator::with_policy(cfg, Box::new(GrmBackedPolicy::new(grm.handle()))).unwrap();
    let remote = sim.run(&traces).unwrap();
    grm.shutdown();

    assert!(remote.redirected > 0, "sharing actually happened");
    assert_eq!(local.served, remote.served);
    assert_eq!(local.redirected, remote.redirected);
    assert_eq!(local.consultations, remote.consultations);
    assert!(
        (local.total_wait - remote.total_wait).abs() < 1e-6,
        "waits diverged: local {} vs GRM {}",
        local.total_wait,
        remote.total_wait
    );
}

#[test]
fn with_policy_requires_sharing_config() {
    let cfg = SimConfig::calibrated(2, 100, 0.1, 1.0);
    let grm = GrmServer::spawn(Structure::Complete { n: 2, share: 0.5 }.build().unwrap(), 1);
    let res = Simulator::with_policy(cfg, Box::new(GrmBackedPolicy::new(grm.handle())));
    assert!(res.is_err());
    grm.shutdown();
}
