//! Full circle: the web-proxy case study scheduled through a **live GRM
//! server thread** (availability reports + allocation RPCs over
//! channels) produces exactly the same simulation as the in-process LP
//! policy. This is the paper's architecture claim made executable: the
//! GRM service boundary adds no scheduling difference, only distribution.
//!
//! The same scenario also pins the telemetry plane's overhead contract:
//! threading an explicit no-op sink through the whole stack is
//! bit-identical to not wiring telemetry at all, and attaching a live
//! recorder observes the run without changing a single result.

use sharing_agreements::flow::Structure;
use sharing_agreements::grm::{GrmBackedPolicy, GrmServer};
use sharing_agreements::proxysim::{PolicyKind, SharingConfig, SimConfig, Simulator};
use sharing_agreements::telemetry::{HistKind, Telemetry, DEFAULT_EVENT_CAPACITY};
use sharing_agreements::trace::{ProxyTrace, ResponseLenDist, TraceConfig};

const N: usize = 6;
const REQUESTS: usize = 8_000;

fn scenario() -> (Vec<ProxyTrace>, SimConfig) {
    let mut tcfg = TraceConfig::paper(REQUESTS, 31);
    tcfg.lengths = ResponseLenDist { tail_prob: 0.0, ..ResponseLenDist::web1996() };
    let traces = tcfg.generate(N, 3600.0);

    let agreements = Structure::Complete { n: N, share: 0.15 }.build().unwrap();
    let sharing = SharingConfig {
        agreements,
        level: N - 1,
        policy: PolicyKind::Lp,
        redirect_cost: 0.0,
        schedule: Vec::new(),
    };
    let mut cfg = SimConfig::calibrated(N, REQUESTS, 0.105, 1.04);
    cfg.epoch = 60.0;
    cfg.threshold_epochs = 1.0;
    (traces, cfg.with_sharing(sharing))
}

#[test]
fn simulation_through_live_grm_matches_in_process() {
    let (traces, cfg) = scenario();
    let agreements = cfg.sharing.as_ref().unwrap().agreements.clone();

    // In-process LP.
    let local = Simulator::new(cfg.clone()).unwrap().run(&traces).unwrap();

    // Through the GRM service boundary.
    let grm = GrmServer::spawn(agreements, N - 1);
    let sim = Simulator::with_policy(cfg, Box::new(GrmBackedPolicy::new(grm.handle()))).unwrap();
    let remote = sim.run(&traces).unwrap();
    grm.shutdown();

    assert!(remote.redirected > 0, "sharing actually happened");
    assert_eq!(local.served, remote.served);
    assert_eq!(local.redirected, remote.redirected);
    assert_eq!(local.consultations, remote.consultations);
    assert!(
        (local.total_wait - remote.total_wait).abs() < 1e-6,
        "waits diverged: local {} vs GRM {}",
        local.total_wait,
        remote.total_wait
    );
}

#[test]
fn with_policy_requires_sharing_config() {
    let cfg = SimConfig::calibrated(2, 100, 0.1, 1.0);
    let grm = GrmServer::spawn(Structure::Complete { n: 2, share: 0.5 }.build().unwrap(), 1);
    let res = Simulator::with_policy(cfg, Box::new(GrmBackedPolicy::new(grm.handle())));
    assert!(res.is_err());
    grm.shutdown();
}

/// The telemetry overhead contract, executable: an explicitly attached
/// no-op sink is **bit-identical** to never wiring telemetry (same
/// counters, `f64` results equal to the bit), and a live recorder is
/// purely observational — identical results, plus a populated snapshot.
#[test]
fn noop_telemetry_is_bit_identical() {
    let (traces, cfg) = scenario();
    let agreements = cfg.sharing.as_ref().unwrap().agreements.clone();

    // Baseline: telemetry never mentioned anywhere.
    let grm = GrmServer::spawn(agreements.clone(), N - 1);
    let sim =
        Simulator::with_policy(cfg.clone(), Box::new(GrmBackedPolicy::new(grm.handle()))).unwrap();
    let plain = sim.run(&traces).unwrap();
    let plain_stats = grm.handle().stats().unwrap();
    grm.shutdown();

    // The disabled sink threaded through the GRM server, incremental
    // flow, solver, and simulator.
    let grm = GrmServer::spawn_with_telemetry(agreements.clone(), N - 1, Telemetry::default());
    let mut sim =
        Simulator::with_policy(cfg.clone(), Box::new(GrmBackedPolicy::new(grm.handle()))).unwrap();
    sim.set_telemetry(Telemetry::default());
    let disabled = sim.run(&traces).unwrap();
    let disabled_stats = grm.handle().stats().unwrap();
    grm.shutdown();

    assert_eq!(plain.served, disabled.served);
    assert_eq!(plain.redirected, disabled.redirected);
    assert_eq!(plain.consultations, disabled.consultations);
    assert_eq!(
        plain.total_wait.to_bits(),
        disabled.total_wait.to_bits(),
        "no-op sink perturbed total_wait: {} vs {}",
        plain.total_wait,
        disabled.total_wait
    );
    assert_eq!(plain_stats, disabled_stats, "no-op sink perturbed GRM stats");

    // A live recorder watches the identical run.
    let (telemetry, recorder) = Telemetry::recorder(DEFAULT_EVENT_CAPACITY);
    let grm = GrmServer::spawn_with_telemetry(agreements, N - 1, telemetry.clone());
    let mut sim =
        Simulator::with_policy(cfg, Box::new(GrmBackedPolicy::new(grm.handle()))).unwrap();
    sim.set_telemetry(telemetry);
    let recorded = sim.run(&traces).unwrap();
    let recorded_stats = grm.handle().stats().unwrap();
    grm.shutdown();

    assert_eq!(plain.served, recorded.served);
    assert_eq!(plain.redirected, recorded.redirected);
    assert_eq!(plain.consultations, recorded.consultations);
    assert_eq!(plain.total_wait.to_bits(), recorded.total_wait.to_bits());
    assert_eq!(plain_stats, recorded_stats, "recording perturbed GRM stats");

    let snap = recorder.snapshot();
    assert!(snap.counter("grm.requests") > 0, "recorder saw GRM traffic");
    assert!(snap.counter("proxysim.consultations") > 0, "recorder saw epochs");
    let hist = snap.histogram(HistKind::RequestLatencySeconds).expect("latency histogram");
    assert!(hist.count > 0, "request latency was timed");
}
