//! Chaos harness for the GRM/LRM federation: seeded fault schedules
//! (drop, duplication, delay/reorder, server crash) against the retrying
//! idempotent clients and degraded-mode LRMs, with invariants checked
//! after the network heals.
//!
//! Post-heal invariants, per scenario:
//!
//! 1. **Pool conservation** — units credited to the federation equal the
//!    units still pooled plus the units actually taken by fulfilments.
//! 2. **At-most-once settlement (no double grant)** — every intent the
//!    clients observed as granted (remotely or in degraded mode) settles
//!    in the GRM's books exactly once; the books may exceed that only by
//!    "lost" intents (retries exhausted with no observable outcome),
//!    never by duplicated settlement of an observed one.
//! 3. **Availability convergence** — after reconciliation the GRM's
//!    availability view equals the LRMs' authoritative pools.
//! 4. **Lease hygiene** — silent LRMs are zeroed once their lease
//!    lapses, and a re-report resurrects them (exercised in the crash
//!    and lease scenarios).
//!
//! Every schedule is a pure function of (seed, fault mix, link name,
//! message index): a failure here is reproducible from the seed printed
//! in the assertion message.

use agreements_faults::{ChaosClock, FaultMix, FaultPlane};
use agreements_flow::{AgreementMatrix, PartitionOptions};
use agreements_grm::multilevel::TwoLevelGrm;
use agreements_grm::recovery::AgreementJournal;
use agreements_grm::resilient::{ResilientGrmClient, RetryPolicy};
use agreements_grm::server::GrmServer;
use agreements_grm::{GrmError, Lrm};
use agreements_sched::SchedError;
use rand::prelude::*;

const SEEDS: [u64; 8] = [2, 3, 5, 8, 13, 21, 34, 55];
const N: usize = 3;
const POOL: f64 = 20.0;
const STEPS: usize = 30;
const EPS: f64 = 1e-6;

fn complete(n: usize, share: f64) -> AgreementMatrix {
    let mut s = AgreementMatrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s.set(i, j, share).unwrap();
            }
        }
    }
    s
}

/// Client-side ledger of what each intent was observed to do.
#[derive(Default)]
struct Ledger {
    /// Units of grants the GRM confirmed to the client.
    remote_units: f64,
    /// Units granted locally while degraded (journalled for replay).
    degraded_units: f64,
    /// Units of intents with no observable outcome (possible zombie
    /// grants server-side): slack for the settlement upper bound.
    lost_units: f64,
    /// Units actually deducted from pools by fulfilments.
    taken_units: f64,
    rejected: usize,
}

/// Drive a seeded workload through `lrms`/`clients`, recording outcomes.
fn drive(
    lrms: &[Lrm],
    clients: &[ResilientGrmClient],
    rng: &mut StdRng,
    steps: usize,
    ledger: &mut Ledger,
) {
    for _ in 0..steps {
        let i = (rng.gen::<u64>() % lrms.len() as u64) as usize;
        let amount = 0.5 + rng.gen::<f64>() * 1.5;
        match lrms[i].submit_or_degrade(&clients[i], amount) {
            Ok((alloc, degraded)) => {
                if degraded {
                    ledger.degraded_units += alloc.amount;
                } else {
                    ledger.remote_units += alloc.amount;
                }
                for lrm in lrms {
                    ledger.taken_units += lrm.fulfil_local(&alloc);
                    // Best-effort view refresh; drops just leave it stale.
                    let _ = lrm.report();
                }
            }
            Err(GrmError::Sched(SchedError::InsufficientCapacity { .. })) => {
                // Either a genuine rejection (settles as 0 units) or a
                // degrade-refusal whose id might still have landed
                // server-side: count as settlement slack either way.
                ledger.lost_units += amount;
                ledger.rejected += 1;
            }
            Err(e) => panic!("unexpected workload error: {e}"),
        }
    }
}

fn check_conservation(lrms: &[Lrm], ledger: &Ledger, ctx: &str) {
    let pooled: f64 = lrms.iter().map(Lrm::available).sum();
    let credited = POOL * N as f64;
    assert!(
        (pooled + ledger.taken_units - credited).abs() < EPS,
        "{ctx}: pool conservation broken: pooled {pooled} + taken {} != credited {credited}",
        ledger.taken_units,
    );
}

/// One full lossy-network scenario: chaos workload → heal → reconcile →
/// invariants. The server survives throughout; only the client link is
/// faulty.
fn run_lossy_scenario(seed: u64, mix: FaultMix, label: &str) -> agreements_grm::GrmStats {
    let plane = FaultPlane::new(seed, mix);
    let grm = GrmServer::spawn_chaotic(complete(N, 0.6), 2, &plane, "grm");
    let lrms: Vec<Lrm> = (0..N).map(|i| Lrm::new(i, POOL, grm.handle()).unwrap()).collect();
    let clients: Vec<ResilientGrmClient> = (0..N)
        .map(|i| ResilientGrmClient::new(grm.handle(), i as u64, RetryPolicy::aggressive()))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7));
    let mut ledger = Ledger::default();
    drive(&lrms, &clients, &mut rng, STEPS, &mut ledger);

    // The network recovers; every LRM reconciles its degraded backlog.
    plane.heal();
    for (lrm, client) in lrms.iter().zip(&clients) {
        lrm.reconcile(client).unwrap_or_else(|e| panic!("{label} seed {seed}: reconcile: {e}"));
        assert_eq!(lrm.degraded_backlog(), 0, "{label} seed {seed}: backlog must settle");
    }

    let ctx = format!("{label} seed {seed}");
    check_conservation(&lrms, &ledger, &ctx);

    let stats = grm.handle().stats().unwrap();
    // At-most-once settlement: observed grants settle exactly once; only
    // lost intents may inflate the books beyond that.
    let settled = stats.granted_units + stats.journaled_units;
    let observed = ledger.remote_units + ledger.degraded_units;
    assert!(
        settled >= observed - EPS,
        "{ctx}: books lost an observed grant: settled {settled} < observed {observed}"
    );
    assert!(
        settled <= observed + ledger.lost_units + EPS,
        "{ctx}: double settlement: settled {settled} > observed {observed} + lost {}",
        ledger.lost_units,
    );

    // Availability convergence: the healed link is FIFO and reconcile
    // re-reported every pool, so the GRM's view matches pool truth.
    let avail = grm.handle().availability().unwrap();
    for (i, lrm) in lrms.iter().enumerate() {
        assert!(
            (avail[i] - lrm.available()).abs() < EPS,
            "{ctx}: availability[{i}] = {} diverged from pool {}",
            avail[i],
            lrm.available(),
        );
    }
    grm.shutdown();
    stats
}

#[test]
fn chaos_drop_heavy_matrix() {
    for seed in SEEDS {
        run_lossy_scenario(seed, FaultMix::drop_heavy(), "drop_heavy");
    }
}

#[test]
fn chaos_dup_heavy_matrix() {
    let mut dedup_hits = 0u64;
    for seed in SEEDS {
        dedup_hits +=
            run_lossy_scenario(seed, FaultMix::dup_heavy(), "dup_heavy").duplicate_requests;
    }
    // An at-least-once transport must actually exercise the dedup window
    // somewhere in the matrix; otherwise the scenario is vacuous.
    assert!(dedup_hits > 0, "dup-heavy matrix never hit the dedup window");
}

#[test]
fn chaos_delay_heavy_matrix() {
    for seed in SEEDS {
        run_lossy_scenario(seed, FaultMix::delay_heavy(), "delay_heavy");
    }
}

#[test]
fn chaos_mixed_matrix() {
    for seed in SEEDS {
        run_lossy_scenario(seed, FaultMix::mixed(), "mixed");
    }
}

#[test]
fn chaos_severe_loss_forces_degraded_grants() {
    // Loss heavy enough that some intents exhaust their retry budget:
    // degraded mode and journal replay must carry the federation.
    let severe = FaultMix { drop: 0.65, ..FaultMix::none() };
    let mut journaled = 0u64;
    for seed in SEEDS {
        journaled += run_lossy_scenario(seed, severe, "severe_loss").journaled_grants;
    }
    assert!(journaled > 0, "severe-loss matrix never degraded: chaos too gentle");
}

/// GRM crash mid-workload: clients keep degrading against the dead
/// server, then a cold standby is rebuilt from the agreement journal and
/// the LRMs' re-reports + replayed grants.
#[test]
fn chaos_crash_failover_matrix() {
    for seed in SEEDS {
        let plane = FaultPlane::new(seed, FaultMix::mixed());
        let matrix = complete(N, 0.6);
        let grm = GrmServer::spawn_chaotic(matrix.clone(), 2, &plane, "grm");
        let journal = AgreementJournal::new(matrix, 2);
        let lrms: Vec<Lrm> = (0..N).map(|i| Lrm::new(i, POOL, grm.handle()).unwrap()).collect();
        let clients: Vec<ResilientGrmClient> = (0..N)
            .map(|i| ResilientGrmClient::new(grm.handle(), i as u64, RetryPolicy::aggressive()))
            .collect();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(131).wrapping_add(17));
        let mut ledger = Ledger::default();

        // Phase 1: lossy network, live server.
        drive(&lrms, &clients, &mut rng, STEPS / 2, &mut ledger);

        // The GRM dies; its in-memory books die with it.
        grm.crash();
        let pre_crash = ledger.degraded_units;

        // Phase 2: every intent must degrade (or refuse on a dry pool).
        drive(&lrms, &clients, &mut rng, STEPS / 3, &mut ledger);
        assert!(
            ledger.degraded_units > pre_crash,
            "crash seed {seed}: no degraded grants while the GRM was down"
        );

        // Failover: heal the network, rebuild a standby from the journal,
        // rebind every client, reconcile every LRM.
        plane.heal();
        let standby = journal.respawn().unwrap();
        for client in &clients {
            client.rebind(standby.handle());
        }
        for (lrm, client) in lrms.iter().zip(&clients) {
            // The LRMs only know the standby through the rebound clients;
            // their own handles still point at the dead server, so
            // reconcile carries both the re-report and the replay.
            lrm.reconcile(client).unwrap_or_else(|e| panic!("crash seed {seed}: reconcile: {e}"));
            assert_eq!(lrm.degraded_backlog(), 0, "crash seed {seed}");
        }

        let ctx = format!("crash seed {seed}");
        check_conservation(&lrms, &ledger, &ctx);

        // The standby was born empty: its books hold exactly the replayed
        // degraded grants (phase-1 remote grants died with the old GRM).
        let stats = standby.handle().stats().unwrap();
        assert!(
            (stats.journaled_units - ledger.degraded_units).abs() < EPS,
            "{ctx}: standby books {} != degraded grants {}",
            stats.journaled_units,
            ledger.degraded_units,
        );

        // Convergence: the standby's availability equals pool truth.
        let avail = standby.handle().availability().unwrap();
        for (i, lrm) in lrms.iter().enumerate() {
            assert!(
                (avail[i] - lrm.available()).abs() < EPS,
                "{ctx}: standby availability[{i}] diverged"
            );
        }

        // The standby serves fresh decisions over the recovered state.
        let post = clients[0].request(0, 1.0);
        assert!(post.is_ok(), "{ctx}: standby refused a routine request: {post:?}");
        standby.shutdown();
    }
}

/// A *partitioned* federation under chaos: [`TwoLevelGrm`] built by the
/// structure-aware auto-partitioner over a block economy, every group
/// GRM's link faulty (drop/dup/delay mix). LRMs hold the authoritative
/// per-principal pools and resilient idempotent clients carry the
/// traffic, both bound to their group GRM through the partition maps.
/// Post-heal, per group: pool conservation, at-most-once settlement,
/// availability convergence — and the healed federation must still route
/// an overflow request across groups via the coarse LP.
#[test]
fn chaos_partitioned_federation_matrix() {
    const GROUPS: usize = 4;
    const SIZE: usize = 3;
    let n = GROUPS * SIZE;
    let mut s = AgreementMatrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s.set(i, j, if i / SIZE == j / SIZE { 1.0 } else { 0.2 }).unwrap();
            }
        }
    }

    for seed in SEEDS {
        let plane = FaultPlane::new(seed, FaultMix::mixed());
        let fed = TwoLevelGrm::new_auto_chaotic(&s, &PartitionOptions::default(), 1, &plane)
            .unwrap_or_else(|e| panic!("partitioned seed {seed}: build: {e}"));
        assert_eq!(fed.num_groups(), GROUPS, "auto partition must recover the blocks");
        for (g, members) in fed.groups().iter().enumerate() {
            for &m in members {
                assert_eq!(m / SIZE, g, "principal {m} landed in group {g}");
            }
        }

        // Per-group authoritative pools and clients, wired through the
        // auto-derived partition maps.
        let lrms: Vec<Vec<Lrm>> = (0..GROUPS)
            .map(|g| (0..SIZE).map(|li| Lrm::new(li, POOL, fed.group_handle(g)).unwrap()).collect())
            .collect();
        let clients: Vec<Vec<ResilientGrmClient>> = fed
            .groups()
            .iter()
            .enumerate()
            .map(|(g, members)| {
                members
                    .iter()
                    .map(|&p| {
                        ResilientGrmClient::new(
                            fed.group_handle(g),
                            p as u64,
                            RetryPolicy::aggressive(),
                        )
                    })
                    .collect()
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(271).wrapping_add(9));
        let mut ledgers: Vec<Ledger> = (0..GROUPS).map(|_| Ledger::default()).collect();
        for _ in 0..STEPS {
            let p = (rng.gen::<u64>() % n as u64) as usize;
            let (g, li) = (fed.group_of(p), fed.local_index(p));
            let amount = 0.5 + rng.gen::<f64>() * 1.5;
            match lrms[g][li].submit_or_degrade(&clients[g][li], amount) {
                Ok((alloc, degraded)) => {
                    if degraded {
                        ledgers[g].degraded_units += alloc.amount;
                    } else {
                        ledgers[g].remote_units += alloc.amount;
                    }
                    for lrm in &lrms[g] {
                        ledgers[g].taken_units += lrm.fulfil_local(&alloc);
                        let _ = lrm.report();
                    }
                }
                Err(GrmError::Sched(SchedError::InsufficientCapacity { .. })) => {
                    ledgers[g].lost_units += amount;
                    ledgers[g].rejected += 1;
                }
                Err(e) => panic!("partitioned seed {seed}: workload: {e}"),
            }
        }

        plane.heal();
        for (g, group) in lrms.iter().enumerate() {
            for (lrm, client) in group.iter().zip(&clients[g]) {
                lrm.reconcile(client)
                    .unwrap_or_else(|e| panic!("partitioned seed {seed}: reconcile: {e}"));
                assert_eq!(lrm.degraded_backlog(), 0, "partitioned seed {seed}: backlog");
            }
        }

        for (g, group) in lrms.iter().enumerate() {
            let ctx = format!("partitioned seed {seed} group {g}");
            // Pool conservation, on the authoritative LRM side.
            let pooled: f64 = group.iter().map(Lrm::available).sum();
            let credited = POOL * SIZE as f64;
            assert!(
                (pooled + ledgers[g].taken_units - credited).abs() < EPS,
                "{ctx}: pooled {pooled} + taken {} != credited {credited}",
                ledgers[g].taken_units,
            );
            // At-most-once settlement in the group GRM's books.
            let stats = fed.group_handle(g).stats().unwrap();
            let settled = stats.granted_units + stats.journaled_units;
            let observed = ledgers[g].remote_units + ledgers[g].degraded_units;
            assert!(
                settled >= observed - EPS,
                "{ctx}: books lost a grant: settled {settled} < observed {observed}"
            );
            assert!(
                settled <= observed + ledgers[g].lost_units + EPS,
                "{ctx}: double settlement: settled {settled} > observed {observed} + lost {}",
                ledgers[g].lost_units,
            );
            // Availability convergence per group GRM.
            let avail = fed.group_handle(g).availability().unwrap();
            for (li, lrm) in group.iter().enumerate() {
                assert!(
                    (avail[li] - lrm.available()).abs() < EPS,
                    "{ctx}: availability[{li}] = {} diverged from pool {}",
                    avail[li],
                    lrm.available(),
                );
            }
        }

        // The healed federation still shares across groups: an overflow
        // request from principal 0 must draw on neighbour groups through
        // the coarse inter-group LP over the auto-derived aggregates.
        let home: f64 = fed.group_handle(0).availability().unwrap().iter().sum();
        let others: f64 = (1..GROUPS)
            .map(|g| fed.group_handle(g).availability().unwrap().iter().sum::<f64>())
            .sum();
        if others > 1.0 {
            let amount = home + 0.2 * others * 0.75;
            let alloc = fed
                .request(0, amount)
                .unwrap_or_else(|e| panic!("partitioned seed {seed}: overflow request: {e}"));
            let drawn: f64 = alloc.draws.iter().sum();
            assert!(
                (drawn - amount).abs() < EPS,
                "partitioned seed {seed}: overflow drew {drawn}, granted {amount}"
            );
            let cross: f64 = alloc.draws[SIZE..].iter().sum();
            assert!(cross > EPS, "partitioned seed {seed}: overflow never left the home group");
        }
        fed.shutdown();
    }
}

/// Lease-driven failover: an LRM that goes silent is zeroed out of the
/// availability view once its lease lapses, and resurrected by its next
/// report — under a logical chaos clock, so expiry is schedule-exact.
#[test]
fn chaos_lease_expiry_zeroes_silent_lrms() {
    for seed in SEEDS {
        let grm = GrmServer::spawn(complete(N, 0.6), 2);
        let lrms: Vec<Lrm> = (0..N).map(|i| Lrm::new(i, POOL, grm.handle()).unwrap()).collect();
        let mut clock = ChaosClock::with_jitter(0, seed, 3);
        let lease = 10;

        // Everybody reports at t0; ticks stay inside the lease.
        grm.handle().tick(clock.advance(lease / 2), lease).unwrap();
        let avail = grm.handle().availability().unwrap();
        assert!(avail.iter().all(|&v| (v - POOL).abs() < EPS), "seed {seed}: premature expiry");

        // LRM 2 goes silent; the others keep reporting as time passes.
        for _ in 0..4 {
            let now = clock.advance(lease / 2 + 1);
            lrms[0].report().unwrap();
            lrms[1].report().unwrap();
            grm.handle().tick(now, lease).unwrap();
        }
        let avail = grm.handle().availability().unwrap();
        assert!((avail[0] - POOL).abs() < EPS, "seed {seed}: live LRM 0 expired");
        assert!((avail[1] - POOL).abs() < EPS, "seed {seed}: live LRM 1 expired");
        assert_eq!(avail[2], 0.0, "seed {seed}: silent LRM 2 must be zeroed");

        // The silent LRM comes back: one report resurrects it.
        lrms[2].report().unwrap();
        let avail = grm.handle().availability().unwrap();
        assert!((avail[2] - POOL).abs() < EPS, "seed {seed}: re-report must resurrect");
        grm.shutdown();
    }
}
