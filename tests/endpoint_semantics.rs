//! Ablation: the two readings of "end-point enforcement" for the
//! Figure 13 baseline.
//!
//! - **Availability quota** (shipped default): an end point accepts at
//!   most its agreement share of its currently *available* resources —
//!   relative agreements are defined over available resources (§2.1).
//!   Overflow aimed at busy neighbours bounces; the LP's global view
//!   wins at the peak.
//! - **Capacity quota** (`ProportionalPolicy::with_endpoint_caps`): an
//!   end point accepts its share of raw *capacity* regardless of load.
//!   Redirected work queues at busy owners, which then shed their own
//!   work onward — load diffuses around the ring and the LP's edge
//!   disappears. This reading does not reproduce the paper's Figure 13,
//!   which is why it is not the default.

use sharing_agreements::flow::{AgreementMatrix, TransitiveFlow};
use sharing_agreements::sched::{AllocationPolicy, LpPolicy, ProportionalPolicy, SystemState};

fn distance_decay(n: usize) -> AgreementMatrix {
    sharing_agreements::flow::Structure::figure13(n).build().unwrap()
}

/// Availability quotas bounce overflow aimed at drained owners.
#[test]
fn availability_quota_bounces_at_busy_owners() {
    let n = 10;
    let s = distance_decay(n);
    let flow = TransitiveFlow::compute(&s, n - 1);
    // Requester 0 and its near neighbours (the big shares) are drained;
    // distant owners are idle.
    let mut avail = vec![0.0; n];
    for (i, a) in avail.iter_mut().enumerate() {
        *a = if i == 0 || (1..=2).contains(&i) || (8..=9).contains(&i) { 0.0 } else { 50.0 };
    }
    let state = SystemState::new(flow, None, avail).unwrap();

    let availability_based = ProportionalPolicy::new(s.clone());
    let placed = availability_based.allocate_up_to(&state, 0, 20.0).unwrap();
    // Shares: 1,2,8,9 are the 20%/10% neighbours but drained -> nothing
    // from them.
    assert_eq!(placed.draws[1], 0.0);
    assert_eq!(placed.draws[9], 0.0);
    assert!(placed.amount < 20.0, "most of the proportional split bounced");

    let capacity_based = ProportionalPolicy::new(s).with_endpoint_caps(vec![50.0; n]);
    let blind = capacity_based.allocate_up_to(&state, 0, 20.0).unwrap();
    assert!(blind.draws[1] > 0.0, "blind quota accepts at the drained owner");
    assert!(blind.amount > placed.amount);
}

/// The LP places the whole request in the same scenario by finding the
/// distant idle owners the proportional split under-weights.
#[test]
fn lp_outplaces_availability_quota() {
    let n = 10;
    let s = distance_decay(n);
    let flow = TransitiveFlow::compute(&s, n - 1);
    let mut avail = vec![0.0; n];
    for (i, a) in avail.iter_mut().enumerate() {
        *a = if i == 0 || (1..=2).contains(&i) || (8..=9).contains(&i) { 0.0 } else { 60.0 };
    }
    let state = SystemState::new(flow, None, avail).unwrap();

    let lp = LpPolicy::reduced().allocate_up_to(&state, 0, 20.0).unwrap();
    let ep = ProportionalPolicy::new(s).allocate_up_to(&state, 0, 20.0).unwrap();
    assert!(
        lp.amount > ep.amount + 1.0,
        "lp placed {:.2}, endpoint placed {:.2}",
        lp.amount,
        ep.amount
    );
}

/// Both readings coincide when every owner is fully idle.
#[test]
fn quotas_coincide_at_full_idleness() {
    let n = 4;
    let mut s = AgreementMatrix::zeros(n);
    for k in 1..n {
        s.set(k, 0, 0.25).unwrap();
    }
    let flow = TransitiveFlow::compute(&s, 1);
    let caps = vec![40.0; n];
    let state = SystemState::new(flow, None, caps.clone()).unwrap();
    let avail_based = ProportionalPolicy::new(s.clone());
    let cap_based = ProportionalPolicy::new(s).with_endpoint_caps(caps);
    let a = avail_based.allocate(&state, 0, 30.0).unwrap();
    let b = cap_based.allocate(&state, 0, 30.0).unwrap();
    for i in 0..n {
        assert!(
            (a.draws[i] - b.draws[i]).abs() < 1e-9,
            "draws differ at {i}: {:?} vs {:?}",
            a.draws,
            b.draws
        );
    }
}
