//! Scaled-down regression tests for the paper's headline shapes. These
//! run the real simulator at a reduced volume (same calibrated peak
//! utilization), so they assert orderings and rough factors rather than
//! absolute seconds.

use sharing_agreements::flow::{PartitionOptions, Structure};
use sharing_agreements::proxysim::{PolicyKind, SharingConfig, SimConfig, SimResult, Simulator};
use sharing_agreements::sched::hierarchy::HierarchicalScheduler;
use sharing_agreements::sched::SchedError;
use sharing_agreements::trace::{ProxyTrace, ResponseLenDist, ScaleConfig, TraceConfig};

const N: usize = 10;
const REQUESTS: usize = 20_000;
const HOUR: f64 = 3600.0;

/// Test workload: the diurnal shape without the Pareto tail, so that at
/// this reduced volume single heavy requests don't dominate the waits and
/// per-consultation entitlements (share × capacity × epoch) still exceed
/// a typical request's demand. The full-scale experiments keep the tail.
fn traces(gap: f64) -> Vec<ProxyTrace> {
    let mut cfg = TraceConfig::paper(REQUESTS, 99);
    cfg.lengths = ResponseLenDist { tail_prob: 0.0, ..ResponseLenDist::web1996() };
    cfg.generate(N, gap)
}

fn base() -> SimConfig {
    let mut cfg = SimConfig::calibrated(N, REQUESTS, 0.105, 1.05);
    cfg.epoch = 60.0;
    cfg.threshold_epochs = 1.0;
    cfg
}

fn run(sharing: Option<SharingConfig>, gap: f64) -> SimResult {
    let mut cfg = base();
    if let Some(s) = sharing {
        cfg = cfg.with_sharing(s);
    }
    Simulator::new(cfg).unwrap().run(&traces(gap)).unwrap()
}

fn complete_sharing(level: usize) -> SharingConfig {
    SharingConfig {
        agreements: Structure::Complete { n: N, share: 0.10 }.build().unwrap(),
        level,
        policy: PolicyKind::Lp,
        redirect_cost: 0.0,
        schedule: Vec::new(),
    }
}

fn loop_sharing(skip: usize, level: usize) -> SharingConfig {
    SharingConfig {
        agreements: Structure::Loop { n: N, share: 0.80, skip }.build().unwrap(),
        level,
        policy: PolicyKind::Lp,
        redirect_cost: 0.0,
        schedule: Vec::new(),
    }
}

/// The plotted "particular ISP" (see experiments crate): proxy 9, whose
/// loop donor chain does not wrap the ring.
const P: usize = 9;

/// Figure 5/6: the diurnal peak exists without sharing and collapses by
/// a large factor with skewed sharing.
#[test]
fn sharing_with_skew_collapses_the_peak() {
    let alone = run(None, HOUR);
    let shared = run(Some(complete_sharing(N - 1)), HOUR);
    assert!(alone.is_stable() && shared.is_stable());
    let peak_alone = alone.proxy_peak_slot_avg_wait(P);
    let peak_shared = shared.proxy_peak_slot_avg_wait(P);
    assert!(
        peak_alone > 8.0 * peak_shared.max(0.1),
        "peak {peak_alone:.1} vs shared {peak_shared:.1}"
    );
    assert!(shared.redirected > 0);
}

/// Figure 6: zero skew means no idle partners, so sharing changes nothing.
#[test]
fn zero_skew_sharing_is_inert() {
    let alone = run(None, 0.0);
    let shared = run(Some(complete_sharing(N - 1)), 0.0);
    assert!((alone.avg_wait() - shared.avg_wait()).abs() < 1e-6);
    assert_eq!(shared.redirected, 0);
}

/// Figures 9–11: at transitivity level 1, the loop with a closer (more
/// load-correlated) neighbour waits longer; higher levels converge.
#[test]
fn loop_skip_ordering_at_level_one() {
    let skip1 = run(Some(loop_sharing(1, 1)), HOUR);
    let skip3 = run(Some(loop_sharing(3, 1)), HOUR);
    let skip7 = run(Some(loop_sharing(7, 1)), HOUR);
    let (w1, w3, w7) = (skip1.proxy_avg_wait(P), skip3.proxy_avg_wait(P), skip7.proxy_avg_wait(P));
    assert!(w1 > w3, "skip1 {w1:.2} should exceed skip3 {w3:.2}");
    assert!(w3 > w7 * 0.8, "skip3 {w3:.2} vs skip7 {w7:.2}");
    assert!(w1 > 3.0 * w7, "spread should be large: {w1:.2} vs {w7:.2}");
}

/// Figures 9–11: adding transitivity levels rescues the tight loop.
#[test]
fn transitivity_rescues_the_tight_loop() {
    let l1 = run(Some(loop_sharing(1, 1)), HOUR);
    let l9 = run(Some(loop_sharing(1, 9)), HOUR);
    assert!(
        l1.proxy_avg_wait(P) > 3.0 * l9.proxy_avg_wait(P),
        "level 1 {:.2} vs level 9 {:.2}",
        l1.proxy_avg_wait(P),
        l9.proxy_avg_wait(P)
    );
}

/// Figure 12: the paper's redirect-cost regime — few requests redirected,
/// so a 0.2 s overhead has modest impact.
#[test]
fn redirect_cost_impact_is_modest() {
    let free = run(Some(complete_sharing(N - 1)), HOUR);
    let mut costly_cfg = complete_sharing(N - 1);
    costly_cfg.redirect_cost = 0.2;
    let costly = run(Some(costly_cfg), HOUR);
    // "Few" is a regime, not a constant: the exact fraction moves with
    // the RNG stream backing the trace (~3% with the vendored rand).
    assert!(free.redirect_fraction() < 0.05, "{}", free.redirect_fraction());
    // Near saturation (peak rho 1.05) waits amplify small perturbations,
    // so the tolerable ratio is generous; the real claim is "nowhere near
    // the order-of-magnitude loss of not sharing at all".
    assert!(
        costly.proxy_avg_wait(P) < 2.0 * free.proxy_avg_wait(P).max(0.5),
        "cost 0.2: {:.2} vs free {:.2}",
        costly.proxy_avg_wait(P),
        free.proxy_avg_wait(P)
    );
}

/// FNV-1a over f64 bit patterns: the repo's determinism fingerprint.
fn fnv_f64(acc: u64, v: f64) -> u64 {
    (acc ^ v.to_bits()).wrapping_mul(0x0000_0100_0000_01b3)
}

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Golden fingerprint of the Figure 6 series: the plotted proxy's
/// per-slot average-wait and redirect series under complete sharing must
/// reproduce bit-for-bit. Any change to the trace generator, the
/// simulator's event order, or the LP pivoting shows up here before it
/// silently moves a published figure.
#[test]
fn golden_fig06_series_checksum() {
    let shared = run(Some(complete_sharing(N - 1)), HOUR);
    let mut sum = FNV_BASIS;
    for w in shared.proxy_avg_wait_series(P) {
        sum = fnv_f64(sum, w);
    }
    for slot in &shared.proxy_slots[P] {
        sum = fnv_f64(sum, slot.redirected as f64);
    }
    assert_eq!(
        sum, 0x71ea_81b7_02f1_13b8,
        "fig06 series fingerprint drifted: got {sum:#018x} \
         (re-pin only if the change to the pipeline is intentional)"
    );
}

/// Golden fingerprint of the fixed-seed scale run at n = 100: the same
/// hourly-refresh replay the `scale` experiment binary performs, with
/// every granted draw folded into the checksum. Locks the auto
/// partitioner, the multigrid scheduler, and the workload generator
/// together end to end.
#[test]
fn golden_scale_run_checksum_at_n100() {
    const SEED: u64 = 20_000;
    let cfg = ScaleConfig::isp(100, 2_000, SEED);
    let workload = cfg.generate();
    let s = cfg.agreements().unwrap();
    let sched = HierarchicalScheduler::auto(&s, &PartitionOptions::default(), 1).unwrap();

    let base = workload.availability.clone();
    let mut avail = base.clone();
    let mut hour = 0usize;
    let (mut admitted, mut denied) = (0usize, 0usize);
    let mut sum = FNV_BASIS;
    for d in &workload.demands {
        while d.t >= (hour + 1) as f64 * HOUR {
            hour += 1;
            avail.copy_from_slice(&base);
        }
        match sched.allocate(&avail, d.requester, d.amount) {
            Ok(alloc) => {
                for (v, &dr) in avail.iter_mut().zip(&alloc.draws) {
                    *v -= dr;
                    sum = fnv_f64(sum, dr);
                }
                admitted += 1;
            }
            Err(SchedError::InsufficientCapacity { .. }) => denied += 1,
            Err(e) => panic!("scale replay failed: {e}"),
        }
    }
    assert_eq!(admitted + denied, 2_000);
    assert!(admitted > denied, "workload should be mostly admissible");
    assert_eq!(
        sum, 0x72e6_1c1e_adb4_20c1,
        "scale-run fingerprint drifted: got {sum:#018x} \
         (re-pin only if the change to the pipeline is intentional)"
    );
}

/// Figure 13: the LP scheme beats proportional end-point enforcement at
/// the peak.
#[test]
fn lp_beats_endpoint_at_peak() {
    let agreements = Structure::figure13(N).build().unwrap();
    let mk = |policy| SharingConfig {
        agreements: agreements.clone(),
        level: N - 1,
        policy,
        redirect_cost: 0.0,
        schedule: Vec::new(),
    };
    let lp = run(Some(mk(PolicyKind::Lp)), HOUR);
    let ep = run(Some(mk(PolicyKind::Proportional)), HOUR);
    assert!(
        lp.proxy_peak_slot_avg_wait(P) < ep.proxy_peak_slot_avg_wait(P),
        "lp {:.2} vs endpoint {:.2}",
        lp.proxy_peak_slot_avg_wait(P),
        ep.proxy_peak_slot_avg_wait(P)
    );
}

/// Golden fingerprints of the fixed-seed *multi-resource* scale run at
/// n = 100: the same day replay `multires_scale` performs, through the
/// lane-conjunctive [`MultiAdmission`] path, with every granted draw in
/// every lane folded into the draws checksum and every hourly epoch's
/// dominant shares and envy counts folded into the fairness checksum.
/// Locks the workload expansion, the per-lane multigrid schedulers, the
/// binding-resource attribution, and the DRF fairness series together
/// end to end. The single-resource goldens above must not move when
/// this path changes — and vice versa.
#[test]
fn golden_multires_scale_checksums_at_n100() {
    use agreements_experiments::multires::{build_admission, run_multi_day};
    use sharing_agreements::telemetry::Telemetry;
    use sharing_agreements::trace::MultiScaleConfig;

    const SEED: u64 = 20_000;
    let cfg = MultiScaleConfig::isp_multi(100, 2_000, SEED);
    let workload = cfg.generate();
    let adm = build_admission(&cfg);
    // check = true: the replay audits every epoch's fairness report and
    // per-lane conservation inline, so this golden also re-runs the
    // checker battery over the real day.
    let r = run_multi_day(&adm, &workload, &Telemetry::default(), true);

    assert_eq!(r.admitted + r.denied, 2_000);
    assert!(r.admitted > r.denied, "workload should be mostly admissible");
    assert_eq!(r.denied_by_lane.iter().sum::<usize>(), r.denied);
    assert_eq!(r.epochs.len(), 24, "one fairness epoch per hour");
    assert_eq!(
        r.draws_checksum, 0xafc6_3d73_4075_4461,
        "multires draws fingerprint drifted: got {:#018x} \
         (re-pin only if the change to the pipeline is intentional)",
        r.draws_checksum
    );
    assert_eq!(
        r.fairness_checksum, 0xa1ab_2ebc_5d15_0dbb,
        "multires fairness fingerprint drifted: got {:#018x} \
         (re-pin only if the change to the pipeline is intentional)",
        r.fairness_checksum
    );
}
