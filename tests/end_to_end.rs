//! Cross-crate integration: the ticket/currency *expression* layer and
//! the matrix/flow *enforcement* layer must tell the same story about who
//! can reach what.

use sharing_agreements::flow::{capacities, AgreementMatrix, TransitiveFlow};
use sharing_agreements::sched::{AllocationPolicy, LpPolicy, SystemState};
use sharing_agreements::ticket::{AgreementNature, Economy, PrincipalId, ResourceId};

/// Build an economy and the equivalent agreement matrix from the same
/// description: `deposits[i]` units for principal `i`, plus relative
/// sharing edges `(from, to, share)`.
fn build_both(
    deposits: &[f64],
    edges: &[(usize, usize, f64)],
) -> (Economy, ResourceId, AgreementMatrix, Vec<f64>) {
    let n = deposits.len();
    let mut eco = Economy::new();
    let r = eco.add_resource("res");
    let ps: Vec<PrincipalId> = (0..n).map(|i| eco.add_principal(&format!("P{i}"))).collect();
    for (i, &d) in deposits.iter().enumerate() {
        if d > 0.0 {
            eco.deposit_resource(eco.default_currency(ps[i]), r, d).unwrap();
        }
    }
    let mut s = AgreementMatrix::zeros(n);
    for &(i, j, share) in edges {
        eco.issue_relative(
            eco.default_currency(ps[i]),
            eco.default_currency(ps[j]),
            share * 100.0, // default face total is 100
            AgreementNature::Sharing,
        )
        .unwrap();
        s.set(i, j, share).unwrap();
    }
    (eco, r, s, deposits.to_vec())
}

/// On acyclic agreement graphs, currency gross values equal the flow
/// layer's reachable capacities: both sum, over every agreement chain,
/// the product of shares times the source deposit.
#[test]
#[allow(clippy::type_complexity)]
fn currency_values_match_flow_capacities_on_dags() {
    let cases: Vec<(Vec<f64>, Vec<(usize, usize, f64)>)> = vec![
        // Chain.
        (vec![10.0, 20.0, 5.0], vec![(0, 1, 0.5), (1, 2, 0.4)]),
        // Diamond: 0 -> {1, 2} -> 3.
        (vec![16.0, 2.0, 2.0, 1.0], vec![(0, 1, 0.25), (0, 2, 0.5), (1, 3, 0.5), (2, 3, 0.5)]),
        // Star out of 0.
        (vec![100.0, 0.0, 0.0, 0.0], vec![(0, 1, 0.2), (0, 2, 0.3), (0, 3, 0.4)]),
    ];
    for (deposits, edges) in cases {
        let n = deposits.len();
        let (eco, r, s, v) = build_both(&deposits, &edges);
        let valuation = eco.value_report(r).unwrap();
        let flow = TransitiveFlow::compute(&s, n - 1);
        let caps = capacities(&flow, None, &v);
        for i in 0..n {
            let p = PrincipalId::from_index(i);
            let cv = valuation.currency_value(eco.default_currency(p));
            let fc = caps.capacity(i);
            assert!(
                (cv - fc).abs() < 1e-9,
                "principal {i}: currency value {cv} vs flow capacity {fc} \
                 (deposits {deposits:?}, edges {edges:?})"
            );
        }
    }
}

/// The LP scheduler admits exactly what the currency layer says a
/// principal is worth.
#[test]
fn scheduler_admission_matches_currency_value() {
    let (eco, r, s, v) = build_both(&[12.0, 8.0, 0.0], &[(0, 2, 0.5), (1, 2, 0.25)]);
    let p2 = PrincipalId::from_index(2);
    let worth = eco.value_report(r).unwrap().currency_value(eco.default_currency(p2));
    assert!((worth - 8.0).abs() < 1e-9, "0.5*12 + 0.25*8");

    let flow = TransitiveFlow::compute(&s, 2);
    let state = SystemState::new(flow, None, v).unwrap();
    let policy = LpPolicy::reduced();
    // Exactly the currency value is admissible...
    let ok = policy.allocate(&state, 2, worth).unwrap();
    assert!((ok.amount - worth).abs() < 1e-9);
    // ...and a hair more is not.
    assert!(policy.allocate(&state, 2, worth + 0.01).is_err());
}

/// Revoking the agreement ticket removes the scheduler's ability to place
/// work, end to end.
#[test]
fn revocation_propagates_to_enforcement() {
    let mut eco = Economy::new();
    let r = eco.add_resource("res");
    let a = eco.add_principal("A");
    let b = eco.add_principal("B");
    let (ca, cb) = (eco.default_currency(a), eco.default_currency(b));
    eco.deposit_resource(ca, r, 10.0).unwrap();
    let ticket = eco.issue_relative(ca, cb, 50.0, AgreementNature::Sharing).unwrap();
    assert!((eco.principal_capacity(b, r).unwrap() - 5.0).abs() < 1e-9);

    eco.revoke(ticket).unwrap();
    assert_eq!(eco.principal_capacity(b, r).unwrap(), 0.0);

    // Mirror the post-revocation economy as a matrix: no edges.
    let s = AgreementMatrix::zeros(2);
    let flow = TransitiveFlow::compute(&s, 1);
    let state = SystemState::new(flow, None, vec![10.0, 0.0]).unwrap();
    assert!(LpPolicy::reduced().allocate(&state, 1, 1.0).is_err());
}

/// Absolute agreements take the absolute-matrix path end to end and
/// saturate at the owner's availability in both layers.
#[test]
fn absolute_agreements_agree_across_layers() {
    use sharing_agreements::flow::AbsoluteMatrix;
    let mut eco = Economy::new();
    let r = eco.add_resource("res");
    let a = eco.add_principal("A");
    let b = eco.add_principal("B");
    let ca = eco.default_currency(a);
    eco.deposit_resource(ca, r, 4.0).unwrap();
    eco.issue_absolute(ca, eco.default_currency(b), r, 7.0, AgreementNature::Sharing).unwrap();
    // Ticket layer: B's currency is worth the full face 7 (tickets record
    // rights; enforcement saturates at allocation time).
    let worth = eco.value_report(r).unwrap().currency_value(eco.default_currency(b));
    assert!((worth - 7.0).abs() < 1e-9);

    // Enforcement layer: the draw saturates at A's actual 4 units.
    let s = AgreementMatrix::zeros(2);
    let mut abs = AbsoluteMatrix::zeros(2);
    abs.set(0, 1, 7.0).unwrap();
    let flow = TransitiveFlow::compute(&s, 1);
    let state = SystemState::new(flow, Some(abs), vec![4.0, 0.0]).unwrap();
    let alloc = LpPolicy::reduced().allocate_up_to(&state, 1, 7.0).unwrap();
    assert!((alloc.amount - 4.0).abs() < 1e-6, "saturated at V_A");
}
