//! Umbrella crate for the SC 2000 "Expressing and Enforcing Distributed
//! Resource Sharing Agreements" reproduction.
//!
//! Re-exports the public API of every subsystem crate so examples and
//! downstream users can depend on a single package:
//!
//! - [`ticket`] — tickets, currencies, and the funding-graph economy (§2).
//! - [`lp`] — the two-phase simplex LP solver substrate (§3).
//! - [`flow`] — agreement matrices and transitive resource flow (§3.1).
//! - [`sched`] — the LP allocation scheduler and baseline policies (§3).
//! - [`grm`] — the GRM/LRM threaded resource-manager runtime (§3.2).
//! - [`trace`] — synthetic diurnal web workload generation (§4.1).
//! - [`proxysim`] — the cooperating web-proxy simulator (§4).
//! - [`telemetry`] — the unified counters/histograms/event-trace plane.

pub use agreements_flow as flow;
pub use agreements_grm as grm;
pub use agreements_lp as lp;
pub use agreements_proxysim as proxysim;
pub use agreements_sched as sched;
pub use agreements_telemetry as telemetry;
pub use agreements_ticket as ticket;
pub use agreements_trace as trace;
