//! Quickstart: express the paper's Example 1 (Figure 1) with tickets and
//! currencies, then enforce an allocation with the LP scheduler.
//!
//! Run with: `cargo run --example quickstart`

use sharing_agreements::flow::{capacities, AgreementMatrix, TransitiveFlow};
use sharing_agreements::sched::{AllocationPolicy, LpPolicy, SystemState};
use sharing_agreements::ticket::{AgreementNature, Economy};

fn main() {
    // ---- Expression (§2): the Figure 1 economy --------------------------
    let mut eco = Economy::new();
    let disk = eco.add_resource("disk-TB");
    let a = eco.add_principal("A");
    let b = eco.add_principal("B");
    let c = eco.add_principal("C");
    let d = eco.add_principal("D");
    let (ca, cb, cc, cd) = (
        eco.default_currency(a),
        eco.default_currency(b),
        eco.default_currency(c),
        eco.default_currency(d),
    );

    // Currency denominations from the figure.
    eco.set_face_total(ca, 1000.0).unwrap();
    eco.set_face_total(cb, 100.0).unwrap();

    // Actual resources: A owns 10 TB, B owns 15 TB (A-Ticket1, A-Ticket2).
    eco.deposit_resource(ca, disk, 10.0).unwrap();
    eco.deposit_resource(cb, disk, 15.0).unwrap();

    // Agreements: A gives C an absolute 3 TB (R-Ticket3); A shares 50%
    // with B (R-Ticket4, face 500 of 1000); B shares 60% with D
    // (R-Ticket5, face 60 of 100).
    eco.issue_absolute(ca, cc, disk, 3.0, AgreementNature::Sharing).unwrap();
    eco.issue_relative(ca, cb, 500.0, AgreementNature::Sharing).unwrap();
    eco.issue_relative(cb, cd, 60.0, AgreementNature::Sharing).unwrap();

    let report = eco.value_report(disk).unwrap();
    println!("Currency values (TB of disk):");
    for (name, cur) in [("A", ca), ("B", cb), ("C", cc), ("D", cd)] {
        println!("  {name}: {:.2}", report.currency_value(cur));
    }
    println!("(paper: A=10, B=20, C=3, D=12 — D's 12 TB transparently");
    println!(" includes the transitive share of A's disk via B)\n");

    // ---- Enforcement (§3): allocate under the same agreements ----------
    // Abstract the relative agreements as a share matrix: A -> B at 50%,
    // B -> D at 60% (indices 0..3 = A, B, C, D).
    let mut s = AgreementMatrix::zeros(4);
    s.set(0, 1, 0.5).unwrap();
    s.set(1, 3, 0.6).unwrap();
    let flow = TransitiveFlow::compute(&s, 3);
    let avail = vec![10.0, 15.0, 0.0, 0.0];
    let report = capacities(&flow, None, &avail);
    println!(
        "Reachable capacities: C_A={:.1}, C_B={:.1}, C_C={:.1}, C_D={:.1}",
        report.capacity(0),
        report.capacity(1),
        report.capacity(2),
        report.capacity(3)
    );

    // D requests 10 TB; it owns nothing, so everything flows through the
    // agreement chain. The LP picks the draw minimizing the worst
    // capacity perturbation inflicted on others.
    let state = SystemState::new(flow, None, avail).unwrap();
    let alloc = LpPolicy::reduced().allocate(&state, 3, 10.0).unwrap();
    println!("\nD requests 10 TB. LP draws:");
    for (i, name) in ["A", "B", "C", "D"].iter().enumerate() {
        if alloc.draws[i] > 0.0 {
            println!("  {:.2} TB from {name}", alloc.draws[i]);
        }
    }
    println!("worst capacity perturbation theta = {:.2} TB", alloc.theta);
}
