//! A compact version of the paper's §4 case study: cooperating ISP-level
//! web proxies under time-skewed diurnal load, with and without resource
//! sharing agreements.
//!
//! Run with: `cargo run --release --example proxy_sharing`
//! (release strongly recommended; the simulation replays two full days)

use sharing_agreements::flow::Structure;
use sharing_agreements::proxysim::{PolicyKind, SharingConfig, SimConfig, Simulator};
use sharing_agreements::trace::TraceConfig;

fn main() {
    const N: usize = 10;
    const REQUESTS: usize = 20_000; // per proxy per day (scaled down)
    let traces = TraceConfig::paper(REQUESTS, 42).generate(N, 3600.0);
    let base = SimConfig::calibrated(N, REQUESTS, 0.118, 1.05);

    // Without sharing.
    let alone = Simulator::new(base.clone()).unwrap().run(&traces).unwrap();

    // With sharing: complete graph, each ISP shares 10% with every other.
    let agreements = Structure::Complete { n: N, share: 0.10 }.build().unwrap();
    let sharing = SharingConfig {
        agreements,
        level: N - 1,
        policy: PolicyKind::Lp,
        redirect_cost: 0.1,
        schedule: Vec::new(),
    };
    let shared = Simulator::new(base.with_sharing(sharing)).unwrap().run(&traces).unwrap();

    println!("10 ISPs, one-hour time zones apart, {REQUESTS} requests/day each");
    println!("metric                         no sharing      sharing(10%)");
    println!("avg wait (s)              {:>15.2} {:>15.2}", alone.avg_wait(), shared.avg_wait());
    println!(
        "peak slot avg wait (s)    {:>15.2} {:>15.2}",
        alone.peak_slot_avg_wait(),
        shared.peak_slot_avg_wait()
    );
    println!("worst wait (s)            {:>15.2} {:>15.2}", alone.worst_wait, shared.worst_wait);
    println!(
        "requests redirected (%)   {:>15.2} {:>15.2}",
        0.0,
        100.0 * shared.redirect_fraction()
    );
    println!("\nSharing absorbs the midnight peak using partners in other time");
    println!(
        "zones - a {:.0}x improvement in the peak-slot average wait.",
        alone.peak_slot_avg_wait() / shared.peak_slot_avg_wait().max(0.01)
    );
}
