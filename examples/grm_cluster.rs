//! The GRM/LRM resource-manager runtime (paper §3.2): a centralized
//! global resource manager scheduling across local resource managers on
//! real threads, including the two-level (multigrid) split.
//!
//! Run with: `cargo run --example grm_cluster`

use sharing_agreements::flow::AgreementMatrix;
use sharing_agreements::grm::{GrmServer, Lrm, TwoLevelGrm};

fn complete(n: usize, share: f64) -> AgreementMatrix {
    let mut s = AgreementMatrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s.set(i, j, share).unwrap();
            }
        }
    }
    s
}

fn main() {
    // ---- Single-level GRM with four LRMs --------------------------------
    println!("== single-level GRM, 4 LRMs, complete 30% agreements ==");
    let grm = GrmServer::spawn(complete(4, 0.3), 3);
    let lrms: Vec<Lrm> = (0..4)
        .map(|i| Lrm::new(i, if i == 0 { 2.0 } else { 20.0 }, grm.handle()).unwrap())
        .collect();

    // LRM 0 has only 2 units locally but submits a job needing 10.
    let alloc = lrms[0].submit(10.0).unwrap();
    println!("LRM 0 requested 10.0; GRM placed draws: {:?}", alloc.draws);
    let mut fulfilled = 0.0;
    for lrm in &lrms {
        fulfilled += lrm.fulfil(&alloc).unwrap();
    }
    println!("fulfilled {fulfilled:.1} units across LRMs");
    for lrm in &lrms {
        println!("  LRM {} pool now {:.1}", lrm.id, lrm.available());
    }
    // Agreement management: revoke sharing from LRM 3 and watch a request
    // shrink.
    let h = grm.handle();
    for k in 1..4 {
        h.set_agreement(k, 0, if k == 3 { 0.0 } else { 0.3 }).unwrap();
    }
    match h.request(0, 15.0) {
        Ok(a) => println!("after update, 15.0 placed as {:?}", a.draws),
        Err(e) => println!("after update, 15.0 rejected: {e}"),
    }
    grm.shutdown();

    // ---- Two-level GRM ---------------------------------------------------
    println!("\n== two-level GRM: 2 groups of 3, 50% inter-group sharing ==");
    let groups = vec![vec![0, 1, 2], vec![3, 4, 5]];
    let intra = vec![complete(3, 1.0), complete(3, 1.0)];
    let mut inter = AgreementMatrix::zeros(2);
    inter.set(0, 1, 0.5).unwrap();
    inter.set(1, 0, 0.5).unwrap();
    let tree = TwoLevelGrm::new(groups, intra, &inter, 1).unwrap();
    for p in 0..6 {
        let g = tree.group_of(p);
        tree.group_handle(g).report(tree.local_index(p), if p < 3 { 3.0 } else { 30.0 }).unwrap();
    }
    // Principal 0's group holds 9 units; a request for 20 escalates to the
    // root, which draws on group 1 under the 50% inter-group agreement.
    let alloc = tree.request(0, 20.0).unwrap();
    println!("principal 0 requested 20.0; global draws: {:?}", alloc.draws);
    let home: f64 = alloc.draws[..3].iter().sum();
    println!("  {home:.1} from the home group, {:.1} from the remote group", 20.0 - home);
    tree.shutdown();
}
