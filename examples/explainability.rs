//! Auditing a federation: which agreement chains carry a transitive
//! entitlement, what an allocation decision actually did, and what each
//! constraint was worth (LP shadow prices).
//!
//! Run with: `cargo run --example explainability`

use sharing_agreements::flow::{chains_between, AgreementMatrix, TransitiveFlow};
use sharing_agreements::sched::{explain_allocation, SystemState};

fn main() {
    // A five-site federation with mixed direct agreements.
    let n = 5;
    let mut s = AgreementMatrix::zeros(n);
    s.set(1, 0, 0.4).unwrap(); // 1 shares 40% with 0
    s.set(2, 1, 0.5).unwrap(); // 2 shares 50% with 1
    s.set(3, 1, 0.5).unwrap();
    s.set(2, 0, 0.1).unwrap(); // and a thin direct 2 -> 0 agreement
    s.set(4, 2, 0.8).unwrap();

    // --- Chain audit: how does principal 0 reach site 4's resources? ---
    println!("chains from 4 (owner) to 0 (user), up to 4 hops:");
    for chain in chains_between(&s, 4, 0, 4) {
        let route: Vec<String> = chain.nodes.iter().map(|x| x.to_string()).collect();
        println!("  {}  forwards {:.4} of 4's availability", route.join(" -> "), chain.product);
    }

    // --- Allocation audit --------------------------------------------
    let flow = TransitiveFlow::compute(&s, n - 1);
    let state = SystemState::new(flow, None, vec![0.0, 6.0, 10.0, 8.0, 10.0]).unwrap();
    let explanation = explain_allocation(&state, 0, 7.0).unwrap();
    println!("\n{explanation}");
    println!("bottleneck owners (their capacity loss sets theta):");
    for o in explanation.bottlenecks() {
        println!("  owner {} drops {:.4}", o.owner, o.capacity_drop);
    }
    println!(
        "\nmarginal theta {:.4}: requesting one more unit would raise the\n\
         worst perturbation by this much - the price the federation pays\n\
         for the next unit of principal 0's demand.",
        explanation.marginal_theta
    );
}
