//! A federation's life, end to end: partners join, negotiate package
//! deals atomically, audit who can reach what through which chains,
//! allocate with explanations, renegotiate, and leave — the "dynamically
//! changing set of partners" the paper's conclusion points at.
//!
//! Run with: `cargo run --example federation_lifecycle` —
//! everything here is the expression + enforcement layers; see
//! `grm_cluster` for the same flows through the threaded runtime.

use sharing_agreements::flow::{chains_between, AgreementMatrix, TransitiveFlow};
use sharing_agreements::sched::{explain_allocation, SystemState};
use sharing_agreements::ticket::{AgreementNature::Sharing, Economy, Op};

fn main() {
    // ---- Founding members --------------------------------------------
    let mut eco = Economy::new();
    let cpu = eco.add_resource("cpu-hours");
    let uni = eco.add_principal("university");
    let lab = eco.add_principal("research-lab");
    let (c_uni, c_lab) = (eco.default_currency(uni), eco.default_currency(lab));
    eco.deposit_resource(c_uni, cpu, 1000.0).unwrap();
    eco.deposit_resource(c_lab, cpu, 400.0).unwrap();

    // A bilateral package deal, atomically: 25% each way.
    eco.apply_batch(&[
        Op::IssueRelative { from: c_uni, to: c_lab, face: 25.0, nature: Sharing },
        Op::IssueRelative { from: c_lab, to: c_uni, face: 25.0, nature: Sharing },
    ])
    .unwrap();
    println!("founding deal struck:");
    print!("{}", sharing_agreements::ticket::summary(&eco, cpu).unwrap());

    // ---- A startup joins, funded only through the lab -----------------
    let startup = eco.add_principal("startup");
    let c_start = eco.default_currency(startup);
    eco.issue_relative(c_lab, c_start, 40.0, Sharing).unwrap();
    let report = eco.value_report(cpu).unwrap();
    println!(
        "\nstartup joins with no hardware; its currency is worth {:.1} cpu-hours\n\
         (40% of the lab, which itself holds 25% of the university)",
        report.currency_value(c_start)
    );

    // ---- Chain audit: how does the startup reach university cycles? ---
    let mut s = AgreementMatrix::zeros(3);
    s.set(0, 1, 0.25).unwrap(); // university -> lab
    s.set(1, 0, 0.25).unwrap();
    s.set(1, 2, 0.40).unwrap(); // lab -> startup
    println!("\nchains from university (0) to startup (2):");
    for chain in chains_between(&s, 0, 2, 2) {
        let hops: Vec<String> = chain.nodes.iter().map(|n| n.to_string()).collect();
        println!("  {} forwards {:.3}", hops.join(" -> "), chain.product);
    }

    // ---- Enforcement: the startup runs a job --------------------------
    let flow = TransitiveFlow::compute(&s, 2);
    let state = SystemState::new(flow, None, vec![1000.0, 400.0, 0.0]).unwrap();
    let explanation = explain_allocation(&state, 2, 200.0).unwrap();
    println!("\nstartup submits a 200 cpu-hour job:\n{explanation}");

    // ---- Renegotiation: the lab halves the startup's share ------------
    let startup_ticket = eco
        .tickets()
        .iter()
        .find(|t| t.backing == c_start && t.active)
        .map(|t| t.id)
        .expect("startup funding ticket");
    eco.apply_batch(&[
        Op::Revoke { ticket: startup_ticket },
        Op::IssueRelative { from: c_lab, to: c_start, face: 20.0, nature: Sharing },
    ])
    .unwrap();
    let report = eco.value_report(cpu).unwrap();
    println!(
        "after renegotiation the startup's currency is worth {:.1} cpu-hours",
        report.currency_value(c_start)
    );

    // ---- The lab leaves; the startup is stranded -----------------------
    let mut s2 = s.clone();
    s2.isolate(1).unwrap();
    let flow2 = TransitiveFlow::compute(&s2, 2);
    let state2 = SystemState::new(flow2, None, vec![1000.0, 0.0, 0.0]).unwrap();
    match explain_allocation(&state2, 2, 10.0) {
        Err(e) => println!("\nlab departs; startup's next job: {e}"),
        Ok(_) => unreachable!("no chain remains"),
    }
}
