//! Transitive agreements and the overdraft clamp (paper §3.1–3.2).
//!
//! Shows how the reachable capacity of a principal grows with the
//! transitivity level in a loop agreement structure, and reproduces the
//! §3.2 overdraft example where clamping prevents a principal from
//! obtaining more than the owner possesses.
//!
//! Run with: `cargo run --example transitive_sharing`

use sharing_agreements::flow::{
    capacities, AgreementMatrix, Structure, TransitiveFlow, TransitiveOptions,
};
use sharing_agreements::sched::{AllocationPolicy, LpPolicy, SystemState};

fn main() {
    // ---- A 6-node loop where each principal shares 80% with the next --
    let s = Structure::Loop { n: 6, share: 0.8, skip: 1 }.build().unwrap();
    let avail = vec![0.0, 12.0, 12.0, 12.0, 12.0, 12.0];
    println!("Loop of 6, 80% each; principal 0 is exhausted, others have 12.");
    println!("level  C_0     draw sources for a request of 15 by principal 0");
    for level in 1..=5 {
        let flow = TransitiveFlow::compute(&s, level);
        let cap = capacities(&flow, None, &avail);
        let state = SystemState::new(flow, None, avail.clone()).unwrap();
        let alloc = LpPolicy::reduced().allocate_up_to(&state, 0, 15.0).unwrap();
        let sources: Vec<String> =
            alloc.remote_draws().map(|(k, d)| format!("{d:.1} from {k}")).collect();
        println!(
            "{level:>5}  {:>6.2}  placed {:.1}: [{}]",
            cap.capacity(0),
            alloc.amount,
            sources.join(", ")
        );
    }
    println!("With level 1 only the direct neighbour's 80% is reachable;");
    println!("each extra level adds 0.8^k of the next node around the loop.\n");

    // ---- The §3.2 overdraft example ------------------------------------
    // A has 10 units; shares 60% with B and 60% with C (overdraft!); B
    // shares 100% with C.
    let mut s = AgreementMatrix::zeros(3);
    s.set(0, 1, 0.6).unwrap();
    s.set(0, 2, 0.6).unwrap();
    s.set(1, 2, 1.0).unwrap();
    assert!(s.is_overdrawn());
    let raw = TransitiveFlow::compute_with(
        &s,
        &TransitiveOptions { max_level: 2, clamp: false, min_product: 0.0 },
    );
    let clamped = TransitiveFlow::compute(&s, 2);
    let v = [10.0, 0.0, 0.0];
    println!("Overdraft example (A=10 units, shares 60%+60%, B forwards 100%):");
    println!("  unclamped: C could claim {:.1} units - more than A owns!", raw.inflow(0, 2, v[0]));
    println!(
        "  clamped:   C is limited to {:.1} units (K = min(T, 1))",
        clamped.inflow(0, 2, v[0])
    );
}
