//! Virtual currencies (paper Example 2, Figure 2): decoupling one subset
//! of agreements from fluctuations in another.
//!
//! Run with: `cargo run --example virtual_currencies`

use sharing_agreements::ticket::{AgreementNature::Sharing, Economy};

fn main() {
    let mut eco = Economy::new();
    let disk = eco.add_resource("disk-TB");
    let a = eco.add_principal("A");
    let b = eco.add_principal("B");
    let c = eco.add_principal("C");
    let d = eco.add_principal("D");
    let ca = eco.default_currency(a);
    let (cb, cc, cd) = (eco.default_currency(b), eco.default_currency(c), eco.default_currency(d));
    eco.set_face_total(ca, 1000.0).unwrap();
    eco.deposit_resource(ca, disk, 10.0).unwrap();
    eco.deposit_resource(cb, disk, 15.0).unwrap();

    // Two virtual currencies partition A's agreements: A_1 backs C alone;
    // A_2 backs B and D.
    let a1 = eco.add_virtual_currency(a, "A_1");
    let a2 = eco.add_virtual_currency(a, "A_2");
    eco.issue_relative(ca, a1, 300.0, Sharing).unwrap(); // 30% of A
    eco.issue_relative(ca, a2, 500.0, Sharing).unwrap(); // 50% of A
    eco.issue_relative(a1, cc, 100.0, Sharing).unwrap(); // all of A_1
    eco.issue_relative(a2, cd, 40.0, Sharing).unwrap();
    eco.issue_relative(a2, cb, 60.0, Sharing).unwrap();

    let v = eco.value_report(disk).unwrap();
    println!("Before inflation of A_1:");
    println!(
        "  A_1={:.2}  A_2={:.2}  B={:.2}  C={:.2}  D={:.2}",
        v.currency_value(a1),
        v.currency_value(a2),
        v.currency_value(cb),
        v.currency_value(cc),
        v.currency_value(cd)
    );

    // A halves what the C-subset is worth by inflating A_1 — without
    // touching the B/D subset.
    eco.set_face_total(a1, 200.0).unwrap();
    let v = eco.value_report(disk).unwrap();
    println!("After inflating A_1's face total 100 -> 200:");
    println!(
        "  A_1={:.2}  A_2={:.2}  B={:.2}  C={:.2}  D={:.2}",
        v.currency_value(a1),
        v.currency_value(a2),
        v.currency_value(cb),
        v.currency_value(cc),
        v.currency_value(cd)
    );
    println!("C's ticket halved; B and D are untouched — the virtual");
    println!("currency isolates the two agreement subsets.");
}
