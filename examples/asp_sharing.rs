//! The paper's ASP motivation (§1): "the growing popularity of
//! application-specific providers exemplifies a situation where the ASP
//! is sharing its resources with several client organizations."
//!
//! One well-provisioned ASP (proxy 0) holds absolute agreements with
//! three client organizations whose business-hours load exceeds their own
//! hardware; the clients hold small mutual agreements with each other.
//! The scheduler enforces the whole arrangement.
//!
//! Run with: `cargo run --release --example asp_sharing`

use sharing_agreements::flow::AgreementMatrix;
use sharing_agreements::proxysim::{PolicyKind, SharingConfig, SimConfig, Simulator};
use sharing_agreements::trace::{DiurnalProfile, TraceConfig};

fn main() {
    // Principal 0 = the ASP; 1..=3 = client organizations.
    const N: usize = 4;
    const REQUESTS: usize = 30_000;

    // Clients run business-hours load in staggered regions (3 h apart);
    // the ASP serves a small background load of its own.
    let mut cfg = TraceConfig::paper(REQUESTS, 7);
    cfg.profile = DiurnalProfile::business();
    let mut traces = cfg.generate(N, 3.0 * 3600.0);
    traces[0].requests.truncate(REQUESTS / 10); // the ASP's own light load

    // The ASP shares 30% of its (large) capacity with each client; the
    // clients back each other with thin 5% agreements.
    let mut s = AgreementMatrix::zeros(N);
    for client in 1..N {
        s.set(0, client, 0.30).unwrap();
        for other in 1..N {
            if other != client {
                s.set(client, other, 0.05).unwrap();
            }
        }
    }

    // Clients are provisioned at ~60% of their business-hours peak; the
    // ASP carries 4x a client's capacity.
    let base = SimConfig::calibrated(N, REQUESTS, 0.118, 1.0);
    let client_cap = base.capacity / 0.6;
    let caps = vec![4.0 * client_cap, client_cap * 0.6, client_cap * 0.6, client_cap * 0.6];

    let run = |sharing: bool| {
        let mut cfg = base.clone().with_per_proxy_capacity(caps.clone());
        if sharing {
            cfg = cfg.with_sharing(SharingConfig {
                agreements: s.clone(),
                level: N - 1,
                policy: PolicyKind::Lp,
                redirect_cost: 0.05,
                schedule: Vec::new(),
            });
        }
        Simulator::new(cfg).expect("valid").run(&traces).expect("run")
    };

    let alone = run(false);
    let shared = run(true);

    println!("ASP + 3 clients, business-hours load, clients at 60% of peak need");
    println!("{:<12} {:>16} {:>16}", "principal", "alone avg_wait", "shared avg_wait");
    let names = ["ASP", "client-1", "client-2", "client-3"];
    for (p, name) in names.iter().enumerate() {
        println!(
            "{:<12} {:>16.3} {:>16.3}",
            name,
            alone.proxy_avg_wait(p),
            shared.proxy_avg_wait(p)
        );
    }
    println!(
        "\nsystem: avg {:.3} -> {:.3} s, p99 {:.2} -> {:.2} s, {:.2}% redirected",
        alone.avg_wait(),
        shared.avg_wait(),
        alone.wait_quantile(0.99),
        shared.wait_quantile(0.99),
        100.0 * shared.redirect_fraction()
    );
}
