//! Support crate for the Criterion benchmark suites in `benches/`:
//!
//! - `figures` — one bench group per paper figure (5–13), running the
//!   simulation at a reduced-volume operating point with the same
//!   calibrated peak utilization.
//! - `ablations` — design-choice benches called out in DESIGN.md: full vs
//!   reduced LP formulation, path-enumeration level scaling, pivot rules,
//!   exact vs fixed-point valuation.
//! - `substrates` — microbenchmarks of the substrate crates (simplex
//!   solves, transitive flow, currency valuation, trace generation).

use agreements_flow::{AgreementMatrix, Structure};
use agreements_proxysim::{PolicyKind, SharingConfig, SimConfig, SimResult, Simulator};
use agreements_trace::{ProxyTrace, ResponseLenDist, TraceConfig};

/// Proxies in bench workloads (same as the paper).
pub const N: usize = 10;

/// Reduced bench volume: keeps each simulation run in the tens of
/// milliseconds so Criterion can sample meaningfully.
pub const BENCH_REQUESTS: usize = 8_000;

/// Bench traces at the given skew. Like the scaled-down shape tests, the
/// bench workload drops the Pareto tail so single heavy requests don't
/// dominate at this volume.
pub fn bench_traces(gap: f64) -> Vec<ProxyTrace> {
    let mut cfg = TraceConfig::paper(BENCH_REQUESTS, 7);
    cfg.lengths = ResponseLenDist { tail_prob: 0.0, ..ResponseLenDist::web1996() };
    cfg.generate(N, gap)
}

/// Calibrated bench config (same peak utilization as the experiments,
/// with the epoch scaled up so per-consultation entitlements stay above a
/// single request's demand at this volume).
pub fn bench_config() -> SimConfig {
    let mut cfg = SimConfig::calibrated(N, BENCH_REQUESTS, 0.105, 1.05);
    cfg.epoch = 120.0;
    cfg.threshold_epochs = 1.0;
    cfg
}

/// Run one bench-scale simulation.
pub fn run(
    sharing: Option<(AgreementMatrix, usize, PolicyKind, f64)>,
    gap: f64,
    capacity_factor: f64,
) -> SimResult {
    let mut cfg = bench_config().with_capacity_factor(capacity_factor);
    if let Some((agreements, level, policy, redirect_cost)) = sharing {
        cfg = cfg.with_sharing(SharingConfig {
            agreements,
            level,
            policy,
            redirect_cost,
            schedule: Vec::new(),
        });
    }
    Simulator::new(cfg).expect("valid config").run(&bench_traces(gap)).expect("run")
}

/// Complete graph at 10% (Figures 6–8, 12).
pub fn complete_10pct() -> AgreementMatrix {
    Structure::Complete { n: N, share: 0.10 }.build().expect("structure")
}

/// Loop at 80% with a skip (Figures 9–11).
pub fn loop_80pct(skip: usize) -> AgreementMatrix {
    Structure::Loop { n: N, share: 0.80, skip }.build().expect("structure")
}
