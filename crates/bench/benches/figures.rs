//! One Criterion group per paper figure. Each bench runs the full
//! (reduced-volume) simulation that regenerates the figure's data and
//! asserts its qualitative shape, so `cargo bench` doubles as a
//! regression harness for the reproduction.

use agreements_bench as b;
use agreements_flow::Structure;
use agreements_proxysim::PolicyKind;
use criterion::measurement::WallTime;
use criterion::{criterion_group, criterion_main, BenchmarkGroup, Criterion};
use std::hint::black_box;

const HOUR: f64 = 3600.0;
/// Plotted proxy (see the experiments crate for why 9).
const P: usize = 9;

fn sim_group<'a>(c: &'a mut Criterion, name: &str) -> BenchmarkGroup<'a, WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g
}

fn fig05_no_sharing(c: &mut Criterion) {
    let mut g = sim_group(c, "fig05_no_sharing");
    g.bench_function("diurnal_day", |bench| {
        bench.iter(|| {
            let r = b::run(None, HOUR, 1.0);
            assert!(r.peak_slot_avg_wait() > 10.0, "unshared peak must exist");
            black_box(r.avg_wait())
        })
    });
    g.finish();
}

fn fig06_gap_sweep(c: &mut Criterion) {
    let mut g = sim_group(c, "fig06_gap_sweep");
    for gap in [0.0, 3600.0, 7200.0] {
        g.bench_function(format!("gap_{gap}s"), |bench| {
            bench.iter(|| {
                let r =
                    b::run(Some((b::complete_10pct(), b::N - 1, PolicyKind::Lp, 0.0)), gap, 1.0);
                black_box(r.proxy_avg_wait(P))
            })
        });
    }
    g.finish();
}

fn fig07_capacity_sweep(c: &mut Criterion) {
    let mut g = sim_group(c, "fig07_capacity_sweep");
    for factor in [1.0, 1.25] {
        g.bench_function(format!("no_sharing_x{factor}"), |bench| {
            bench.iter(|| black_box(b::run(None, HOUR, factor).proxy_avg_wait(P)))
        });
    }
    g.bench_function("sharing_x1.0", |bench| {
        bench.iter(|| {
            black_box(
                b::run(Some((b::complete_10pct(), b::N - 1, PolicyKind::Lp, 0.0)), HOUR, 1.0)
                    .proxy_avg_wait(P),
            )
        })
    });
    g.finish();
}

fn fig08_transitivity_complete(c: &mut Criterion) {
    let mut g = sim_group(c, "fig08_transitivity_complete");
    for level in [1usize, 9] {
        g.bench_function(format!("level_{level}"), |bench| {
            bench.iter(|| {
                let r = b::run(Some((b::complete_10pct(), level, PolicyKind::Lp, 0.0)), HOUR, 1.0);
                black_box(r.proxy_avg_wait(P))
            })
        });
    }
    g.finish();
}

fn fig09_to_11_loops(c: &mut Criterion) {
    let mut g = sim_group(c, "fig09_10_11_loops");
    for skip in [1usize, 3, 7] {
        for level in [1usize, 9] {
            g.bench_function(format!("skip_{skip}_level_{level}"), |bench| {
                bench.iter(|| {
                    let r =
                        b::run(Some((b::loop_80pct(skip), level, PolicyKind::Lp, 0.0)), HOUR, 1.0);
                    black_box(r.proxy_avg_wait(P))
                })
            });
        }
    }
    g.finish();
}

fn fig12_redirect_cost(c: &mut Criterion) {
    let mut g = sim_group(c, "fig12_redirect_cost");
    for cost in [0.0, 0.1, 0.2] {
        g.bench_function(format!("cost_{cost}s"), |bench| {
            bench.iter(|| {
                let r =
                    b::run(Some((b::complete_10pct(), b::N - 1, PolicyKind::Lp, cost)), HOUR, 1.0);
                black_box(r.proxy_avg_wait(P))
            })
        });
    }
    g.finish();
}

fn fig13_lp_vs_endpoint(c: &mut Criterion) {
    let mut g = sim_group(c, "fig13_lp_vs_endpoint");
    let agreements = Structure::figure13(b::N).build().expect("structure");
    for (name, policy) in [
        ("lp", PolicyKind::Lp),
        ("endpoint", PolicyKind::Proportional),
        ("greedy", PolicyKind::Greedy),
    ] {
        let a = agreements.clone();
        g.bench_function(name, move |bench| {
            bench.iter(|| {
                let r = b::run(Some((a.clone(), b::N - 1, policy, 0.0)), HOUR, 1.0);
                black_box(r.proxy_avg_wait(P))
            })
        });
    }
    g.finish();
}

criterion_group!(
    figures,
    fig05_no_sharing,
    fig06_gap_sweep,
    fig07_capacity_sweep,
    fig08_transitivity_complete,
    fig09_to_11_loops,
    fig12_redirect_cost,
    fig13_lp_vs_endpoint
);
criterion_main!(figures);
