//! Microbenchmarks of the substrate crates: the simplex solver, the
//! transitive-flow computation, currency valuation, trace generation, and
//! raw simulator throughput.

use agreements_bench as b;
use agreements_lp::{Problem, Relation, Sense};
use agreements_trace::TraceConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Random-but-deterministic dense LP: maximize a positive objective over
/// `m` packing constraints in `n` variables.
fn dense_lp(n: usize, m: usize) -> Problem {
    let mut p = Problem::new(Sense::Maximize);
    // Simple LCG so the bench needs no RNG dependency.
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) % 1000) as f64 / 1000.0
    };
    let vars: Vec<_> =
        (0..n).map(|j| p.add_var(&format!("x{j}"), 0.0, f64::INFINITY, 1.0 + next())).collect();
    for _ in 0..m {
        let terms: Vec<_> = vars.iter().map(|&v| (v, 0.1 + next())).collect();
        p.add_constraint(&terms, Relation::Le, 5.0 + 10.0 * next());
    }
    p
}

fn simplex_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex_scaling");
    for (n, m) in [(10, 10), (30, 30), (60, 60), (120, 60)] {
        let p = dense_lp(n, m);
        g.bench_function(format!("n{n}_m{m}"), |bench| {
            bench.iter(|| black_box(p.solve().expect("bounded").objective))
        });
    }
    g.finish();
}

fn transitive_flow_scaling(c: &mut Criterion) {
    use agreements_flow::{Structure, TransitiveFlow};
    let mut g = c.benchmark_group("transitive_flow_scaling");
    g.sample_size(20);
    for n in [8usize, 10] {
        let s = Structure::Complete { n, share: 0.5 / n as f64 }.build().unwrap();
        g.bench_function(format!("complete_n{n}_closure"), |bench| {
            bench.iter(|| {
                let t = TransitiveFlow::compute(&s, n - 1);
                black_box(t.coefficient(0, n - 1))
            })
        });
    }
    // Larger graphs are capped at level 5: full closure is exponential
    // (the ablation bench quantifies that growth).
    let s = Structure::Complete { n: 14, share: 0.03 }.build().unwrap();
    g.bench_function("complete_n14_level5", |bench| {
        bench.iter(|| {
            let t = TransitiveFlow::compute(&s, 5);
            black_box(t.coefficient(0, 13))
        })
    });
    g.finish();
}

/// Parallel vs sequential closure. The fan-out is per source, so the
/// speedup tracks available cores — on a single-CPU host (such as some
/// CI containers) the parallel variant only shows its scheduling
/// overhead; on an 8-core workstation it approaches the core count.
fn transitive_flow_parallel(c: &mut Criterion) {
    use agreements_flow::{Structure, TransitiveFlow, TransitiveOptions};
    let mut g = c.benchmark_group("transitive_flow_parallel");
    g.sample_size(10);
    let s = Structure::Complete { n: 10, share: 0.05 }.build().unwrap();
    let opts = TransitiveOptions::exact(9);
    g.bench_function("sequential_n10_closure", |bench| {
        bench.iter(|| black_box(TransitiveFlow::compute_with(&s, &opts).coefficient(0, 9)))
    });
    let threads = std::thread::available_parallelism().map_or(2, |p| p.get());
    g.bench_function(format!("parallel_{threads}_n10_closure"), |bench| {
        bench.iter(|| {
            black_box(TransitiveFlow::compute_parallel(&s, &opts, threads).coefficient(0, 9))
        })
    });
    g.finish();
}

fn trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generation");
    g.bench_function("10k_requests_10_proxies", |bench| {
        bench.iter(|| {
            let traces = TraceConfig::paper(10_000, 3).generate(10, 3600.0);
            black_box(traces[9].requests.len())
        })
    });
    g.finish();
}

fn trace_serialization(c: &mut Criterion) {
    use agreements_trace::io;
    let trace = TraceConfig::paper(10_000, 3).generate(1, 0.0).remove(0);
    let bytes = io::to_bytes(&trace);
    let mut g = c.benchmark_group("trace_serialization");
    g.bench_function("encode_10k", |bench| bench.iter(|| black_box(io::to_bytes(&trace).len())));
    g.bench_function("decode_10k", |bench| {
        bench.iter(|| black_box(io::from_bytes(bytes.clone()).expect("decode").requests.len()))
    });
    g.finish();
}

fn simulator_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator_throughput");
    g.sample_size(10);
    g.bench_function("no_sharing_day", |bench| {
        bench.iter(|| black_box(b::run(None, 3600.0, 1.0).served))
    });
    g.bench_function("lp_sharing_day", |bench| {
        bench.iter(|| {
            black_box(
                b::run(
                    Some((b::complete_10pct(), b::N - 1, agreements_proxysim::PolicyKind::Lp, 0.0)),
                    3600.0,
                    1.0,
                )
                .served,
            )
        })
    });
    g.finish();
}

criterion_group!(
    substrates,
    simplex_scaling,
    transitive_flow_scaling,
    transitive_flow_parallel,
    trace_generation,
    trace_serialization,
    simulator_throughput
);
criterion_main!(substrates);
