//! The consultation hot path: stateless cold solves vs the reusable
//! [`AllocationSolver`] — workspace reuse alone, and workspace plus warm
//! starting — on the paper's 10-principal reduced allocation LP.
//!
//! The amortized solver keeps the standardized skeleton and the simplex
//! tableau across solves and, with warm starting, resumes phase 2 from
//! the previous optimal basis; the target is ≥ 2× over the cold path.

use agreements_bench as b;
use agreements_flow::TransitiveFlow;
use agreements_lp::SimplexOptions;
use agreements_sched::lp_model::{solve_allocation, Formulation};
use agreements_sched::{AllocationSolver, SystemState};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// The same representative state as the formulation ablation: 10
/// principals, figure-13 agreement structure, requester 0 drained.
fn alloc_state() -> SystemState {
    let s = agreements_flow::Structure::figure13(b::N).build().expect("structure");
    let flow = TransitiveFlow::compute(&s, b::N - 1);
    let avail: Vec<f64> = (0..b::N).map(|i| if i == 0 { 0.0 } else { 5.0 + i as f64 }).collect();
    SystemState::new(flow, None, avail).expect("state")
}

/// Request amounts cycled per iteration so consecutive solves move the
/// RHS the way real consultations do (same shape, different numbers).
const AMOUNTS: [f64; 4] = [6.0, 8.0, 10.0, 12.0];

fn bench_allocation_hot_path(c: &mut Criterion) {
    let state = alloc_state();
    let opts = SimplexOptions::default();
    let mut g = c.benchmark_group("allocation_hot_path");

    let mut k = 0usize;
    g.bench_function("cold", |bench| {
        bench.iter(|| {
            let x = AMOUNTS[k % AMOUNTS.len()];
            k += 1;
            let a = solve_allocation(&state, 0, x, Formulation::Reduced, &opts).expect("solve");
            black_box(a.theta)
        })
    });

    let mut solver = AllocationSolver::reduced();
    let mut k = 0usize;
    g.bench_function("workspace", |bench| {
        bench.iter(|| {
            let x = AMOUNTS[k % AMOUNTS.len()];
            k += 1;
            let a = solver.allocate(&state, 0, x).expect("solve");
            black_box(a.theta)
        })
    });

    let mut warm = AllocationSolver::reduced();
    warm.set_warm_start(true);
    let mut k = 0usize;
    g.bench_function("workspace_warm", |bench| {
        bench.iter(|| {
            let x = AMOUNTS[k % AMOUNTS.len()];
            k += 1;
            let a = warm.allocate(&state, 0, x).expect("solve");
            black_box(a.theta)
        })
    });

    // Sanity inside the harness: all three paths place the same draws.
    let mut solver = AllocationSolver::reduced();
    let mut warm = AllocationSolver::reduced();
    warm.set_warm_start(true);
    for x in AMOUNTS {
        let cold = solve_allocation(&state, 0, x, Formulation::Reduced, &opts).unwrap();
        let ws = solver.allocate(&state, 0, x).unwrap();
        assert_eq!(cold.draws, ws.draws, "workspace path must be bit-identical");
        let wm = warm.allocate(&state, 0, x).unwrap();
        assert!((cold.theta - wm.theta).abs() < 1e-7 * (1.0 + cold.theta.abs()));
    }
    g.finish();
}

criterion_group!(hot_path, bench_allocation_hot_path);
criterion_main!(hot_path);
