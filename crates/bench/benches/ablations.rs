//! Ablation benches for the design choices called out in DESIGN.md §6:
//! full vs reduced LP formulation, Dantzig vs Bland pricing, transitive
//! path-enumeration level scaling, and exact vs fixed-point currency
//! valuation.

use agreements_bench as b;
use agreements_flow::{AgreementMatrix, TransitiveFlow, TransitiveOptions};
use agreements_lp::{PivotRule, SimplexOptions};
use agreements_sched::lp_model::{solve_allocation, Formulation};
use agreements_sched::SystemState;
use agreements_ticket::{AgreementNature, Economy, ResourceId, ValuationMethod};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A representative allocation state: 10 principals, figure-13 agreement
/// structure, mixed availability, requester 0 drained.
fn alloc_state() -> SystemState {
    let s = agreements_flow::Structure::figure13(b::N).build().expect("structure");
    let flow = TransitiveFlow::compute(&s, b::N - 1);
    let avail: Vec<f64> = (0..b::N).map(|i| if i == 0 { 0.0 } else { 5.0 + i as f64 }).collect();
    SystemState::new(flow, None, avail).expect("state")
}

/// Full (n²+n+1 variables) vs reduced (n+1) formulations of the §3.1 LP.
fn ablation_lp_formulation(c: &mut Criterion) {
    let state = alloc_state();
    let opts = SimplexOptions::default();
    let mut g = c.benchmark_group("ablation_lp_formulation");
    for (name, form) in [("reduced", Formulation::Reduced), ("full", Formulation::Full)] {
        g.bench_function(name, |bench| {
            bench.iter(|| {
                let a = solve_allocation(&state, 0, 10.0, form, &opts).expect("solve");
                black_box(a.theta)
            })
        });
    }
    // Same optimum (sanity inside the bench harness).
    let r = solve_allocation(&state, 0, 10.0, Formulation::Reduced, &opts).unwrap();
    let f = solve_allocation(&state, 0, 10.0, Formulation::Full, &opts).unwrap();
    assert!((r.theta - f.theta).abs() < 1e-6);
    g.finish();
}

/// Native bounded-variable simplex vs materialized bound rows on the
/// allocation LP (the draw variables all carry finite entitlements).
fn ablation_bound_mode(c: &mut Criterion) {
    use agreements_lp::simplex::BoundMode;
    let state = alloc_state();
    let mut g = c.benchmark_group("ablation_bound_mode");
    for (name, mode) in [("native", BoundMode::Native), ("rows", BoundMode::Rows)] {
        let opts = SimplexOptions { bound_mode: mode, ..Default::default() };
        g.bench_function(name, |bench| {
            bench.iter(|| {
                let a =
                    solve_allocation(&state, 0, 10.0, Formulation::Reduced, &opts).expect("solve");
                black_box(a.theta)
            })
        });
    }
    // Identical optima (sanity inside the bench harness).
    let n = solve_allocation(
        &state,
        0,
        10.0,
        Formulation::Reduced,
        &SimplexOptions { bound_mode: BoundMode::Native, ..Default::default() },
    )
    .unwrap();
    let r = solve_allocation(
        &state,
        0,
        10.0,
        Formulation::Reduced,
        &SimplexOptions { bound_mode: BoundMode::Rows, ..Default::default() },
    )
    .unwrap();
    assert!((n.theta - r.theta).abs() < 1e-6);
    g.finish();
}

/// Dantzig vs Bland pricing on the allocation LP.
fn ablation_pivot_rules(c: &mut Criterion) {
    let state = alloc_state();
    let mut g = c.benchmark_group("ablation_pivot_rules");
    for (name, rule) in [("dantzig", PivotRule::Dantzig), ("bland", PivotRule::Bland)] {
        let opts = SimplexOptions { pivot_rule: rule, ..Default::default() };
        g.bench_function(name, |bench| {
            bench.iter(|| {
                let a = solve_allocation(&state, 0, 10.0, Formulation::Full, &opts).expect("solve");
                black_box(a.theta)
            })
        });
    }
    g.finish();
}

/// Simple-path enumeration cost vs transitivity level cap on the
/// complete graph (exponential in the cap; motivates the paper's "small
/// incremental benefit beyond 3 levels").
fn ablation_path_levels(c: &mut Criterion) {
    let mut s = AgreementMatrix::zeros(10);
    for i in 0..10 {
        for j in 0..10 {
            if i != j {
                s.set(i, j, 0.1).unwrap();
            }
        }
    }
    let mut g = c.benchmark_group("ablation_path_levels");
    for level in [1usize, 3, 5, 7, 9] {
        g.bench_function(format!("level_{level}"), |bench| {
            bench.iter(|| {
                let t = TransitiveFlow::compute_with(
                    &s,
                    &TransitiveOptions { max_level: level, clamp: true, min_product: 0.0 },
                );
                black_box(t.coefficient(0, 9))
            })
        });
    }
    // Pruned variant at full depth, for the accuracy/cost trade-off.
    g.bench_function("level_9_pruned_1e-6", |bench| {
        bench.iter(|| {
            let t = TransitiveFlow::compute_with(
                &s,
                &TransitiveOptions { max_level: 9, clamp: true, min_product: 1e-6 },
            );
            black_box(t.coefficient(0, 9))
        })
    });
    g.finish();
}

/// Exact (Gaussian) vs fixed-point currency valuation on a 50-principal
/// economy with dense mutual agreements.
fn ablation_valuation_method(c: &mut Criterion) {
    let n = 50;
    let mut eco = Economy::new();
    let r = eco.add_resource("res");
    let ps: Vec<_> = (0..n).map(|i| eco.add_principal(&format!("P{i}"))).collect();
    for (i, &p) in ps.iter().enumerate() {
        eco.deposit_resource(eco.default_currency(p), r, 10.0 + i as f64).unwrap();
    }
    for i in 0..n {
        for d in 1..=4usize {
            let j = (i + d) % n;
            eco.issue_relative(
                eco.default_currency(ps[i]),
                eco.default_currency(ps[j]),
                20.0 / d as f64,
                AgreementNature::Sharing,
            )
            .unwrap();
        }
    }
    let rid = ResourceId::from_index(r.index());
    let mut g = c.benchmark_group("ablation_valuation_method");
    g.bench_function("exact_gaussian", |bench| {
        bench.iter(|| {
            let v = eco.value_report_with(rid, ValuationMethod::Exact).expect("value");
            black_box(v.currency_value(eco.default_currency(ps[0])))
        })
    });
    g.bench_function("fixed_point", |bench| {
        bench.iter(|| {
            let v = eco
                .value_report_with(
                    rid,
                    ValuationMethod::FixedPoint { max_iters: 10_000, tol: 1e-10 },
                )
                .expect("value");
            black_box(v.currency_value(eco.default_currency(ps[0])))
        })
    });
    g.finish();
}

criterion_group!(
    ablations,
    ablation_lp_formulation,
    ablation_bound_mode,
    ablation_pivot_rules,
    ablation_path_levels,
    ablation_valuation_method
);
criterion_main!(ablations);
