//! Shared harness for regenerating the paper's figures.
//!
//! Every binary in `src/bin/figNN.rs` builds on these helpers: a common
//! workload (10 ISP-level proxies, paper-shaped diurnal day, seeded), the
//! standard simulator configuration calibrated so the *unshared* peak
//! slot-average wait lands in the paper's ≈ 250 s regime, and plain-text
//! series/summary printers whose rows can be diffed against
//! `EXPERIMENTS.md`.

pub mod checker;
pub mod fairness;
pub mod multires;

use agreements_flow::{AgreementMatrix, Structure};
use agreements_proxysim::{PolicyKind, SharingConfig, SimConfig, SimResult, Simulator};
use agreements_telemetry::{Snapshot, Telemetry};
use agreements_trace::{ProxyTrace, TraceConfig, SLOTS_PER_DAY};
use std::path::PathBuf;

/// Number of cooperating ISPs in every experiment (paper: 10).
pub const N_PROXIES: usize = 10;

/// Requests per proxy per day. Wait-time *shapes* are volume-invariant at
/// fixed peak utilization (fluid scaling), so this is chosen for runtime,
/// not fidelity.
pub const REQUESTS_PER_DAY: usize = 100_000;

/// *Effective* per-request demand used by the capacity calibration,
/// measured against the vendored `rand` stream.
///
/// [`SimConfig::calibrated`] estimates the peak offered load analytically
/// from the hourly diurnal profile, but the actual trace stream is
/// burstier at 10-minute-slot granularity, so the analytic estimate
/// undershoots the true peak. The plain measured mean demand is
/// 0.1182 work-s/request; this constant is tuned slightly above it so
/// that the *measured* unshared midnight peak lands in the paper's
/// ≈ 250 s regime (248 s; the measured peak-slot utilization works out
/// to ρ ≈ 1.20). Re-derive it with
/// `cargo run --release -p agreements-experiments --bin calibrate`
/// after any change to the trace generator or RNG stream.
pub const MEAN_DEMAND: f64 = 0.1220;

/// Peak offered-load over capacity ratio fed to the *analytic*
/// calibration formula. The slot-level burstiness correction on top of
/// it lives in [`MEAN_DEMAND`]; together they put the measured unshared
/// peak at ≈ 250 s (validated by `fig05` and the `calibrate` binary).
pub const PEAK_RHO: f64 = 1.05;

/// Workload seed for every figure (determinism across binaries).
pub const SEED: u64 = 20000;

/// The standard one-hour inter-proxy skew (ISPs one time zone apart).
pub const HOUR: f64 = 3600.0;

/// Generate the standard traces with the given inter-proxy gap (seconds).
pub fn traces(gap: f64) -> Vec<ProxyTrace> {
    TraceConfig::paper(REQUESTS_PER_DAY, SEED).generate(N_PROXIES, gap)
}

/// The calibrated base configuration (no sharing).
pub fn base_config() -> SimConfig {
    SimConfig::calibrated(N_PROXIES, REQUESTS_PER_DAY, MEAN_DEMAND, PEAK_RHO)
}

/// Run without sharing at a capacity factor (Figures 5 and 7).
pub fn run_no_sharing(gap: f64, capacity_factor: f64) -> SimResult {
    let cfg = base_config().with_capacity_factor(capacity_factor);
    Simulator::new(cfg).expect("valid config").run(&traces(gap)).expect("run")
}

/// Run with sharing.
pub fn run_sharing(
    agreements: AgreementMatrix,
    level: usize,
    policy: PolicyKind,
    gap: f64,
    redirect_cost: f64,
    capacity_factor: f64,
) -> SimResult {
    run_sharing_with_telemetry(
        agreements,
        level,
        policy,
        gap,
        redirect_cost,
        capacity_factor,
        Telemetry::default(),
    )
}

/// [`run_sharing`] with a telemetry plane attached to the simulator (and
/// through it the allocation policy). Passing `Telemetry::default()` is
/// exactly [`run_sharing`].
#[allow(clippy::too_many_arguments)]
pub fn run_sharing_with_telemetry(
    agreements: AgreementMatrix,
    level: usize,
    policy: PolicyKind,
    gap: f64,
    redirect_cost: f64,
    capacity_factor: f64,
    telemetry: Telemetry,
) -> SimResult {
    let sharing = SharingConfig { agreements, level, policy, redirect_cost, schedule: Vec::new() };
    let cfg = base_config().with_capacity_factor(capacity_factor).with_sharing(sharing);
    let mut sim = Simulator::new(cfg).expect("valid config");
    sim.set_telemetry(telemetry);
    sim.run(&traces(gap)).expect("run")
}

/// Run with sharing whose agreements fluctuate mid-day: the schedule's
/// edits are applied at epoch boundaries and the flow table is repaired
/// incrementally (Figure 12's renegotiation variant).
pub fn run_sharing_scheduled(
    agreements: AgreementMatrix,
    level: usize,
    policy: PolicyKind,
    gap: f64,
    redirect_cost: f64,
    schedule: Vec<agreements_proxysim::AgreementEvent>,
) -> SimResult {
    run_sharing_scheduled_with_telemetry(
        agreements,
        level,
        policy,
        gap,
        redirect_cost,
        schedule,
        Telemetry::default(),
    )
}

/// [`run_sharing_scheduled`] with a telemetry plane attached: the
/// incremental flow repairs driven by the schedule land in the
/// `flow_dirty_rows` histogram alongside the policy's solve records.
#[allow(clippy::too_many_arguments)]
pub fn run_sharing_scheduled_with_telemetry(
    agreements: AgreementMatrix,
    level: usize,
    policy: PolicyKind,
    gap: f64,
    redirect_cost: f64,
    schedule: Vec<agreements_proxysim::AgreementEvent>,
    telemetry: Telemetry,
) -> SimResult {
    let sharing = SharingConfig { agreements, level, policy, redirect_cost, schedule };
    let cfg = base_config().with_sharing(sharing);
    let mut sim = Simulator::new(cfg).expect("valid config");
    sim.set_telemetry(telemetry);
    sim.run(&traces(gap)).expect("run")
}

/// Pull `--telemetry-out PATH` out of an argument vector, removing both
/// tokens so positional parsing downstream never sees them. Returns the
/// path when the flag was present.
///
/// Exits with an error message (status 2) when the flag is given
/// without a value — silently treating the next figure argument as a
/// path would be worse.
pub fn take_telemetry_out(args: &mut Vec<String>) -> Option<PathBuf> {
    let pos = args.iter().position(|a| a == "--telemetry-out")?;
    if pos + 1 >= args.len() {
        eprintln!("--telemetry-out requires a path argument");
        std::process::exit(2);
    }
    let path = args.remove(pos + 1);
    args.remove(pos);
    Some(PathBuf::from(path))
}

/// Serialize a merged telemetry snapshot to `path` as pretty JSON.
pub fn write_snapshot(path: &std::path::Path, snapshot: &Snapshot) {
    std::fs::write(path, snapshot.to_json()).unwrap_or_else(|e| {
        eprintln!("failed to write telemetry snapshot {}: {e}", path.display());
        std::process::exit(1);
    });
    eprintln!("telemetry snapshot written to {}", path.display());
}

/// The complete-graph structure used by Figures 6–8 and 12: every ISP
/// shares 10% with every other.
pub fn complete_10pct() -> AgreementMatrix {
    Structure::Complete { n: N_PROXIES, share: 0.10 }.build().expect("valid structure")
}

/// The loop structure of Figures 9–11: 80% with the next ISP, `skip`
/// positions ahead.
pub fn loop_80pct(skip: usize) -> AgreementMatrix {
    Structure::Loop { n: N_PROXIES, share: 0.80, skip }.build().expect("valid structure")
}

/// The ISP whose series the figures plot. The paper shows "a particular
/// ISP"; we pick proxy 9 because its donor chain under the loop
/// structures (proxies 8, 7, 6, …) never wraps the ring, making it the
/// *typical* ISP — proxy 0's donor would be proxy 9, fifteen local hours
/// away, an artifact of 10 proxies spanning only 10 of 24 time zones.
/// Reported times are in this proxy's local slots (series are shifted
/// back by its skew before printing).
pub const PLOTTED_PROXY: usize = 9;

/// [`PLOTTED_PROXY`]'s per-slot average-wait series rotated into its
/// *local* time (slot 0 = its local midnight) given the run's skew gap.
pub fn local_series(r: &SimResult, gap: f64) -> Vec<f64> {
    let wall = r.proxy_avg_wait_series(PLOTTED_PROXY);
    let shift_slots = ((PLOTTED_PROXY as f64 * gap / 600.0) as usize) % SLOTS_PER_DAY;
    (0..SLOTS_PER_DAY).map(|s| wall[(s + shift_slots) % SLOTS_PER_DAY]).collect()
}

/// Print a CSV header plus one row per 10-minute local slot with the
/// given labelled series (see [`local_series`]).
pub fn print_series(columns: &[(&str, Vec<f64>)]) {
    print!("slot,hour");
    for (label, _) in columns {
        print!(",{label}");
    }
    println!();
    for s in 0..SLOTS_PER_DAY {
        print!("{s},{:.3}", s as f64 / 6.0);
        for (_, col) in columns {
            print!(",{:.4}", col[s]);
        }
        println!();
    }
}

/// Print a one-line summary per result: the plotted proxy's statistics
/// plus system-wide redirection numbers.
pub fn print_summary(rows: &[(&str, &SimResult)]) {
    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "config", "avg_wait_s", "peak_slot_s", "worst_s", "redir_%", "peak_rd_%", "stable"
    );
    for (label, r) in rows {
        println!(
            "{:<28} {:>12.4} {:>12.2} {:>12.2} {:>10.3} {:>10.3} {:>8}",
            label,
            r.proxy_avg_wait(PLOTTED_PROXY),
            r.proxy_peak_slot_avg_wait(PLOTTED_PROXY),
            r.proxy_worst_wait(PLOTTED_PROXY),
            100.0 * r.redirect_fraction(),
            100.0 * r.peak_redirect_fraction(),
            r.is_stable()
        );
    }
}

/// The order-preserving scoped-thread fan-out behind every figure
/// sweep, re-exported from `agreements-util` (one definition serves the
/// flow closure, the GRM tests, and the sweeps here). Each job builds
/// its own `Simulator` (hence its own allocation solver, so no
/// warm-start state crosses configurations), which makes the parallel
/// output byte-identical to running the jobs back to back.
pub use agreements_util::par_map;

/// Run a set of simulation configurations concurrently (one scoped
/// thread per configuration, all replaying the same traces) and return
/// results in input order. Parameter sweeps are embarrassingly parallel;
/// on a multi-core host this turns a figure's sweep into one
/// wall-clock run. Single-core hosts just run them back to back.
pub fn run_sweep(configs: Vec<SimConfig>, traces: &[ProxyTrace]) -> Vec<SimResult> {
    par_map(configs, |cfg| Simulator::new(cfg).expect("valid config").run(traces).expect("run"))
}

/// Shared driver for Figures 9, 10, and 11 (loop structures at different
/// skips): sweeps transitivity levels and prints series + summary.
pub fn run_loop_figure(skip: usize, figure: &str) {
    let levels = [1usize, 2, 3, 5, 9];
    let results: Vec<_> = par_map(levels.to_vec(), |level| {
        let r = run_sharing(loop_80pct(skip), level, PolicyKind::Lp, HOUR, 0.0, 1.0);
        (format!("level={level}"), r)
    });

    println!("# {figure}: loop structure, 80% share, skip={skip}");
    let series: Vec<(&str, Vec<f64>)> =
        results.iter().map(|(l, r)| (l.as_str(), local_series(r, HOUR))).collect();
    print_series(&series);
    println!();
    let cols: Vec<(&str, &SimResult)> = results.iter().map(|(l, r)| (l.as_str(), r)).collect();
    print_summary(&cols);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structures_have_expected_shape() {
        let c = complete_10pct();
        assert_eq!(c.n(), N_PROXIES);
        assert_eq!(c.num_edges(), N_PROXIES * (N_PROXIES - 1));
        assert_eq!(c.get(0, 5), 0.10);
        let l = loop_80pct(3);
        assert_eq!(l.num_edges(), N_PROXIES);
        assert_eq!(l.get(0, 3), 0.80);
    }

    #[test]
    fn base_config_is_calibrated() {
        let cfg = base_config();
        assert_eq!(cfg.n, N_PROXIES);
        assert!(cfg.capacity > 0.0);
        assert!(cfg.sharing.is_none());
    }

    #[test]
    fn sweep_matches_sequential() {
        use agreements_trace::TraceConfig;
        let traces = TraceConfig::paper(2_000, 3).generate(2, 1800.0);
        let mut cfg = SimConfig::calibrated(2, 2_000, MEAN_DEMAND, 1.02);
        cfg.warmup_days = 0;
        let seq: Vec<SimResult> = vec![
            Simulator::new(cfg.clone()).unwrap().run(&traces).unwrap(),
            Simulator::new(cfg.clone().with_capacity_factor(1.5)).unwrap().run(&traces).unwrap(),
        ];
        let par = run_sweep(vec![cfg.clone(), cfg.with_capacity_factor(1.5)], &traces);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.served, b.served);
            assert!((a.total_wait - b.total_wait).abs() < 1e-9);
        }
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..32).collect();
        let out = par_map(items.clone(), |i| {
            // Uneven work so completion order differs from input order.
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * i
        });
        let expected: Vec<usize> = items.iter().map(|&i| i * i).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn traces_are_deterministic_and_sized() {
        let a = traces(HOUR);
        let b = traces(HOUR);
        assert_eq!(a.len(), N_PROXIES);
        assert_eq!(a[3].requests.len(), b[3].requests.len());
        assert_eq!(a[0].requests[0], b[0].requests[0]);
    }
}
