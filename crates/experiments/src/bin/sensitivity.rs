//! Sensitivity of the headline results to the two scheduling knobs the
//! paper leaves unspecified: the consultation threshold (how much backlog
//! a proxy tolerates before asking the global scheduler) and the
//! scheduling horizon (how much idle capacity owners offer per
//! consultation).
//!
//! The shipped default (threshold = 2 epochs, horizon = 1 epoch) is the
//! point where the redirected-request fraction matches the paper's
//! "< 1.5%" while the redirect-cost impact of Figure 12 stays negligible.

use agreements_experiments as exp;
use agreements_proxysim::{PolicyKind, SharingConfig, Simulator};

fn main() {
    println!("# Sensitivity: consultation threshold x horizon x redirect cost");
    println!(
        "threshold_epochs,horizon_epochs,redirect_cost,avg_wait_s,peak_slot_s,redir_pct,peak_rd_pct"
    );
    for th in [1.0, 2.0, 3.0, 6.0] {
        for hz in [1.0, 3.0] {
            for cost in [0.0, 0.1, 0.2] {
                let sharing = SharingConfig {
                    agreements: exp::complete_10pct(),
                    level: exp::N_PROXIES - 1,
                    policy: PolicyKind::Lp,
                    redirect_cost: cost,
                    schedule: Vec::new(),
                };
                let mut cfg = exp::base_config().with_sharing(sharing);
                cfg.threshold_epochs = th;
                cfg.horizon_epochs = hz;
                let r = Simulator::new(cfg)
                    .expect("valid config")
                    .run(&exp::traces(exp::HOUR))
                    .expect("run");
                println!(
                    "{th},{hz},{cost},{:.4},{:.2},{:.3},{:.3}",
                    r.proxy_avg_wait(exp::PLOTTED_PROXY),
                    r.proxy_peak_slot_avg_wait(exp::PLOTTED_PROXY),
                    100.0 * r.redirect_fraction(),
                    100.0 * r.peak_redirect_fraction()
                );
            }
        }
    }
}
