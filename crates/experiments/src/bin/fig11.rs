//! Figure 11: loop agreement structure with the sharing neighbour seven
//! time zones away (skip=7). See `fig09` for the family description.

fn main() {
    agreements_experiments::run_loop_figure(7, "Figure 11");
}
