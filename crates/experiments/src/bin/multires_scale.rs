//! The multi-resource scaling experiment: the scaled ISP economy with
//! CPU, bandwidth, and storage demanded together (default n = 512),
//! enforced lane-conjunctively by [`MultiAdmission`] — a demand is
//! admitted only when every resource's LP admits it, and each rejection
//! names its binding resource.
//!
//! Drives the heterogeneous-class day of
//! [`MultiScaleConfig::isp_multi`] (class `p % 3` dominant in lane
//! `p % 3`, bandwidth pooled at 60% of CPU) through
//! [`agreements_experiments::multires::run_multi_day`]: pools refresh
//! hourly, each hour is a DRF fairness epoch (dominant shares, envy
//! pairs, justified complaints — exported as `fairness.*` telemetry
//! counters), and check mode audits every epoch report with the
//! [`fairness`](agreements_experiments::fairness) checker plus pool
//! conservation and re-run determinism.
//!
//! Flags:
//!
//! - `--n N` — principal count (default 512)
//! - `--requests R` — demand events for the day (default 40·n)
//! - `--check` — reduced-volume invariant mode for CI: asserts lane
//!   conservation, the per-epoch fairness audit, rejection attribution,
//!   and bit-identical re-run checksums; exits nonzero on violation.
//! - `--telemetry-out PATH` — write the run's telemetry snapshot as JSON.
//!
//! Run from the repository root:
//!
//! ```text
//! cargo run --release -p agreements-experiments --bin multires_scale -- --n 512
//! ```

use agreements_experiments::multires::{build_admission, run_multi_day};
use agreements_telemetry::{Telemetry, DEFAULT_EVENT_CAPACITY};
use agreements_trace::{MultiScaleConfig, RESOURCE_NAMES};

const SEED: u64 = 20_000;

fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("{flag} requires an integer argument");
            std::process::exit(2);
        })
    })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_out = agreements_experiments::take_telemetry_out(&mut args);
    let check = args.iter().any(|a| a == "--check");
    let n = flag_value(&args, "--n").unwrap_or(512);
    let requests = flag_value(&args, "--requests").unwrap_or(40 * n);

    let cfg = MultiScaleConfig::isp_multi(n, requests, SEED);
    eprintln!(
        "multires_scale: n={n}, {} groups of {}, {requests} demands, \
         lanes {:?} scaled {:?}, seed {SEED}",
        cfg.base.num_groups(),
        cfg.base.group_size,
        RESOURCE_NAMES,
        cfg.capacity_scale
    );
    let workload = cfg.generate();

    let (telemetry, recorder) = Telemetry::recorder(DEFAULT_EVENT_CAPACITY);
    let mut adm = build_admission(&cfg);
    adm.set_telemetry(telemetry.clone());

    let result = run_multi_day(&adm, &workload, &telemetry, check);
    println!("# hour  demands  admitted  admit_rate  granted_units  envy_pairs  complaints");
    for (h, e) in result.hours.iter().zip(&result.epochs) {
        let rate = if h.demands == 0 { 1.0 } else { h.admitted as f64 / h.demands as f64 };
        println!(
            "{:>6} {:>8} {:>9} {:>11.3} {:>14.1} {:>11} {:>11}",
            h.hour,
            h.demands,
            h.admitted,
            rate,
            h.granted_units,
            e.envy_pairs,
            e.justified_complaints
        );
    }
    eprintln!(
        "day total: {} admitted, {} denied, {:.1} units granted, \
         draws checksum {:#018x}, fairness checksum {:#018x}",
        result.admitted,
        result.denied,
        result.granted_units,
        result.draws_checksum,
        result.fairness_checksum
    );
    for (name, count) in RESOURCE_NAMES.iter().zip(&result.denied_by_lane) {
        eprintln!("  binding resource {name}: {count} denial(s)");
    }
    let snapshot = recorder.snapshot();
    for c in &snapshot.counters {
        eprintln!("  {} = {}", c.name, c.value);
    }
    if let Some(path) = &telemetry_out {
        agreements_experiments::write_snapshot(path, &snapshot);
    }

    if check {
        assert_eq!(
            result.denied_by_lane.iter().sum::<usize>(),
            result.denied,
            "every denial must be attributed to a binding resource"
        );
        // Determinism: an identical second run must reproduce both
        // fingerprints exactly (parallel fine solves included).
        let again = run_multi_day(&adm, &workload, &Telemetry::default(), false);
        assert_eq!(
            result.draws_checksum, again.draws_checksum,
            "re-run diverged: multi-lane draws are not deterministic"
        );
        assert_eq!(
            result.fairness_checksum, again.fairness_checksum,
            "re-run diverged: fairness series is not deterministic"
        );
        eprintln!(
            "check: re-run bit-identical (draws {:#018x}, fairness {:#018x})",
            result.draws_checksum, result.fairness_checksum
        );
    }
}
