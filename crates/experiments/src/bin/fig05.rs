//! Figure 5: requests per 10-minute slot and average waiting time per
//! request, **without resource sharing**.
//!
//! Paper: load is heaviest around midnight, lightest in the early morning;
//! the waiting-time curve peaks with the load, reaching ≈ 250 s.

use agreements_experiments as exp;
use agreements_trace::SLOTS_PER_DAY;

fn main() {
    let traces = exp::traces(exp::HOUR);
    let result = exp::run_no_sharing(exp::HOUR, 1.0);

    // Requests per local slot at the plotted proxy; its stream is the base
    // stream shifted, so its local counts equal proxy 0's wall counts.
    let counts = traces[0].per_slot_counts();
    let waits = exp::local_series(&result, exp::HOUR);

    println!("# Figure 5: requests per slot and avg waiting time, no sharing");
    println!("slot,hour,requests,avg_wait_s");
    for s in 0..SLOTS_PER_DAY {
        println!("{s},{:.3},{},{:.4}", s as f64 / 6.0, counts[s], waits[s]);
    }
    println!();
    exp::print_summary(&[("no-sharing", &result)]);
}
