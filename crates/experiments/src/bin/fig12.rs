//! Figure 12: average waiting time as a function of the **redirection
//! cost** (0, 0.1, 0.2 seconds per redirected request), plus an
//! agreement-fluctuation variant.
//!
//! Paper: in the complete agreement graph, the added cost has negligible
//! impact because fewer than 1.5% of requests are redirected overall
//! (under 6% even at peak) — the benefit of moving to an idle server
//! dwarfs the fixed overhead.
//!
//! The fluctuation series models the paper's premise that agreements
//! are *renegotiated while the system runs*: every two hours one ISP
//! resets all nine of its outgoing shares, alternating 5% and 15%
//! around the static 10%. The simulator repairs the transitive flow
//! table incrementally at each renegotiation instead of recomputing it
//! from scratch.

use agreements_experiments as exp;
use agreements_proxysim::{AgreementEvent, PolicyKind};

/// Every two hours one ISP renegotiates its outgoing shares,
/// alternating 5% / 15% around the static 10%.
fn renegotiation_schedule() -> Vec<AgreementEvent> {
    let mut schedule = Vec::new();
    for cycle in 0..12 {
        let at = cycle as f64 * 7200.0;
        let isp = cycle % exp::N_PROXIES;
        let share = if cycle % 2 == 0 { 0.05 } else { 0.15 };
        for j in 0..exp::N_PROXIES {
            if j != isp {
                schedule.push(AgreementEvent { at, from: isp, to: j, share });
            }
        }
    }
    schedule
}

fn main() {
    let costs = [0.0, 0.1, 0.2];
    let mut results = exp::par_map(costs.to_vec(), |cost| {
        let r = exp::run_sharing(
            exp::complete_10pct(),
            exp::N_PROXIES - 1,
            PolicyKind::Lp,
            exp::HOUR,
            cost,
            1.0,
        );
        (format!("redirect_cost={cost}s"), r)
    });
    let fluct = exp::run_sharing_scheduled(
        exp::complete_10pct(),
        exp::N_PROXIES - 1,
        PolicyKind::Lp,
        exp::HOUR,
        0.0,
        renegotiation_schedule(),
    );
    results.push(("fluctuating_5-15%".to_string(), fluct));

    println!("# Figure 12: effect of redirection cost, complete graph 10%");
    let series: Vec<(&str, Vec<f64>)> =
        results.iter().map(|(l, r)| (l.as_str(), exp::local_series(r, exp::HOUR))).collect();
    exp::print_series(&series);
    println!();
    let cols: Vec<(&str, &agreements_proxysim::SimResult)> =
        results.iter().map(|(l, r)| (l.as_str(), r)).collect();
    exp::print_summary(&cols);
}
