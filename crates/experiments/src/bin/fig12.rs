//! Figure 12: average waiting time as a function of the **redirection
//! cost** (0, 0.1, 0.2 seconds per redirected request), plus an
//! agreement-fluctuation variant.
//!
//! Paper: in the complete agreement graph, the added cost has negligible
//! impact because fewer than 1.5% of requests are redirected overall
//! (under 6% even at peak) — the benefit of moving to an idle server
//! dwarfs the fixed overhead.
//!
//! The fluctuation series models the paper's premise that agreements
//! are *renegotiated while the system runs*: every two hours one ISP
//! resets all nine of its outgoing shares, alternating 5% and 15%
//! around the static 10%. The simulator repairs the transitive flow
//! table incrementally at each renegotiation instead of recomputing it
//! from scratch.

//!
//! With `--telemetry-out PATH` every run records through the unified
//! telemetry plane (one recorder per run, merged afterwards so the
//! parallel sweep stays deterministic) and the merged snapshot —
//! counters, LP-solve/latency histograms, per-epoch θ records — is
//! written to PATH as JSON. Without the flag telemetry stays disabled
//! and the binary's output is bit-identical to before the flag existed.

use agreements_experiments as exp;
use agreements_proxysim::{AgreementEvent, PolicyKind};
use agreements_telemetry::{Recorder, Telemetry, DEFAULT_EVENT_CAPACITY};
use std::sync::Arc;

/// Every two hours one ISP renegotiates its outgoing shares,
/// alternating 5% / 15% around the static 10%.
fn renegotiation_schedule() -> Vec<AgreementEvent> {
    let mut schedule = Vec::new();
    for cycle in 0..12 {
        let at = cycle as f64 * 7200.0;
        let isp = cycle % exp::N_PROXIES;
        let share = if cycle % 2 == 0 { 0.05 } else { 0.15 };
        for j in 0..exp::N_PROXIES {
            if j != isp {
                schedule.push(AgreementEvent { at, from: isp, to: j, share });
            }
        }
    }
    schedule
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_out = exp::take_telemetry_out(&mut args);
    // One recorder per run: the parallel sweep's interleaving never
    // touches a shared sink, so each run's event stream stays contiguous
    // and the merged snapshot is deterministic.
    let plane = |_label: &str| -> (Telemetry, Option<Arc<Recorder>>) {
        if telemetry_out.is_some() {
            let (t, r) = Telemetry::recorder(DEFAULT_EVENT_CAPACITY);
            (t, Some(r))
        } else {
            (Telemetry::default(), None)
        }
    };

    let costs = [0.0, 0.1, 0.2];
    let jobs: Vec<(f64, Telemetry, Option<Arc<Recorder>>)> = costs
        .iter()
        .map(|&cost| {
            let (t, r) = plane("cost");
            (cost, t, r)
        })
        .collect();
    let mut recorders: Vec<Option<Arc<Recorder>>> =
        jobs.iter().map(|(_, _, r)| r.clone()).collect();
    let mut results = exp::par_map(jobs, |(cost, telemetry, _)| {
        let r = exp::run_sharing_with_telemetry(
            exp::complete_10pct(),
            exp::N_PROXIES - 1,
            PolicyKind::Lp,
            exp::HOUR,
            cost,
            1.0,
            telemetry,
        );
        (format!("redirect_cost={cost}s"), r)
    });
    let (fluct_telemetry, fluct_recorder) = plane("fluct");
    recorders.push(fluct_recorder);
    let fluct = exp::run_sharing_scheduled_with_telemetry(
        exp::complete_10pct(),
        exp::N_PROXIES - 1,
        PolicyKind::Lp,
        exp::HOUR,
        0.0,
        renegotiation_schedule(),
        fluct_telemetry,
    );
    results.push(("fluctuating_5-15%".to_string(), fluct));

    if let Some(path) = &telemetry_out {
        let mut merged = agreements_telemetry::Snapshot::empty();
        for rec in recorders.iter().flatten() {
            merged.merge(&rec.snapshot());
        }
        exp::write_snapshot(path, &merged);
    }

    println!("# Figure 12: effect of redirection cost, complete graph 10%");
    let series: Vec<(&str, Vec<f64>)> =
        results.iter().map(|(l, r)| (l.as_str(), exp::local_series(r, exp::HOUR))).collect();
    exp::print_series(&series);
    println!();
    let cols: Vec<(&str, &agreements_proxysim::SimResult)> =
        results.iter().map(|(l, r)| (l.as_str(), r)).collect();
    exp::print_summary(&cols);
}
