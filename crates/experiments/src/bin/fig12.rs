//! Figure 12: average waiting time as a function of the **redirection
//! cost** (0, 0.1, 0.2 seconds per redirected request).
//!
//! Paper: in the complete agreement graph, the added cost has negligible
//! impact because fewer than 1.5% of requests are redirected overall
//! (under 6% even at peak) — the benefit of moving to an idle server
//! dwarfs the fixed overhead.

use agreements_experiments as exp;
use agreements_proxysim::PolicyKind;

fn main() {
    let costs = [0.0, 0.1, 0.2];
    let results = exp::par_map(costs.to_vec(), |cost| {
        let r = exp::run_sharing(
            exp::complete_10pct(),
            exp::N_PROXIES - 1,
            PolicyKind::Lp,
            exp::HOUR,
            cost,
            1.0,
        );
        (format!("redirect_cost={cost}s"), r)
    });

    println!("# Figure 12: effect of redirection cost, complete graph 10%");
    let series: Vec<(&str, Vec<f64>)> =
        results.iter().map(|(l, r)| (l.as_str(), exp::local_series(r, exp::HOUR))).collect();
    exp::print_series(&series);
    println!();
    let cols: Vec<(&str, &agreements_proxysim::SimResult)> =
        results.iter().map(|(l, r)| (l.as_str(), r)).collect();
    exp::print_summary(&cols);
}
