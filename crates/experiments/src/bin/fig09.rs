//! Figure 9: loop agreement structure (each ISP shares 80% with one
//! other) with the sharing neighbour one time zone away (skip=1).
//!
//! Paper (Figures 9–11 family): worst-case wait at level 1 is ≈ 35 s for
//! skip=1, ≈ 7 s for skip=3, ≈ 3 s for skip=7; with three or more levels
//! of transitivity it drops to ≈ 2 s in all three configurations.

fn main() {
    agreements_experiments::run_loop_figure(1, "Figure 9");
}
