//! Figure 7: average waiting times **without** sharing at increased
//! processing capacity, vs **with** sharing at baseline capacity.
//!
//! Paper: 25–35% more resources are required to match the performance
//! obtained by resource sharing.

use agreements_experiments as exp;
use agreements_proxysim::PolicyKind;

fn main() {
    let factors = [1.0, 1.1, 1.2, 1.25, 1.3, 1.35, 1.5];
    // The whole capacity ladder plus the shared reference runs in
    // parallel; order is preserved, so the report is unchanged.
    let mut jobs: Vec<Option<f64>> = factors.iter().copied().map(Some).collect();
    jobs.push(None);
    let mut runs = exp::par_map(jobs, |job| match job {
        Some(f) => (format!("no-sharing x{f}"), exp::run_no_sharing(exp::HOUR, f)),
        None => (
            "sharing x1.0".to_string(),
            exp::run_sharing(
                exp::complete_10pct(),
                exp::N_PROXIES - 1,
                PolicyKind::Lp,
                exp::HOUR,
                0.0,
                1.0,
            ),
        ),
    });
    let (_, shared) = runs.pop().expect("shared job");
    let unshared = runs;

    println!("# Figure 7: capacity needed to match sharing");
    let mut series: Vec<(&str, Vec<f64>)> =
        vec![("sharing x1.0", exp::local_series(&shared, exp::HOUR))];
    for (label, r) in &unshared {
        series.push((label.as_str(), exp::local_series(r, exp::HOUR)));
    }
    exp::print_series(&series);
    println!();
    let mut cols: Vec<(&str, &agreements_proxysim::SimResult)> = vec![("sharing x1.0", &shared)];
    for (label, r) in &unshared {
        cols.push((label.as_str(), r));
    }
    exp::print_summary(&cols);
    println!();
    // Crossover factors: the smallest capacity multiplier whose unshared
    // run matches the shared configuration, in average and in peak-slot
    // wait (the paper's figure compares the whole curves; the peak is
    // what the eye matches there).
    for (metric, target, pick) in [
        (
            "avg",
            shared.proxy_avg_wait(exp::PLOTTED_PROXY),
            (|r: &agreements_proxysim::SimResult| r.proxy_avg_wait(exp::PLOTTED_PROXY))
                as fn(&agreements_proxysim::SimResult) -> f64,
        ),
        (
            "peak-slot",
            shared.proxy_peak_slot_avg_wait(exp::PLOTTED_PROXY),
            (|r: &agreements_proxysim::SimResult| r.proxy_peak_slot_avg_wait(exp::PLOTTED_PROXY))
                as fn(&agreements_proxysim::SimResult) -> f64,
        ),
    ] {
        let crossover =
            factors.iter().zip(&unshared).find(|(_, (_, r))| pick(r) <= target).map(|(&f, _)| f);
        match crossover {
            Some(f) => println!(
                "{metric}: sharing at x1.0 ({target:.2} s) is matched by no-sharing at \
                 x{f} => sharing is worth ~{:.0}% extra capacity",
                (f - 1.0) * 100.0
            ),
            None => {
                println!("{metric}: no capacity factor up to x1.5 matches sharing ({target:.2} s)")
            }
        }
    }
}
