//! Performance evidence for the enforcement hot path at scale:
//!
//! 1. **Mutation throughput** — maintaining the transitive flow table
//!    under single-agreement edits, incremental repair
//!    ([`IncrementalFlow`]) vs full recompute
//!    ([`TransitiveFlow::compute`]), at n ∈ {10, 32, 64, 128} on a ring
//!    (sparse: small dirty sets) and a complete graph at level 2 (the
//!    honest worst case: every row is dirty, so the incremental path
//!    can only match the full one).
//! 2. **Request throughput** — the GRM request path at n = 10:
//!    rebuilding a [`SystemState`] per request with a cloned flow matrix
//!    (the pre-PR serve-loop cost) vs allocating against one persistent
//!    zero-clone state, with and without warm starting.
//!
//! Writes `BENCH_PR3.json` (or the path given as the first argument).
//! `--check` runs a reduced iteration count, asserts the correctness
//! invariants (bit-identical tables, identical allocations), and writes
//! nothing — CI's bench-smoke job runs that mode.
//!
//! `--telemetry-out PATH` runs one extra *untimed* instrumented pass
//! (solver + incremental flow recording through the telemetry plane)
//! and writes its snapshot to PATH as JSON. The timed passes always run
//! with the disabled sink, so the flag never perturbs the numbers.
//!
//! Run from the repository root:
//!
//! ```text
//! cargo run --release -p agreements-experiments --bin bench_pr3
//! ```

use agreements_flow::{AgreementMatrix, IncrementalFlow, Structure, TransitiveFlow};
use agreements_sched::{AllocationSolver, SystemState};
use std::sync::Arc;
use std::time::Instant;

/// Principal counts swept by the mutation benchmark.
const SIZES: [usize; 4] = [10, 32, 64, 128];

/// Request amounts cycled across solves (same cycle as `bench_pr1`, so
/// the request-path numbers are directly comparable).
const AMOUNTS: [f64; 4] = [6.0, 8.0, 10.0, 12.0];

struct MutationRow {
    n: usize,
    level: usize,
    structure: &'static str,
    incremental_per_sec: f64,
    full_per_sec: f64,
    speedup: f64,
    avg_rows_recomputed: f64,
}

/// The edit stream for one structure: cycle over existing edges,
/// alternating each edge's share between two values so every edit is a
/// real change.
fn edits(structure: &str, n: usize, count: usize) -> Vec<(usize, usize, f64)> {
    (0..count)
        .map(|k| {
            let lo_hi = if (k / n).is_multiple_of(2) { 0.7 } else { 0.8 };
            match structure {
                "ring" => (k % n, (k % n + 1) % n, lo_hi),
                _ => (k % n, (k % n + 3) % n, lo_hi / 8.0),
            }
        })
        .collect()
}

fn bench_mutations(
    structure: &'static str,
    s: AgreementMatrix,
    level: usize,
    muts: usize,
    check: bool,
) -> MutationRow {
    let n = s.n();
    let stream = edits(structure, n, muts);

    // Incremental repair.
    let mut inc = IncrementalFlow::new(s.clone(), level);
    let start = Instant::now();
    for &(from, to, share) in &stream {
        inc.set(from, to, share).expect("edit in range");
    }
    let inc_secs = start.elapsed().as_secs_f64();
    let rows = inc.rows_recomputed();

    // Full recompute after every edit (the pre-PR cost).
    let mut reference = s;
    let mut full = TransitiveFlow::compute(&reference, level);
    let start = Instant::now();
    for &(from, to, share) in &stream {
        reference.set(from, to, share).expect("edit in range");
        full = TransitiveFlow::compute(&reference, level);
    }
    let full_secs = start.elapsed().as_secs_f64();

    // Invariant: after the identical edit stream the repaired table is
    // bit-identical to the recomputed one.
    for i in 0..n {
        for j in 0..n {
            assert_eq!(
                inc.coefficient(i, j).to_bits(),
                full.coefficient(i, j).to_bits(),
                "{structure} n={n}: incremental diverged at ({i}, {j})"
            );
        }
    }
    if check {
        eprintln!("check: {structure} n={n} bit-identical after {muts} edits");
    }

    MutationRow {
        n,
        level,
        structure,
        incremental_per_sec: muts as f64 / inc_secs,
        full_per_sec: muts as f64 / full_secs,
        speedup: full_secs / inc_secs,
        avg_rows_recomputed: rows as f64 / muts as f64,
    }
}

struct RequestRow {
    mode: &'static str,
    seconds: f64,
    allocations_per_sec: f64,
}

/// The representative allocation state of `bench_pr1`: 10 principals,
/// figure-13 structure, requester 0 drained.
fn request_inputs() -> (Arc<TransitiveFlow>, Vec<f64>) {
    let s = Structure::figure13(10).build().expect("structure");
    let flow = Arc::new(TransitiveFlow::compute(&s, 9));
    let avail: Vec<f64> = (0..10).map(|i| if i == 0 { 0.0 } else { 5.0 + i as f64 }).collect();
    (flow, avail)
}

fn time_requests<F: FnMut(f64) -> f64>(solves: usize, mut solve: F) -> (f64, f64) {
    for x in AMOUNTS {
        std::hint::black_box(solve(x));
    }
    let start = Instant::now();
    let mut acc = 0.0;
    for k in 0..solves {
        acc += solve(AMOUNTS[k % AMOUNTS.len()]);
    }
    std::hint::black_box(acc);
    let secs = start.elapsed().as_secs_f64();
    (secs, solves as f64 / secs)
}

fn bench_requests(solves: usize, check: bool) -> Vec<RequestRow> {
    let (flow, avail) = request_inputs();

    // Old serve-loop cost: a fresh state per request — the flow matrix
    // is cloned and the solver must re-establish skeleton currency by
    // structural scan (the new Arc never pointer-matches).
    let mut clone_solver = AllocationSolver::reduced();
    let (clone_secs, clone_rate) = time_requests(solves, |x| {
        let state =
            SystemState::new(Arc::new((*flow).clone()), None, avail.clone()).expect("state");
        clone_solver.allocate(&state, 0, x).expect("solve").theta
    });

    // Zero-clone: one persistent state; skeleton currency is a pointer
    // compare.
    let state = SystemState::new(Arc::clone(&flow), None, avail.clone()).expect("state");
    let mut solver = AllocationSolver::reduced();
    let (zc_secs, zc_rate) =
        time_requests(solves, |x| solver.allocate(&state, 0, x).expect("solve").theta);

    let mut warm = AllocationSolver::reduced();
    warm.set_warm_start(true);
    let (warm_secs, warm_rate) =
        time_requests(solves, |x| warm.allocate(&state, 0, x).expect("solve").theta);

    if check {
        // Invariant: the per-request-clone path and the zero-clone path
        // produce identical allocations.
        let mut a = AllocationSolver::reduced();
        let mut b = AllocationSolver::reduced();
        for x in AMOUNTS {
            let fresh =
                SystemState::new(Arc::new((*flow).clone()), None, avail.clone()).expect("state");
            let cloned = a.allocate(&fresh, 0, x).expect("solve");
            let shared = b.allocate(&state, 0, x).expect("solve");
            assert_eq!(cloned, shared, "zero-clone changed an allocation at x={x}");
        }
        eprintln!("check: zero-clone allocations identical to clone-per-request");
    }

    vec![
        RequestRow {
            mode: "clone_per_request",
            seconds: clone_secs,
            allocations_per_sec: clone_rate,
        },
        RequestRow { mode: "zero_clone", seconds: zc_secs, allocations_per_sec: zc_rate },
        RequestRow { mode: "zero_clone_warm", seconds: warm_secs, allocations_per_sec: warm_rate },
    ]
}

/// One untimed pass with a live recorder: the canonical solve cycle and
/// a handful of flow edits, so the exported snapshot exercises counters,
/// histograms, and the event ring without touching the timed passes.
fn instrumented_pass(path: &std::path::Path) {
    use agreements_telemetry::{Telemetry, DEFAULT_EVENT_CAPACITY};
    let (telemetry, recorder) = Telemetry::recorder(DEFAULT_EVENT_CAPACITY);

    let (flow, avail) = request_inputs();
    let state = SystemState::new(flow, None, avail).expect("state");
    let mut solver = AllocationSolver::reduced();
    solver.set_telemetry(telemetry.clone());
    for x in AMOUNTS {
        solver.allocate(&state, 0, x).expect("solve");
    }
    // An over-ask exercises the fast-reject event path.
    let _ = solver.allocate(&state, 0, 1e9);

    let ring = Structure::Loop { n: 10, share: 0.8, skip: 1 }.build().expect("ring");
    let mut inc = IncrementalFlow::new(ring, 8);
    inc.set_telemetry(telemetry);
    for &(from, to, share) in &edits("ring", 10, 16) {
        inc.set(from, to, share).expect("edit in range");
    }

    agreements_experiments::write_snapshot(path, &recorder.snapshot());
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_out = agreements_experiments::take_telemetry_out(&mut args);
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR3.json".to_string());

    let muts = if check { 64 } else { 4_000 };
    let solves = if check { 256 } else { 20_000 };

    let mut rows: Vec<MutationRow> = Vec::new();
    for n in SIZES {
        // Ring: constant-size dirty sets; the incremental win grows
        // linearly with n.
        let level = (n - 1).min(8);
        let ring = Structure::Loop { n, share: 0.8, skip: 1 }.build().expect("ring");
        rows.push(bench_mutations("ring", ring, level, muts, check));
        // Complete at level 2: every row dirty on every edit — the
        // incremental path degenerates to a full recompute and must not
        // be slower than one.
        let complete = Structure::Complete { n, share: 0.05 }.build().expect("complete");
        rows.push(bench_mutations("complete_l2", complete, 2, muts, check));
    }
    for r in &rows {
        eprintln!(
            "mutations {:<12} n={:<4} level={}: incremental {:>9.0}/s, full {:>9.0}/s, \
             speedup {:>6.2}x, avg dirty rows {:.2}",
            r.structure,
            r.n,
            r.level,
            r.incremental_per_sec,
            r.full_per_sec,
            r.speedup,
            r.avg_rows_recomputed
        );
    }

    let requests = bench_requests(solves, check);
    for r in &requests {
        eprintln!("requests {:<18} n=10: {:>9.0} allocations/s", r.mode, r.allocations_per_sec);
    }

    if let Some(path) = &telemetry_out {
        instrumented_pass(path);
    }

    if check {
        eprintln!("check mode: all invariants hold; no baseline written");
        return;
    }

    let mutation_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"structure\": \"{}\", \"n\": {}, \"level\": {}, \
                 \"mutations\": {muts}, \"incremental_per_sec\": {:.0}, \
                 \"full_per_sec\": {:.0}, \"speedup\": {:.2}, \
                 \"avg_rows_recomputed\": {:.2} }}",
                r.structure,
                r.n,
                r.level,
                r.incremental_per_sec,
                r.full_per_sec,
                r.speedup,
                r.avg_rows_recomputed
            )
        })
        .collect();
    let request_json: Vec<String> = requests
        .iter()
        .map(|r| {
            format!(
                "    {{ \"mode\": \"{}\", \"seconds\": {:.4}, \
                 \"allocations_per_sec\": {:.0} }}",
                r.mode, r.seconds, r.allocations_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"pr3_enforcement_hot_path\",\n  \
         \"mutation_throughput\": [\n{}\n  ],\n  \
         \"request_throughput\": {{\n    \"principals\": 10,\n    \
         \"formulation\": \"reduced\",\n    \"solves_per_mode\": {solves},\n    \
         \"modes\": [\n{}\n    ]\n  }}\n}}\n",
        mutation_json.join(",\n"),
        request_json.join(",\n"),
    );
    std::fs::write(&out_path, json)
        .unwrap_or_else(|e| panic!("writing baseline to {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
