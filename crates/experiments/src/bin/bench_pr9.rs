//! Loss-window curves for the group-committed TCP federation: when the
//! journal batches fsyncs, how many settled-but-unsynced records are at
//! risk at the moment a crash lands, and what does that window cost or
//! buy in throughput?
//!
//! Each fsync the syncer issues retires the journal's unsynced tail;
//! the daemon's `group_commit_records` histogram observes that tail's
//! size per fsync, so its mean/max *are* the loss window — the records
//! a kill -9 between fsyncs would force back through dedup replay. This
//! bench sweeps the two knobs that shape the window, under two link
//! latencies:
//!
//!   max_pending ∈ {8, 32, 128}  (group fill threshold)
//! × max_hold    ∈ {1, 4} ms     (partial-group hold timer)
//! × latency     ∈ {0, 1000} µs  (deterministic injected jitter)
//!
//! over the pipelined TCP federation (n=64, 4 workers, 1024 requests).
//! Every cell routes worker traffic through the bidirectional fault
//! proxy (that is what `--transport tcp` does), so the latency cells
//! measure the group-commit plane under a link that actually stalls
//! frame delivery rather than an idealized loopback.
//!
//! Writes `BENCH_PR9.json` (or the path given as the first argument).
//! `--check` runs a reduced matrix with the federation's bit-for-bit
//! replay verifier on, plus one fully chaotic cell (seeded drop + dup +
//! hold + delay on both directions, checker-gated), and writes nothing
//! — CI's bench-smoke job runs that mode.
//!
//! Run from the repository root:
//!
//! ```text
//! cargo run --release -p agreements-experiments --bin bench_pr9
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

/// Group fill thresholds swept (the `batched:N` fsync policy).
const MAX_PENDING: [usize; 3] = [8, 32, 128];
/// Partial-group hold timers swept, in milliseconds.
const MAX_HOLD_MS: [u64; 2] = [1, 4];
/// Injected per-frame latency caps swept, in microseconds.
const LATENCY_US: [u64; 2] = [0, 1000];

const N: usize = 64;
const WORKERS: usize = 4;
const REQUESTS: usize = 1024;

#[derive(Debug, Clone)]
struct Cell {
    max_pending: usize,
    max_hold_ms: u64,
    latency_us: u64,
    events: u64,
    per_sec: f64,
    group_fsyncs: u64,
    records_mean: f64,
    records_max: f64,
}

/// Minimal field extractor for the federation harness's flat JSON —
/// every value is a bare number, string, or bool on its own line.
fn json_field(doc: &str, key: &str) -> String {
    let pat = format!("\"{key}\":");
    let at = doc.find(&pat).unwrap_or_else(|| panic!("field {key} missing in {doc}"));
    let rest = &doc[at + pat.len()..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().trim_matches('"').to_string()
}

fn json_f64(doc: &str, key: &str) -> f64 {
    json_field(doc, key).parse().unwrap_or_else(|e| panic!("field {key} not a number: {e}"))
}

/// The federation harness lives next to this binary in the target dir.
fn federation_bin() -> PathBuf {
    let me = std::env::current_exe().expect("current_exe");
    let bin = me.parent().expect("target dir").join("federation");
    assert!(
        bin.exists(),
        "federation binary not built next to bench_pr9 ({}): build the \
         agreements-experiments binaries first",
        bin.display()
    );
    bin
}

/// Run one pipelined-TCP federation cell and parse its throughput and
/// group-commit telemetry from `--json-out`.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    fed: &Path,
    scratch: &Path,
    idx: usize,
    max_pending: usize,
    max_hold_ms: u64,
    latency_us: u64,
    chaos: Option<u64>,
    requests: usize,
    check: bool,
) -> Cell {
    let json_out = scratch.join(format!("cell-{idx}.json"));
    let dir = scratch.join(format!("fed-{idx}"));
    let mut cmd = Command::new(fed);
    cmd.arg("--mode").arg("pipelined");
    cmd.arg("--transport").arg("tcp");
    cmd.arg("--fsync").arg(format!("batched:{max_pending}"));
    cmd.arg("--max-hold-ms").arg(max_hold_ms.to_string());
    cmd.arg("--n").arg(N.to_string());
    cmd.arg("--workers").arg(WORKERS.to_string());
    cmd.arg("--requests").arg(requests.to_string());
    cmd.arg("--dir").arg(&dir);
    cmd.arg("--json-out").arg(&json_out);
    if latency_us > 0 {
        cmd.arg("--latency").arg(latency_us.to_string());
    }
    if let Some(seed) = chaos {
        cmd.arg("--chaos").arg(seed.to_string());
    }
    if check {
        cmd.arg("--check");
    }
    eprintln!(
        "--- loss-window cell: batched:{max_pending} hold={max_hold_ms}ms \
         latency={latency_us}us{}",
        chaos.map(|s| format!(" chaos={s}")).unwrap_or_default()
    );
    let status = cmd.status().expect("spawn federation");
    assert!(
        status.success(),
        "federation cell failed: batched:{max_pending} hold={max_hold_ms}ms \
         latency={latency_us}us"
    );
    let doc = std::fs::read_to_string(&json_out).expect("cell json");
    Cell {
        max_pending,
        max_hold_ms,
        latency_us,
        events: json_f64(&doc, "events") as u64,
        per_sec: json_f64(&doc, "events_per_sec"),
        group_fsyncs: json_f64(&doc, "group_fsyncs") as u64,
        records_mean: json_f64(&doc, "group_records_mean"),
        records_max: json_f64(&doc, "group_records_max"),
    }
}

fn find(cells: &[Cell], max_pending: usize, max_hold_ms: u64, latency_us: u64) -> &Cell {
    cells
        .iter()
        .find(|c| {
            c.max_pending == max_pending
                && c.max_hold_ms == max_hold_ms
                && c.latency_us == latency_us
        })
        .unwrap_or_else(|| {
            panic!("missing cell batched:{max_pending}/{max_hold_ms}ms/{latency_us}us")
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR9.json".to_string());

    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    eprintln!("host parallelism: {cores}");

    let fed = federation_bin();
    let scratch = std::env::temp_dir().join(format!("agreements-bench-pr9-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");

    if check {
        // Reduced matrix, bit-for-bit verifier on: both hold timers at
        // one fill threshold, both latencies — then one fully chaotic
        // cell. Gates are correctness; the committed baseline carries
        // the curves.
        let mut idx = 0;
        for (mp, mh, lat) in [(8usize, 1u64, 0u64), (32, 4, 1000)] {
            let c = run_cell(&fed, &scratch, idx, mp, mh, lat, None, 256, true);
            assert!(c.group_fsyncs >= 1, "no group commits recorded in check cell {idx}");
            idx += 1;
        }
        let chaotic = run_cell(&fed, &scratch, idx, 32, 4, 0, Some(9), 256, true);
        assert!(chaotic.group_fsyncs >= 1, "no group commits under chaos");
        let _ = std::fs::remove_dir_all(&scratch);
        eprintln!("check mode: all cells checker-clean; no baseline written");
        return;
    }

    let mut cells: Vec<Cell> = Vec::new();
    let mut idx = 0;
    for mp in MAX_PENDING {
        for mh in MAX_HOLD_MS {
            for lat in LATENCY_US {
                cells.push(run_cell(&fed, &scratch, idx, mp, mh, lat, None, REQUESTS, false));
                idx += 1;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    for c in &cells {
        eprintln!(
            "loss window batched:{:>3} hold={}ms latency={:>4}us: {:>7.0} events/s, \
             {:>4} fsyncs, {:>6.1} mean / {:>4.0} max records at risk",
            c.max_pending,
            c.max_hold_ms,
            c.latency_us,
            c.per_sec,
            c.group_fsyncs,
            c.records_mean,
            c.records_max
        );
    }

    // Shape gates. The curves themselves are the deliverable; these only
    // pin the directions that must hold for the loss-window story to be
    // coherent on any host.
    for c in &cells {
        assert!(c.group_fsyncs >= 1, "cell recorded no group commits: {c:?}");
        assert!(c.records_mean >= 1.0, "fsync retired fewer than one record on average: {c:?}");
    }
    // A larger group fill must not fsync (meaningfully) more often. On
    // a slow link the hold timer, not the fill threshold, paces the
    // syncer — batched:8 and batched:128 then fsync at the same timer
    // cadence and the counts converge to equal-within-noise, which is
    // precisely the loss-window story the curves record. The gate
    // therefore carries slack for timer-dominated cells instead of
    // demanding strict monotonicity.
    for mh in MAX_HOLD_MS {
        for lat in LATENCY_US {
            let small = find(&cells, 8, mh, lat);
            let large = find(&cells, 128, mh, lat);
            assert!(
                (large.group_fsyncs as f64) <= small.group_fsyncs as f64 * 1.15 + 5.0,
                "a larger group fill must not fsync more often (hold={mh}ms latency={lat}us): \
                 batched:128 {} vs batched:8 {}",
                large.group_fsyncs,
                small.group_fsyncs
            );
        }
    }

    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{ \"max_pending\": {}, \"max_hold_ms\": {}, \"latency_us\": {}, \
                 \"events\": {}, \"events_per_sec\": {:.1}, \"group_fsyncs\": {}, \
                 \"records_per_fsync_mean\": {:.3}, \"records_per_fsync_max\": {:.1} }}",
                c.max_pending,
                c.max_hold_ms,
                c.latency_us,
                c.events,
                c.per_sec,
                c.group_fsyncs,
                c.records_mean,
                c.records_max
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"bench\": \"pr9_loss_window_curves\",\n  \
         \"economy\": \"isp_blocks_of_8_ring_span_2\",\n  \
         \"transport\": \"tcp\",\n  \"mode\": \"pipelined\",\n  \
         \"n\": {N},\n  \"workers\": {WORKERS},\n  \"requests\": {REQUESTS},\n  \
         \"host_parallelism\": {cores},\n  \
         \"loss_window_curves\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    std::fs::write(&out_path, json)
        .unwrap_or_else(|e| panic!("writing baseline to {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
