//! Heterogeneous capacities (extension): one under-provisioned ISP in an
//! otherwise uniform federation. Sharing agreements let the weak ISP
//! borrow through the diurnal peak — the "capacity investment" story of
//! Figure 7 seen from the other side.

use agreements_experiments as exp;
use agreements_proxysim::{PolicyKind, SharingConfig, SimResult, Simulator};

const WEAK: usize = 9; // also the plotted proxy
const WEAK_FACTOR: f64 = 0.7;

fn run(sharing: bool) -> SimResult {
    let base = exp::base_config();
    let mut caps = vec![base.capacity; exp::N_PROXIES];
    caps[WEAK] *= WEAK_FACTOR;
    let mut cfg = base.with_per_proxy_capacity(caps);
    if sharing {
        cfg = cfg.with_sharing(SharingConfig {
            agreements: exp::complete_10pct(),
            level: exp::N_PROXIES - 1,
            policy: PolicyKind::Lp,
            redirect_cost: 0.0,
            schedule: Vec::new(),
        });
    }
    Simulator::new(cfg).expect("valid config").run(&exp::traces(exp::HOUR)).expect("run")
}

fn main() {
    let alone = run(false);
    let shared = run(true);

    println!("# Heterogeneity: ISP {WEAK} at {WEAK_FACTOR}x capacity, others at 1x");
    println!("{:<24} {:>14} {:>14} {:>12}", "config", "weak avg_wait", "weak peak", "weak worst");
    for (label, r) in [("no-sharing", &alone), ("sharing 10% LP", &shared)] {
        println!(
            "{:<24} {:>14.3} {:>14.2} {:>12.2}",
            label,
            r.proxy_avg_wait(WEAK),
            r.proxy_peak_slot_avg_wait(WEAK),
            r.proxy_worst_wait(WEAK)
        );
    }
    // The strong ISPs pay little for carrying the weak one.
    let strong_avg = |r: &SimResult| {
        (0..exp::N_PROXIES).filter(|&p| p != WEAK).map(|p| r.proxy_avg_wait(p)).sum::<f64>()
            / (exp::N_PROXIES - 1) as f64
    };
    println!();
    println!(
        "strong ISPs' mean avg-wait: {:.3} s alone vs {:.3} s sharing",
        strong_avg(&alone),
        strong_avg(&shared)
    );
    println!(
        "weak ISP improves {:.0}x; redirected {:.2}% of all requests",
        alone.proxy_avg_wait(WEAK) / shared.proxy_avg_wait(WEAK).max(1e-9),
        100.0 * shared.redirect_fraction()
    );
}
