//! Calibration audit: measures the workload the figures actually run
//! against the constants in `agreements-experiments`.
//!
//! Prints the measured per-request mean demand, the empirical peak-slot
//! utilization under the current calibrated capacity, and the unshared
//! peak wait for a small sweep of candidate `MEAN_DEMAND` values — the
//! evidence behind the constant's current setting. Re-run after any
//! change to the trace generator or the vendored RNG stream; if the
//! sweep's ≈ 250 s row moves, update `MEAN_DEMAND` to match it.

use agreements_experiments::*;
use agreements_proxysim::{SimConfig, Simulator};
use agreements_trace::{mean_demand, peak_rho, ServiceModel};

fn main() {
    let svc = ServiceModel::PAPER;
    let ts = traces(HOUR);
    let cfg = base_config();
    println!("measured mean demand    = {:.6} work-s/request", mean_demand(&ts[0], &svc));
    println!("calibrated capacity     = {:.6} (MEAN_DEMAND = {MEAN_DEMAND})", cfg.capacity);
    println!(
        "empirical peak-slot rho = {:.4} (analytic target PEAK_RHO = {PEAK_RHO})",
        peak_rho(&ts[0], &svc, cfg.capacity)
    );
    println!();
    println!("{:<10} {:>10} {:>14} {:>10}", "MD", "peak_rho", "peak_slot_s", "avg_s");
    for md in [0.1180, 0.1214, MEAN_DEMAND, 0.1227, 0.1397] {
        let cfg = SimConfig::calibrated(N_PROXIES, REQUESTS_PER_DAY, md, PEAK_RHO);
        let rho = peak_rho(&ts[0], &svc, cfg.capacity);
        let r = Simulator::new(cfg).expect("valid config").run(&ts).expect("run");
        let marker = if (md - MEAN_DEMAND).abs() < 1e-12 { "  <- MEAN_DEMAND" } else { "" };
        println!(
            "{:<10.4} {:>10.4} {:>14.2} {:>10.3}{marker}",
            md,
            rho,
            r.proxy_peak_slot_avg_wait(PLOTTED_PROXY),
            r.proxy_avg_wait(PLOTTED_PROXY)
        );
    }
}
