//! Performance evidence for the scale-out sharded enforcement plane:
//! hierarchical (auto-partitioned multigrid) vs flat LP allocation at
//! n ∈ {128, 512, 1000} principals.
//!
//! The economy is the grown ISP case study ([`ScaleConfig::isp`]): full
//! sharing inside regional groups of 8, 25% mutual backup between ring
//! neighbours. The request mix cycles every principal as requester with
//! amounts that mostly stay inside the home group but periodically
//! overflow into the coarse + parallel-fine path, so both multigrid
//! tiers are exercised.
//!
//! Writes `BENCH_PR5.json` (or the path given as the first argument).
//! `--check` runs reduced volumes, asserts the correctness invariants
//! (hierarchical admit/deny verdicts match the flat level-1 LP oracle on
//! a uniform-block economy; parallel fine solves bit-identical to
//! sequential), and writes nothing — CI's bench-smoke job runs that mode.
//!
//! `--telemetry-out PATH` runs one extra *untimed* instrumented pass at
//! n = 512 and writes its snapshot (hier.* counters + LP solve-span
//! histogram) to PATH. The timed passes always run with the disabled
//! sink. A summary of the same histogram is embedded in the JSON either
//! way.
//!
//! Run from the repository root:
//!
//! ```text
//! cargo run --release -p agreements-experiments --bin bench_pr5
//! ```

use agreements_flow::{PartitionOptions, TransitiveFlow};
use agreements_sched::hierarchy::HierarchicalScheduler;
use agreements_sched::{AllocationSolver, SchedError, SystemState};
use agreements_telemetry::{HistKind, Telemetry, DEFAULT_EVENT_CAPACITY};
use agreements_trace::ScaleConfig;
use std::sync::Arc;
use std::time::Instant;

/// Principal counts swept.
const SIZES: [usize; 3] = [128, 512, 1000];

/// Request amounts cycled across solves. Per-principal pools are 6 and
/// groups hold 8 members (pool 48), so 2–6 stay in the home group while
/// 80 overflows it and forces the coarse + parallel-fine path (reach is
/// 48 + 4 neighbour groups × 25% × 48 = 96).
const AMOUNTS: [f64; 4] = [2.0, 4.0, 6.0, 80.0];

struct AllocRow {
    n: usize,
    mode: &'static str,
    solves: usize,
    seconds: f64,
    allocations_per_sec: f64,
    mean_latency_us: f64,
}

fn row(n: usize, mode: &'static str, solves: usize, seconds: f64) -> AllocRow {
    AllocRow {
        n,
        mode,
        solves,
        seconds,
        allocations_per_sec: solves as f64 / seconds,
        mean_latency_us: seconds / solves as f64 * 1e6,
    }
}

/// Deterministic request cycle: requester walks a coprime stride so every
/// group appears; amounts cycle [`AMOUNTS`].
fn request_at(k: usize, n: usize) -> (usize, f64) {
    ((k * 13) % n, AMOUNTS[k % AMOUNTS.len()])
}

fn time_hier(sched: &HierarchicalScheduler, avail: &[f64], solves: usize) -> f64 {
    let n = avail.len();
    // Warm-up pass over one amount cycle.
    for k in 0..AMOUNTS.len() {
        let (r, x) = request_at(k, n);
        std::hint::black_box(sched.allocate(avail, r, x).expect("in capacity"));
    }
    let start = Instant::now();
    let mut acc = 0.0;
    for k in 0..solves {
        let (r, x) = request_at(k, n);
        acc += sched.allocate(avail, r, x).expect("in capacity").theta;
    }
    std::hint::black_box(acc);
    start.elapsed().as_secs_f64()
}

fn time_flat(solver: &mut AllocationSolver, state: &SystemState, solves: usize) -> f64 {
    let n = state.n();
    for k in 0..AMOUNTS.len().min(solves) {
        let (r, x) = request_at(k, n);
        std::hint::black_box(solver.allocate(state, r, x).expect("in capacity"));
    }
    let start = Instant::now();
    let mut acc = 0.0;
    for k in 0..solves {
        let (r, x) = request_at(k, n);
        acc += solver.allocate(state, r, x).expect("in capacity").theta;
    }
    std::hint::black_box(acc);
    start.elapsed().as_secs_f64()
}

fn bench_size(n: usize, check: bool) -> Vec<AllocRow> {
    let cfg = ScaleConfig::isp(n, 0, 20_000);
    let s = cfg.agreements().expect("economy");
    let avail = vec![cfg.base_availability; n];

    let mut seq = HierarchicalScheduler::auto(&s, &PartitionOptions::default(), 1).expect("auto");
    assert_eq!(seq.num_groups(), cfg.num_groups(), "auto partition must recover the regions");
    let mut par = HierarchicalScheduler::auto(&s, &PartitionOptions::default(), 1).expect("auto");
    par.set_parallel_fine(true);
    seq.set_parallel_fine(false);

    // The flat oracle pays for the full n-principal LP per request; keep
    // its solve count small at large n (a single n = 1000 solve is ~10⁵×
    // a home-group fine solve).
    let (hier_solves, flat_solves) = if check {
        (64, 4)
    } else {
        match n {
            128 => (20_000, 400),
            512 => (20_000, 40),
            _ => (10_000, 8),
        }
    };

    let seq_secs = time_hier(&seq, &avail, hier_solves);
    let par_secs = time_hier(&par, &avail, hier_solves);

    let flow = Arc::new(TransitiveFlow::compute(&s, 1));
    let state = SystemState::new(flow, None, avail.clone()).expect("state");
    let mut flat = AllocationSolver::reduced();
    let flat_secs = time_flat(&mut flat, &state, flat_solves);

    if check {
        // Invariant: parallel fine solves are bit-identical to sequential,
        // including on the coarse overflow path.
        for k in 0..16 {
            let (r, x) = request_at(k, n);
            let a = seq.allocate(&avail, r, x).expect("seq");
            let b = par.allocate(&avail, r, x).expect("par");
            assert_eq!(a.theta.to_bits(), b.theta.to_bits(), "theta diverged at k={k}");
            for (da, db) in a.draws.iter().zip(&b.draws) {
                assert_eq!(da.to_bits(), db.to_bits(), "draw diverged at k={k}");
            }
        }
        eprintln!("check: n={n} parallel fine solves bit-identical to sequential");
    }

    vec![
        row(n, "hier_sequential", hier_solves, seq_secs),
        row(n, "hier_parallel", hier_solves, par_secs),
        row(n, "flat_lp", flat_solves, flat_secs),
    ]
}

/// Differential oracle spot-check (the proptest suite runs the full
/// randomized version): on a uniform-block economy with intra share 1.0,
/// hierarchical admit/deny verdicts match the flat level-1 LP.
fn check_differential() {
    let cfg = ScaleConfig::isp(32, 0, 7);
    let s = cfg.agreements().expect("economy");
    let sched = HierarchicalScheduler::auto(&s, &PartitionOptions::default(), 1).expect("auto");
    let flow = Arc::new(TransitiveFlow::compute(&s, 1));
    let mut flat = AllocationSolver::reduced();
    let avail = vec![cfg.base_availability; 32];
    let state = SystemState::new(flow, None, avail.clone()).expect("state");
    for k in 0..64 {
        let r = (k * 5) % 32;
        let x = 0.5 + (k as f64) * 2.3;
        let hier_ok = sched.allocate(&avail, r, x).is_ok();
        let flat_ok = match flat.allocate(&state, r, x) {
            Ok(_) => true,
            Err(SchedError::InsufficientCapacity { .. }) => false,
            Err(e) => panic!("flat oracle failed: {e}"),
        };
        assert_eq!(hier_ok, flat_ok, "verdict diverged at requester {r}, x={x:.2}");
    }
    eprintln!("check: hierarchical verdicts match the flat LP oracle (64 spot requests)");
}

/// One untimed pass at n = 512 with a live recorder; returns the solve
/// histogram summary (and the full snapshot for `--telemetry-out`).
fn instrumented_pass() -> agreements_telemetry::Snapshot {
    let (telemetry, recorder) = Telemetry::recorder(DEFAULT_EVENT_CAPACITY);
    let n = 512;
    let cfg = ScaleConfig::isp(n, 0, 20_000);
    let s = cfg.agreements().expect("economy");
    let mut sched = HierarchicalScheduler::auto(&s, &PartitionOptions::default(), 1).expect("auto");
    sched.set_parallel_fine(true);
    sched.set_telemetry(telemetry);
    let avail = vec![cfg.base_availability; n];
    for k in 0..512 {
        let (r, x) = request_at(k, n);
        sched.allocate(&avail, r, x).expect("in capacity");
    }
    recorder.snapshot()
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_out = agreements_experiments::take_telemetry_out(&mut args);
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR5.json".to_string());

    check_differential();

    let mut rows: Vec<AllocRow> = Vec::new();
    for n in SIZES {
        rows.extend(bench_size(n, check));
        let base = rows.len() - 3;
        let speedup = rows[base].allocations_per_sec / rows[base + 2].allocations_per_sec;
        for r in &rows[base..] {
            eprintln!(
                "allocate {:<16} n={:<5} {:>6} solves: {:>10.0}/s ({:>9.1} µs/alloc)",
                r.mode, r.n, r.solves, r.allocations_per_sec, r.mean_latency_us
            );
        }
        eprintln!("         hierarchical vs flat at n={n}: {speedup:.1}x");
    }

    let snapshot = instrumented_pass();
    if let Some(path) = &telemetry_out {
        agreements_experiments::write_snapshot(path, &snapshot);
    }
    let solve_hist = snapshot
        .histograms
        .iter()
        .find(|h| h.name == HistKind::LpSolveSeconds.name())
        .expect("solve histogram recorded");

    if check {
        eprintln!("check mode: all invariants hold; no baseline written");
        return;
    }

    let alloc_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"n\": {}, \"mode\": \"{}\", \"solves\": {}, \
                 \"seconds\": {:.4}, \"allocations_per_sec\": {:.1}, \
                 \"mean_latency_us\": {:.2} }}",
                r.n, r.mode, r.solves, r.seconds, r.allocations_per_sec, r.mean_latency_us
            )
        })
        .collect();
    let speedups: Vec<String> = SIZES
        .iter()
        .map(|&n| {
            let hier =
                rows.iter().find(|r| r.n == n && r.mode == "hier_sequential").expect("hier row");
            let flat = rows.iter().find(|r| r.n == n && r.mode == "flat_lp").expect("flat row");
            format!(
                "    {{ \"n\": {n}, \"hier_vs_flat\": {:.1} }}",
                hier.allocations_per_sec / flat.allocations_per_sec
            )
        })
        .collect();
    let buckets: Vec<String> = solve_hist
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| format!("      {{ \"bucket\": {i}, \"count\": {c} }}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"pr5_sharded_enforcement\",\n  \
         \"economy\": \"isp_blocks_of_8_ring_span_2\",\n  \
         \"allocate_throughput\": [\n{}\n  ],\n  \
         \"speedup\": [\n{}\n  ],\n  \
         \"solve_span_histogram\": {{\n    \"name\": \"{}\",\n    \
         \"count\": {},\n    \"mean_seconds\": {:.9},\n    \
         \"min_seconds\": {:.9},\n    \"max_seconds\": {:.9},\n    \
         \"nonzero_buckets\": [\n{}\n    ]\n  }}\n}}\n",
        alloc_json.join(",\n"),
        speedups.join(",\n"),
        solve_hist.name,
        solve_hist.count,
        solve_hist.mean(),
        solve_hist.min,
        solve_hist.max,
        buckets.join(",\n"),
    );
    std::fs::write(&out_path, json)
        .unwrap_or_else(|e| panic!("writing baseline to {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
