//! Allocation-objective comparison (extension of paper §3.1): the min-θ
//! perturbation objective vs the fairness and borrowing-cost variants the
//! paper names but does not evaluate.
//!
//! All three run the standard Figure 6 workload (complete graph 10%, 1 h
//! skew, full transitivity).

use agreements_experiments as exp;
use agreements_proxysim::PolicyKind;

fn main() {
    let configs = [
        ("min-theta (paper)", PolicyKind::Lp),
        ("fair-share", PolicyKind::LpFairShare),
        ("cost-aware l=0.5/hop", PolicyKind::LpCostAware { per_hop: 1.0, lambda: 0.5 }),
        ("cost-aware l=5.0/hop", PolicyKind::LpCostAware { per_hop: 1.0, lambda: 5.0 }),
    ];
    let results: Vec<_> = configs
        .iter()
        .map(|&(name, policy)| {
            let r = exp::run_sharing(
                exp::complete_10pct(),
                exp::N_PROXIES - 1,
                policy,
                exp::HOUR,
                0.0,
                1.0,
            );
            (name, r)
        })
        .collect();

    println!("# Objective comparison on the Figure 6 workload");
    let cols: Vec<(&str, &agreements_proxysim::SimResult)> =
        results.iter().map(|(n, r)| (*n, r)).collect();
    exp::print_summary(&cols);
    println!();
    println!("The fairness objective spreads draws relative to owner size;");
    println!("the cost term keeps draws near the requester, trading wait");
    println!("time for locality as lambda grows.");
}
