//! Agreement-structure taxonomy (paper §2.2): complete, sparse,
//! hierarchical, and loop structures compared at an equal per-principal
//! share budget (each ISP gives away 90% of its resources in total,
//! however the structure distributes it).
//!
//! This goes beyond the paper's figures — it quantifies the taxonomy the
//! paper only describes — but uses the same workload and scheduler as
//! Figures 6–11.

use agreements_experiments as exp;
use agreements_flow::{AgreementMatrix, Structure};
use agreements_proxysim::PolicyKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BUDGET: f64 = 0.90;

/// Sparse: each ISP shares with `deg` random others, budget split evenly.
fn sparse(n: usize, deg: usize, seed: u64) -> AgreementMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = AgreementMatrix::zeros(n);
    for i in 0..n {
        let mut partners: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        // Partial Fisher-Yates for `deg` picks.
        for k in 0..deg.min(partners.len()) {
            let j = rng.gen_range(k..partners.len());
            partners.swap(k, j);
        }
        for &p in partners.iter().take(deg) {
            s.set(i, p, BUDGET / deg as f64).unwrap();
        }
    }
    s
}

fn main() {
    let n = exp::N_PROXIES;
    let structures: Vec<(&str, AgreementMatrix)> = vec![
        (
            "complete (0.1 x 9)",
            Structure::Complete { n, share: BUDGET / (n - 1) as f64 }.build().unwrap(),
        ),
        ("sparse (0.3 x 3)", sparse(n, 3, 17)),
        (
            "hierarchical (5+5)",
            Structure::Hierarchical { n, group_size: 5, intra: (BUDGET - 0.2) / 4.0, inter: 0.2 }
                .build()
                .unwrap(),
        ),
        ("loop skip=3 (0.9 x 1)", Structure::Loop { n, share: BUDGET, skip: 3 }.build().unwrap()),
    ];

    println!("# Taxonomy: structures at equal {BUDGET} share budget, LP, full transitivity");
    let results: Vec<_> = structures
        .into_iter()
        .map(|(name, s)| {
            let r = exp::run_sharing(s, n - 1, PolicyKind::Lp, exp::HOUR, 0.0, 1.0);
            (name, r)
        })
        .collect();
    let no_sharing = exp::run_no_sharing(exp::HOUR, 1.0);
    let mut cols: Vec<(&str, &agreements_proxysim::SimResult)> = vec![("no-sharing", &no_sharing)];
    for (name, r) in &results {
        cols.push((name, r));
    }
    exp::print_summary(&cols);
    println!();
    println!("Every structure spends the same total share; connectivity");
    println!("density determines how much of the budget is *reachable* when");
    println!("the local time zone peaks.");
}
