//! Performance evidence for the pipelined, group-committed federation:
//! does dropping call-by-call lockstep actually buy the promised
//! throughput, and what does the warm-started admission path add?
//!
//! Two sections:
//!
//! 1. **Federation throughput** — spawns the sibling `federation`
//!    binary (orchestrator + daemon + workers over UDS) for every cell
//!    of mode ∈ {sequenced, pipelined, nonseq} × fsync ∈ {everyop,
//!    batched:32} × n ∈ {64, 256, 1000} and records events/s from its
//!    `--json-out`. The headline ratio is non-sequenced + group commit
//!    at n = 1000 against the sequenced + everyop cell — the exact
//!    configuration PR 7 shipped as its baseline (~190 events/s on
//!    this class of host).
//! 2. **Warm admission** — in-process `BatchedAdmission` on a
//!    force-parallel shard executor, warm-started bases off vs on,
//!    at n ∈ {256, 1000}. Warm runs are opt-in (default off preserves
//!    PR 7's bit-identity), so the gain is recorded, not assumed.
//!
//! Writes `BENCH_PR8.json` (or the path given as the first argument).
//! `--check` runs a reduced matrix with the federation harness's own
//! `--check` verifiers enabled (bit-for-bit replay for sequenced and
//! pipelined, the order-insensitive battery for nonseq), asserts the
//! warm/cold admission agreement, asserts pipelined ≥ sequenced
//! events/s on multi-core hosts (skipped with a notice on one core),
//! and writes nothing — CI's bench-smoke job runs that mode.
//!
//! Run from the repository root:
//!
//! ```text
//! cargo run --release -p agreements-experiments --bin bench_pr8
//! ```

use agreements_flow::PartitionOptions;
use agreements_sched::hierarchy::HierarchicalScheduler;
use agreements_sched::{AdmissionRequest, BatchedAdmission};
use agreements_trace::ScaleConfig;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

/// Principal counts swept through the federation matrix.
const FED_SIZES: [usize; 3] = [64, 256, 1000];

/// Request amounts cycled across a warm-admission batch (all inside a
/// home group's pool — same stream as `bench_pr6`).
const AMOUNTS: [f64; 5] = [2.0, 4.0, 6.0, 3.0, 5.0];
const BATCH: usize = 64;

fn request_at(k: usize, n: usize) -> (usize, f64) {
    ((k * 13) % n, AMOUNTS[k % AMOUNTS.len()])
}

#[derive(Debug, Clone)]
struct Cell {
    mode: &'static str,
    fsync: &'static str,
    n: usize,
    requests: usize,
    events: u64,
    seconds: f64,
    per_sec: f64,
}

/// Minimal field extractor for the federation harness's flat JSON —
/// every value is a bare number, string, or bool on its own line.
fn json_field(doc: &str, key: &str) -> String {
    let pat = format!("\"{key}\":");
    let at = doc.find(&pat).unwrap_or_else(|| panic!("field {key} missing in {doc}"));
    let rest = &doc[at + pat.len()..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().trim_matches('"').to_string()
}

fn json_f64(doc: &str, key: &str) -> f64 {
    json_field(doc, key).parse().unwrap_or_else(|e| panic!("field {key} not a number: {e}"))
}

/// The federation harness lives next to this binary in the target dir.
fn federation_bin() -> PathBuf {
    let me = std::env::current_exe().expect("current_exe");
    let bin = me.parent().expect("target dir").join("federation");
    assert!(
        bin.exists(),
        "federation binary not built next to bench_pr8 ({}): build the \
         agreements-experiments binaries first",
        bin.display()
    );
    bin
}

/// Run one federation cell end to end (daemon + workers + orchestrator
/// checks when `check`) and parse its throughput from `--json-out`.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    fed: &Path,
    scratch: &Path,
    idx: usize,
    mode: &'static str,
    fsync: &'static str,
    n: usize,
    requests: usize,
    workers: usize,
    check: bool,
) -> Cell {
    let json_out = scratch.join(format!("cell-{idx}.json"));
    let dir = scratch.join(format!("fed-{idx}"));
    let mut cmd = Command::new(fed);
    cmd.arg("--mode").arg(mode);
    cmd.arg("--fsync").arg(fsync);
    cmd.arg("--n").arg(n.to_string());
    cmd.arg("--requests").arg(requests.to_string());
    cmd.arg("--workers").arg(workers.to_string());
    cmd.arg("--dir").arg(&dir);
    cmd.arg("--json-out").arg(&json_out);
    if check {
        cmd.arg("--check");
    }
    eprintln!("--- federation cell: mode={mode} fsync={fsync} n={n} requests={requests}");
    let status = cmd.status().expect("spawn federation");
    assert!(status.success(), "federation cell failed: mode={mode} fsync={fsync} n={n}");
    let doc = std::fs::read_to_string(&json_out).expect("cell json");
    Cell {
        mode,
        fsync,
        n,
        requests,
        events: json_f64(&doc, "events") as u64,
        seconds: json_f64(&doc, "elapsed_s"),
        per_sec: json_f64(&doc, "events_per_sec"),
    }
}

fn find<'a>(cells: &'a [Cell], mode: &str, fsync: &str, n: usize) -> &'a Cell {
    cells
        .iter()
        .find(|c| c.mode == mode && c.fsync == fsync && c.n == n)
        .unwrap_or_else(|| panic!("missing cell {mode}/{fsync}/n={n}"))
}

/// Force-parallel admission front door over the grown ISP economy,
/// optionally with batch-scoped warm-started bases. Forcing (rather
/// than auto-gating) matters here: warm start lives in the shard
/// executor's run fan, so it must exist even on a one-core host.
fn build_front(n: usize, warm: bool) -> (BatchedAdmission, Vec<f64>) {
    let cfg = ScaleConfig::isp(n, 0, 20_000);
    let s = cfg.agreements().expect("economy");
    let mut sched = HierarchicalScheduler::auto(&s, &PartitionOptions::default(), 1).expect("auto");
    sched.set_parallel_fine(true);
    sched.set_warm_runs(warm);
    (BatchedAdmission::new(sched), vec![cfg.base_availability; n])
}

fn time_batched(front: &BatchedAdmission, pristine: &[f64], solves: usize) -> f64 {
    let n = pristine.len();
    let mut avail = pristine.to_vec();
    let reqs: Vec<AdmissionRequest> = (0..BATCH)
        .map(|k| {
            let (requester, amount) = request_at(k, n);
            AdmissionRequest { requester, amount }
        })
        .collect();
    for d in front.admit_batch(&mut avail, &reqs) {
        d.expect("in capacity");
    }
    let start = Instant::now();
    let mut done = 0;
    while done < solves {
        avail.copy_from_slice(pristine);
        for d in front.admit_batch(&mut avail, &reqs) {
            std::hint::black_box(d.expect("in capacity"));
        }
        done += BATCH;
    }
    start.elapsed().as_secs_f64()
}

/// Warm/cold must agree to solver tolerance (the warm basis may walk a
/// different pivot path to the same optimum); warm-off must stay
/// bit-identical to a freshly built front (the default preserves PR 7's
/// replay contract). `proptest_batch` owns the exhaustive version; this
/// is the bench's own smoke so a committed baseline can't be produced
/// from a divergent engine.
fn check_warm_agreement(n: usize) {
    const TOL: f64 = 1e-6;
    let close = |x: f64, y: f64| (x - y).abs() <= TOL * x.abs().max(y.abs()).max(1.0);
    let (cold, pristine) = build_front(n, false);
    let (warm, _) = build_front(n, true);
    let reqs: Vec<AdmissionRequest> = (0..BATCH)
        .map(|k| {
            let (requester, amount) = request_at(k, n);
            AdmissionRequest { requester, amount }
        })
        .collect();
    let mut avail_c = pristine.clone();
    let c = cold.admit_batch(&mut avail_c, &reqs);
    let mut avail_w = pristine.clone();
    let w = warm.admit_batch(&mut avail_w, &reqs);
    for (k, (a, b)) in c.iter().zip(&w).enumerate() {
        let (a, b) = (a.as_ref().expect("cold"), b.as_ref().expect("warm"));
        assert!(close(a.amount, b.amount), "warm amount diverged at k={k}");
        for (da, db) in a.draws.iter().zip(&b.draws) {
            assert!(close(*da, *db), "warm draw diverged at k={k}");
        }
    }
    for (va, vb) in avail_c.iter().zip(&avail_w) {
        assert!(close(*va, *vb), "warm availability diverged at n={n}");
    }
    eprintln!("check: n={n} warm admission agrees with cold within solver tolerance");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR8.json".to_string());

    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    eprintln!("host parallelism: {cores}");

    let fed = federation_bin();
    let scratch = std::env::temp_dir().join(format!("agreements-bench-pr8-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");

    let mut cells: Vec<Cell> = Vec::new();
    let mut idx = 0;
    if check {
        // Reduced matrix with the harness's own verifiers on: bit-for-bit
        // replay for the ordered modes, the order-insensitive battery for
        // nonseq. The gates here are correctness plus the pipelined-vs-
        // sequenced direction; the committed baseline carries the ratios.
        for (mode, fsync) in [
            ("sequenced", "batched:32"),
            ("pipelined", "batched:32"),
            ("nonseq", "batched:32"),
            ("sequenced", "everyop"),
        ] {
            cells.push(run_cell(&fed, &scratch, idx, mode, fsync, 64, 256, 4, true));
            idx += 1;
        }
        let seq = find(&cells, "sequenced", "batched:32", 64);
        let pipe = find(&cells, "pipelined", "batched:32", 64);
        if cores >= 2 {
            assert!(
                pipe.per_sec >= seq.per_sec,
                "pipelined federation slower than sequenced at n=64: {:.0}/s vs {:.0}/s",
                pipe.per_sec,
                seq.per_sec
            );
        } else {
            eprintln!(
                "check: single-core host, pipelining can't overlap the daemon with the \
                 workers; pipelined >= sequenced gate skipped"
            );
        }
        check_warm_agreement(256);
        let _ = std::fs::remove_dir_all(&scratch);
        eprintln!("check mode: all invariants hold; no baseline written");
        return;
    }

    // Full matrix. The n=1000 cells use PR 7's shipped request volume
    // (2048) so the sequenced+everyop row *is* the PR 7 baseline the
    // headline divides by — a smaller volume would pad the stream with
    // cheap report events and flatter the baseline. The LP-bound
    // sequenced cells dominate the wall clock (~30 s each).
    for n in FED_SIZES {
        let requests = match n {
            1000 => 2048,
            _ => 1024,
        };
        for mode in ["sequenced", "pipelined", "nonseq"] {
            for fsync in ["everyop", "batched:32"] {
                cells.push(run_cell(&fed, &scratch, idx, mode, fsync, n, requests, 8, false));
                idx += 1;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);

    for c in &cells {
        eprintln!(
            "federation n={:>4} {:>9}/{:<10} {:>6} events in {:>7.2}s = {:>8.0} events/s",
            c.n, c.mode, c.fsync, c.events, c.seconds, c.per_sec
        );
    }

    // Warm-started admission bases, off vs on.
    check_warm_agreement(256);
    let mut warm_rows: Vec<(usize, &'static str, usize, f64)> = Vec::new();
    for n in [256usize, 1000] {
        let solves = 6_400;
        let (cold, pristine) = build_front(n, false);
        let (warm, _) = build_front(n, true);
        // Interleaved best-of-3 so host drift lands on both modes.
        let (mut best_c, mut best_w) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..3 {
            best_c = best_c.min(time_batched(&cold, &pristine, solves));
            best_w = best_w.min(time_batched(&warm, &pristine, solves));
        }
        warm_rows.push((n, "cold_bases", solves, best_c));
        warm_rows.push((n, "warm_bases", solves, best_w));
        eprintln!(
            "warm admission n={n}: cold {:>9.0}/s, warm {:>9.0}/s ({:.2}x)",
            solves as f64 / best_c,
            solves as f64 / best_w,
            best_c / best_w
        );
    }

    // Headline: the non-sequenced group-committed configuration against
    // PR 7's shipped configuration (sequenced, fsync-per-op), n=1000.
    let baseline = find(&cells, "sequenced", "everyop", 1000);
    let headline = find(&cells, "nonseq", "batched:32", 1000);
    let speedup = headline.per_sec / baseline.per_sec;
    eprintln!(
        "headline n=1000: nonseq+batched {:.0}/s vs sequenced+everyop {:.0}/s = {speedup:.1}x",
        headline.per_sec, baseline.per_sec
    );
    assert!(
        speedup >= 25.0,
        "acceptance: nonseq+batched must be >= 25x the PR 7 sequenced baseline at n=1000, \
         measured {speedup:.1}x"
    );

    let fed_json: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{ \"mode\": \"{}\", \"fsync\": \"{}\", \"n\": {}, \"requests\": {}, \
                 \"events\": {}, \"seconds\": {:.4}, \"events_per_sec\": {:.1} }}",
                c.mode, c.fsync, c.n, c.requests, c.events, c.seconds, c.per_sec
            )
        })
        .collect();
    let ratio_json: Vec<String> = FED_SIZES
        .iter()
        .map(|&n| {
            let seq = find(&cells, "sequenced", "batched:32", n);
            let pipe = find(&cells, "pipelined", "batched:32", n);
            let non = find(&cells, "nonseq", "batched:32", n);
            let every = find(&cells, "sequenced", "everyop", n);
            format!(
                "    {{ \"n\": {n}, \"pipelined_vs_sequenced\": {:.3}, \
                 \"nonseq_vs_sequenced\": {:.3}, \"group_commit_vs_everyop\": {:.3} }}",
                pipe.per_sec / seq.per_sec,
                non.per_sec / seq.per_sec,
                seq.per_sec / every.per_sec
            )
        })
        .collect();
    let warm_json: Vec<String> = warm_rows
        .iter()
        .map(|&(n, mode, solves, secs)| {
            format!(
                "    {{ \"n\": {n}, \"mode\": \"{mode}\", \"solves\": {solves}, \
                 \"seconds\": {:.4}, \"allocations_per_sec\": {:.1} }}",
                secs,
                solves as f64 / secs
            )
        })
        .collect();
    let warm_ratio_json: Vec<String> = [256usize, 1000]
        .iter()
        .map(|&n| {
            let cold = warm_rows.iter().find(|r| r.0 == n && r.1 == "cold_bases").expect("cold");
            let warm = warm_rows.iter().find(|r| r.0 == n && r.1 == "warm_bases").expect("warm");
            format!("    {{ \"n\": {n}, \"warm_vs_cold\": {:.3} }}", cold.3 / warm.3)
        })
        .collect();

    let json = format!(
        "{{\n  \"bench\": \"pr8_pipelined_federation\",\n  \
         \"economy\": \"isp_blocks_of_8_ring_span_2\",\n  \
         \"host_parallelism\": {cores},\n  \
         \"federation_throughput\": [\n{}\n  ],\n  \
         \"mode_ratios_batched32\": [\n{}\n  ],\n  \
         \"headline_n1000\": {{ \"sequenced_everyop_events_per_sec\": {:.1}, \
         \"nonseq_batched32_events_per_sec\": {:.1}, \"speedup\": {:.1} }},\n  \
         \"warm_admission\": [\n{}\n  ],\n  \
         \"warm_admission_gain\": [\n{}\n  ]\n}}\n",
        fed_json.join(",\n"),
        ratio_json.join(",\n"),
        baseline.per_sec,
        headline.per_sec,
        speedup,
        warm_json.join(",\n"),
        warm_ratio_json.join(",\n"),
    );
    std::fs::write(&out_path, json)
        .unwrap_or_else(|e| panic!("writing baseline to {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
