//! Two-resource case study (extension of §3.2): CPU and network kept
//! distinct, allocated as coupled bundles.
//!
//! The paper collapses all proxy resources into one "general" resource;
//! §3.2 describes — but never evaluates — multi-resource requests and
//! coupled binding. This experiment runs the diurnal workload with CPU
//! and network modelled separately and shows that coupled-bundle sharing
//! delivers the same qualitative collapse of the peak as the
//! single-resource model.

use agreements_experiments as exp;
use agreements_proxysim::{run_multires, MultiResConfig, PolicyKind, SharingConfig};
use agreements_trace::{ServiceModel, TraceConfig};

const REQUESTS: usize = 50_000;

fn config(sharing: bool) -> MultiResConfig {
    // CPU calibrated like the main experiments; network sized so that the
    // mean response (~15 kB plus the heavy tail) makes network the
    // bottleneck for large responses only.
    let base = agreements_proxysim::SimConfig::calibrated(
        exp::N_PROXIES,
        REQUESTS,
        exp::MEAN_DEMAND,
        exp::PEAK_RHO,
    );
    MultiResConfig {
        n: exp::N_PROXIES,
        cpu_capacity: base.capacity,
        net_capacity: base.capacity * 0.5, // MB/s; tail responses bind here
        service: ServiceModel::PAPER,
        epoch: 10.0,
        threshold_epochs: 2.0,
        sharing: sharing.then(|| SharingConfig {
            agreements: exp::complete_10pct(),
            level: exp::N_PROXIES - 1,
            policy: PolicyKind::Lp,
            redirect_cost: 0.0,
            schedule: Vec::new(),
        }),
        warmup_days: 1,
        max_drain: 4.0 * 86_400.0,
    }
}

fn main() {
    let traces = TraceConfig::paper(REQUESTS, exp::SEED).generate(exp::N_PROXIES, exp::HOUR);
    let alone = run_multires(&config(false), &traces).expect("run");
    let shared = run_multires(&config(true), &traces).expect("run");

    println!("# Two-resource case study: CPU + network, coupled bundles");
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>10}",
        "config", "avg_wait_s", "peak_slot_s", "p99_s", "redir_%"
    );
    for (label, r) in [("no sharing", &alone), ("coupled sharing", &shared)] {
        println!(
            "{:<20} {:>12.4} {:>12.2} {:>12.2} {:>10.3}",
            label,
            r.proxy_avg_wait(exp::PLOTTED_PROXY),
            r.proxy_peak_slot_avg_wait(exp::PLOTTED_PROXY),
            r.wait_quantile(0.99),
            100.0 * r.redirect_fraction()
        );
    }
    println!();
    println!("A redirected request carries BOTH its CPU and bytes to the same");
    println!("partner; the scheduler allocates bundles whose per-owner supply");
    println!("is the bottleneck of the two idle capacities (bind_coupled).");
}
