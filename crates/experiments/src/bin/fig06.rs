//! Figure 6: average waiting time per request **with resource sharing**
//! for different time skews ("gaps") between the proxy streams.
//!
//! Complete graph between 10 servers, each sharing 10% with every other.
//! Paper: with a gap of 3600 s the average waiting time drops from ≈ 250 s
//! to below 2 s.

use agreements_experiments as exp;
use agreements_proxysim::PolicyKind;

fn main() {
    let gaps = [0.0, 1800.0, 3600.0, 7200.0];
    // One job per gap plus the unshared baseline, all in parallel (each
    // job builds its own simulator and solver; results come back in
    // input order, so the output is identical to the sequential sweep).
    let mut jobs: Vec<Option<f64>> = gaps.iter().copied().map(Some).collect();
    jobs.push(None);
    let mut runs = exp::par_map(jobs, |job| match job {
        Some(gap) => {
            let r = exp::run_sharing(
                exp::complete_10pct(),
                exp::N_PROXIES - 1,
                PolicyKind::Lp,
                gap,
                0.0,
                1.0,
            );
            (format!("sharing gap={gap}s"), r, gap)
        }
        None => ("no-sharing".to_string(), exp::run_no_sharing(exp::HOUR, 1.0), exp::HOUR),
    });
    let (_, no_sharing, _) = runs.pop().expect("baseline job");
    let results = runs;

    println!("# Figure 6: avg waiting time vs time skew, complete graph 10%");
    let mut series: Vec<(&str, Vec<f64>)> =
        vec![("no-sharing", exp::local_series(&no_sharing, exp::HOUR))];
    for (label, r, gap) in &results {
        series.push((label.as_str(), exp::local_series(r, *gap)));
    }
    exp::print_series(&series);
    println!();
    let mut cols: Vec<(&str, &agreements_proxysim::SimResult)> = vec![("no-sharing", &no_sharing)];
    for (label, r, _) in &results {
        cols.push((label.as_str(), r));
    }
    exp::print_summary(&cols);
}
