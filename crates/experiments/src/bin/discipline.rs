//! Queue-discipline ablation (extension): FIFO vs shortest-job-first at
//! every proxy, with and without sharing.
//!
//! The paper caps per-request demand at `c = 30 s` because a heavy
//! response at the head of a FIFO queue spikes everyone's wait; SJF is
//! the textbook alternative. The measured result vindicates the paper's
//! choice emphatically: with *continuous* arrivals, SJF starves the
//! heavy tail for the whole diurnal cycle (small requests keep jumping
//! ahead), the deferred monsters accumulate, and even the *mean* wait
//! explodes by two to three orders of magnitude. FIFO + demand cap is
//! the right call for this workload.
//!
//! (Runs at reduced volume: the starved-queue regime makes SJF's
//! O(queue) selection scan expensive.)

use agreements_experiments as exp;
use agreements_proxysim::{
    PolicyKind, QueueDiscipline, SharingConfig, SimConfig, SimResult, Simulator,
};
use agreements_trace::TraceConfig;

const REQUESTS: usize = 30_000;
const PEAK_RHO: f64 = 1.02;

fn run(discipline: QueueDiscipline, sharing: bool) -> SimResult {
    let traces = TraceConfig::paper(REQUESTS, exp::SEED).generate(exp::N_PROXIES, exp::HOUR);
    let mut cfg = SimConfig::calibrated(exp::N_PROXIES, REQUESTS, exp::MEAN_DEMAND, PEAK_RHO);
    cfg.discipline = discipline;
    if sharing {
        cfg = cfg.with_sharing(SharingConfig {
            agreements: exp::complete_10pct(),
            level: exp::N_PROXIES - 1,
            policy: PolicyKind::Lp,
            redirect_cost: 0.0,
            schedule: Vec::new(),
        });
    }
    Simulator::new(cfg).expect("valid config").run(&traces).expect("run")
}

fn main() {
    println!("# Queue discipline ablation (FIFO vs shortest-job-first)");
    println!("# {REQUESTS} req/proxy/day, peak rho {PEAK_RHO}");
    let rows = [
        ("fifo, no sharing", run(QueueDiscipline::Fifo, false)),
        ("sjf,  no sharing", run(QueueDiscipline::ShortestFirst, false)),
        ("fifo, sharing 10%", run(QueueDiscipline::Fifo, true)),
        ("sjf,  sharing 10%", run(QueueDiscipline::ShortestFirst, true)),
    ];
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "config", "avg_wait_s", "p99_s", "worst_s", "peak_slot", "redir_%"
    );
    for (label, r) in &rows {
        println!(
            "{:<20} {:>12.4} {:>12.2} {:>12.2} {:>10.2} {:>10.3}",
            label,
            r.proxy_avg_wait(exp::PLOTTED_PROXY),
            r.wait_quantile(0.99),
            r.worst_wait,
            r.proxy_peak_slot_avg_wait(exp::PLOTTED_PROXY),
            100.0 * r.redirect_fraction()
        );
    }
    println!();
    println!("Under sustained arrivals SJF starves the heavy tail all day:");
    println!("its deferred monsters blow up even the mean. The paper's");
    println!("FIFO + 30 s demand cap handles the same tail gracefully, and");
    println!("sharing stacks another ~2.4x on top of FIFO.");
}
