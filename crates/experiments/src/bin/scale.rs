//! The large-n scaling experiment: the 10-proxy ISP case study grown to
//! hundreds or thousands of principals (default n = 512), enforced by the
//! auto-partitioned hierarchical scheduler.
//!
//! Drives a full group-skewed diurnal day ([`ScaleConfig::isp`]) through
//! [`HierarchicalScheduler::auto`]: pools refresh at the top of each
//! hour (the per-epoch capacity model of the proxy simulator), demands
//! draw them down, and over-capacity demands are denied. Prints the
//! hourly admit-rate series plus telemetry counters (home-group hits vs
//! coarse escalations), then exercises the *federation* path by routing
//! a slice of the same workload through [`TwoLevelGrm::new_auto`] at
//! `min(n, 256)` principals (one OS thread per group GRM).
//!
//! Flags:
//!
//! - `--n N` — principal count (default 512)
//! - `--requests R` — demand events for the day (default 40·n)
//! - `--check` — reduced-volume invariant mode for CI: asserts pool
//!   conservation, determinism across a re-run, and hierarchical/flat
//!   verdict agreement; exits nonzero on violation.
//! - `--telemetry-out PATH` — write the run's telemetry snapshot as JSON.
//!
//! Run from the repository root:
//!
//! ```text
//! cargo run --release -p agreements-experiments --bin scale -- --n 512
//! ```

use agreements_flow::PartitionOptions;
use agreements_grm::multilevel::TwoLevelGrm;
use agreements_sched::hierarchy::HierarchicalScheduler;
use agreements_sched::SchedError;
use agreements_telemetry::{Telemetry, DEFAULT_EVENT_CAPACITY};
use agreements_trace::{ScaleConfig, ScaleWorkload};

const SEED: u64 = 20_000;
const HOUR: f64 = 3600.0;

struct HourRow {
    hour: usize,
    demands: usize,
    admitted: usize,
    granted_units: f64,
}

struct RunResult {
    hours: Vec<HourRow>,
    admitted: usize,
    denied: usize,
    granted_units: f64,
    /// FNV-1a over the bit patterns of every granted draw vector — the
    /// determinism fingerprint the golden test pins at n = 100.
    draws_checksum: u64,
}

/// Replay the day's demand stream against the scheduler: availability
/// refreshes each hour, granted draws deduct from it, denials leave it
/// untouched. Returns the hourly series plus the determinism fingerprint.
fn run_day(sched: &HierarchicalScheduler, workload: &ScaleWorkload, check: bool) -> RunResult {
    let mut avail = workload.availability.clone();
    let base = &workload.availability;
    let mut hour = 0usize;
    let mut hours: Vec<HourRow> = Vec::new();
    let mut cur = HourRow { hour: 0, demands: 0, admitted: 0, granted_units: 0.0 };
    let (mut admitted, mut denied, mut granted_units) = (0usize, 0usize, 0.0f64);
    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    for d in &workload.demands {
        while d.t >= (hour + 1) as f64 * HOUR {
            hours.push(std::mem::replace(
                &mut cur,
                HourRow { hour: hour + 1, demands: 0, admitted: 0, granted_units: 0.0 },
            ));
            hour += 1;
            avail.copy_from_slice(base);
        }
        cur.demands += 1;
        match sched.allocate(&avail, d.requester, d.amount) {
            Ok(alloc) => {
                let mut drawn = 0.0;
                for (v, &dr) in avail.iter_mut().zip(&alloc.draws) {
                    *v -= dr;
                    drawn += dr;
                    checksum = (checksum ^ dr.to_bits()).wrapping_mul(0x0000_0100_0000_01b3);
                }
                if check {
                    assert!(
                        (drawn - alloc.amount).abs() < 1e-6,
                        "conservation: drew {drawn}, granted {}",
                        alloc.amount
                    );
                    assert!(
                        avail.iter().all(|&v| v > -1e-9),
                        "negative availability after a grant"
                    );
                }
                admitted += 1;
                cur.admitted += 1;
                granted_units += alloc.amount;
                cur.granted_units += alloc.amount;
            }
            Err(SchedError::InsufficientCapacity { .. }) => denied += 1,
            Err(e) => panic!("scheduler failed: {e}"),
        }
    }
    hours.push(cur);
    RunResult { hours, admitted, denied, granted_units, draws_checksum: checksum }
}

/// Route the first `limit` demands through the federation path: a
/// [`TwoLevelGrm`] built straight from the same economy, pools seeded via
/// group-GRM reports. Asserts (check mode) that the federation conserves
/// the pool: total granted ≤ total seeded.
fn run_federation(cfg: &ScaleConfig, workload: &ScaleWorkload, limit: usize, check: bool) {
    let s = cfg.agreements().expect("economy");
    let grm = TwoLevelGrm::new_auto(&s, &PartitionOptions::default(), 1).expect("federation");
    assert_eq!(grm.num_groups(), cfg.num_groups());
    for p in 0..cfg.n {
        grm.group_handle(grm.group_of(p))
            .report(grm.local_index(p), cfg.base_availability)
            .expect("seed pool");
    }
    let (mut admitted, mut denied, mut granted) = (0usize, 0usize, 0.0f64);
    for d in workload.demands.iter().filter(|d| d.requester < cfg.n).take(limit) {
        match grm.request(d.requester, d.amount) {
            Ok(alloc) => {
                admitted += 1;
                granted += alloc.amount;
            }
            Err(agreements_grm::GrmError::Sched(SchedError::InsufficientCapacity { .. })) => {
                denied += 1
            }
            Err(e) => panic!("federation request failed: {e}"),
        }
    }
    let pool = cfg.base_availability * cfg.n as f64;
    eprintln!(
        "federation n={} groups={}: {admitted} admitted, {denied} denied, \
         {granted:.1} of {pool:.1} units granted",
        cfg.n,
        grm.num_groups()
    );
    if check {
        assert!(granted <= pool + 1e-6, "federation over-granted: {granted} > {pool}");
        let mut remaining = 0.0;
        for g in 0..grm.num_groups() {
            remaining += grm.group_handle(g).availability().expect("view").iter().sum::<f64>();
        }
        assert!(
            (remaining + granted - pool).abs() < 1e-6,
            "pool not conserved: {remaining} left + {granted} granted != {pool}"
        );
        eprintln!("check: federation pool conserved to 1e-6");
    }
    grm.shutdown();
}

fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("{flag} requires an integer argument");
            std::process::exit(2);
        })
    })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_out = agreements_experiments::take_telemetry_out(&mut args);
    let check = args.iter().any(|a| a == "--check");
    let n = flag_value(&args, "--n").unwrap_or(512);
    // Default load scales with the economy: 40 demands per principal per
    // day at mean 3.0 units ≈ 0.83× of the 6 × 24 daily pool, so the day
    // is feasible in aggregate but group-local peaks overflow.
    let requests = flag_value(&args, "--requests").unwrap_or(40 * n);

    let cfg = ScaleConfig::isp(n, requests, SEED);
    eprintln!(
        "scale: n={n}, {} groups of {}, {requests} demands, seed {SEED}",
        cfg.num_groups(),
        cfg.group_size
    );
    let workload = cfg.generate();
    let s = cfg.agreements().expect("economy");

    let (telemetry, recorder) = Telemetry::recorder(DEFAULT_EVENT_CAPACITY);
    let mut sched = HierarchicalScheduler::auto(&s, &PartitionOptions::default(), 1).expect("auto");
    sched.set_parallel_fine(true);
    sched.set_telemetry(telemetry);

    let result = run_day(&sched, &workload, check);
    println!("# hour  demands  admitted  admit_rate  granted_units");
    for h in &result.hours {
        let rate = if h.demands == 0 { 1.0 } else { h.admitted as f64 / h.demands as f64 };
        println!(
            "{:>6} {:>8} {:>9} {:>11.3} {:>14.1}",
            h.hour, h.demands, h.admitted, rate, h.granted_units
        );
    }
    eprintln!(
        "day total: {} admitted, {} denied, {:.1} units granted, draws checksum {:#018x}",
        result.admitted, result.denied, result.granted_units, result.draws_checksum
    );
    let snapshot = recorder.snapshot();
    for c in &snapshot.counters {
        eprintln!("  {} = {}", c.name, c.value);
    }
    if let Some(path) = &telemetry_out {
        agreements_experiments::write_snapshot(path, &snapshot);
    }

    if check {
        // Determinism: an identical second run must reproduce the exact
        // draw stream (parallel fine solves included).
        let again = run_day(&sched, &workload, false);
        assert_eq!(
            result.draws_checksum, again.draws_checksum,
            "re-run diverged: parallel fine solves are not deterministic"
        );
        eprintln!("check: re-run bit-identical (checksum {:#018x})", result.draws_checksum);
    }

    // Federation path: cap the principal count (one OS thread per group
    // GRM) and the demand volume.
    let fed_n = n.min(256);
    let fed_cfg = ScaleConfig { n: fed_n, ..cfg.clone() };
    let fed_workload = if fed_n == n { workload } else { fed_cfg.generate() };
    run_federation(&fed_cfg, &fed_workload, if check { 500 } else { 2_000 }, check);
}
