//! Performance baseline for the amortized allocation engine: measures
//! the allocation hot path (cold stateless solves vs the reusable
//! solver, with and without warm starting) and the end-to-end Figure 6
//! sweep (sequential stateless policy vs parallel cached policy), and
//! writes the numbers to `BENCH_PR1.json` (or the path given as the
//! first argument) for regression tracking.
//!
//! Run from the repository root:
//!
//! ```text
//! cargo run --release -p agreements-experiments --bin bench_pr1
//! ```

use agreements_experiments as exp;
use agreements_flow::{Structure, TransitiveFlow};
use agreements_lp::SimplexOptions;
use agreements_proxysim::{PolicyKind, SharingConfig, SimResult, Simulator};
use agreements_sched::lp_model::solve_allocation;
use agreements_sched::{AllocationSolver, Formulation, LpPolicy, SystemState};
use std::time::Instant;

/// Solves per mode in the hot-path measurement.
const SOLVES: usize = 20_000;

/// Request amounts cycled across solves so consecutive LPs move the RHS
/// the way real consultations do.
const AMOUNTS: [f64; 4] = [6.0, 8.0, 10.0, 12.0];

/// The representative allocation state: 10 principals, figure-13
/// structure, requester 0 drained (same as the Criterion bench).
fn alloc_state() -> SystemState {
    let s = Structure::figure13(exp::N_PROXIES).build().expect("structure");
    let flow = TransitiveFlow::compute(&s, exp::N_PROXIES - 1);
    let avail: Vec<f64> =
        (0..exp::N_PROXIES).map(|i| if i == 0 { 0.0 } else { 5.0 + i as f64 }).collect();
    SystemState::new(flow, None, avail).expect("state")
}

fn time_mode<F: FnMut(f64) -> f64>(mut solve: F) -> (f64, f64) {
    // Untimed warmup so one-time setup (skeleton build, first factorize)
    // does not skew a 20k-solve average.
    for x in AMOUNTS {
        std::hint::black_box(solve(x));
    }
    let start = Instant::now();
    let mut acc = 0.0;
    for k in 0..SOLVES {
        acc += solve(AMOUNTS[k % AMOUNTS.len()]);
    }
    std::hint::black_box(acc);
    let secs = start.elapsed().as_secs_f64();
    (secs, SOLVES as f64 / secs)
}

/// The Figure 6 job list: the gap sweep plus the unshared baseline.
fn fig06_jobs() -> Vec<Option<f64>> {
    vec![Some(0.0), Some(1800.0), Some(3600.0), Some(7200.0), None]
}

/// One Figure 6 job with the pre-amortization setup: a stateless
/// [`LpPolicy`] consulted through the trait object, run sequentially by
/// the caller.
fn fig06_job_stateless(job: Option<f64>) -> SimResult {
    match job {
        Some(gap) => {
            let sharing = SharingConfig {
                agreements: exp::complete_10pct(),
                level: exp::N_PROXIES - 1,
                policy: PolicyKind::Lp,
                redirect_cost: 0.0,
                schedule: Vec::new(),
            };
            let cfg = exp::base_config().with_sharing(sharing);
            Simulator::with_policy(cfg, Box::new(LpPolicy::reduced()))
                .expect("valid config")
                .run(&exp::traces(gap))
                .expect("run")
        }
        None => exp::run_no_sharing(exp::HOUR, 1.0),
    }
}

/// One Figure 6 job on the current default path (cached solver).
fn fig06_job_cached(job: Option<f64>) -> SimResult {
    match job {
        Some(gap) => exp::run_sharing(
            exp::complete_10pct(),
            exp::N_PROXIES - 1,
            PolicyKind::Lp,
            gap,
            0.0,
            1.0,
        ),
        None => exp::run_no_sharing(exp::HOUR, 1.0),
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_PR1.json".to_string());

    // --- Hot path: 20k reduced-formulation solves per mode. ---
    let state = alloc_state();
    let opts = SimplexOptions::default();
    let (cold_s, cold_rate) = time_mode(|x| {
        solve_allocation(&state, 0, x, Formulation::Reduced, &opts).expect("solve").theta
    });
    let mut ws = AllocationSolver::reduced();
    let (ws_s, ws_rate) = time_mode(|x| ws.allocate(&state, 0, x).expect("solve").theta);
    let mut warm = AllocationSolver::reduced();
    warm.set_warm_start(true);
    let (warm_s, warm_rate) = time_mode(|x| warm.allocate(&state, 0, x).expect("solve").theta);
    eprintln!(
        "hot path ({SOLVES} solves): cold {cold_rate:.0}/s, workspace {ws_rate:.0}/s \
         ({:.2}x), workspace+warm {warm_rate:.0}/s ({:.2}x)",
        ws_rate / cold_rate,
        warm_rate / cold_rate
    );

    // --- Figure 6 end to end, three ways: the pre-amortization setup
    // (stateless policy, one config after another), the cached solver
    // run sequentially (isolates the solver effect), and the cached
    // solver under `par_map` (what the figure binary actually does; the
    // thread win needs a multi-core host, so the core count is recorded
    // alongside).
    let start = Instant::now();
    let seq: Vec<SimResult> = fig06_jobs().into_iter().map(fig06_job_stateless).collect();
    let seq_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let seq_cached: Vec<SimResult> = fig06_jobs().into_iter().map(fig06_job_cached).collect();
    let seq_cached_s = start.elapsed().as_secs_f64();
    drop(seq_cached);
    let start = Instant::now();
    let par = exp::par_map(fig06_jobs(), fig06_job_cached);
    let par_s = start.elapsed().as_secs_f64();
    // Sanity: both sweeps see the same workload and land in the same
    // regime (warm starting may shift individual ties at solver
    // tolerance, so we compare the headline metric, not bytes).
    let wait = |r: &SimResult| r.proxy_avg_wait(exp::PLOTTED_PROXY);
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.served, b.served, "both sweeps must serve the full trace");
        assert!(
            (wait(a) - wait(b)).abs() < 0.05 * (1.0 + wait(a)),
            "sweeps diverged: {} vs {}",
            wait(a),
            wait(b)
        );
    }
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!(
        "fig06 sweep ({} configs, {cpus} cpus): sequential stateless {seq_s:.2}s, \
         sequential cached {seq_cached_s:.2}s ({:.2}x), parallel cached {par_s:.2}s \
         ({:.2}x)",
        seq.len(),
        seq_s / seq_cached_s,
        seq_s / par_s
    );

    let json = format!(
        "{{\n  \"bench\": \"pr1_amortized_allocation\",\n  \"hot_path\": {{\n    \
         \"principals\": {n},\n    \"formulation\": \"reduced\",\n    \
         \"solves_per_mode\": {SOLVES},\n    \"cold\": {{ \"seconds\": {cold_s:.4}, \
         \"allocations_per_sec\": {cold_rate:.0} }},\n    \"workspace\": {{ \
         \"seconds\": {ws_s:.4}, \"allocations_per_sec\": {ws_rate:.0}, \
         \"speedup_vs_cold\": {ws_x:.2} }},\n    \"workspace_warm\": {{ \
         \"seconds\": {warm_s:.4}, \"allocations_per_sec\": {warm_rate:.0}, \
         \"speedup_vs_cold\": {warm_x:.2} }}\n  }},\n  \"fig06\": {{\n    \
         \"configs\": {cfgs},\n    \"host_cpus\": {cpus},\n    \
         \"sequential_stateless_seconds\": {seq_s:.2},\n    \
         \"sequential_cached_seconds\": {seq_cached_s:.2},\n    \
         \"parallel_cached_seconds\": {par_s:.2},\n    \
         \"cached_speedup\": {cache_x:.2},\n    \"parallel_speedup\": {fig_x:.2}\n  \
         }}\n}}\n",
        n = exp::N_PROXIES,
        ws_x = ws_rate / cold_rate,
        warm_x = warm_rate / cold_rate,
        cfgs = seq.len(),
        cache_x = seq_s / seq_cached_s,
        fig_x = seq_s / par_s,
    );
    std::fs::write(&out_path, json)
        .unwrap_or_else(|e| panic!("writing baseline to {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
