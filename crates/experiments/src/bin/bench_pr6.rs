//! Performance evidence for the persistent shard executor and the
//! batched admission front door: does parallel enforcement actually pay?
//!
//! Two comparisons, both on the grown ISP economy
//! ([`ScaleConfig::isp`]: full sharing inside regional groups of 8, 25%
//! mutual backup between ring neighbours), at n ∈ {128, 512, 1000}:
//!
//! 1. **Admission level** — `BatchedAdmission::admit_batch` on an
//!    auto-gated scheduler (persistent workers + measured break-even)
//!    vs the same batches on a sequential scheduler vs `admit_one`
//!    one-by-one. The auto engine must never lose to sequential: on a
//!    single-core host it *is* sequential (the executor refuses to
//!    spawn), and on multi-core hosts the break-even gate falls back
//!    whenever the fan-out would not pay.
//! 2. **Serve-loop level** — a GRM server answering a blocking client
//!    (runs of one by construction) vs a pipelined client whose
//!    in-flight requests the wakeup-drain loop coalesces into real
//!    batches, plus the flat LP server for context.
//!
//! Writes `BENCH_PR6.json` (or the path given as the first argument).
//! `--check` runs reduced volumes, asserts the correctness invariants
//! (batched ≡ one-by-one bit for bit; auto ≥ sequential throughput on
//! multi-core hosts, skipped with a notice on one core), and writes
//! nothing — CI's bench-smoke job runs that mode.
//!
//! `--telemetry-out PATH` adds one untimed instrumented serve-loop pass
//! at n = 512 and writes its snapshot (grm.batched_allocations,
//! batch-size and queue-wait histograms) to PATH; a summary is embedded
//! in the JSON either way.
//!
//! Run from the repository root:
//!
//! ```text
//! cargo run --release -p agreements-experiments --bin bench_pr6
//! ```

use agreements_flow::PartitionOptions;
use agreements_grm::{GrmHandle, GrmServer};
use agreements_sched::hierarchy::HierarchicalScheduler;
use agreements_sched::{AdmissionRequest, BatchedAdmission};
use agreements_telemetry::{HistKind, Telemetry, DEFAULT_EVENT_CAPACITY};
use agreements_trace::ScaleConfig;
use std::time::Instant;

/// Principal counts swept.
const SIZES: [usize; 3] = [128, 512, 1000];

/// Request amounts cycled across a batch. All fit inside a home group's
/// 48-unit pool, so the stream measures the executor's dispatch and the
/// serve loop's batching — the coarse overflow path has its own
/// baseline in `BENCH_PR5.json`, and the wave/stall protocol its oracle
/// in the `proptest_batch` suite.
const AMOUNTS: [f64; 5] = [2.0, 4.0, 6.0, 3.0, 5.0];

/// Admission batch size: what a busy serve-loop drain plausibly holds.
const BATCH: usize = 64;

struct Row {
    n: usize,
    mode: &'static str,
    solves: usize,
    seconds: f64,
    per_sec: f64,
}

fn row(n: usize, mode: &'static str, solves: usize, seconds: f64) -> Row {
    Row { n, mode, solves, seconds, per_sec: solves as f64 / seconds }
}

/// Deterministic request cycle: requester walks a coprime stride so
/// every group appears; amounts cycle [`AMOUNTS`].
fn request_at(k: usize, n: usize) -> (usize, f64) {
    ((k * 13) % n, AMOUNTS[k % AMOUNTS.len()])
}

fn build_front(n: usize, auto: bool) -> (BatchedAdmission, Vec<f64>) {
    let cfg = ScaleConfig::isp(n, 0, 20_000);
    let s = cfg.agreements().expect("economy");
    let mut sched = HierarchicalScheduler::auto(&s, &PartitionOptions::default(), 1).expect("auto");
    assert_eq!(sched.num_groups(), cfg.num_groups(), "auto partition must recover the regions");
    if auto {
        sched.set_parallel_auto();
    }
    (BatchedAdmission::new(sched), vec![cfg.base_availability; n])
}

/// Time `solves` admissions in batches of [`BATCH`]. Each batch starts
/// from the pristine availability (one memcpy of n floats — noise next
/// to 64 LP solves), so the stream never drains the pools.
fn time_batched(front: &BatchedAdmission, pristine: &[f64], solves: usize) -> f64 {
    let n = pristine.len();
    let mut avail = pristine.to_vec();
    let reqs: Vec<AdmissionRequest> = (0..BATCH)
        .map(|k| {
            let (requester, amount) = request_at(k, n);
            AdmissionRequest { requester, amount }
        })
        .collect();
    // Warm-up: one full batch (first-touch solver skeletons, executor
    // calibration is already done at construction).
    for d in front.admit_batch(&mut avail, &reqs) {
        d.expect("in capacity");
    }
    let start = Instant::now();
    let mut done = 0;
    while done < solves {
        avail.copy_from_slice(pristine);
        let decisions = front.admit_batch(&mut avail, &reqs);
        for d in decisions {
            std::hint::black_box(d.expect("in capacity"));
        }
        done += BATCH;
    }
    start.elapsed().as_secs_f64()
}

/// Time `solves` admissions one `admit_one` at a time, same stream.
fn time_one_by_one(front: &BatchedAdmission, pristine: &[f64], solves: usize) -> f64 {
    let n = pristine.len();
    let mut avail = pristine.to_vec();
    for k in 0..BATCH.min(solves) {
        let (r, x) = request_at(k, n);
        std::hint::black_box(front.admit_one(&mut avail, r, x).expect("in capacity"));
    }
    let start = Instant::now();
    let mut done = 0;
    while done < solves {
        avail.copy_from_slice(pristine);
        for k in 0..BATCH {
            let (r, x) = request_at(k, n);
            std::hint::black_box(front.admit_one(&mut avail, r, x).expect("in capacity"));
        }
        done += BATCH;
    }
    start.elapsed().as_secs_f64()
}

/// Best-of-N timing with the modes interleaved round-robin: round 1
/// times every mode once, round 2 again, and each mode keeps its
/// minimum. Back-to-back blocks would fold host drift (thermal, cron,
/// page cache) into the mode ratios; interleaving spreads any drift
/// across all modes so the committed ratios reflect the code.
fn best_interleaved(rounds: usize, fns: &mut [&mut dyn FnMut() -> f64]) -> Vec<f64> {
    let mut best = vec![f64::INFINITY; fns.len()];
    for _ in 0..rounds {
        for (b, f) in best.iter_mut().zip(fns.iter_mut()) {
            *b = b.min(f());
        }
    }
    best
}

/// Report enormous pools so a long timed request stream never drains
/// them — the serve-loop rows measure delivery, not refill policy.
fn report_all(h: &GrmHandle, n: usize) {
    for i in 0..n {
        h.report(i, 1e12).expect("report");
    }
}

/// Blocking client: every request waits for its decision, so the server
/// drains runs of one.
fn time_serve_blocking(h: &GrmHandle, n: usize, requests: usize) -> f64 {
    for k in 0..64.min(requests) {
        let (r, x) = request_at(k, n);
        h.request(r, x).expect("in capacity");
    }
    let start = Instant::now();
    for k in 0..requests {
        let (r, x) = request_at(k, n);
        std::hint::black_box(h.request(r, x).expect("in capacity"));
    }
    start.elapsed().as_secs_f64()
}

/// Pipelined client: `window` requests in flight, collected together —
/// the server's wakeup drain sees them as one admission batch.
fn time_serve_pipelined(h: &GrmHandle, n: usize, requests: usize, window: usize) -> f64 {
    let mut pending = Vec::with_capacity(window);
    for k in 0..window.min(requests) {
        let (r, x) = request_at(k, n);
        pending.push(h.request_async(r, x).expect("send"));
    }
    for rx in pending.drain(..) {
        rx.recv().expect("reply").expect("in capacity");
    }
    let start = Instant::now();
    let mut k = 0;
    while k < requests {
        let end = (k + window).min(requests);
        for j in k..end {
            let (r, x) = request_at(j, n);
            pending.push(h.request_async(r, x).expect("send"));
        }
        for rx in pending.drain(..) {
            std::hint::black_box(rx.recv().expect("reply").expect("in capacity"));
        }
        k = end;
    }
    start.elapsed().as_secs_f64()
}

fn hier_sched(n: usize) -> HierarchicalScheduler {
    let cfg = ScaleConfig::isp(n, 0, 20_000);
    let s = cfg.agreements().expect("economy");
    let mut sched = HierarchicalScheduler::auto(&s, &PartitionOptions::default(), 1).expect("auto");
    sched.set_parallel_auto();
    sched
}

/// Invariant: batched admission on the auto engine is bit-identical to
/// one-by-one admission on the sequential engine, same stream.
fn check_bit_identity(n: usize) {
    let (seq, pristine) = build_front(n, false);
    let (auto, _) = build_front(n, true);
    let reqs: Vec<AdmissionRequest> = (0..BATCH)
        .map(|k| {
            let (requester, amount) = request_at(k, n);
            AdmissionRequest { requester, amount }
        })
        .collect();
    let mut avail_one = pristine.clone();
    let one: Vec<_> =
        reqs.iter().map(|q| seq.admit_one(&mut avail_one, q.requester, q.amount)).collect();
    let mut avail_bat = pristine.clone();
    let bat = auto.admit_batch(&mut avail_bat, &reqs);
    for (k, (a, b)) in one.iter().zip(&bat).enumerate() {
        let (a, b) = (a.as_ref().expect("seq"), b.as_ref().expect("auto"));
        assert_eq!(a.theta.to_bits(), b.theta.to_bits(), "theta diverged at k={k}");
        for (da, db) in a.draws.iter().zip(&b.draws) {
            assert_eq!(da.to_bits(), db.to_bits(), "draw diverged at k={k}");
        }
    }
    for (va, vb) in avail_one.iter().zip(&avail_bat) {
        assert_eq!(va.to_bits(), vb.to_bits(), "availability diverged at n={n}");
    }
    eprintln!("check: n={n} batched-auto admission bit-identical to sequential one-by-one");
}

/// One untimed pass through a telemetry-instrumented hierarchical GRM;
/// returns the snapshot carrying the batch-size and queue-wait
/// histograms and the batched-allocations counter.
fn instrumented_pass() -> agreements_telemetry::Snapshot {
    let (telemetry, recorder) = Telemetry::recorder(DEFAULT_EVENT_CAPACITY);
    let n = 512;
    let grm = GrmServer::spawn_hierarchical_with_telemetry(hier_sched(n), telemetry);
    let h = grm.handle();
    report_all(&h, n);
    time_serve_pipelined(&h, n, 1024, 128);
    grm.shutdown();
    recorder.snapshot()
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_out = agreements_experiments::take_telemetry_out(&mut args);
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR6.json".to_string());

    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    eprintln!("host parallelism: {cores}");

    let mut rows: Vec<Row> = Vec::new();
    for n in SIZES {
        check_bit_identity(n);
        let solves = if check { 2 * BATCH } else { 25_600 };
        let rounds = if check { 1 } else { 5 };
        // Two instances of each engine, constructed in opposite orders:
        // on a 1-core host the auto engine runs the identical sequential
        // code path, so any persistent auto-vs-sequential gap is heap
        // placement, not code. Timing both instances and keeping the
        // better cancels that bias.
        let (seq_a, pristine) = build_front(n, false);
        let (auto_a, _) = build_front(n, true);
        let (auto_b, _) = build_front(n, true);
        let (seq_b, _) = build_front(n, false);
        // On a 1-core host `set_parallel_auto` refuses to spawn the
        // executor, so the "auto" engine dispatches to literally the
        // same machine code as the sequential one — timing two engine
        // instances separately would publish allocator-placement noise
        // as an engine ratio. When the fallback is active the parallel
        // row therefore reuses the sequential timing, and says so.
        let fallback_active = !auto_a.scheduler().parallel_fine();
        let mut time_one = || {
            time_one_by_one(&seq_a, &pristine, solves)
                .min(time_one_by_one(&seq_b, &pristine, solves))
        };
        let mut time_seq =
            || time_batched(&seq_a, &pristine, solves).min(time_batched(&seq_b, &pristine, solves));
        let mut time_auto = || {
            time_batched(&auto_a, &pristine, solves).min(time_batched(&auto_b, &pristine, solves))
        };
        let (one_secs, seq_secs, auto_secs) = if fallback_active {
            let best = best_interleaved(rounds, &mut [&mut time_one, &mut time_seq]);
            eprintln!(
                "admission n={n}: 1-core fallback active; parallel row reuses the sequential \
                 timing (identical code path)"
            );
            (best[0], best[1], best[1])
        } else {
            let best =
                best_interleaved(rounds, &mut [&mut time_one, &mut time_seq, &mut time_auto]);
            (best[0], best[1], best[2])
        };
        rows.push(row(n, "admit_one_sequential", solves, one_secs));
        rows.push(row(n, "admit_batch_sequential", solves, seq_secs));
        rows.push(row(n, "admit_batch_auto", solves, auto_secs));
        let ratio = seq_secs / auto_secs;
        eprintln!(
            "admission n={n}: one-by-one {:>9.0}/s, batch-seq {:>9.0}/s, batch-auto {:>9.0}/s \
             (auto/seq {ratio:.2}x)",
            solves as f64 / one_secs,
            solves as f64 / seq_secs,
            solves as f64 / auto_secs,
        );
        if check {
            // The gate of record: the auto engine must not lose to the
            // sequential one. On one core they are the same code path
            // (the executor refuses to spawn), so the ratio is pure
            // timer noise and is skipped with a notice.
            if cores >= 2 {
                assert!(
                    ratio >= 0.9,
                    "parallel admission slower than sequential at n={n}: {ratio:.2}x \
                     (0.9 floor absorbs timer noise; the committed baseline must show >= 1.0)"
                );
            } else {
                eprintln!(
                    "check: single-core host, auto==sequential by construction; ratio gate skipped"
                );
            }
        }
    }

    // Serve-loop comparison: blocking vs pipelined clients against the
    // hierarchical server, flat LP server for context.
    let mut serve_rows: Vec<Row> = Vec::new();
    for n in [128, 1000] {
        let requests = if check { 256 } else { 20_000 };
        let window = 256;

        let grm = GrmServer::spawn_hierarchical(hier_sched(n));
        let h = grm.handle();
        report_all(&h, n);
        let rounds = if check { 1 } else { 3 };
        let best = best_interleaved(
            rounds,
            &mut [&mut || time_serve_blocking(&h, n, requests), &mut || {
                time_serve_pipelined(&h, n, requests, window)
            }],
        );
        let (blocking_secs, pipelined_secs) = (best[0], best[1]);
        grm.shutdown();

        let cfg = ScaleConfig::isp(n, 0, 20_000);
        let flat = GrmServer::spawn(cfg.agreements().expect("economy"), 1);
        let fh = flat.handle();
        report_all(&fh, n);
        let flat_requests = if check {
            4
        } else if n >= 1000 {
            16
        } else {
            400
        };
        let flat_secs = time_serve_blocking(&fh, n, flat_requests);
        flat.shutdown();

        serve_rows.push(row(n, "flat_unbatched", flat_requests, flat_secs));
        serve_rows.push(row(n, "hier_unbatched", requests, blocking_secs));
        serve_rows.push(row(n, "hier_batched", requests, pipelined_secs));
        eprintln!(
            "serve loop n={n}: flat {:>9.0}/s, hier blocking {:>9.0}/s, hier pipelined {:>9.0}/s \
             (batched/unbatched {:.2}x)",
            flat_requests as f64 / flat_secs,
            requests as f64 / blocking_secs,
            requests as f64 / pipelined_secs,
            blocking_secs / pipelined_secs,
        );
    }

    let snapshot = instrumented_pass();
    if let Some(path) = &telemetry_out {
        agreements_experiments::write_snapshot(path, &snapshot);
    }
    let batch_hist =
        snapshot.histogram(HistKind::BatchSize).expect("batch-size histogram recorded").clone();
    let wait_hist = snapshot
        .histogram(HistKind::QueueWaitSeconds)
        .expect("queue-wait histogram recorded")
        .clone();
    let batched_ctr = snapshot.counter("grm.batched_allocations");
    assert!(batched_ctr > 0, "instrumented pass recorded no batched allocations");
    assert!(
        batch_hist.mean() > 1.0,
        "pipelined client produced no real batches (mean batch {})",
        batch_hist.mean()
    );
    eprintln!(
        "telemetry: {} batched allocations, mean batch {:.1}, mean queue wait {:.1} µs",
        batched_ctr,
        batch_hist.mean(),
        wait_hist.mean() * 1e6
    );

    if check {
        eprintln!("check mode: all invariants hold; no baseline written");
        return;
    }

    let admission_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"n\": {}, \"mode\": \"{}\", \"solves\": {}, \"seconds\": {:.4}, \
                 \"allocations_per_sec\": {:.1} }}",
                r.n, r.mode, r.solves, r.seconds, r.per_sec
            )
        })
        .collect();
    let ratio_json: Vec<String> = SIZES
        .iter()
        .map(|&n| {
            let seq = rows
                .iter()
                .find(|r| r.n == n && r.mode == "admit_batch_sequential")
                .expect("seq row");
            let auto =
                rows.iter().find(|r| r.n == n && r.mode == "admit_batch_auto").expect("auto row");
            format!(
                "    {{ \"n\": {n}, \"auto_vs_sequential\": {:.3}, \"fallback_active\": {} }}",
                auto.per_sec / seq.per_sec,
                cores < 2
            )
        })
        .collect();
    let serve_json: Vec<String> = serve_rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"n\": {}, \"mode\": \"{}\", \"requests\": {}, \"seconds\": {:.4}, \
                 \"requests_per_sec\": {:.1} }}",
                r.n, r.mode, r.solves, r.seconds, r.per_sec
            )
        })
        .collect();
    let batched_ratio_json: Vec<String> = [128usize, 1000]
        .iter()
        .map(|&n| {
            let unb =
                serve_rows.iter().find(|r| r.n == n && r.mode == "hier_unbatched").expect("unb");
            let bat =
                serve_rows.iter().find(|r| r.n == n && r.mode == "hier_batched").expect("bat");
            format!(
                "    {{ \"n\": {n}, \"batched_vs_unbatched\": {:.2} }}",
                bat.per_sec / unb.per_sec
            )
        })
        .collect();
    // The headline acceptance ratio: what the batched front door admits
    // per second vs what the unbatched (one request per wakeup) serve
    // loop delivers per second, both at n = 1000. Batching exists to
    // amortize exactly the per-request delivery overhead this exposes.
    let admit_1000 =
        rows.iter().find(|r| r.n == 1000 && r.mode == "admit_batch_auto").expect("admission row");
    let serve_1000 =
        serve_rows.iter().find(|r| r.n == 1000 && r.mode == "hier_unbatched").expect("serve row");
    let headline = admit_1000.per_sec / serve_1000.per_sec;
    eprintln!("batched admission vs unbatched serve loop at n=1000: {headline:.2}x");
    let json = format!(
        "{{\n  \"bench\": \"pr6_batched_admission\",\n  \
         \"economy\": \"isp_blocks_of_8_ring_span_2\",\n  \
         \"host_parallelism\": {cores},\n  \
         \"admission_throughput\": [\n{}\n  ],\n  \
         \"parallel_vs_sequential\": [\n{}\n  ],\n  \
         \"serve_loop_throughput\": [\n{}\n  ],\n  \
         \"serve_loop_batching\": [\n{}\n  ],\n  \
         \"batched_admission_vs_unbatched_serve_n1000\": {headline:.2},\n  \
         \"batch_size_histogram\": {{ \"count\": {}, \"mean\": {:.2}, \"max\": {:.0} }},\n  \
         \"queue_wait_histogram\": {{ \"count\": {}, \"mean_seconds\": {:.9}, \
         \"max_seconds\": {:.9} }}\n}}\n",
        admission_json.join(",\n"),
        ratio_json.join(",\n"),
        serve_json.join(",\n"),
        batched_ratio_json.join(",\n"),
        batch_hist.count,
        batch_hist.mean(),
        batch_hist.max,
        wait_hist.count,
        wait_hist.mean(),
        wait_hist.max,
    );
    std::fs::write(&out_path, json)
        .unwrap_or_else(|e| panic!("writing baseline to {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
