//! Figure 10: loop agreement structure with the sharing neighbour three
//! time zones away (skip=3). See `fig09` for the family description.

fn main() {
    agreements_experiments::run_loop_figure(3, "Figure 10");
}
