//! Figure 13: **centralized LP enforcement vs end-point proportional
//! enforcement**.
//!
//! Agreement structure: complete graph with distance-decaying shares —
//! 20% with neighbours one time zone away, 10% two away, 5% three away,
//! 3% further. The baseline redistributes overflow proportionally to the
//! agreement quantities regardless of remote load; the LP scheme sees
//! global availability.
//!
//! Paper: the LP scheme reduces the average waiting time by more than 50%
//! at traffic peak time.

use agreements_experiments as exp;
use agreements_flow::Structure;
use agreements_proxysim::PolicyKind;

fn main() {
    let agreements = Structure::figure13(exp::N_PROXIES).build().expect("structure");
    let lp = exp::run_sharing(
        agreements.clone(),
        exp::N_PROXIES - 1,
        PolicyKind::Lp,
        exp::HOUR,
        0.0,
        1.0,
    );
    let endpoint = exp::run_sharing(
        agreements.clone(),
        exp::N_PROXIES - 1,
        PolicyKind::Proportional,
        exp::HOUR,
        0.0,
        1.0,
    );
    let greedy =
        exp::run_sharing(agreements, exp::N_PROXIES - 1, PolicyKind::Greedy, exp::HOUR, 0.0, 1.0);

    println!("# Figure 13: LP (centralized) vs proportional end-point enforcement");
    let series = vec![
        ("lp-scheme", exp::local_series(&lp, exp::HOUR)),
        ("endpoint-proportional", exp::local_series(&endpoint, exp::HOUR)),
        ("greedy (extra baseline)", exp::local_series(&greedy, exp::HOUR)),
    ];
    exp::print_series(&series);
    println!();
    let cols = vec![
        ("lp-scheme", &lp),
        ("endpoint-proportional", &endpoint),
        ("greedy (extra baseline)", &greedy),
    ];
    exp::print_summary(&cols);
    println!();
    let peak_lp = lp.proxy_peak_slot_avg_wait(exp::PLOTTED_PROXY);
    let peak_ep = endpoint.proxy_peak_slot_avg_wait(exp::PLOTTED_PROXY);
    println!(
        "peak-slot wait: lp {peak_lp:.2} s vs endpoint {peak_ep:.2} s \
         => LP reduces the peak by {:.0}%",
        100.0 * (1.0 - peak_lp / peak_ep)
    );
}
