//! Figure 8: average waiting time vs transitivity level for the
//! **complete graph** (10 ISPs, 10% each).
//!
//! Paper: sharing helps, but the incremental improvement from considering
//! indirect transitive agreements is small — every server is already
//! reachable via a direct agreement.

use agreements_experiments as exp;
use agreements_proxysim::PolicyKind;

fn main() {
    let levels = [1usize, 2, 3, 5, 9];
    // Transitivity sweep plus the unshared baseline, in parallel.
    let mut jobs: Vec<Option<usize>> = levels.iter().copied().map(Some).collect();
    jobs.push(None);
    let mut runs = exp::par_map(jobs, |job| match job {
        Some(level) => {
            let r =
                exp::run_sharing(exp::complete_10pct(), level, PolicyKind::Lp, exp::HOUR, 0.0, 1.0);
            (format!("level={level}"), r)
        }
        None => ("no-sharing".to_string(), exp::run_no_sharing(exp::HOUR, 1.0)),
    });
    let (_, no_sharing) = runs.pop().expect("baseline job");
    let results = runs;

    println!("# Figure 8: transitivity levels, complete graph 10%");
    let mut series: Vec<(&str, Vec<f64>)> =
        vec![("no-sharing", exp::local_series(&no_sharing, exp::HOUR))];
    for (label, r) in &results {
        series.push((label.as_str(), exp::local_series(r, exp::HOUR)));
    }
    exp::print_series(&series);
    println!();
    let mut cols: Vec<(&str, &agreements_proxysim::SimResult)> = vec![("no-sharing", &no_sharing)];
    for (label, r) in &results {
        cols.push((label.as_str(), r));
    }
    exp::print_summary(&cols);
}
