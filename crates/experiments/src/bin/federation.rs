//! Multi-process GRM federation over real sockets, with kill-9 crash
//! recovery — the distributed twin of the in-process `scale` replay.
//!
//! One binary, three roles, selected by `--role` (the orchestrator
//! re-execs itself for the other two):
//!
//! - **orchestrator** (default): computes the in-process *reference*
//!   decision sequence, launches one `daemon` and `--workers` worker
//!   processes over a Unix-domain socket, optionally SIGKILLs the daemon
//!   mid-replay (`--kill-grm`) and respawns it, then merges the workers'
//!   outcome logs and checks them — decision-for-decision, bit-for-bit —
//!   against the reference.
//! - **daemon**: opens (or recovers) the durable agreement journal,
//!   respawns the `GrmServer` from the recovered state, and serves it on
//!   the socket in sequenced mode. It never exits on its own; the
//!   orchestrator kills it, which for `--kill-grm` is the entire point.
//! - **worker**: replays its residue class of the global event stream
//!   (`seq % workers == id`), call by call, retrying retryable transport
//!   errors forever — a crashed daemon looks like a slow network, and
//!   at-most-once settlement is the journal's job, not the worker's.
//!
//! The event stream is a pure function of `(n, requests, seed, epochs)`,
//! so every process derives it independently; nothing is coordinated but
//! the socket. Each epoch refreshes every principal's pool to the base
//! availability (`Report` events), then replays that epoch's slice of
//! the diurnal [`ScaleConfig::isp`] demand stream (`Request` events,
//! each carrying a deterministic [`RequestId`] so retries and crash
//! replays dedup correctly).
//!
//! What `--check` asserts after the replay:
//!
//! 1. **Coverage / at-most-once**: exactly one outcome line per global
//!    sequence number — no event lost, none settled twice.
//! 2. **Decision equality**: every grant's amount *and* an FNV
//!    fingerprint of its draw vector match the reference bit-for-bit;
//!    every denial denies where the reference denies.
//! 3. **State equality**: the daemon's final availability vector equals
//!    the reference bit-for-bit.
//! 4. **Pool conservation**: the final pools sum to `n * base` minus
//!    exactly the units granted since the last refresh.
//!
//! With `--kill-grm` the orchestrator additionally asserts the kill
//! landed mid-replay (before the workload drained), so the recovery path
//! demonstrably ran.
//!
//! ```text
//! federation [--n 1000] [--workers 8] [--requests 2048] [--epochs 4]
//!            [--seed 20000] [--dir PATH] [--kill-grm] [--check]
//!            [--telemetry-out PATH]
//! ```

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use agreements_grm::{GrmServer, RequestId};
use agreements_net::journal::{DurableJournal, FsyncPolicy, Snapshot as JournalSnapshot};
use agreements_net::listener::{GrmListener, ListenerConfig};
use agreements_net::NetGrmClient;
use agreements_telemetry::{HistKind, Snapshot, Telemetry};
use agreements_trace::{ScaleConfig, DAY_SECONDS};

/// Dedup namespace for federation request ids (any stable nonzero tag
/// works; the id only has to be unique per event and identical between
/// the reference fold and every worker retry).
const ID_CLIENT: u64 = 0xFED;

/// GRM request level used throughout the scale experiments.
const LEVEL: usize = 1;

// ---------------------------------------------------------------------
// The global event stream (pure function of the flags)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Pool refresh: principal `lrm` reports `available` units.
    Report { lrm: usize, available: f64 },
    /// Allocation request by `lrm` for `amount` units.
    Request { lrm: usize, amount: f64 },
}

/// Build the global, totally ordered event stream: `epochs` rounds of
/// (full pool refresh, then that time-window's demands).
fn event_stream(cfg: &ScaleConfig, epochs: usize) -> Vec<Event> {
    let workload = cfg.generate();
    let window = DAY_SECONDS / epochs as f64;
    let mut events = Vec::with_capacity(cfg.n * epochs + workload.demands.len());
    let mut next = 0usize;
    for e in 0..epochs {
        for (lrm, &available) in workload.availability.iter().enumerate() {
            events.push(Event::Report { lrm, available });
        }
        let end = if e + 1 == epochs { f64::INFINITY } else { (e + 1) as f64 * window };
        while next < workload.demands.len() && workload.demands[next].t < end {
            let d = &workload.demands[next];
            events.push(Event::Request { lrm: d.requester, amount: d.amount });
            next += 1;
        }
    }
    events
}

fn request_id(seq: u64) -> RequestId {
    RequestId { client: ID_CLIENT, seq }
}

/// FNV-1a over the draw vector's bit patterns — the per-decision
/// fingerprint workers log and the orchestrator compares.
fn draws_fingerprint(draws: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for d in draws {
        for b in d.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Canonical one-token-per-field outcome encoding shared by the
/// reference fold and the worker logs; comparing the strings compares
/// the decisions bit-for-bit.
fn outcome_line(event: &Event, result: &Result<Option<(u64, u64)>, String>) -> String {
    match (event, result) {
        (Event::Report { .. }, Ok(None)) => "R".to_string(),
        (Event::Request { .. }, Ok(Some((amount_bits, fnv)))) => {
            format!("G {amount_bits:016x} {fnv:016x}")
        }
        (Event::Request { .. }, Err(_)) => "D".to_string(),
        other => unreachable!("event/outcome shape mismatch: {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Reference: the same stream folded through an in-process server
// ---------------------------------------------------------------------

struct Reference {
    /// Canonical outcome line per global sequence number.
    outcomes: Vec<String>,
    /// Final availability, bit-exact.
    availability: Vec<f64>,
    /// Units granted since the last pool refresh (for conservation).
    granted_since_refresh: f64,
}

fn reference_run(cfg: &ScaleConfig, events: &[Event]) -> Reference {
    let matrix = cfg.agreements().expect("valid scale agreements");
    let server = GrmServer::spawn(matrix, LEVEL);
    let h = server.handle();
    let mut outcomes = Vec::with_capacity(events.len());
    let mut granted_since_refresh = 0.0f64;
    for (seq, ev) in events.iter().enumerate() {
        let result = match *ev {
            Event::Report { lrm, available } => {
                h.report(lrm, available).expect("in-process report");
                if lrm + 1 == cfg.n {
                    granted_since_refresh = 0.0;
                }
                Ok(None)
            }
            Event::Request { lrm, amount } => {
                match h.request_idempotent(lrm, amount, request_id(seq as u64)) {
                    Ok(alloc) => {
                        granted_since_refresh += alloc.amount;
                        Ok(Some((alloc.amount.to_bits(), draws_fingerprint(&alloc.draws))))
                    }
                    Err(e) => Err(e.to_string()),
                }
            }
        };
        outcomes.push(outcome_line(ev, &result));
    }
    let availability = h.availability().expect("in-process availability");
    server.shutdown();
    Reference { outcomes, availability, granted_since_refresh }
}

// ---------------------------------------------------------------------
// Flags
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Flags {
    role: String,
    n: usize,
    workers: usize,
    requests: usize,
    epochs: usize,
    seed: u64,
    dir: PathBuf,
    worker_id: usize,
    kill_grm: bool,
    check: bool,
    telemetry_out: Option<PathBuf>,
}

fn flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    }
    let v = args.remove(pos + 1);
    args.remove(pos);
    Some(v)
}

fn flag_present(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

fn parse_flags() -> Flags {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_out = agreements_experiments::take_telemetry_out(&mut args);
    let parse = |v: Option<String>, what: &str, default: usize| -> usize {
        v.map(|s| s.parse().unwrap_or_else(|_| panic!("invalid {what}: {s}"))).unwrap_or(default)
    };
    let flags = Flags {
        role: flag_value(&mut args, "--role").unwrap_or_else(|| "orchestrator".into()),
        n: parse(flag_value(&mut args, "--n"), "--n", 1000),
        workers: parse(flag_value(&mut args, "--workers"), "--workers", 8),
        requests: parse(flag_value(&mut args, "--requests"), "--requests", 2048),
        epochs: parse(flag_value(&mut args, "--epochs"), "--epochs", 4).max(1),
        seed: flag_value(&mut args, "--seed")
            .map(|s| s.parse().unwrap_or_else(|_| panic!("invalid --seed: {s}")))
            .unwrap_or(agreements_experiments::SEED),
        dir: flag_value(&mut args, "--dir").map(PathBuf::from).unwrap_or_else(|| {
            std::env::temp_dir().join(format!("agreements-federation-{}", std::process::id()))
        }),
        worker_id: parse(flag_value(&mut args, "--worker-id"), "--worker-id", 0),
        kill_grm: flag_present(&mut args, "--kill-grm"),
        check: flag_present(&mut args, "--check"),
        telemetry_out,
    };
    if !args.is_empty() {
        eprintln!("unrecognised arguments: {args:?}");
        std::process::exit(2);
    }
    flags
}

fn sock_path(dir: &Path) -> PathBuf {
    dir.join("grm.sock")
}

fn outcome_path(dir: &Path, worker: usize) -> PathBuf {
    dir.join(format!("outcome-{worker}.log"))
}

fn telemetry_path(dir: &Path) -> PathBuf {
    dir.join("telemetry.json")
}

fn main() {
    let flags = parse_flags();
    match flags.role.as_str() {
        "orchestrator" => orchestrate(flags),
        "daemon" => daemon(flags),
        "worker" => worker(flags),
        other => {
            eprintln!("unknown --role {other} (orchestrator | daemon | worker)");
            std::process::exit(2);
        }
    }
}

// ---------------------------------------------------------------------
// Daemon role
// ---------------------------------------------------------------------

fn daemon(flags: Flags) {
    let cfg = ScaleConfig::isp(flags.n, flags.requests, flags.seed);
    let matrix = cfg.agreements().expect("valid scale agreements");
    let (telemetry, recorder) = Telemetry::recorder(0);
    let journal_dir = flags.dir.join("journal");
    let fresh = JournalSnapshot {
        matrix,
        level: LEVEL,
        availability: vec![0.0; flags.n],
        next_seq: 0,
        dedup: Vec::new(),
    };
    let (journal, recovered) = DurableJournal::open_or_create(
        &journal_dir,
        move || fresh,
        FsyncPolicy::EveryOp,
        telemetry.clone(),
    )
    .expect("open agreement journal");
    eprintln!(
        "[daemon] journal: {} records recovered, {} torn bytes truncated, replay cursor {}",
        recovered.records, recovered.truncated_bytes, recovered.next_seq
    );
    let server = recovered.respawn().expect("respawn GRM from journal");
    let listener = GrmListener::bind_uds(
        &sock_path(&flags.dir),
        server,
        journal,
        recovered,
        ListenerConfig { sequenced: true, compact_every: 16_384, telemetry },
    )
    .expect("bind federation socket");

    // Serve until killed — SIGKILL is the expected exit, so telemetry is
    // exported by periodic atomic snapshot, not at shutdown.
    let tmp = flags.dir.join("telemetry.json.tmp");
    loop {
        std::thread::sleep(Duration::from_millis(200));
        let snap = recorder.snapshot();
        if fs::write(&tmp, snap.to_json()).is_ok() {
            let _ = fs::rename(&tmp, telemetry_path(&flags.dir));
        }
        // Unreachable exit keeps `listener` alive for the process's life.
        if false {
            listener.shutdown();
            return;
        }
    }
}

// ---------------------------------------------------------------------
// Worker role
// ---------------------------------------------------------------------

/// How long a worker keeps retrying one event before declaring the
/// daemon unrecoverable. Covers a kill-9 plus journal recovery with two
/// orders of magnitude to spare.
const EVENT_DEADLINE: Duration = Duration::from_secs(60);

fn worker(flags: Flags) {
    let cfg = ScaleConfig::isp(flags.n, flags.requests, flags.seed);
    let events = event_stream(&cfg, flags.epochs);
    let client = NetGrmClient::uds(&sock_path(&flags.dir));
    let mut out = std::io::BufWriter::new(
        fs::File::create(outcome_path(&flags.dir, flags.worker_id)).expect("create outcome log"),
    );
    for (seq, ev) in events.iter().enumerate() {
        if seq % flags.workers != flags.worker_id {
            continue;
        }
        let result = settle(&client, seq as u64, ev);
        writeln!(out, "{seq} {}", outcome_line(ev, &result)).expect("write outcome");
        out.flush().expect("flush outcome");
    }
}

/// Drive one event to settlement: retry transport errors until the
/// daemon (or its successor after a crash) produces a decision.
fn settle(client: &NetGrmClient, seq: u64, ev: &Event) -> Result<Option<(u64, u64)>, String> {
    let started = Instant::now();
    loop {
        let attempt = match *ev {
            Event::Report { lrm, available } => {
                client.report_seq(seq, lrm, available).map(|()| None)
            }
            Event::Request { lrm, amount } => client
                .request_seq(seq, lrm, amount, request_id(seq))
                .map(|alloc| Some((alloc.amount.to_bits(), draws_fingerprint(&alloc.draws)))),
        };
        match attempt {
            Ok(ok) => return Ok(ok),
            Err(e) if e.is_retryable() => {
                assert!(
                    started.elapsed() < EVENT_DEADLINE,
                    "event {seq} still unsettled after {EVENT_DEADLINE:?}: {e}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            // A decision error is a settlement — the daemon said no.
            Err(e) => return Err(e.to_string()),
        }
    }
}

// ---------------------------------------------------------------------
// Orchestrator role
// ---------------------------------------------------------------------

fn respawn_role(flags: &Flags, role: &str, extra: &[(&str, String)]) -> Child {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.arg("--role")
        .arg(role)
        .arg("--n")
        .arg(flags.n.to_string())
        .arg("--workers")
        .arg(flags.workers.to_string())
        .arg("--requests")
        .arg(flags.requests.to_string())
        .arg("--epochs")
        .arg(flags.epochs.to_string())
        .arg("--seed")
        .arg(flags.seed.to_string())
        .arg("--dir")
        .arg(&flags.dir);
    for (k, v) in extra {
        cmd.arg(k).arg(v);
    }
    cmd.stdin(Stdio::null());
    cmd.spawn().unwrap_or_else(|e| panic!("spawn {role}: {e}"))
}

/// Block until the daemon answers on the socket (it may be starting up
/// or replaying its journal).
fn await_daemon(dir: &Path) -> Vec<f64> {
    let probe = NetGrmClient::uds(&sock_path(dir));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match probe.availability() {
            Ok(avail) => return avail,
            Err(e) => {
                assert!(Instant::now() < deadline, "daemon never came up: {e}");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// Count settled events across all worker outcome logs.
fn settled_lines(dir: &Path, workers: usize) -> usize {
    (0..workers)
        .map(|w| fs::read_to_string(outcome_path(dir, w)).map(|s| s.lines().count()).unwrap_or(0))
        .sum()
}

fn orchestrate(flags: Flags) {
    let cfg = ScaleConfig::isp(flags.n, flags.requests, flags.seed);
    let events = event_stream(&cfg, flags.epochs);
    let total = events.len();
    println!(
        "federation: n={} workers={} requests={} epochs={} seed={} -> {} events{}",
        flags.n,
        flags.workers,
        flags.requests,
        flags.epochs,
        flags.seed,
        total,
        if flags.kill_grm { ", kill-9 mid-replay" } else { "" }
    );

    // Reference decision sequence, computed before any process exists.
    let reference = reference_run(&cfg, &events);

    let _ = fs::remove_dir_all(&flags.dir);
    fs::create_dir_all(&flags.dir).expect("create federation dir");

    let mut grm = respawn_role(&flags, "daemon", &[]);
    await_daemon(&flags.dir);
    let started = Instant::now();
    let mut workers: Vec<Child> = (0..flags.workers)
        .map(|w| respawn_role(&flags, "worker", &[("--worker-id", w.to_string())]))
        .collect();

    // Progress monitor; with --kill-grm, SIGKILL the daemon once a third
    // of the workload has settled, then respawn it over the same journal.
    let mut killed_at: Option<usize> = None;
    loop {
        let done = settled_lines(&flags.dir, flags.workers);
        if flags.kill_grm && killed_at.is_none() && done >= total / 3 {
            assert!(done < total, "workload drained before the kill landed; grow --requests");
            grm.kill().expect("SIGKILL daemon");
            grm.wait().expect("reap daemon");
            killed_at = Some(done);
            println!("  killed GRM daemon after {done}/{total} settled events; respawning");
            grm = respawn_role(&flags, "daemon", &[]);
        }
        if workers.iter_mut().all(|w| w.try_wait().expect("poll worker").is_some()) {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    for (w, child) in workers.iter_mut().enumerate() {
        let status = child.wait().expect("wait worker");
        assert!(status.success(), "worker {w} failed: {status}");
    }
    let elapsed = started.elapsed();

    // Final daemon state, then merged outcomes.
    let availability = await_daemon(&flags.dir);
    let mut merged: Vec<Option<String>> = vec![None; total];
    for w in 0..flags.workers {
        let text = fs::read_to_string(outcome_path(&flags.dir, w)).expect("read outcome log");
        for line in text.lines() {
            let (seq, rest) = line.split_once(' ').expect("malformed outcome line");
            let seq: usize = seq.parse().expect("outcome seq");
            assert!(merged[seq].is_none(), "event {seq} settled twice (at-most-once violated)");
            merged[seq] = Some(rest.to_string());
        }
    }

    println!(
        "  replayed {} events across {} workers in {:.2}s ({:.0} events/s)",
        total,
        flags.workers,
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64()
    );
    let grants = merged.iter().flatten().filter(|l| l.starts_with('G')).count();
    let denials = merged.iter().flatten().filter(|l| l.as_str() == "D").count();
    println!("  decisions: {grants} grants, {denials} denials");

    // Telemetry: the daemon's periodic snapshot (it can't export at
    // exit — we kill it).
    if let Ok(text) = fs::read_to_string(telemetry_path(&flags.dir)) {
        if let Ok(snap) = Snapshot::from_json(&text) {
            for kind in [HistKind::JournalFsyncSeconds, HistKind::FrameBytes] {
                if let Some(h) = snap.histogram(kind) {
                    println!(
                        "  {}: count={} mean={:.6} max={:.6}",
                        h.name,
                        h.count,
                        h.mean(),
                        h.max
                    );
                }
            }
            if let Some(out) = &flags.telemetry_out {
                agreements_experiments::write_snapshot(out, &snap);
            }
        }
    }

    let mut failures = 0usize;
    if flags.check {
        failures += check_replay(&flags, &reference, &merged, &availability, killed_at, total);
    }

    grm.kill().expect("stop daemon");
    grm.wait().expect("reap daemon");
    let _ = fs::remove_dir_all(&flags.dir);
    if failures > 0 {
        eprintln!("FEDERATION CHECK FAILED: {failures} assertion(s)");
        std::process::exit(1);
    }
    if flags.check {
        println!("  all checks passed: coverage, decisions, state, conservation");
    }
}

/// The `--check` battery; returns the number of failed assertions
/// (reporting all of them beats stopping at the first).
fn check_replay(
    flags: &Flags,
    reference: &Reference,
    merged: &[Option<String>],
    availability: &[f64],
    killed_at: Option<usize>,
    total: usize,
) -> usize {
    let mut failures = 0usize;
    let mut fail = |msg: String| {
        eprintln!("  CHECK FAILED: {msg}");
        failures += 1;
    };

    // 1. Coverage: every event settled exactly once (double settlement
    //    is caught at merge time).
    let missing = merged.iter().enumerate().filter(|(_, l)| l.is_none()).count();
    if missing > 0 {
        fail(format!("{missing}/{total} events never settled"));
    }

    // 2. Decision equality against the reference, bit-for-bit.
    let mut diverged = 0usize;
    for (seq, (got, want)) in merged.iter().zip(&reference.outcomes).enumerate() {
        if let Some(got) = got {
            if got != want {
                if diverged == 0 {
                    fail(format!("event {seq}: got `{got}`, reference `{want}`"));
                }
                diverged += 1;
            }
        }
    }
    if diverged > 1 {
        eprintln!("    ({diverged} diverging decisions in total)");
    }

    // 3. Final availability, bit-for-bit.
    if availability.len() != reference.availability.len() {
        fail("availability length mismatch".to_string());
    } else if let Some(p) = (0..availability.len())
        .find(|&p| availability[p].to_bits() != reference.availability[p].to_bits())
    {
        fail(format!(
            "availability[{p}] diverged: {} vs reference {}",
            availability[p], reference.availability[p]
        ));
    }

    // 4. Pool conservation: base pools minus exactly the grants since
    //    the last refresh.
    let expect = flags.n as f64
        * ScaleConfig::isp(flags.n, flags.requests, flags.seed).base_availability
        - reference.granted_since_refresh;
    let got: f64 = availability.iter().sum();
    if (got - expect).abs() > 1e-6 * expect.abs().max(1.0) {
        fail(format!("pool conservation: pools sum to {got}, expected {expect}"));
    }

    // 5. The kill must have landed mid-replay for the recovery claim to
    //    mean anything.
    if flags.kill_grm {
        match killed_at {
            Some(at) if at < total => {}
            Some(at) => fail(format!("daemon killed only after all {at} events settled")),
            None => fail("daemon was never killed (--kill-grm)".to_string()),
        }
    }
    failures
}
