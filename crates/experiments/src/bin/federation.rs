//! Multi-process GRM federation over real sockets, with kill-9 crash
//! recovery — the distributed twin of the in-process `scale` replay.
//!
//! One binary, three roles, selected by `--role` (the orchestrator
//! re-execs itself for the other two):
//!
//! - **orchestrator** (default): launches one `daemon` and `--workers`
//!   worker processes over a Unix-domain socket, optionally SIGKILLs the
//!   daemon mid-replay (`--kill-grm`) and respawns it, then merges the
//!   workers' outcome logs and checks them.
//! - **daemon**: opens (or recovers) the durable agreement journal,
//!   respawns the `GrmServer` from the recovered state, and serves it on
//!   the socket. It never exits on its own; the orchestrator kills it,
//!   which for `--kill-grm` is the entire point.
//! - **worker**: replays its residue class of the global event stream
//!   (`seq % workers == id`), retrying retryable transport errors
//!   forever — a crashed daemon looks like a slow network, and
//!   at-most-once settlement is the journal's job, not the worker's.
//!
//! Three replay modes (`--mode`), in increasing concurrency:
//!
//! - **sequenced** (default): workers settle call by call against the
//!   sequenced listener — the PR 7 baseline, kept verbatim because its
//!   `--check` compares decision-for-decision, *bit-for-bit* against an
//!   in-process reference fold of the same stream.
//! - **pipelined**: same global total order (sequenced listener, same
//!   bit-for-bit reference check), but each worker keeps `--window`
//!   calls in flight and harvests replies in issue order, so network
//!   round trips, decision execution, and journal appends overlap
//!   across workers. With `--fsync batched:N` the listener's
//!   group-commit plane amortizes one fsync across many concurrently
//!   arriving decisions.
//! - **nonseq**: no global sequencer — connections race, the event
//!   interleaving is nondeterministic, and the daemon runs the
//!   *hierarchical* decision engine (the in-process scale winner)
//!   instead of the flat LP. `--check` switches from bit equality to
//!   the order-insensitive invariant battery in
//!   [`agreements_experiments::checker`]: coverage, per-`RequestId`
//!   at-most-once, grant shape, per-principal pool conservation, and
//!   granted-units accounting. Epochs are forced to 1 (a refresh
//!   barrier between epochs would reintroduce global ordering):
//!   workers push their reports first, barrier on the daemon seeing
//!   every pool, then race their allocation requests.
//!
//! The event stream is a pure function of `(n, requests, seed, epochs)`,
//! so every process derives it independently; nothing is coordinated but
//! the socket. Requests carry deterministic [`RequestId`]s so retries
//! and crash replays dedup correctly in every mode.
//!
//! The transport is selectable (`--transport uds|tcp`) and optionally
//! hostile: `--chaos <seed>` routes every worker connection through the
//! bidirectional [`FaultProxy`] with a seeded drop/dup/hold/delay mix on
//! *both* directions (lost Grants exercise the client deadline sweeper
//! and the daemon's dedup replay), and `--latency <micros>` injects
//! deterministic per-frame jitter even without the rest of the chaos
//! mix. TCP runs always interpose the proxy — the daemon binds an
//! ephemeral port and publishes it in `daemon.addr`, and the proxy
//! re-resolves that file per connection, so a kill-9'd daemon can
//! respawn on a fresh port without the workers ever re-dialing.
//!
//! ```text
//! federation [--mode sequenced|pipelined|nonseq] [--fsync everyop|batched:N]
//!            [--transport uds|tcp] [--chaos SEED] [--latency MICROS]
//!            [--max-hold-ms 2] [--rpc-deadline-ms N]
//!            [--window 32] [--n 1000] [--workers 8] [--requests 2048]
//!            [--epochs 4] [--seed 20000] [--dir PATH] [--kill-grm]
//!            [--check] [--json-out PATH] [--telemetry-out PATH]
//! ```

use std::collections::VecDeque;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use agreements_experiments::checker::{
    check_order_insensitive, CheckEvent, CheckInputs, CheckOutcome,
};
use agreements_faults::FaultMix;
use agreements_flow::PartitionOptions;
use agreements_grm::{GrmError, GrmServer, RequestId};
use agreements_net::journal::{DurableJournal, FsyncPolicy, Snapshot as JournalSnapshot};
use agreements_net::listener::{GrmListener, ListenerConfig};
use agreements_net::{FaultProxy, NetGrmClient, ProxyUpstream};
use agreements_sched::hierarchy::HierarchicalScheduler;
use agreements_sched::Allocation;
use agreements_telemetry::{HistKind, Snapshot, Telemetry};
use agreements_trace::{ScaleConfig, DAY_SECONDS};
use crossbeam::channel::{Receiver, RecvTimeoutError};

/// Dedup namespace for federation request ids (any stable nonzero tag
/// works; the id only has to be unique per event and identical between
/// the reference fold and every worker retry).
const ID_CLIENT: u64 = 0xFED;

/// GRM request level used throughout the scale experiments.
const LEVEL: usize = 1;

// ---------------------------------------------------------------------
// The global event stream (pure function of the flags)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Pool refresh: principal `lrm` reports `available` units.
    Report { lrm: usize, available: f64 },
    /// Allocation request by `lrm` for `amount` units.
    Request { lrm: usize, amount: f64 },
}

/// Build the global, totally ordered event stream: `epochs` rounds of
/// (full pool refresh, then that time-window's demands).
fn event_stream(cfg: &ScaleConfig, epochs: usize) -> Vec<Event> {
    let workload = cfg.generate();
    let window = DAY_SECONDS / epochs as f64;
    let mut events = Vec::with_capacity(cfg.n * epochs + workload.demands.len());
    let mut next = 0usize;
    for e in 0..epochs {
        for (lrm, &available) in workload.availability.iter().enumerate() {
            events.push(Event::Report { lrm, available });
        }
        let end = if e + 1 == epochs { f64::INFINITY } else { (e + 1) as f64 * window };
        while next < workload.demands.len() && workload.demands[next].t < end {
            let d = &workload.demands[next];
            events.push(Event::Request { lrm: d.requester, amount: d.amount });
            next += 1;
        }
    }
    events
}

fn request_id(seq: u64) -> RequestId {
    RequestId { client: ID_CLIENT, seq }
}

/// FNV-1a over the draw vector's bit patterns — the per-decision
/// fingerprint workers log and the orchestrator compares.
fn draws_fingerprint(draws: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for d in draws {
        for b in d.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Canonical one-token-per-field outcome encoding shared by the
/// reference fold and the sequenced/pipelined worker logs; comparing
/// the strings compares the decisions bit-for-bit.
fn outcome_line(event: &Event, result: &Result<Option<(u64, u64)>, String>) -> String {
    match (event, result) {
        (Event::Report { .. }, Ok(None)) => "R".to_string(),
        (Event::Request { .. }, Ok(Some((amount_bits, fnv)))) => {
            format!("G {amount_bits:016x} {fnv:016x}")
        }
        (Event::Request { .. }, Err(_)) => "D".to_string(),
        other => unreachable!("event/outcome shape mismatch: {other:?}"),
    }
}

/// Non-sequenced grant line: the full (sparse) draw vector in bit-exact
/// form, because the order-insensitive checker reconstructs
/// per-principal conservation from the logs instead of comparing
/// fingerprints. `G <amount_bits> <k> <principal>:<draw_bits> ...`.
fn nonseq_grant_line(alloc: &Allocation) -> String {
    let nonzero: Vec<(usize, f64)> =
        alloc.draws.iter().copied().enumerate().filter(|&(_, d)| d != 0.0).collect();
    let mut line = format!("G {:016x} {}", alloc.amount.to_bits(), nonzero.len());
    for (p, d) in nonzero {
        line.push_str(&format!(" {p}:{:016x}", d.to_bits()));
    }
    line
}

/// Parse one merged nonseq outcome (the part after the seq) back into a
/// [`CheckEvent`]; reports return `None` (they are not settlement
/// events — the barrier and base pools account for them).
fn parse_nonseq_line(seq: u64, requester: usize, rest: &str) -> Option<CheckEvent> {
    let mut tok = rest.split_whitespace();
    match tok.next() {
        Some("R") => None,
        Some("D") => Some(CheckEvent { seq, requester, outcome: CheckOutcome::Denied }),
        Some("G") => {
            let amount = f64::from_bits(
                u64::from_str_radix(tok.next().expect("grant amount"), 16).expect("amount bits"),
            );
            let k: usize = tok.next().expect("draw count").parse().expect("draw count");
            let draws: Vec<(usize, f64)> = (0..k)
                .map(|_| {
                    let (p, bits) =
                        tok.next().expect("draw entry").split_once(':').expect("p:bits");
                    (
                        p.parse().expect("draw principal"),
                        f64::from_bits(u64::from_str_radix(bits, 16).expect("draw bits")),
                    )
                })
                .collect();
            Some(CheckEvent { seq, requester, outcome: CheckOutcome::Granted { amount, draws } })
        }
        other => panic!("malformed nonseq outcome line: {other:?} in `{rest}`"),
    }
}

// ---------------------------------------------------------------------
// Reference: the same stream folded through an in-process server
// ---------------------------------------------------------------------

struct Reference {
    /// Canonical outcome line per global sequence number.
    outcomes: Vec<String>,
    /// Final availability, bit-exact.
    availability: Vec<f64>,
    /// Units granted since the last pool refresh (for conservation).
    granted_since_refresh: f64,
}

fn reference_run(cfg: &ScaleConfig, events: &[Event]) -> Reference {
    let matrix = cfg.agreements().expect("valid scale agreements");
    let server = GrmServer::spawn(matrix, LEVEL);
    let h = server.handle();
    let mut outcomes = Vec::with_capacity(events.len());
    let mut granted_since_refresh = 0.0f64;
    for (seq, ev) in events.iter().enumerate() {
        let result = match *ev {
            Event::Report { lrm, available } => {
                h.report(lrm, available).expect("in-process report");
                if lrm + 1 == cfg.n {
                    granted_since_refresh = 0.0;
                }
                Ok(None)
            }
            Event::Request { lrm, amount } => {
                match h.request_idempotent(lrm, amount, request_id(seq as u64)) {
                    Ok(alloc) => {
                        granted_since_refresh += alloc.amount;
                        Ok(Some((alloc.amount.to_bits(), draws_fingerprint(&alloc.draws))))
                    }
                    Err(e) => Err(e.to_string()),
                }
            }
        };
        outcomes.push(outcome_line(ev, &result));
    }
    let availability = h.availability().expect("in-process availability");
    server.shutdown();
    Reference { outcomes, availability, granted_since_refresh }
}

// ---------------------------------------------------------------------
// Flags
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Sequenced,
    Pipelined,
    Nonseq,
}

impl Mode {
    fn as_str(self) -> &'static str {
        match self {
            Mode::Sequenced => "sequenced",
            Mode::Pipelined => "pipelined",
            Mode::Nonseq => "nonseq",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transport {
    Uds,
    Tcp,
}

impl Transport {
    fn as_str(self) -> &'static str {
        match self {
            Transport::Uds => "uds",
            Transport::Tcp => "tcp",
        }
    }
}

#[derive(Debug, Clone)]
struct Flags {
    role: String,
    mode: Mode,
    fsync: String,
    transport: Transport,
    /// Seed for the bidirectional chaos mix; `None` = clean link.
    chaos: Option<u64>,
    /// Deterministic per-frame latency injection cap (0 = off).
    latency_us: u64,
    /// Group-commit hold timer forwarded to the listener.
    max_hold_ms: u64,
    /// Worker RPC deadline override (defaults depend on chaos).
    rpc_deadline_ms: Option<u64>,
    /// Where a spawned role dials the GRM (`uds:<path>` | `tcp:<addr>`);
    /// the orchestrator fills it in when it re-execs the workers.
    endpoint: Option<String>,
    window: usize,
    n: usize,
    workers: usize,
    requests: usize,
    epochs: usize,
    seed: u64,
    dir: PathBuf,
    worker_id: usize,
    kill_grm: bool,
    check: bool,
    json_out: Option<PathBuf>,
    telemetry_out: Option<PathBuf>,
}

impl Flags {
    /// A hostile (or at least jittered) link was requested.
    fn chaotic(&self) -> bool {
        self.chaos.is_some() || self.latency_us > 0
    }

    /// Whether worker traffic goes through the fault proxy. TCP always
    /// does, even with a clean mix: the proxy re-resolves `daemon.addr`
    /// per connection, which is what keeps the workers' endpoint stable
    /// across a kill-9 respawn onto a fresh ephemeral port.
    fn proxied(&self) -> bool {
        self.transport == Transport::Tcp || self.chaotic()
    }
}

/// The (forward, reply) fault mixes the `--chaos` / `--latency` flags
/// ask for. Modest rates: retries, dedup replay, and the deadline
/// sweeper should fire constantly without starving progress.
fn chaos_mixes(flags: &Flags) -> (FaultMix, FaultMix) {
    let mut fwd = FaultMix::none();
    let mut rep = FaultMix::none();
    if flags.chaos.is_some() {
        fwd = FaultMix { drop: 0.05, dup: 0.05, hold: 0.06, max_hold: 3, ..FaultMix::none() }
            .with_latency(0.20, 600);
        rep = FaultMix { drop: 0.04, dup: 0.04, hold: 0.05, max_hold: 3, ..FaultMix::none() }
            .with_latency(0.20, 600);
    }
    if flags.latency_us > 0 {
        fwd = fwd.with_latency(1.0, flags.latency_us);
        rep = rep.with_latency(1.0, flags.latency_us);
    }
    (fwd, rep)
}

fn parse_fsync(s: &str) -> FsyncPolicy {
    if s == "everyop" {
        return FsyncPolicy::EveryOp;
    }
    if let Some(n) = s.strip_prefix("batched:") {
        let max_pending: usize = n.parse().unwrap_or(0);
        if max_pending >= 2 {
            return FsyncPolicy::Batched { max_pending };
        }
    }
    eprintln!("invalid --fsync `{s}` (everyop | batched:N with N >= 2)");
    std::process::exit(2);
}

fn flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    }
    let v = args.remove(pos + 1);
    args.remove(pos);
    Some(v)
}

fn flag_present(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

fn parse_flags() -> Flags {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_out = agreements_experiments::take_telemetry_out(&mut args);
    let parse = |v: Option<String>, what: &str, default: usize| -> usize {
        v.map(|s| s.parse().unwrap_or_else(|_| panic!("invalid {what}: {s}"))).unwrap_or(default)
    };
    let mode = match flag_value(&mut args, "--mode").as_deref() {
        None | Some("sequenced") => Mode::Sequenced,
        Some("pipelined") => Mode::Pipelined,
        Some("nonseq") => Mode::Nonseq,
        Some(other) => {
            eprintln!("invalid --mode `{other}` (sequenced | pipelined | nonseq)");
            std::process::exit(2);
        }
    };
    let fsync = flag_value(&mut args, "--fsync").unwrap_or_else(|| "everyop".into());
    parse_fsync(&fsync); // validate eagerly, in every role
    let transport = match flag_value(&mut args, "--transport").as_deref() {
        None | Some("uds") => Transport::Uds,
        Some("tcp") => Transport::Tcp,
        Some(other) => {
            eprintln!("invalid --transport `{other}` (uds | tcp)");
            std::process::exit(2);
        }
    };
    let mut flags = Flags {
        role: flag_value(&mut args, "--role").unwrap_or_else(|| "orchestrator".into()),
        mode,
        fsync,
        transport,
        chaos: flag_value(&mut args, "--chaos")
            .map(|s| s.parse().unwrap_or_else(|_| panic!("invalid --chaos: {s}"))),
        latency_us: parse(flag_value(&mut args, "--latency"), "--latency", 0) as u64,
        max_hold_ms: parse(flag_value(&mut args, "--max-hold-ms"), "--max-hold-ms", 2).max(1)
            as u64,
        rpc_deadline_ms: flag_value(&mut args, "--rpc-deadline-ms")
            .map(|s| s.parse().unwrap_or_else(|_| panic!("invalid --rpc-deadline-ms: {s}"))),
        endpoint: flag_value(&mut args, "--endpoint"),
        window: parse(flag_value(&mut args, "--window"), "--window", 32).max(1),
        n: parse(flag_value(&mut args, "--n"), "--n", 1000),
        workers: parse(flag_value(&mut args, "--workers"), "--workers", 8),
        requests: parse(flag_value(&mut args, "--requests"), "--requests", 2048),
        epochs: parse(flag_value(&mut args, "--epochs"), "--epochs", 4).max(1),
        seed: flag_value(&mut args, "--seed")
            .map(|s| s.parse().unwrap_or_else(|_| panic!("invalid --seed: {s}")))
            .unwrap_or(agreements_experiments::SEED),
        dir: flag_value(&mut args, "--dir").map(PathBuf::from).unwrap_or_else(|| {
            std::env::temp_dir().join(format!("agreements-federation-{}", std::process::id()))
        }),
        worker_id: parse(flag_value(&mut args, "--worker-id"), "--worker-id", 0),
        kill_grm: flag_present(&mut args, "--kill-grm"),
        check: flag_present(&mut args, "--check"),
        json_out: flag_value(&mut args, "--json-out").map(PathBuf::from),
        telemetry_out,
    };
    if !args.is_empty() {
        eprintln!("unrecognised arguments: {args:?}");
        std::process::exit(2);
    }
    // Non-sequenced mode has no global order, so an epoch's refresh
    // barrier is meaningless; the stream is one report phase + one
    // racing request phase.
    if flags.mode == Mode::Nonseq && flags.epochs != 1 {
        if flags.role == "orchestrator" {
            eprintln!("nonseq mode forces --epochs 1 (no global refresh barrier)");
        }
        flags.epochs = 1;
    }
    flags
}

fn sock_path(dir: &Path) -> PathBuf {
    dir.join("grm.sock")
}

/// Where the fault proxy listens when fronting a UDS daemon.
fn proxy_sock_path(dir: &Path) -> PathBuf {
    dir.join("grm-proxy.sock")
}

/// Where a TCP daemon publishes its ephemeral address (atomically, via
/// tmp + rename); the proxy re-reads it per accepted connection.
fn daemon_addr_path(dir: &Path) -> PathBuf {
    dir.join("daemon.addr")
}

/// Dial an endpoint string (`uds:<path>` | `tcp:<host:port>`).
fn connect_endpoint(ep: &str) -> NetGrmClient {
    if let Some(path) = ep.strip_prefix("uds:") {
        NetGrmClient::uds(Path::new(path))
    } else if let Some(addr) = ep.strip_prefix("tcp:") {
        NetGrmClient::tcp(addr)
    } else {
        panic!("malformed endpoint `{ep}` (uds:<path> | tcp:<addr>)")
    }
}

fn outcome_path(dir: &Path, worker: usize) -> PathBuf {
    dir.join(format!("outcome-{worker}.log"))
}

fn telemetry_path(dir: &Path) -> PathBuf {
    dir.join("telemetry.json")
}

/// Marker the orchestrator drops once every principal's report landed;
/// nonseq workers wait on it before racing requests. A worker cannot
/// poll availability for this itself: by the time the last report
/// lands, other workers' requests may already have drained a pool back
/// to zero. The orchestrator observes the all-refreshed state *before*
/// releasing anyone, so the check cannot race a request.
fn reports_done_path(dir: &Path) -> PathBuf {
    dir.join("reports-done")
}

fn main() {
    let flags = parse_flags();
    match flags.role.as_str() {
        "orchestrator" => orchestrate(flags),
        "daemon" => daemon(flags),
        "worker" => worker(flags),
        other => {
            eprintln!("unknown --role {other} (orchestrator | daemon | worker)");
            std::process::exit(2);
        }
    }
}

// ---------------------------------------------------------------------
// Daemon role
// ---------------------------------------------------------------------

fn daemon(flags: Flags) {
    let cfg = ScaleConfig::isp(flags.n, flags.requests, flags.seed);
    let matrix = cfg.agreements().expect("valid scale agreements");
    let (telemetry, recorder) = Telemetry::recorder(0);
    let journal_dir = flags.dir.join("journal");
    let fresh = JournalSnapshot {
        matrix,
        level: LEVEL,
        availability: vec![0.0; flags.n],
        next_seq: 0,
        dedup: Vec::new(),
    };
    let (journal, recovered) = DurableJournal::open_or_create(
        &journal_dir,
        move || fresh,
        parse_fsync(&flags.fsync),
        telemetry.clone(),
    )
    .expect("open agreement journal");
    eprintln!(
        "[daemon] journal: {} records recovered, {} torn bytes truncated, replay cursor {}",
        recovered.records, recovered.truncated_bytes, recovered.next_seq
    );
    // Sequenced and pipelined replays keep the flat LP engine (the
    // bit-for-bit reference is a flat fold); the non-sequenced replay
    // races connections into the hierarchical engine — the decision
    // path that actually scales — recovered through the same journal.
    let server = match flags.mode {
        Mode::Sequenced | Mode::Pipelined => recovered.respawn().expect("respawn GRM from journal"),
        Mode::Nonseq => {
            let mut sched =
                HierarchicalScheduler::auto(&recovered.matrix, &PartitionOptions::default(), LEVEL)
                    .expect("partition scale agreements");
            sched.set_parallel_auto();
            sched.set_warm_runs(true);
            recovered
                .respawn_with(GrmServer::spawn_hierarchical_with_telemetry(
                    sched,
                    telemetry.clone(),
                ))
                .expect("respawn hierarchical GRM from journal")
        }
    };
    let config = ListenerConfig {
        sequenced: flags.mode != Mode::Nonseq,
        compact_every: 16_384,
        max_hold: Duration::from_millis(flags.max_hold_ms),
        telemetry: telemetry.clone(),
    };
    let listener = match flags.transport {
        Transport::Uds => {
            GrmListener::bind_uds(&sock_path(&flags.dir), server, journal, recovered, config)
                .expect("bind federation socket")
        }
        Transport::Tcp => {
            // Bind an ephemeral port, then publish it atomically: a
            // respawned daemon gets a *different* port, and the fault
            // proxy re-resolves this file per connection.
            let l = GrmListener::bind_tcp("127.0.0.1:0", server, journal, recovered, config)
                .expect("bind federation TCP socket");
            let addr = l.tcp_addr().expect("TCP listener has an address");
            let tmp = flags.dir.join("daemon.addr.tmp");
            fs::write(&tmp, addr.to_string()).expect("write daemon addr");
            fs::rename(&tmp, daemon_addr_path(&flags.dir)).expect("publish daemon addr");
            l
        }
    };

    // Serve until killed — SIGKILL is the expected exit, so telemetry is
    // exported by periodic atomic snapshot, not at shutdown.
    let tmp = flags.dir.join("telemetry.json.tmp");
    loop {
        std::thread::sleep(Duration::from_millis(200));
        let snap = recorder.snapshot();
        if fs::write(&tmp, snap.to_json()).is_ok() {
            let _ = fs::rename(&tmp, telemetry_path(&flags.dir));
        }
        // Unreachable exit keeps `listener` alive for the process's life.
        if false {
            listener.shutdown();
            return;
        }
    }
}

// ---------------------------------------------------------------------
// Worker role
// ---------------------------------------------------------------------

/// How long a worker keeps retrying one event before declaring the
/// daemon unrecoverable. Covers a kill-9 plus journal recovery with two
/// orders of magnitude to spare.
const EVENT_DEADLINE: Duration = Duration::from_secs(60);

/// Worker RPC deadline on a chaotic link: short enough that a dropped
/// Grant retries promptly (the retry is what flushes held frames and
/// unwedges a reordered window), long enough to ride out injected
/// latency and a group-commit hold.
const CHAOS_RPC_DEADLINE_MS: u64 = 500;

fn worker(flags: Flags) {
    let cfg = ScaleConfig::isp(flags.n, flags.requests, flags.seed);
    let events = event_stream(&cfg, flags.epochs);
    let endpoint = flags
        .endpoint
        .clone()
        .unwrap_or_else(|| format!("uds:{}", sock_path(&flags.dir).display()));
    let deadline_ms = flags.rpc_deadline_ms.unwrap_or(if flags.chaotic() {
        CHAOS_RPC_DEADLINE_MS
    } else {
        10_000
    });
    let client = connect_endpoint(&endpoint).with_rpc_deadline(Duration::from_millis(deadline_ms));
    let mut out = std::io::BufWriter::new(
        fs::File::create(outcome_path(&flags.dir, flags.worker_id)).expect("create outcome log"),
    );
    match flags.mode {
        Mode::Sequenced => worker_sequenced(&flags, &events, &client, &mut out),
        Mode::Pipelined => worker_pipelined(&flags, &events, &client, &mut out),
        Mode::Nonseq => worker_nonseq(&flags, &events, &client, &mut out),
    }
}

fn worker_sequenced(
    flags: &Flags,
    events: &[Event],
    client: &NetGrmClient,
    out: &mut impl std::io::Write,
) {
    for (seq, ev) in events.iter().enumerate() {
        if seq % flags.workers != flags.worker_id {
            continue;
        }
        let result = settle(client, seq as u64, ev);
        writeln!(out, "{seq} {}", outcome_line(ev, &result)).expect("write outcome");
        out.flush().expect("flush outcome");
    }
}

/// Drive one event to settlement: retry transport errors until the
/// daemon (or its successor after a crash) produces a decision.
fn settle(client: &NetGrmClient, seq: u64, ev: &Event) -> Result<Option<(u64, u64)>, String> {
    let started = Instant::now();
    loop {
        let attempt = match *ev {
            Event::Report { lrm, available } => {
                client.report_seq(seq, lrm, available).map(|()| None)
            }
            Event::Request { lrm, amount } => client
                .request_seq(seq, lrm, amount, request_id(seq))
                .map(|alloc| Some((alloc.amount.to_bits(), draws_fingerprint(&alloc.draws)))),
        };
        match attempt {
            Ok(ok) => return Ok(ok),
            Err(e) if e.is_retryable() => {
                assert!(
                    started.elapsed() < EVENT_DEADLINE,
                    "event {seq} still unsettled after {EVENT_DEADLINE:?}: {e}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            // A decision error is a settlement — the daemon said no.
            Err(e) => return Err(e.to_string()),
        }
    }
}

// ----- pipelined / nonseq plumbing -----------------------------------

/// One in-flight call's reply channel, typed by shape.
enum InflightRx {
    Grant(Receiver<Result<Allocation, GrmError>>),
    Unit(Receiver<Result<(), GrmError>>),
}

/// What harvesting the front of the window produced.
enum Harvest {
    /// The daemon decided: a grant, an ack (`None`), or a denial.
    Settled(Result<Option<Allocation>, String>),
    /// Transport-level failure — re-issue the same seq + id.
    Retry,
}

/// Issue one event asynchronously, retrying *send* failures (the daemon
/// may be down); the returned receiver resolves when the reply frame
/// arrives (or the connection dies). Also returns the connection
/// generation the frame went out on, so [`drive_window`] can detect a
/// mid-window reconnect.
fn issue(
    client: &NetGrmClient,
    seq: u64,
    ev: &Event,
    sequenced: bool,
    started: Instant,
) -> (InflightRx, u64) {
    loop {
        let attempt = match (*ev, sequenced) {
            (Event::Report { lrm, available }, true) => client
                .report_seq_async(seq, lrm, available)
                .map(|(rx, gen)| (InflightRx::Unit(rx), gen)),
            (Event::Report { lrm, available }, false) => client
                .report_acked_async(lrm, available)
                .map(|(rx, gen)| (InflightRx::Unit(rx), gen)),
            (Event::Request { lrm, amount }, true) => client
                .request_seq_async(seq, lrm, amount, request_id(seq))
                .map(|(rx, gen)| (InflightRx::Grant(rx), gen)),
            (Event::Request { lrm, amount }, false) => client
                .request_acked_async(lrm, amount, request_id(seq))
                .map(|(rx, gen)| (InflightRx::Grant(rx), gen)),
        };
        match attempt {
            Ok(out) => return out,
            Err(e) if e.is_retryable() => {
                assert!(
                    started.elapsed() < EVENT_DEADLINE,
                    "event {seq} unsendable after {EVENT_DEADLINE:?}: {e}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("unretryable send failure for event {seq}: {e}"),
        }
    }
}

/// Wait for one in-flight reply. Transport errors (including a dropped
/// channel) mean "re-issue"; decision errors are settlements.
fn harvest(seq: u64, rx: &InflightRx, started: Instant) -> Harvest {
    let remaining = EVENT_DEADLINE
        .checked_sub(started.elapsed())
        .unwrap_or_else(|| panic!("event {seq} still unsettled after {EVENT_DEADLINE:?}"));
    let outcome: Result<Option<Allocation>, GrmError> = match rx {
        InflightRx::Grant(rx) => match rx.recv_timeout(remaining) {
            Ok(r) => r.map(Some),
            Err(RecvTimeoutError::Timeout) => {
                panic!("event {seq} still unsettled after {EVENT_DEADLINE:?}")
            }
            Err(RecvTimeoutError::Disconnected) => Err(GrmError::ConnectionReset),
        },
        InflightRx::Unit(rx) => match rx.recv_timeout(remaining) {
            Ok(r) => r.map(|()| None),
            Err(RecvTimeoutError::Timeout) => {
                panic!("event {seq} still unsettled after {EVENT_DEADLINE:?}")
            }
            Err(RecvTimeoutError::Disconnected) => Err(GrmError::ConnectionReset),
        },
    };
    match outcome {
        Ok(ok) => Harvest::Settled(Ok(ok)),
        Err(e) if e.is_retryable() => Harvest::Retry,
        Err(e) => Harvest::Settled(Err(e.to_string())),
    }
}

/// One windowed in-flight entry: the event, its reply channel, and when
/// the worker first tried to settle it (the retry deadline anchor).
struct Inflight {
    seq: u64,
    ev: Event,
    rx: InflightRx,
    started: Instant,
}

/// The in-flight window: entries in ascending seq order, all issued on
/// one connection generation.
struct Window<'a> {
    client: &'a NetGrmClient,
    inflight: VecDeque<Inflight>,
    gen: u64,
    sequenced: bool,
}

impl Window<'_> {
    /// Put one event in flight, keeping the whole window on a single
    /// connection in ascending-seq order. If the send lands on a
    /// different connection generation than the rest of the window, the
    /// older in-flight calls died with the previous socket — and, in
    /// sequenced mode, the frame just written may sit *ahead* of their
    /// lower-seq retries on the new connection's stream, which would
    /// block the daemon's per-connection reader in the sequencer and
    /// wedge the replay cursor (their retries would never be read).
    /// Resynchronize: tear the connection down and re-issue the whole
    /// window in ascending order until every entry shares one
    /// generation. Same seqs, same [`RequestId`]s, so replayed
    /// decisions come from the dedup window.
    fn admit(&mut self, seq: u64, ev: Event, started: Instant, front: bool) {
        let (rx, gen) = issue(self.client, seq, &ev, self.sequenced, started);
        let solo = self.inflight.is_empty();
        let entry = Inflight { seq, ev, rx, started };
        if front {
            self.inflight.push_front(entry);
        } else {
            self.inflight.push_back(entry);
        }
        if solo || gen == self.gen {
            self.gen = gen;
            return;
        }
        let entries: Vec<(u64, Event, Instant)> =
            self.inflight.drain(..).map(|e| (e.seq, e.ev, e.started)).collect();
        'resync: loop {
            self.client.disconnect();
            self.inflight.clear();
            let mut batch_gen = None;
            for &(seq, ev, started) in &entries {
                let (rx, gen) = issue(self.client, seq, &ev, self.sequenced, started);
                let stale = batch_gen.is_some_and(|g| g != gen);
                self.inflight.push_back(Inflight { seq, ev, rx, started });
                batch_gen = Some(gen);
                if stale {
                    // The connection died again mid-batch: start over.
                    std::thread::sleep(Duration::from_millis(20));
                    continue 'resync;
                }
            }
            self.gen = batch_gen.expect("window non-empty during resync");
            return;
        }
    }
}

/// The windowed in-flight loop shared by pipelined and nonseq workers:
/// keep up to `window` calls outstanding, settle strictly in issue
/// order (preserving per-connection ascending seq order, which the
/// sequenced listener's cursor relies on — [`admit`] restores it across
/// reconnects), and re-issue the front on transport failure — same seq,
/// same [`RequestId`], so a decision that raced the crash replays from
/// the dedup window instead of double granting. `line` renders a
/// settled outcome for the log.
fn drive_window(
    flags: &Flags,
    client: &NetGrmClient,
    items: &[(u64, Event)],
    sequenced: bool,
    out: &mut impl std::io::Write,
    line: impl Fn(&Event, &Result<Option<Allocation>, String>) -> String,
) {
    let mut win = Window { client, inflight: VecDeque::new(), gen: 0, sequenced };
    let mut next = 0usize;
    while next < items.len() || !win.inflight.is_empty() {
        while win.inflight.len() < flags.window && next < items.len() {
            let (seq, ev) = items[next];
            win.admit(seq, ev, Instant::now(), false);
            next += 1;
        }
        let Inflight { seq, ev, rx, started } = win.inflight.pop_front().expect("non-empty window");
        match harvest(seq, &rx, started) {
            Harvest::Settled(result) => {
                writeln!(out, "{seq} {}", line(&ev, &result)).expect("write outcome");
                out.flush().expect("flush outcome");
            }
            Harvest::Retry => {
                // A lost *reply* (crash, chaos drop, or RPC deadline)
                // does not mean the request was lost: re-sending seq on
                // the same connection behind the already-queued higher
                // seqs would wedge the daemon's serial sequencer reader.
                // Tear the connection down so `admit`'s generation
                // resync re-issues the whole window ascending on a
                // fresh one; already-executed seqs replay Stale from
                // the dedup mirror.
                client.disconnect();
                std::thread::sleep(Duration::from_millis(20));
                win.admit(seq, ev, started, true);
            }
        }
    }
}

/// Render a settled outcome in the sequenced bit-for-bit format.
fn fingerprint_line(ev: &Event, result: &Result<Option<Allocation>, String>) -> String {
    let compact = match result {
        Ok(Some(alloc)) => Ok(Some((alloc.amount.to_bits(), draws_fingerprint(&alloc.draws)))),
        Ok(None) => Ok(None),
        Err(e) => Err(e.clone()),
    };
    outcome_line(ev, &compact)
}

/// Render a settled outcome in the nonseq sparse-draws format.
fn sparse_line(ev: &Event, result: &Result<Option<Allocation>, String>) -> String {
    match (ev, result) {
        (Event::Report { .. }, Ok(None)) => "R".to_string(),
        (Event::Request { .. }, Ok(Some(alloc))) => nonseq_grant_line(alloc),
        (Event::Request { .. }, Err(_)) => "D".to_string(),
        other => unreachable!("event/outcome shape mismatch: {other:?}"),
    }
}

fn worker_pipelined(
    flags: &Flags,
    events: &[Event],
    client: &NetGrmClient,
    out: &mut impl std::io::Write,
) {
    let mine: Vec<(u64, Event)> = events
        .iter()
        .enumerate()
        .filter(|(seq, _)| seq % flags.workers == flags.worker_id)
        .map(|(seq, ev)| (seq as u64, *ev))
        .collect();
    drive_window(flags, client, &mine, true, out, fingerprint_line);
}

/// How long a nonseq worker waits at the report barrier (covers a
/// kill-9 landing inside the report phase).
const BARRIER_DEADLINE: Duration = Duration::from_secs(60);

fn worker_nonseq(
    flags: &Flags,
    events: &[Event],
    client: &NetGrmClient,
    out: &mut impl std::io::Write,
) {
    let mine = |want_report: bool| -> Vec<(u64, Event)> {
        events
            .iter()
            .enumerate()
            .filter(|(seq, ev)| {
                seq % flags.workers == flags.worker_id
                    && matches!(ev, Event::Report { .. }) == want_report
            })
            .map(|(seq, ev)| (seq as u64, *ev))
            .collect()
    };

    // Phase 1: pools. Acked (not fire-and-forget) so the barrier below
    // cannot pass on a report the daemon never saw.
    drive_window(flags, client, &mine(true), false, out, sparse_line);

    // Barrier: wait until *every* worker's reports landed — the racing
    // request phase must draw against fully refreshed pools, or the
    // outcome depends on report/request interleaving across workers.
    // The orchestrator drops the marker (see [`reports_done_path`]).
    let deadline = Instant::now() + BARRIER_DEADLINE;
    while !reports_done_path(&flags.dir).exists() {
        assert!(Instant::now() < deadline, "report barrier never cleared");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Phase 2: race the allocation requests.
    drive_window(flags, client, &mine(false), false, out, sparse_line);
}

// ---------------------------------------------------------------------
// Orchestrator role
// ---------------------------------------------------------------------

fn respawn_role(flags: &Flags, role: &str, extra: &[(&str, String)]) -> Child {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.arg("--role")
        .arg(role)
        .arg("--mode")
        .arg(flags.mode.as_str())
        .arg("--fsync")
        .arg(&flags.fsync)
        .arg("--window")
        .arg(flags.window.to_string())
        .arg("--n")
        .arg(flags.n.to_string())
        .arg("--workers")
        .arg(flags.workers.to_string())
        .arg("--requests")
        .arg(flags.requests.to_string())
        .arg("--epochs")
        .arg(flags.epochs.to_string())
        .arg("--seed")
        .arg(flags.seed.to_string())
        .arg("--dir")
        .arg(&flags.dir)
        .arg("--transport")
        .arg(flags.transport.as_str())
        .arg("--max-hold-ms")
        .arg(flags.max_hold_ms.to_string());
    if let Some(c) = flags.chaos {
        cmd.arg("--chaos").arg(c.to_string());
    }
    if flags.latency_us > 0 {
        cmd.arg("--latency").arg(flags.latency_us.to_string());
    }
    if let Some(d) = flags.rpc_deadline_ms {
        cmd.arg("--rpc-deadline-ms").arg(d.to_string());
    }
    for (k, v) in extra {
        cmd.arg(k).arg(v);
    }
    cmd.stdin(Stdio::null());
    cmd.spawn().unwrap_or_else(|e| panic!("spawn {role}: {e}"))
}

/// Block until the daemon answers on the endpoint (it may be starting
/// up or replaying its journal; on a chaotic link the probe's reply may
/// also just have been eaten — the short deadline keeps it retrying).
fn await_daemon(endpoint: &str) -> Vec<f64> {
    let probe = connect_endpoint(endpoint).with_rpc_deadline(Duration::from_secs(1));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match probe.availability() {
            Ok(avail) => return avail,
            Err(e) => {
                assert!(Instant::now() < deadline, "daemon never came up: {e}");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// Count settled events across all worker outcome logs.
fn settled_lines(dir: &Path, workers: usize) -> usize {
    (0..workers)
        .map(|w| fs::read_to_string(outcome_path(dir, w)).map(|s| s.lines().count()).unwrap_or(0))
        .sum()
}

fn orchestrate(flags: Flags) {
    let cfg = ScaleConfig::isp(flags.n, flags.requests, flags.seed);
    let events = event_stream(&cfg, flags.epochs);
    let total = events.len();
    println!(
        "federation: mode={} transport={} fsync={} window={} n={} workers={} requests={} epochs={} seed={} -> {} events{}{}{}",
        flags.mode.as_str(),
        flags.transport.as_str(),
        flags.fsync,
        flags.window,
        flags.n,
        flags.workers,
        flags.requests,
        flags.epochs,
        flags.seed,
        total,
        if flags.kill_grm { ", kill-9 mid-replay" } else { "" },
        flags.chaos.map(|c| format!(", chaos seed {c}")).unwrap_or_default(),
        if flags.latency_us > 0 {
            format!(", +{}us injected latency", flags.latency_us)
        } else {
            String::new()
        }
    );

    // Reference decision sequence, computed before any process exists.
    // Only the globally ordered modes have one (and only `--check`
    // reads it — at n=1000 the flat fold costs real wall-clock).
    let reference =
        (flags.check && flags.mode != Mode::Nonseq).then(|| reference_run(&cfg, &events));

    let _ = fs::remove_dir_all(&flags.dir);
    fs::create_dir_all(&flags.dir).expect("create federation dir");

    // The transport the workers see. TCP, chaos, or latency interposes
    // the bidirectional fault proxy; otherwise workers dial the daemon's
    // UDS socket directly.
    let (fwd_mix, rep_mix) = chaos_mixes(&flags);
    let chaos_seed = flags.chaos.unwrap_or(0);
    let mut endpoint = format!("uds:{}", sock_path(&flags.dir).display());
    let proxy = if flags.proxied() {
        let p = match flags.transport {
            Transport::Uds => FaultProxy::spawn_uds_bidir(
                &proxy_sock_path(&flags.dir),
                &sock_path(&flags.dir),
                chaos_seed,
                "fed",
                fwd_mix,
                rep_mix,
            )
            .expect("spawn UDS fault proxy"),
            Transport::Tcp => FaultProxy::spawn_tcp(
                "127.0.0.1:0",
                ProxyUpstream::TcpAddrFile(daemon_addr_path(&flags.dir)),
                chaos_seed,
                "fed",
                fwd_mix,
                rep_mix,
            )
            .expect("spawn TCP fault proxy"),
        };
        endpoint = match flags.transport {
            Transport::Uds => format!("uds:{}", proxy_sock_path(&flags.dir).display()),
            Transport::Tcp => format!("tcp:{}", p.local_addr().expect("proxy TCP address")),
        };
        Some(p)
    } else {
        None
    };

    let mut grm = respawn_role(&flags, "daemon", &[]);
    await_daemon(&endpoint);
    let started = Instant::now();
    let mut workers: Vec<Child> = (0..flags.workers)
        .map(|w| {
            respawn_role(
                &flags,
                "worker",
                &[("--worker-id", w.to_string()), ("--endpoint", endpoint.clone())],
            )
        })
        .collect();

    // Progress monitor; with --kill-grm, SIGKILL the daemon once a third
    // of the workload has settled, then respawn it over the same journal.
    let mut killed_at: Option<usize> = None;
    let mut barrier_probe = (flags.mode == Mode::Nonseq)
        .then(|| connect_endpoint(&endpoint).with_rpc_deadline(Duration::from_secs(1)));
    loop {
        // Release the nonseq report barrier once every pool is
        // refreshed — workers are all parked behind the marker, so no
        // request can have drained a pool back to zero yet.
        if let Some(probe) = &barrier_probe {
            if matches!(probe.availability(), Ok(avail) if avail.iter().all(|&v| v > 0.0)) {
                fs::write(reports_done_path(&flags.dir), b"ok").expect("write report barrier");
                barrier_probe = None;
            }
        }
        let done = settled_lines(&flags.dir, flags.workers);
        if flags.kill_grm && killed_at.is_none() && done >= total / 3 {
            assert!(done < total, "workload drained before the kill landed; grow --requests");
            grm.kill().expect("SIGKILL daemon");
            grm.wait().expect("reap daemon");
            killed_at = Some(done);
            println!("  killed GRM daemon after {done}/{total} settled events; respawning");
            grm = respawn_role(&flags, "daemon", &[]);
        }
        if workers.iter_mut().all(|w| w.try_wait().expect("poll worker").is_some()) {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    for (w, child) in workers.iter_mut().enumerate() {
        let status = child.wait().expect("wait worker");
        assert!(status.success(), "worker {w} failed: {status}");
    }
    let elapsed = started.elapsed();

    // The chaos is over: stop injecting faults before the final state
    // reads (the replay itself is done, so nothing left to harden).
    if let Some(p) = &proxy {
        p.heal();
    }

    // Final daemon state, then merged outcomes.
    let availability = await_daemon(&endpoint);
    let stats = connect_endpoint(&endpoint).stats().ok();
    let mut merged: Vec<Option<String>> = vec![None; total];
    for w in 0..flags.workers {
        let text = fs::read_to_string(outcome_path(&flags.dir, w)).expect("read outcome log");
        for line in text.lines() {
            let (seq, rest) = line.split_once(' ').expect("malformed outcome line");
            let seq: usize = seq.parse().expect("outcome seq");
            assert!(merged[seq].is_none(), "event {seq} settled twice (at-most-once violated)");
            merged[seq] = Some(rest.to_string());
        }
    }

    let events_per_sec = total as f64 / elapsed.as_secs_f64();
    println!(
        "  replayed {} events across {} workers in {:.2}s ({:.0} events/s)",
        total,
        flags.workers,
        elapsed.as_secs_f64(),
        events_per_sec
    );
    let grants = merged.iter().flatten().filter(|l| l.starts_with('G')).count();
    let denials = merged.iter().flatten().filter(|l| l.as_str() == "D").count();
    println!("  decisions: {grants} grants, {denials} denials");
    if let Some(p) = &proxy {
        let s = p.stats();
        println!(
            "  proxy: {} delivered, {} dropped, {} duplicated, {} held, {} delayed",
            s.delivered, s.dropped, s.duplicated, s.held, s.delayed
        );
    }

    // Telemetry: the daemon's periodic snapshot (it can't export at
    // exit — we kill it). The group-commit records histogram is the
    // loss-window curve's raw material: each observation is the
    // unsynced tail one fsync retired. The daemon snapshots every
    // 200ms, so wait out a full period (plus slack) — a short run can
    // otherwise finish before the first snapshot ever lands. This sits
    // outside the timed section.
    std::thread::sleep(Duration::from_millis(450));
    let mut group_fsyncs = 0u64;
    let mut group_records_mean = 0.0f64;
    let mut group_records_max = 0.0f64;
    if let Ok(text) = fs::read_to_string(telemetry_path(&flags.dir)) {
        if let Ok(snap) = Snapshot::from_json(&text) {
            for kind in
                [HistKind::JournalFsyncSeconds, HistKind::GroupCommitRecords, HistKind::FrameBytes]
            {
                if let Some(h) = snap.histogram(kind) {
                    println!(
                        "  {}: count={} mean={:.6} max={:.6}",
                        h.name,
                        h.count,
                        h.mean(),
                        h.max
                    );
                }
            }
            if let Some(h) = snap.histogram(HistKind::GroupCommitRecords) {
                group_fsyncs = h.count;
                group_records_mean = h.mean();
                group_records_max = h.max;
            }
            if let Some(out) = &flags.telemetry_out {
                agreements_experiments::write_snapshot(out, &snap);
            }
        }
    }

    let mut failures = 0usize;
    if flags.check {
        failures += match (&reference, flags.mode) {
            (Some(reference), _) => {
                check_replay(&flags, reference, &merged, &availability, killed_at, total)
            }
            (None, Mode::Nonseq) => check_nonseq(
                &flags,
                &cfg,
                &events,
                &merged,
                &availability,
                // A kill-9 resets the daemon's lifetime counters, so the
                // accounting cross-check only binds an uninterrupted run.
                stats.filter(|_| killed_at.is_none()).map(|s| s.granted_units),
                killed_at,
                total,
            ),
            (None, _) => unreachable!("reference exists whenever an ordered mode checks"),
        };
    }

    if let Some(path) = &flags.json_out {
        let proxy_stats = proxy.as_ref().map(|p| p.stats());
        let json = format!(
            "{{\n  \"mode\": \"{}\",\n  \"transport\": \"{}\",\n  \"fsync\": \"{}\",\n  \"window\": {},\n  \"n\": {},\n  \"workers\": {},\n  \"requests\": {},\n  \"epochs\": {},\n  \"chaos\": {},\n  \"chaos_seed\": {},\n  \"latency_us\": {},\n  \"max_hold_ms\": {},\n  \"events\": {},\n  \"elapsed_s\": {:.4},\n  \"events_per_sec\": {:.1},\n  \"grants\": {},\n  \"denials\": {},\n  \"group_fsyncs\": {},\n  \"group_records_mean\": {:.3},\n  \"group_records_max\": {},\n  \"proxy_dropped\": {},\n  \"proxy_duplicated\": {},\n  \"proxy_held\": {},\n  \"proxy_delayed\": {},\n  \"killed\": {},\n  \"checked\": {},\n  \"check_failures\": {}\n}}\n",
            flags.mode.as_str(),
            flags.transport.as_str(),
            flags.fsync,
            flags.window,
            flags.n,
            flags.workers,
            flags.requests,
            flags.epochs,
            flags.chaos.is_some(),
            chaos_seed,
            flags.latency_us,
            flags.max_hold_ms,
            total,
            elapsed.as_secs_f64(),
            events_per_sec,
            grants,
            denials,
            group_fsyncs,
            group_records_mean,
            group_records_max,
            proxy_stats.as_ref().map_or(0, |s| s.dropped),
            proxy_stats.as_ref().map_or(0, |s| s.duplicated),
            proxy_stats.as_ref().map_or(0, |s| s.held),
            proxy_stats.as_ref().map_or(0, |s| s.delayed),
            killed_at.is_some(),
            flags.check,
            failures
        );
        fs::write(path, json).expect("write --json-out");
    }

    grm.kill().expect("stop daemon");
    grm.wait().expect("reap daemon");
    let _ = fs::remove_dir_all(&flags.dir);
    if failures > 0 {
        eprintln!("FEDERATION CHECK FAILED: {failures} assertion(s)");
        std::process::exit(1);
    }
    if flags.check {
        match flags.mode {
            Mode::Nonseq => println!(
                "  all checks passed: coverage, at-most-once, grant shape, conservation{}",
                if killed_at.is_none() { ", accounting" } else { "" }
            ),
            _ => println!("  all checks passed: coverage, decisions, state, conservation"),
        }
    }
}

/// The sequenced/pipelined `--check` battery; returns the number of
/// failed assertions (reporting all of them beats stopping at the
/// first).
fn check_replay(
    flags: &Flags,
    reference: &Reference,
    merged: &[Option<String>],
    availability: &[f64],
    killed_at: Option<usize>,
    total: usize,
) -> usize {
    let mut failures = 0usize;
    let mut fail = |msg: String| {
        eprintln!("  CHECK FAILED: {msg}");
        failures += 1;
    };

    // 1. Coverage: every event settled exactly once (double settlement
    //    is caught at merge time).
    let missing = merged.iter().enumerate().filter(|(_, l)| l.is_none()).count();
    if missing > 0 {
        fail(format!("{missing}/{total} events never settled"));
    }

    // 2. Decision equality against the reference, bit-for-bit.
    let mut diverged = 0usize;
    for (seq, (got, want)) in merged.iter().zip(&reference.outcomes).enumerate() {
        if let Some(got) = got {
            if got != want {
                if diverged == 0 {
                    fail(format!("event {seq}: got `{got}`, reference `{want}`"));
                }
                diverged += 1;
            }
        }
    }
    if diverged > 1 {
        eprintln!("    ({diverged} diverging decisions in total)");
    }

    // 3. Final availability, bit-for-bit.
    if availability.len() != reference.availability.len() {
        fail("availability length mismatch".to_string());
    } else if let Some(p) = (0..availability.len())
        .find(|&p| availability[p].to_bits() != reference.availability[p].to_bits())
    {
        fail(format!(
            "availability[{p}] diverged: {} vs reference {}",
            availability[p], reference.availability[p]
        ));
    }

    // 4. Pool conservation: base pools minus exactly the grants since
    //    the last refresh.
    let expect = flags.n as f64
        * ScaleConfig::isp(flags.n, flags.requests, flags.seed).base_availability
        - reference.granted_since_refresh;
    let got: f64 = availability.iter().sum();
    if (got - expect).abs() > 1e-6 * expect.abs().max(1.0) {
        fail(format!("pool conservation: pools sum to {got}, expected {expect}"));
    }

    // 5. The kill must have landed mid-replay for the recovery claim to
    //    mean anything.
    if flags.kill_grm {
        match killed_at {
            Some(at) if at < total => {}
            Some(at) => fail(format!("daemon killed only after all {at} events settled")),
            None => fail("daemon was never killed (--kill-grm)".to_string()),
        }
    }
    failures
}

/// The nonseq `--check` battery: parse the merged logs into settlement
/// events and run the order-insensitive invariant checker.
#[allow(clippy::too_many_arguments)]
fn check_nonseq(
    flags: &Flags,
    cfg: &ScaleConfig,
    events: &[Event],
    merged: &[Option<String>],
    availability: &[f64],
    granted_units: Option<f64>,
    killed_at: Option<usize>,
    total: usize,
) -> usize {
    let mut failures = 0usize;
    let mut fail = |msg: String| {
        eprintln!("  CHECK FAILED: {msg}");
        failures += 1;
    };

    // Coverage over the full stream (reports included) first — the
    // checker's own coverage pass is scoped to requests.
    let missing = merged.iter().filter(|l| l.is_none()).count();
    if missing > 0 {
        fail(format!("{missing}/{total} events never settled"));
    }

    let expected: Vec<u64> = events
        .iter()
        .enumerate()
        .filter(|(_, ev)| matches!(ev, Event::Request { .. }))
        .map(|(seq, _)| seq as u64)
        .collect();
    let settled: Vec<CheckEvent> = merged
        .iter()
        .enumerate()
        .filter_map(|(seq, line)| {
            let line = line.as_ref()?;
            let requester = match events[seq] {
                Event::Report { lrm, .. } | Event::Request { lrm, .. } => lrm,
            };
            parse_nonseq_line(seq as u64, requester, line)
        })
        .collect();
    let base = cfg.generate().availability;
    for v in check_order_insensitive(&CheckInputs {
        base: &base,
        expected: &expected,
        events: &settled,
        final_availability: availability,
        granted_units,
    }) {
        fail(v);
    }

    if flags.kill_grm {
        match killed_at {
            Some(at) if at < total => {}
            Some(at) => fail(format!("daemon killed only after all {at} events settled")),
            None => fail("daemon was never killed (--kill-grm)".to_string()),
        }
    }
    failures
}
