//! Order-insensitive verification of a non-sequenced federation replay.
//!
//! In non-sequenced mode the daemon's connections race: the interleaving
//! of decisions is nondeterministic, so the sequenced harness's
//! bit-for-bit comparison against a single reference fold is undefined.
//! What *is* still defined — for every legal interleaving — is a set of
//! conservation and at-most-once invariants over the merged decision
//! log. This module states them as a pure function of plain data so the
//! federation orchestrator and a property test can share one checker:
//!
//! 1. **Coverage / at-most-once**: the settled log contains exactly one
//!    outcome per expected request sequence number — none lost, none
//!    settled twice (the [`RequestId`](agreements_grm::RequestId) dedup
//!    window's externally visible contract).
//! 2. **Grant shape**: every grant's draw vector is non-negative, names
//!    only live principals, and sums to the granted amount.
//! 3. **Pool conservation**: for every principal `p`, the daemon's final
//!    availability equals the post-report base minus the total drawn
//!    from `p` across all grants, to relative tolerance (the daemon
//!    subtracts in whatever order its connections raced; we sum in log
//!    order, so bit equality is not the contract — conservation is).
//! 4. **Granted-units accounting** (optional): the daemon's lifetime
//!    `granted_units` counter equals the sum of granted amounts. Only
//!    meaningful when the daemon ran uninterrupted — a kill-9 resets
//!    the counter — so the caller passes `None` across a crash.
//!
//! All checks are order-insensitive by construction: permuting `events`
//! never changes the verdict (every aggregate is a sum or a multiset).

/// One settled allocation request from the merged worker logs.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckEvent {
    /// Global event sequence number (identity; also the `RequestId` seq).
    pub seq: u64,
    /// Requesting principal.
    pub requester: usize,
    /// What the daemon decided.
    pub outcome: CheckOutcome,
}

/// The decision half of a [`CheckEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum CheckOutcome {
    /// Granted `amount` units drawn from the listed principals
    /// (sparse: only nonzero draws appear).
    Granted { amount: f64, draws: Vec<(usize, f64)> },
    /// Denied (insufficient pool / agreement); moves no resources.
    Denied,
}

/// Everything the order-insensitive battery needs, as plain slices.
#[derive(Debug, Clone)]
pub struct CheckInputs<'a> {
    /// Post-report-phase availability per principal (the pools every
    /// grant draws against).
    pub base: &'a [f64],
    /// Request sequence numbers that must settle exactly once.
    pub expected: &'a [u64],
    /// The merged, settled decision log (any order).
    pub events: &'a [CheckEvent],
    /// The daemon's availability vector after the replay drained.
    pub final_availability: &'a [f64],
    /// The daemon's lifetime granted-units counter, when it survived
    /// the whole replay (`None` across a kill-9: the counter resets).
    pub granted_units: Option<f64>,
}

/// Relative tolerance for conservation sums: the daemon and the checker
/// accumulate the same grants in different orders, so agreement is to
/// floating-point associativity, not bit equality.
pub const REL_TOL: f64 = 1e-6;

fn close(got: f64, want: f64) -> bool {
    (got - want).abs() <= REL_TOL * want.abs().max(1.0)
}

/// Run the full order-insensitive battery; returns one human-readable
/// line per violated invariant (empty = replay verified). Reporting all
/// violations beats stopping at the first when a run goes wrong.
pub fn check_order_insensitive(inp: &CheckInputs) -> Vec<String> {
    let n = inp.base.len();
    let mut violations = Vec::new();

    // 1. Coverage / at-most-once: settled seqs == expected seqs as sets,
    //    with no duplicates on either side of the comparison.
    let mut expected: Vec<u64> = inp.expected.to_vec();
    expected.sort_unstable();
    expected.dedup();
    if expected.len() != inp.expected.len() {
        violations.push("expected sequence list itself contains duplicates".to_string());
    }
    let mut settled: Vec<u64> = inp.events.iter().map(|e| e.seq).collect();
    settled.sort_unstable();
    let dup_count = settled.windows(2).filter(|w| w[0] == w[1]).count();
    if dup_count > 0 {
        let dup = settled.windows(2).find(|w| w[0] == w[1]).expect("dup exists")[0];
        violations.push(format!(
            "at-most-once violated: {dup_count} sequence(s) settled more than once (e.g. seq {dup})"
        ));
    }
    settled.dedup();
    if settled != expected {
        let missing = expected.iter().filter(|s| settled.binary_search(s).is_err()).count();
        let extra = settled.iter().filter(|s| expected.binary_search(s).is_err()).count();
        violations.push(format!(
            "coverage violated: {missing} expected event(s) never settled, {extra} unexpected"
        ));
    }

    // 2. Per-grant shape: draws in range, non-negative, summing to the
    //    granted amount.
    let mut bad_shape = 0usize;
    for e in inp.events {
        if e.requester >= n {
            bad_shape += 1;
            continue;
        }
        if let CheckOutcome::Granted { amount, draws } = &e.outcome {
            let mut sum = 0.0;
            let mut ok = *amount >= 0.0;
            for &(p, d) in draws {
                ok &= p < n && d >= 0.0;
                sum += d;
            }
            if !ok || !close(sum, *amount) {
                bad_shape += 1;
            }
        }
    }
    if bad_shape > 0 {
        violations.push(format!(
            "grant shape violated: {bad_shape} grant(s) malformed or draws != amount"
        ));
    }

    // 3. Pool conservation per principal.
    if inp.final_availability.len() != n {
        violations.push(format!(
            "availability length mismatch: {} vs {n} principals",
            inp.final_availability.len()
        ));
    } else {
        let mut drawn = vec![0.0f64; n];
        for e in inp.events {
            if let CheckOutcome::Granted { draws, .. } = &e.outcome {
                for &(p, d) in draws {
                    if p < n {
                        drawn[p] += d;
                    }
                }
            }
        }
        let mut bad = 0usize;
        let mut first = String::new();
        for (p, &d) in drawn.iter().enumerate() {
            let want = inp.base[p] - d;
            let got = inp.final_availability[p];
            if !close(got, want) {
                if bad == 0 {
                    first = format!(
                        "conservation violated at principal {p}: final {got}, expected {} - {d} = {want}",
                        inp.base[p]
                    );
                }
                bad += 1;
            }
        }
        if bad > 0 {
            violations.push(if bad == 1 {
                first
            } else {
                format!("{first} ({bad} principals diverge in total)")
            });
        }
    }

    // 4. Granted-units accounting (uninterrupted daemons only).
    if let Some(counter) = inp.granted_units {
        let total: f64 = inp
            .events
            .iter()
            .map(|e| match &e.outcome {
                CheckOutcome::Granted { amount, .. } => *amount,
                CheckOutcome::Denied => 0.0,
            })
            .sum();
        if !close(counter, total) {
            violations.push(format!(
                "granted-units accounting violated: daemon counter {counter}, log total {total}"
            ));
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grant(seq: u64, requester: usize, draws: Vec<(usize, f64)>) -> CheckEvent {
        let amount = draws.iter().map(|&(_, d)| d).sum();
        CheckEvent { seq, requester, outcome: CheckOutcome::Granted { amount, draws } }
    }

    fn deny(seq: u64, requester: usize) -> CheckEvent {
        CheckEvent { seq, requester, outcome: CheckOutcome::Denied }
    }

    #[test]
    fn clean_log_passes_in_any_order() {
        let base = [6.0, 6.0, 6.0];
        let events =
            vec![grant(10, 0, vec![(0, 2.0), (1, 1.0)]), deny(11, 2), grant(12, 1, vec![(1, 0.5)])];
        let final_availability = [4.0, 4.5, 6.0];
        let expected = [10, 11, 12];
        let mut reversed = events.clone();
        reversed.reverse();
        for evs in [&events, &reversed] {
            let v = check_order_insensitive(&CheckInputs {
                base: &base,
                expected: &expected,
                events: evs,
                final_availability: &final_availability,
                granted_units: Some(3.5),
            });
            assert!(v.is_empty(), "unexpected violations: {v:?}");
        }
    }

    #[test]
    fn mutations_are_caught() {
        let base = [6.0, 6.0];
        let ok = vec![grant(0, 0, vec![(0, 1.0)]), deny(1, 1)];
        let fin = [5.0, 6.0];
        let check = |events: &[CheckEvent], fin: &[f64], units: Option<f64>| {
            check_order_insensitive(&CheckInputs {
                base: &base,
                expected: &[0, 1],
                events,
                final_availability: fin,
                granted_units: units,
            })
        };
        assert!(check(&ok, &fin, Some(1.0)).is_empty());
        // Dropped settlement.
        assert!(!check(&ok[..1], &fin, Some(1.0)).is_empty());
        // Duplicated grant.
        let dup = [ok.clone(), vec![ok[0].clone()]].concat();
        assert!(!check(&dup, &fin, Some(1.0)).is_empty());
        // Altered units (draws no longer sum to the amount).
        let mut altered = ok.clone();
        if let CheckOutcome::Granted { amount, .. } = &mut altered[0].outcome {
            *amount += 0.25;
        }
        assert!(!check(&altered, &fin, Some(1.0)).is_empty());
        // Stolen resources (final pool does not match the log).
        assert!(!check(&ok, &[4.5, 6.0], Some(1.0)).is_empty());
        // Counter mismatch.
        assert!(!check(&ok, &fin, Some(2.0)).is_empty());
    }
}
