//! Shared replay harness for the multi-resource scaled experiment: one
//! implementation drives both the `multires_scale` binary and the golden
//! checksum test in `tests/paper_shapes.rs`.
//!
//! The day is replayed exactly like the single-resource `scale` binary —
//! per-lane pools refresh at the top of each hour, grants draw them
//! down, denials leave them untouched — but admission goes through
//! [`MultiAdmission`]: a request is granted only when **every** resource
//! lane admits it, and a capacity rejection names the binding lane.
//! Each hour is also a fairness epoch: the per-principal granted amounts
//! feed an [`EpochLog`], [`analyze_epoch`] summarizes it (dominant
//! shares, envy pairs, justified complaints), and in check mode
//! [`check_fairness`] audits every report before it is folded into the
//! fairness checksum. Aggregate envy counts are exported through the
//! telemetry plane as the `fairness.envy_pairs`,
//! `fairness.justified_complaints`, and `fairness.epochs` counters, so a
//! `--telemetry-out` snapshot carries the day's fairness verdict
//! alongside the scheduler's own counters.
//!
//! Determinism: the replay is a pure fold over the (seeded) workload, so
//! both checksums are reproducible bit-for-bit — `tests/paper_shapes.rs`
//! pins them at n = 100.

use crate::fairness::{analyze_epoch, check_fairness, EpochLog, FairnessReport};
use agreements_flow::PartitionOptions;
use agreements_sched::hierarchy::HierarchicalScheduler;
use agreements_sched::{MultiAdmission, SchedError};
use agreements_telemetry::Telemetry;
use agreements_trace::{MultiScaleConfig, MultiScaleWorkload, RESOURCE_NAMES};

const HOUR: f64 = 3600.0;
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fold(h: u64, bits: u64) -> u64 {
    (h ^ bits).wrapping_mul(FNV_PRIME)
}

/// One hour of the multi-resource replay.
#[derive(Debug, Clone)]
pub struct MultiHourRow {
    /// Hour of day (0-based).
    pub hour: usize,
    /// Demand events that arrived this hour.
    pub demands: usize,
    /// Demands admitted (every lane granted).
    pub admitted: usize,
    /// Units granted this hour, summed across lanes.
    pub granted_units: f64,
}

/// The replayed day: hourly series, per-lane rejection attribution, the
/// per-epoch fairness reports, and the two determinism fingerprints.
#[derive(Debug, Clone)]
pub struct MultiRunResult {
    /// Hourly admission series.
    pub hours: Vec<MultiHourRow>,
    /// Total demands admitted.
    pub admitted: usize,
    /// Total demands denied for capacity.
    pub denied: usize,
    /// Denials attributed to each binding resource lane.
    pub denied_by_lane: Vec<usize>,
    /// Units granted across the day, summed over lanes.
    pub granted_units: f64,
    /// FNV-1a over the bit patterns of every granted draw vector, every
    /// lane, in decision order.
    pub draws_checksum: u64,
    /// FNV-1a over every epoch's dominant-share bit patterns and envy
    /// counts, in epoch order.
    pub fairness_checksum: u64,
    /// One fairness report per hourly epoch.
    pub epochs: Vec<FairnessReport>,
}

/// Build the multi-resource admission stack for a config: one
/// auto-partitioned [`HierarchicalScheduler`] per resource lane, all
/// over the *same* agreement economy (the paper's agreements govern the
/// principals, not any single resource), under the standard lane names.
pub fn build_admission(cfg: &MultiScaleConfig) -> MultiAdmission {
    let s = cfg.base.agreements().expect("economy");
    let lanes: Vec<HierarchicalScheduler> = RESOURCE_NAMES
        .iter()
        .map(|_| {
            let mut lane =
                HierarchicalScheduler::auto(&s, &PartitionOptions::default(), 1).expect("auto");
            lane.set_parallel_fine(true);
            lane
        })
        .collect();
    MultiAdmission::new(RESOURCE_NAMES.to_vec(), lanes).expect("lanes agree")
}

/// Accumulating state of one fairness epoch.
struct Epoch {
    allocated: Vec<Vec<f64>>,
    rejected: Vec<bool>,
}

impl Epoch {
    fn new(n: usize, rk: usize) -> Self {
        Epoch { allocated: vec![vec![0.0; rk]; n], rejected: vec![false; n] }
    }

    /// Close the epoch: summarize, audit (check mode), fold the
    /// fingerprint, export counters, and reset for the next hour.
    fn finish(
        &mut self,
        capacity: &[f64],
        telemetry: &Telemetry,
        checksum: &mut u64,
        reports: &mut Vec<FairnessReport>,
        check: bool,
    ) {
        let log = EpochLog {
            capacity: capacity.to_vec(),
            allocated: std::mem::take(&mut self.allocated),
            rejected: self
                .rejected
                .iter()
                .enumerate()
                .filter_map(|(p, &r)| r.then_some(p))
                .collect(),
        };
        let report = analyze_epoch(&log);
        if check {
            let v = check_fairness(&log, &report);
            assert!(v.is_empty(), "fairness audit failed: {v:?}");
        }
        for &s in &report.dominant_shares {
            *checksum = fold(*checksum, s.to_bits());
        }
        *checksum = fold(*checksum, report.envy_pairs as u64);
        *checksum = fold(*checksum, report.justified_complaints as u64);
        telemetry.add("fairness.epochs", 1);
        telemetry.add("fairness.envy_pairs", report.envy_pairs as u64);
        telemetry.add("fairness.justified_complaints", report.justified_complaints as u64);
        reports.push(report);
        let n = log.allocated.len();
        let rk = log.capacity.len();
        self.allocated = vec![vec![0.0; rk]; n];
        self.rejected.iter_mut().for_each(|r| *r = false);
    }
}

/// Replay the day's multi-resource demand stream through the admission
/// stack. Per-lane availability refreshes each hour; each hour is one
/// fairness epoch. In check mode, conservation and the fairness audit
/// are asserted inline.
pub fn run_multi_day(
    adm: &MultiAdmission,
    workload: &MultiScaleWorkload,
    telemetry: &Telemetry,
    check: bool,
) -> MultiRunResult {
    let rk = adm.num_resources();
    let n = adm.num_principals();
    assert_eq!(workload.availability.len(), rk, "workload lanes");
    let mut avail: Vec<Vec<f64>> = workload.availability.clone();
    let base = &workload.availability;
    let capacity: Vec<f64> = base.iter().map(|lane| lane.iter().sum()).collect();

    let mut hour = 0usize;
    let mut hours: Vec<MultiHourRow> = Vec::new();
    let mut cur = MultiHourRow { hour: 0, demands: 0, admitted: 0, granted_units: 0.0 };
    let (mut admitted, mut denied, mut granted_units) = (0usize, 0usize, 0.0f64);
    let mut denied_by_lane = vec![0usize; rk];
    let mut draws_checksum = FNV_BASIS;
    let mut fairness_checksum = FNV_BASIS;
    let mut epochs: Vec<FairnessReport> = Vec::new();
    let mut epoch = Epoch::new(n, rk);

    for d in &workload.demands {
        while d.t >= (hour + 1) as f64 * HOUR {
            epoch.finish(&capacity, telemetry, &mut fairness_checksum, &mut epochs, check);
            hours.push(std::mem::replace(
                &mut cur,
                MultiHourRow { hour: hour + 1, demands: 0, admitted: 0, granted_units: 0.0 },
            ));
            hour += 1;
            for (lane, b) in avail.iter_mut().zip(base) {
                lane.copy_from_slice(b);
            }
        }
        cur.demands += 1;
        match adm.admit_one(&mut avail, d.requester, &d.amounts) {
            Ok(alloc) => {
                for (r, lane) in alloc.lanes.iter().enumerate() {
                    let mut drawn = 0.0;
                    for &dr in &lane.draws {
                        drawn += dr;
                        draws_checksum = fold(draws_checksum, dr.to_bits());
                    }
                    if check {
                        assert!(
                            (drawn - lane.amount).abs() < 1e-6,
                            "lane {r} conservation: drew {drawn}, granted {}",
                            lane.amount
                        );
                        assert!(
                            avail[r].iter().all(|&v| v > -1e-9),
                            "negative availability in lane {r} after a grant"
                        );
                    }
                    epoch.allocated[d.requester][r] += lane.amount;
                    granted_units += lane.amount;
                    cur.granted_units += lane.amount;
                }
                admitted += 1;
                cur.admitted += 1;
            }
            Err(SchedError::InsufficientCapacity { resource, .. }) => {
                denied += 1;
                epoch.rejected[d.requester] = true;
                let lane = resource
                    .and_then(|name| adm.names().iter().position(|&l| l == name))
                    .expect("multi-path rejections name a lane");
                denied_by_lane[lane] += 1;
            }
            Err(e) => panic!("multi-resource admission failed: {e}"),
        }
    }
    epoch.finish(&capacity, telemetry, &mut fairness_checksum, &mut epochs, check);
    hours.push(cur);

    MultiRunResult {
        hours,
        admitted,
        denied,
        denied_by_lane,
        granted_units,
        draws_checksum,
        fairness_checksum,
        epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreements_sched::STANDARD_RESOURCES;
    use agreements_telemetry::{Telemetry, DEFAULT_EVENT_CAPACITY};

    /// The trace crate's lane schema and the scheduler's standard schema
    /// are the same object in two crates that cannot depend on each
    /// other; this harness depends on both, so the sync check lives here.
    #[test]
    fn lane_schemas_agree_across_crates() {
        assert_eq!(RESOURCE_NAMES, STANDARD_RESOURCES);
    }

    #[test]
    fn small_day_is_deterministic_and_audited() {
        let cfg = MultiScaleConfig::isp_multi(24, 600, 77);
        let workload = cfg.generate();
        let adm = build_admission(&cfg);
        let (telemetry, recorder) = Telemetry::recorder(DEFAULT_EVENT_CAPACITY);
        let a = run_multi_day(&adm, &workload, &telemetry, true);
        let b = run_multi_day(&adm, &workload, &Telemetry::default(), false);
        assert_eq!(a.draws_checksum, b.draws_checksum, "re-run diverged");
        assert_eq!(a.fairness_checksum, b.fairness_checksum);
        assert_eq!(a.admitted + a.denied, workload.demands.len());
        assert_eq!(a.denied_by_lane.iter().sum::<usize>(), a.denied);
        assert_eq!(a.epochs.len(), a.hours.len());
        let snap = recorder.snapshot();
        assert_eq!(snap.counter("fairness.epochs"), a.epochs.len() as u64);
        assert_eq!(
            snap.counter("fairness.envy_pairs"),
            a.epochs.iter().map(|e| e.envy_pairs as u64).sum::<u64>()
        );
        assert_eq!(
            snap.counter("fairness.justified_complaints"),
            a.epochs.iter().map(|e| e.justified_complaints as u64).sum::<u64>()
        );
    }

    #[test]
    fn tight_bandwidth_lane_binds_under_pressure() {
        // The ISP preset's bandwidth pool is 60% of CPU while class-1
        // principals demand 3x there: with enough load, some denials
        // must cite bandwidth.
        let cfg = MultiScaleConfig::isp_multi(24, 2_000, 9);
        let workload = cfg.generate();
        let adm = build_admission(&cfg);
        let r = run_multi_day(&adm, &workload, &Telemetry::default(), false);
        assert!(r.denied > 0, "workload must produce rejections");
        let bw = RESOURCE_NAMES.iter().position(|&l| l == "bandwidth").unwrap();
        assert!(r.denied_by_lane[bw] > 0, "bandwidth never bound: {:?}", r.denied_by_lane);
    }
}
