//! Dominant-resource fairness metrics over a multi-resource epoch, and a
//! checker that audits a reported [`FairnessReport`] against the raw
//! allocation log it claims to summarize.
//!
//! The multi-resource enforcement stack admits a request only when every
//! resource lane's LP admits it, so the natural fairness question is the
//! DRF one (Ghodsi et al., NSDI 2011) rather than a per-lane share: a
//! principal's **dominant share** is its largest per-resource fraction
//! of the pool,
//!
//! ```text
//! s_i = max_r allocated[i][r] / capacity[r]
//! ```
//!
//! and the grievances worth counting are relative to it:
//!
//! - an **envy pair** `(i, j)` is an ordered pair where `i` had at least
//!   one request rejected this epoch yet `j` holds a strictly larger
//!   dominant share (beyond [`SHARE_EPS`]) — `i` can point at `j` and
//!   ask why `j` got more of *its own* bottleneck than `i` did;
//! - a **justified complaint** is a rejected principal with at least one
//!   envy pair. A rejected principal who already holds the (weakly)
//!   largest dominant share has no justified complaint: the system is
//!   out of room, not unfair.
//!
//! [`analyze_epoch`] computes these from an [`EpochLog`];
//! [`check_fairness`] is the audit half, in the style of
//! [`crate::checker`]: a pure function of plain data returning one
//! human-readable line per violated invariant, so the scaled replay, the
//! CI smoke run, and a property test over mutated logs share one
//! checker. It catches the three mutation classes the replay could
//! plausibly emit if buggy: **stolen units** (a lane's allocations
//! exceed its pool, or go negative), **drifted shares** (the report's
//! dominant shares disagree with recomputation), and **fabricated envy**
//! (the report's envy-pair or complaint counts disagree with a recount).

/// Strict-inequality slack for dominant-share comparisons: `j` is envied
/// by `i` only when `s_j > s_i + SHARE_EPS`, so ties produced by
/// symmetric workloads never register as envy.
pub const SHARE_EPS: f64 = 1e-9;

/// Relative tolerance when auditing a report against recomputation
/// (shares are sums of grant draws accumulated in replay order; the
/// auditor re-sums in log order, so agreement is to floating-point
/// associativity, not bit equality).
pub const REL_TOL: f64 = 1e-6;

/// One epoch of multi-resource allocation history, as plain data.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochLog {
    /// Per-resource pool capacity for the epoch (lane order).
    pub capacity: Vec<f64>,
    /// `allocated[i][r]`: units principal `i` holds in resource `r` at
    /// epoch end (sum of its granted amounts this epoch).
    pub allocated: Vec<Vec<f64>>,
    /// Principals that had at least one request rejected for capacity
    /// this epoch (deduplicated; order irrelevant).
    pub rejected: Vec<usize>,
}

/// The fairness summary of one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessReport {
    /// Dominant share `s_i` per principal.
    pub dominant_shares: Vec<f64>,
    /// Ordered envy pairs `(i, j)`: `i` rejected, `s_j > s_i + eps`.
    pub envy_pairs: usize,
    /// Rejected principals with at least one envy pair.
    pub justified_complaints: usize,
}

fn close(got: f64, want: f64) -> bool {
    (got - want).abs() <= REL_TOL * want.abs().max(1.0)
}

/// Dominant share per principal: `max_r allocated[i][r] / capacity[r]`.
/// Lanes with non-positive capacity contribute no share (an empty pool
/// cannot be a bottleneck anyone holds a fraction of).
pub fn dominant_shares(capacity: &[f64], allocated: &[Vec<f64>]) -> Vec<f64> {
    allocated
        .iter()
        .map(|row| {
            row.iter()
                .zip(capacity)
                .filter(|&(_, &c)| c > 0.0)
                .map(|(&a, &c)| a / c)
                .fold(0.0f64, f64::max)
        })
        .collect()
}

/// Count the epoch's envy pairs and justified complaints given the
/// dominant shares and the rejected set.
fn count_envy(shares: &[f64], rejected: &[usize]) -> (usize, usize) {
    let mut pairs = 0usize;
    let mut complaints = 0usize;
    for &i in rejected {
        if i >= shares.len() {
            continue;
        }
        let envied = shares
            .iter()
            .enumerate()
            .filter(|&(j, &s)| j != i && s > shares[i] + SHARE_EPS)
            .count();
        pairs += envied;
        if envied > 0 {
            complaints += 1;
        }
    }
    (pairs, complaints)
}

/// Compute the epoch's [`FairnessReport`] from its raw log.
pub fn analyze_epoch(log: &EpochLog) -> FairnessReport {
    let shares = dominant_shares(&log.capacity, &log.allocated);
    let (envy_pairs, justified_complaints) = count_envy(&shares, &log.rejected);
    FairnessReport { dominant_shares: shares, envy_pairs, justified_complaints }
}

/// Audit `report` against the raw `log`; returns one human-readable line
/// per violated invariant (empty = the report is faithful). Reporting
/// all violations beats stopping at the first when a replay goes wrong.
pub fn check_fairness(log: &EpochLog, report: &FairnessReport) -> Vec<String> {
    let n = log.allocated.len();
    let rk = log.capacity.len();
    let mut violations = Vec::new();

    // 1. Log shape: every principal row spans every lane, rejected
    //    indices name real principals, exactly once each.
    let bad_rows = log.allocated.iter().filter(|row| row.len() != rk).count();
    if bad_rows > 0 {
        violations
            .push(format!("log shape violated: {bad_rows} principal row(s) not {rk} lanes wide"));
    }
    let out_of_range = log.rejected.iter().filter(|&&p| p >= n).count();
    if out_of_range > 0 {
        violations.push(format!(
            "log shape violated: {out_of_range} rejected entr(ies) name unknown principals"
        ));
    }
    let mut seen = log.rejected.to_vec();
    seen.sort_unstable();
    seen.dedup();
    if seen.len() != log.rejected.len() {
        violations.push("log shape violated: rejected list contains duplicates".to_string());
    }
    if bad_rows > 0 {
        return violations; // per-lane sums below would be meaningless
    }

    // 2. Conservation ("stolen units"): each lane's allocations are
    //    non-negative and sum to at most its pool.
    for r in 0..rk {
        let total: f64 = log.allocated.iter().map(|row| row[r]).sum();
        let negatives = log.allocated.iter().filter(|row| row[r] < 0.0).count();
        if negatives > 0 {
            violations.push(format!(
                "conservation violated in lane {r}: {negatives} negative allocation(s)"
            ));
        }
        if total > log.capacity[r] * (1.0 + REL_TOL) + REL_TOL {
            violations.push(format!(
                "conservation violated in lane {r}: {total} allocated of {} capacity",
                log.capacity[r]
            ));
        }
    }

    // 3. Share fidelity ("drifted shares"): the reported dominant shares
    //    match recomputation from the log.
    let shares = dominant_shares(&log.capacity, &log.allocated);
    if report.dominant_shares.len() != n {
        violations.push(format!(
            "share fidelity violated: report covers {} principals, log has {n}",
            report.dominant_shares.len()
        ));
    } else {
        let drifted = shares
            .iter()
            .zip(&report.dominant_shares)
            .filter(|&(&want, &got)| !close(got, want))
            .count();
        if drifted > 0 {
            let (p, (&want, &got)) = shares
                .iter()
                .zip(&report.dominant_shares)
                .enumerate()
                .find(|(_, (&want, &got))| !close(got, want))
                .expect("drifted share exists");
            violations.push(format!(
                "share fidelity violated: {drifted} share(s) drifted \
                 (e.g. principal {p}: reported {got}, recomputed {want})"
            ));
        }
    }

    // 4. Envy accounting ("fabricated envy"): the reported counts match
    //    a recount from the recomputed shares.
    let (pairs, complaints) = count_envy(&shares, &log.rejected);
    if report.envy_pairs != pairs {
        violations.push(format!(
            "envy accounting violated: reported {} envy pair(s), recounted {pairs}",
            report.envy_pairs
        ));
    }
    if report.justified_complaints != complaints {
        violations.push(format!(
            "envy accounting violated: reported {} justified complaint(s), recounted {complaints}",
            report.justified_complaints
        ));
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two lanes, three principals: p0 CPU-heavy, p1 bandwidth-heavy,
    /// p2 starved and rejected. p2 envies both (two pairs, one
    /// justified complaint).
    fn sample() -> EpochLog {
        EpochLog {
            capacity: vec![10.0, 5.0],
            allocated: vec![vec![6.0, 0.5], vec![1.0, 3.0], vec![0.5, 0.25]],
            rejected: vec![2],
        }
    }

    #[test]
    fn dominant_share_is_the_max_lane_fraction() {
        let log = sample();
        let s = dominant_shares(&log.capacity, &log.allocated);
        assert!((s[0] - 0.6).abs() < 1e-12, "p0 dominates CPU: 6/10");
        assert!((s[1] - 0.6).abs() < 1e-12, "p1 dominates bandwidth: 3/5");
        assert!((s[2] - 0.05).abs() < 1e-12, "p2's max is 0.5/10 = 0.25/5");
    }

    #[test]
    fn analyze_counts_envy_from_the_rejected_side_only() {
        let r = analyze_epoch(&sample());
        assert_eq!(r.envy_pairs, 2, "p2 envies p0 and p1");
        assert_eq!(r.justified_complaints, 1);
        // A rejected principal already holding the top share has no
        // justified complaint.
        let mut log = sample();
        log.rejected = vec![0];
        let r = analyze_epoch(&log);
        assert_eq!(r.envy_pairs, 0);
        assert_eq!(r.justified_complaints, 0);
        // No rejections, no envy — regardless of share spread.
        let mut log = sample();
        log.rejected.clear();
        assert_eq!(analyze_epoch(&log).envy_pairs, 0);
    }

    #[test]
    fn tied_shares_do_not_register_envy() {
        let log = EpochLog {
            capacity: vec![4.0],
            allocated: vec![vec![1.0], vec![1.0 + 0.5 * SHARE_EPS]],
            rejected: vec![0],
        };
        let r = analyze_epoch(&log);
        assert_eq!(r.envy_pairs, 0, "within-eps difference is a tie");
    }

    #[test]
    fn faithful_report_passes() {
        let log = sample();
        let report = analyze_epoch(&log);
        let v = check_fairness(&log, &report);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn stolen_units_are_caught() {
        let mut log = sample();
        let report = analyze_epoch(&log);
        // A lane allocated beyond its pool.
        log.allocated[0][1] = 4.0; // lane 1 now sums to 7.25 of 5.0
        let v = check_fairness(&log, &report);
        assert!(v.iter().any(|l| l.contains("conservation")), "got {v:?}");
        // A negative allocation.
        let mut log = sample();
        log.allocated[1][0] = -0.5;
        let v = check_fairness(&log, &analyze_epoch(&sample()));
        assert!(v.iter().any(|l| l.contains("negative")), "got {v:?}");
    }

    #[test]
    fn drifted_shares_are_caught() {
        let log = sample();
        let mut report = analyze_epoch(&log);
        report.dominant_shares[1] += 0.01;
        let v = check_fairness(&log, &report);
        assert!(v.iter().any(|l| l.contains("share fidelity")), "got {v:?}");
        // Within-tolerance drift is accepted (replay-order resummation).
        let mut report = analyze_epoch(&log);
        report.dominant_shares[1] += 0.1 * REL_TOL;
        assert!(check_fairness(&log, &report).is_empty());
    }

    #[test]
    fn fabricated_envy_is_caught() {
        let log = sample();
        let mut report = analyze_epoch(&log);
        report.envy_pairs += 1;
        let v = check_fairness(&log, &report);
        assert!(v.iter().any(|l| l.contains("envy pair")), "got {v:?}");
        let mut report = analyze_epoch(&log);
        report.justified_complaints = 0;
        let v = check_fairness(&log, &report);
        assert!(v.iter().any(|l| l.contains("justified complaint")), "got {v:?}");
    }

    #[test]
    fn malformed_logs_are_refused() {
        let mut log = sample();
        log.allocated[1] = vec![1.0]; // wrong lane count
        assert!(!check_fairness(&log, &analyze_epoch(&sample())).is_empty());
        let mut log = sample();
        log.rejected = vec![2, 2];
        assert!(check_fairness(&log, &analyze_epoch(&log))
            .iter()
            .any(|l| l.contains("duplicates")));
        let mut log = sample();
        log.rejected = vec![9];
        assert!(check_fairness(&log, &analyze_epoch(&log))
            .iter()
            .any(|l| l.contains("unknown principals")));
    }
}
