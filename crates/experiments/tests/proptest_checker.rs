//! Property oracle for the order-insensitive federation checker.
//!
//! Two sides of the same coin: (1) **soundness of the pass verdict** —
//! any decision log synthesized to respect the invariants (feasible
//! draws, one settlement per seq, honest final pools and counter)
//! passes under *every* permutation of its events, because that is the
//! checker's whole claim; (2) **sensitivity** — classic replay bugs
//! (a dropped settlement, a duplicated grant, a grant whose draws no
//! longer sum to its amount, pools that do not match the log, a
//! granted-units counter that drifted) are each caught, again under an
//! arbitrary permutation, so a racing non-sequenced run cannot hide a
//! violation in its interleaving.

use agreements_experiments::checker::{
    check_order_insensitive, CheckEvent, CheckInputs, CheckOutcome,
};
use proptest::prelude::*;

/// One synthetic decision: deny, single-pool grant, or two-pool grant.
#[derive(Debug, Clone)]
struct Spec {
    requester: usize,
    kind: u8,
    frac: f64,
    other: usize,
}

#[derive(Debug, Clone)]
struct Scenario {
    base: Vec<f64>,
    specs: Vec<Spec>,
    /// Permutation applied to the settled log before checking.
    perm: Vec<usize>,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (2usize..=5, 1usize..=20).prop_flat_map(|(n, m)| {
        (
            proptest::collection::vec(5u32..=30, n),
            proptest::collection::vec(
                (0usize..n, 0u8..3, 0.05f64..0.4, 0usize..n).prop_map(
                    |(requester, kind, frac, other)| Spec { requester, kind, frac, other },
                ),
                m,
            ),
            // No shuffle combinator in the vendored proptest: draw one
            // random key per event and argsort — same distribution over
            // permutations, minus key-collision ties.
            proptest::collection::vec(0u64..u64::MAX, m),
        )
            .prop_map(|(base, mut specs, keys)| {
                // Guarantee at least one grant so every mutation below
                // has something to corrupt.
                specs[0].kind = 1;
                let mut perm: Vec<usize> = (0..keys.len()).collect();
                perm.sort_by_key(|&i| keys[i]);
                Scenario { base: base.into_iter().map(f64::from).collect(), specs, perm }
            })
    })
}

/// Fold the specs into a feasible log: draws are fractions of the
/// *remaining* pools, so they are always positive and never overdraw
/// (pools shrink by at most 40% per event). Sequence numbers are
/// deliberately non-contiguous — coverage is a multiset claim, not a
/// density one. Returns (events in settle order, final availability,
/// expected seqs, granted-units total).
fn realize(sc: &Scenario) -> (Vec<CheckEvent>, Vec<f64>, Vec<u64>, f64) {
    let mut remaining = sc.base.clone();
    let mut events = Vec::with_capacity(sc.specs.len());
    let mut expected = Vec::with_capacity(sc.specs.len());
    let mut units = 0.0f64;
    for (i, s) in sc.specs.iter().enumerate() {
        let seq = i as u64 * 3 + 7;
        expected.push(seq);
        let outcome = match s.kind {
            0 => CheckOutcome::Denied,
            _ => {
                let mut draws = vec![(s.requester, s.frac * remaining[s.requester])];
                if s.kind == 2 && s.other != s.requester {
                    draws.push((s.other, 0.5 * s.frac * remaining[s.other]));
                }
                let amount: f64 = draws.iter().map(|&(_, d)| d).sum();
                for &(p, d) in &draws {
                    remaining[p] -= d;
                }
                units += amount;
                CheckOutcome::Granted { amount, draws }
            }
        };
        events.push(CheckEvent { seq, requester: s.requester, outcome });
    }
    (events, remaining, expected, units)
}

fn permuted(events: &[CheckEvent], perm: &[usize]) -> Vec<CheckEvent> {
    perm.iter().map(|&i| events[i].clone()).collect()
}

fn run(
    base: &[f64],
    expected: &[u64],
    events: &[CheckEvent],
    fin: &[f64],
    units: Option<f64>,
) -> Vec<String> {
    check_order_insensitive(&CheckInputs {
        base,
        expected,
        events,
        final_availability: fin,
        granted_units: units,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A log that honours the invariants passes in settle order, under
    /// an arbitrary permutation, and with the counter check disabled
    /// (the kill-9 path passes `granted_units: None`).
    #[test]
    fn valid_logs_pass_under_any_permutation(sc in arb_scenario()) {
        let (events, fin, expected, units) = realize(&sc);
        let shuffled = permuted(&events, &sc.perm);
        for evs in [&events, &shuffled] {
            let v = run(&sc.base, &expected, evs, &fin, Some(units));
            prop_assert!(v.is_empty(), "valid log rejected: {:?}", v);
            let v = run(&sc.base, &expected, evs, &fin, None);
            prop_assert!(v.is_empty(), "valid log rejected without counter: {:?}", v);
        }
    }

    /// Each classic replay bug is caught even after the log is
    /// permuted: the interleaving cannot launder a violation.
    #[test]
    fn mutated_logs_are_rejected(sc in arb_scenario()) {
        let (events, fin, expected, units) = realize(&sc);
        let shuffled = permuted(&events, &sc.perm);

        // Dropped settlement: one expected seq never settles.
        let dropped = &shuffled[..shuffled.len() - 1];
        prop_assert!(!run(&sc.base, &expected, dropped, &fin, Some(units)).is_empty(),
            "dropped settlement not caught");

        // Duplicated grant: the same seq settles twice.
        let mut dup = shuffled.clone();
        dup.push(shuffled[0].clone());
        prop_assert!(!run(&sc.base, &expected, &dup, &fin, Some(units)).is_empty(),
            "duplicated settlement not caught");

        // Altered amount: draws no longer sum to the grant.
        let mut altered = shuffled.clone();
        let g = altered
            .iter_mut()
            .find(|e| matches!(e.outcome, CheckOutcome::Granted { .. }))
            .expect("spec[0] is forced to be a grant");
        if let CheckOutcome::Granted { amount, .. } = &mut g.outcome {
            *amount += 0.25;
        }
        prop_assert!(!run(&sc.base, &expected, &altered, &fin, Some(units)).is_empty(),
            "altered grant amount not caught");

        // Stolen resources: the daemon's final pool disagrees with the
        // log by more than tolerance.
        let mut stolen = fin.clone();
        stolen[0] -= 0.5;
        prop_assert!(!run(&sc.base, &expected, &shuffled, &stolen, Some(units)).is_empty(),
            "stolen resources not caught");

        // Drifted counter: lifetime granted_units disagrees with the
        // sum of granted amounts.
        prop_assert!(!run(&sc.base, &expected, &shuffled, &fin, Some(units + 1.0)).is_empty(),
            "drifted granted-units counter not caught");
    }
}
