//! Property oracle for the DRF fairness checker.
//!
//! Two sides of the same coin, in the `proptest_checker.rs` mold:
//! (1) **soundness of the pass verdict** — any epoch log synthesized to
//! respect the invariants (lane-conservative, non-negative allocations,
//! well-formed rejected set) paired with its own honestly computed
//! report passes, and keeps passing when the rejected list is permuted
//! (the metrics are set-valued, not sequence-valued); (2) **sensitivity**
//! — each of the three mutation classes the scaled replay could emit if
//! buggy is caught: **stolen units** (a lane's allocations inflated past
//! its pool, or pushed negative), **drifted shares** (a reported
//! dominant share nudged beyond tolerance), and **fabricated envy**
//! (envy-pair or justified-complaint counts that disagree with the log).

use agreements_experiments::fairness::{
    analyze_epoch, check_fairness, dominant_shares, EpochLog, FairnessReport, REL_TOL,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    capacity: Vec<f64>,
    /// Per-principal, per-lane allocation *fractions* of each lane's
    /// pool; realized so each lane's column sums below its capacity.
    fracs: Vec<Vec<f64>>,
    /// Rejection coin per principal.
    rejected: Vec<bool>,
    /// Argsort keys permuting the rejected list (no shuffle combinator
    /// in the vendored proptest).
    keys: Vec<u64>,
    /// Mutation targets, reduced modulo the relevant dimension.
    pick_principal: usize,
    pick_lane: usize,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (2usize..=8, 1usize..=3).prop_flat_map(|(n, rk)| {
        (
            proptest::collection::vec(1u32..=40, rk),
            proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, rk), n),
            proptest::collection::vec(any::<bool>(), n),
            proptest::collection::vec(0u64..u64::MAX, n),
            0usize..n,
            0usize..rk,
        )
            .prop_map(
                |(capacity, fracs, mut rejected, keys, pick_principal, pick_lane)| {
                    // Guarantee at least one rejected principal so the envy
                    // mutations below have something to corrupt.
                    rejected[0] = true;
                    Scenario {
                        capacity: capacity.into_iter().map(f64::from).collect(),
                        fracs,
                        rejected,
                        keys,
                        pick_principal,
                        pick_lane,
                    }
                },
            )
    })
}

/// Realize the fractions into a conservative log: lane `r`'s column is
/// scaled so its sum is at most 90% of the pool, so conservation holds
/// with margin and every allocation is non-negative by construction.
fn realize(sc: &Scenario) -> EpochLog {
    let n = sc.fracs.len();
    let rk = sc.capacity.len();
    let mut allocated = vec![vec![0.0f64; rk]; n];
    for r in 0..rk {
        let raw: f64 = sc.fracs.iter().map(|row| row[r]).sum();
        let scale = if raw > 0.0 { 0.9 * sc.capacity[r] / raw.max(1.0) } else { 0.0 };
        for (i, row) in sc.fracs.iter().enumerate() {
            allocated[i][r] = row[r] * scale;
        }
    }
    let rejected = (0..n).filter(|&p| sc.rejected[p]).collect();
    EpochLog { capacity: sc.capacity.clone(), allocated, rejected }
}

fn permuted_rejected(log: &EpochLog, keys: &[u64]) -> Vec<usize> {
    let mut order = log.rejected.clone();
    order.sort_by_key(|&p| keys[p]);
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// An honest report over a conservative log passes, in any order of
    /// the rejected list, and the report itself is order-insensitive.
    #[test]
    fn honest_reports_pass(sc in arb_scenario()) {
        let log = realize(&sc);
        let report = analyze_epoch(&log);
        let v = check_fairness(&log, &report);
        prop_assert!(v.is_empty(), "honest report rejected: {v:?}");

        let mut shuffled = log.clone();
        shuffled.rejected = permuted_rejected(&log, &sc.keys);
        prop_assert_eq!(&analyze_epoch(&shuffled), &report,
            "metrics must not depend on rejected-list order");
        let v = check_fairness(&shuffled, &report);
        prop_assert!(v.is_empty(), "permuted log rejected: {v:?}");
    }

    /// Stolen units: inflating any principal's allocation past what the
    /// lane's pool can cover — or stealing into the negative — is
    /// caught by the conservation section.
    #[test]
    fn stolen_units_are_caught(sc in arb_scenario()) {
        let log = realize(&sc);
        let report = analyze_epoch(&log);
        let (p, r) = (sc.pick_principal, sc.pick_lane);

        let mut over = log.clone();
        // The realized lane sums to <= 90% of capacity; adding 1.2
        // pools' worth overflows it regardless of the starting point.
        over.allocated[p][r] += 1.2 * log.capacity[r];
        let v = check_fairness(&over, &report);
        prop_assert!(v.iter().any(|l| l.contains("conservation")),
            "overdrawn lane not caught: {v:?}");

        let mut negative = log.clone();
        negative.allocated[p][r] = -0.5;
        let v = check_fairness(&negative, &report);
        prop_assert!(v.iter().any(|l| l.contains("conservation")),
            "negative allocation not caught: {v:?}");
    }

    /// Drifted shares: nudging one reported dominant share beyond the
    /// audit tolerance is caught; within-tolerance resummation noise is
    /// not (the replay accumulates in a different order than the
    /// auditor).
    #[test]
    fn drifted_shares_are_caught(sc in arb_scenario()) {
        let log = realize(&sc);
        let mut report = analyze_epoch(&log);
        let p = sc.pick_principal;

        let mut fine = report.clone();
        fine.dominant_shares[p] += 0.5 * REL_TOL;
        prop_assert!(check_fairness(&log, &fine).is_empty(),
            "within-tolerance drift must pass");

        report.dominant_shares[p] += 3.0 * REL_TOL + 0.01;
        let v = check_fairness(&log, &report);
        prop_assert!(v.iter().any(|l| l.contains("share fidelity")),
            "drifted share not caught: {v:?}");
    }

    /// Fabricated envy: envy-pair or complaint counts that disagree
    /// with a recount from the log are caught — in both directions.
    #[test]
    fn fabricated_envy_is_caught(sc in arb_scenario()) {
        let log = realize(&sc);
        let report = analyze_epoch(&log);

        let more = FairnessReport { envy_pairs: report.envy_pairs + 1, ..report.clone() };
        let v = check_fairness(&log, &more);
        prop_assert!(v.iter().any(|l| l.contains("envy pair")),
            "inflated envy pairs not caught: {v:?}");

        let happier = FairnessReport {
            justified_complaints: report.justified_complaints + 1,
            ..report.clone()
        };
        let v = check_fairness(&log, &happier);
        prop_assert!(v.iter().any(|l| l.contains("justified complaint")),
            "inflated complaints not caught: {v:?}");

        if report.envy_pairs > 0 {
            let fewer = FairnessReport {
                envy_pairs: report.envy_pairs - 1,
                ..report.clone()
            };
            let v = check_fairness(&log, &fewer);
            prop_assert!(v.iter().any(|l| l.contains("envy pair")),
                "suppressed envy pairs not caught: {v:?}");
        }
    }

    /// Cross-validation against first principles: the dominant share is
    /// literally the max over lanes of allocated/capacity, and every
    /// envy pair's shares actually satisfy the defining inequality.
    #[test]
    fn report_matches_first_principles(sc in arb_scenario()) {
        let log = realize(&sc);
        let report = analyze_epoch(&log);
        let shares = dominant_shares(&log.capacity, &log.allocated);
        for (i, row) in log.allocated.iter().enumerate() {
            let want = row
                .iter()
                .zip(&log.capacity)
                .map(|(&a, &c)| a / c)
                .fold(0.0f64, f64::max);
            prop_assert!((shares[i] - want).abs() <= 1e-12);
        }
        // Recount envy pairs the slow, definitional way.
        let mut pairs = 0usize;
        let mut complaints = 0usize;
        for &i in &log.rejected {
            let mut envied = 0usize;
            for (j, &s) in shares.iter().enumerate() {
                if j != i && s > shares[i] + 1e-9 {
                    envied += 1;
                }
            }
            pairs += envied;
            complaints += usize::from(envied > 0);
        }
        prop_assert_eq!(report.envy_pairs, pairs);
        prop_assert_eq!(report.justified_complaints, complaints);
    }
}
