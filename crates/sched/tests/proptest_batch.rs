//! Property oracle for the batched admission front door.
//!
//! The contract under test is the whole point of the shard executor:
//! `BatchedAdmission::admit_batch` on a **force-parallel** scheduler is
//! bit-identical to `admit_one` called per request, in the same order,
//! on a purely **sequential** scheduler — across random economies,
//! random availability, and request streams mixing grants, capacity
//! rejections, invalid amounts, and unknown principals. A third
//! property renegotiates an inter-group share mid-stream and demands
//! the same equivalence on both sides of the split.
//!
//! Economies are uniform-block: full sharing inside each group, a
//! mutual share β < 0.5 across groups, so every request exercises the
//! home fast path, the coarse multigrid path, or a rejection.

use agreements_flow::AgreementMatrix;
use agreements_sched::SchedError;
use agreements_sched::{AdmissionRequest, Allocation, BatchedAdmission, HierarchicalScheduler};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct BatchScenario {
    num_groups: usize,
    group_size: usize,
    beta: f64,
    avail: Vec<f64>,
    /// (requester, amount) stream; requesters range past `n` to cover
    /// the unknown-principal path, amounts go negative to cover the
    /// invalid-request path.
    reqs: Vec<(usize, f64)>,
    /// Renegotiation point for the mid-stream property.
    split: usize,
    new_share: f64,
}

fn arb_batch() -> impl Strategy<Value = BatchScenario> {
    (2usize..=5, 1usize..=5).prop_flat_map(|(num_groups, group_size)| {
        let n = num_groups * group_size;
        (
            proptest::collection::vec(0u32..=20, n),
            0.05f64..0.45,
            proptest::collection::vec((0usize..n + 2, -2.0f64..40.0), 1..=24),
            0.0f64..0.9,
        )
            .prop_flat_map(move |(avail, beta, reqs, new_share)| {
                let len = reqs.len();
                (Just((avail, beta, reqs, new_share)), 0usize..=len).prop_map(
                    move |((avail, beta, reqs, new_share), split)| BatchScenario {
                        num_groups,
                        group_size,
                        beta,
                        avail: avail.iter().map(|&a| a as f64).collect(),
                        reqs,
                        split,
                        new_share,
                    },
                )
            })
    })
}

fn build_sched(sc: &BatchScenario, parallel: bool) -> HierarchicalScheduler {
    let g = sc.num_groups;
    let mut inter = AgreementMatrix::zeros(g);
    for i in 0..g {
        for j in 0..g {
            if i != j {
                inter.set(i, j, sc.beta).unwrap();
            }
        }
    }
    let groups: Vec<Vec<usize>> =
        (0..g).map(|gi| (gi * sc.group_size..(gi + 1) * sc.group_size).collect()).collect();
    let mut sched = HierarchicalScheduler::new(groups, &inter, 1).unwrap();
    sched.set_parallel_fine(parallel);
    sched
}

/// [`build_sched`] forced parallel with batch-scoped warm-started bases
/// switched on.
fn build_warm_sched(sc: &BatchScenario) -> HierarchicalScheduler {
    let mut sched = build_sched(sc, true);
    sched.set_warm_runs(true);
    sched
}

fn to_reqs(pairs: &[(usize, f64)]) -> Vec<AdmissionRequest> {
    pairs.iter().map(|&(requester, amount)| AdmissionRequest { requester, amount }).collect()
}

/// Bitwise comparison of two decision streams: grants must match in
/// requester, amount, theta, and every draw, bit for bit; errors must
/// be the same variant with the same payload (compared by debug
/// rendering — `SchedError` carries floats but no `PartialEq`).
fn assert_decisions_identical(
    one: &[Result<Allocation, SchedError>],
    bat: &[Result<Allocation, SchedError>],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(one.len(), bat.len());
    for (i, (a, b)) in one.iter().zip(bat).enumerate() {
        match (a, b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.requester, y.requester, "slot {}", i);
                prop_assert_eq!(x.amount.to_bits(), y.amount.to_bits(), "slot {}", i);
                prop_assert_eq!(x.theta.to_bits(), y.theta.to_bits(), "slot {}", i);
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                prop_assert_eq!(bits(&x.draws), bits(&y.draws), "slot {}", i);
            }
            (Err(x), Err(y)) => {
                prop_assert_eq!(format!("{x:?}"), format!("{y:?}"), "slot {}", i);
            }
            (a, b) => {
                return Err(TestCaseError::fail(format!(
                    "slot {i}: verdicts diverge: one-by-one {a:?} vs batched {b:?}"
                )));
            }
        }
    }
    Ok(())
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Force-parallel batched admission ≡ sequential one-by-one, on the
    /// decisions and on the availability vector left behind.
    #[test]
    fn batched_parallel_equals_sequential_one_by_one(sc in arb_batch()) {
        let reference = BatchedAdmission::new(build_sched(&sc, false));
        let subject = BatchedAdmission::new(build_sched(&sc, true));
        let reqs = to_reqs(&sc.reqs);

        let mut avail_one = sc.avail.clone();
        let one: Vec<_> = reqs
            .iter()
            .map(|q| reference.admit_one(&mut avail_one, q.requester, q.amount))
            .collect();
        let mut avail_bat = sc.avail.clone();
        let bat = subject.admit_batch(&mut avail_bat, &reqs);

        assert_decisions_identical(&one, &bat)?;
        prop_assert_eq!(bits(&avail_one), bits(&avail_bat), "availability diverged");
    }

    /// Batching on both engines (sequential batch path vs parallel wave
    /// path) agrees — admit_batch's internal fallback is not a separate
    /// semantics.
    #[test]
    fn batched_sequential_equals_batched_parallel(sc in arb_batch()) {
        let seq = BatchedAdmission::new(build_sched(&sc, false));
        let par = BatchedAdmission::new(build_sched(&sc, true));
        let reqs = to_reqs(&sc.reqs);
        let mut avail_seq = sc.avail.clone();
        let a = seq.admit_batch(&mut avail_seq, &reqs);
        let mut avail_par = sc.avail.clone();
        let b = par.admit_batch(&mut avail_par, &reqs);
        assert_decisions_identical(&a, &b)?;
        prop_assert_eq!(bits(&avail_seq), bits(&avail_par), "availability diverged");
    }

    /// A mid-stream `set_inter` renegotiation lands between two batches
    /// exactly where it lands between two one-by-one admissions:
    /// decisions before the split see the old share, decisions after it
    /// the new one, bit for bit.
    #[test]
    fn renegotiation_mid_stream_is_order_equivalent(sc in arb_batch()) {
        let mut reference = BatchedAdmission::new(build_sched(&sc, false));
        let mut subject = BatchedAdmission::new(build_sched(&sc, true));
        let reqs = to_reqs(&sc.reqs);
        let (head, tail) = reqs.split_at(sc.split);

        let mut avail_one = sc.avail.clone();
        let mut one: Vec<_> = head
            .iter()
            .map(|q| reference.admit_one(&mut avail_one, q.requester, q.amount))
            .collect();
        reference.set_inter(1, 0, sc.new_share).unwrap();
        one.extend(tail.iter().map(|q| reference.admit_one(&mut avail_one, q.requester, q.amount)));

        let mut avail_bat = sc.avail.clone();
        let mut bat = subject.admit_batch(&mut avail_bat, head);
        subject.set_inter(1, 0, sc.new_share).unwrap();
        bat.extend(subject.admit_batch(&mut avail_bat, tail));

        assert_decisions_identical(&one, &bat)?;
        prop_assert_eq!(bits(&avail_one), bits(&avail_bat), "availability diverged");
    }

    /// Warm-started bases are **off by default**: a freshly built
    /// scheduler batches bit-identically to one with warm runs
    /// explicitly disabled, so PR 7's bit-for-bit replay contract is
    /// untouched unless a caller opts in.
    #[test]
    fn warm_off_is_the_default_and_preserves_bit_identity(sc in arb_batch()) {
        let implicit = BatchedAdmission::new(build_sched(&sc, true));
        let mut explicit_off = build_sched(&sc, true);
        explicit_off.set_warm_runs(false);
        let explicit_off = BatchedAdmission::new(explicit_off);
        let reqs = to_reqs(&sc.reqs);

        let mut avail_a = sc.avail.clone();
        let a = implicit.admit_batch(&mut avail_a, &reqs);
        let mut avail_b = sc.avail.clone();
        let b = explicit_off.admit_batch(&mut avail_b, &reqs);

        assert_decisions_identical(&a, &b)?;
        prop_assert_eq!(bits(&avail_a), bits(&avail_b), "availability diverged");
    }

    /// Warm mode is still deterministic: two warm schedulers fed the
    /// same stream produce bit-identical decision streams and leave
    /// bit-identical availability behind. Warm start relaxes the
    /// *cold-base* identity, not run-to-run reproducibility.
    #[test]
    fn warm_replay_is_deterministic_run_to_run(sc in arb_batch()) {
        let first = BatchedAdmission::new(build_warm_sched(&sc));
        let second = BatchedAdmission::new(build_warm_sched(&sc));
        let reqs = to_reqs(&sc.reqs);

        let mut avail_a = sc.avail.clone();
        let a = first.admit_batch(&mut avail_a, &reqs);
        let mut avail_b = sc.avail.clone();
        let b = second.admit_batch(&mut avail_b, &reqs);

        assert_decisions_identical(&a, &b)?;
        prop_assert_eq!(bits(&avail_a), bits(&avail_b), "availability diverged");
    }

    /// Warm vs cold is a *solver-tolerance* agreement, not a bitwise
    /// one: the warm basis may walk a different pivot path, but both
    /// solve the same LPs to optimality, so verdicts match slot for
    /// slot and granted amounts, draws, and final availability agree
    /// within `TOL`. This is the documented deviation warm mode buys
    /// its speedup with.
    #[test]
    fn warm_agrees_with_cold_within_solver_tolerance(sc in arb_batch()) {
        const TOL: f64 = 1e-6;
        let close = |x: f64, y: f64| (x - y).abs() <= TOL * x.abs().max(y.abs()).max(1.0);

        let cold = BatchedAdmission::new(build_sched(&sc, true));
        let warm = BatchedAdmission::new(build_warm_sched(&sc));
        let reqs = to_reqs(&sc.reqs);

        let mut avail_c = sc.avail.clone();
        let c = cold.admit_batch(&mut avail_c, &reqs);
        let mut avail_w = sc.avail.clone();
        let w = warm.admit_batch(&mut avail_w, &reqs);

        prop_assert_eq!(c.len(), w.len());
        for (i, (a, b)) in c.iter().zip(&w).enumerate() {
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    prop_assert_eq!(x.requester, y.requester, "slot {}", i);
                    prop_assert!(close(x.amount, y.amount),
                        "slot {}: amount {} vs {}", i, x.amount, y.amount);
                    prop_assert_eq!(x.draws.len(), y.draws.len(), "slot {}", i);
                    for (p, (dx, dy)) in x.draws.iter().zip(&y.draws).enumerate() {
                        prop_assert!(close(*dx, *dy),
                            "slot {}: draw[{}] {} vs {}", i, p, dx, dy);
                    }
                    // The warm grant is internally conservative on its
                    // own terms: draws sum to the granted amount.
                    let drawn: f64 = y.draws.iter().sum();
                    prop_assert!((drawn - y.amount).abs() <= 1e-9 * y.amount.abs().max(1.0),
                        "slot {}: warm draws sum {} != amount {}", i, drawn, y.amount);
                }
                // Rejections carry solver outputs too (the reachable
                // capacity C_A), so InsufficientCapacity payloads get
                // the same tolerance; structural errors stay exact.
                (
                    Err(SchedError::InsufficientCapacity { requester: rx, capacity: cx, requested: qx, .. }),
                    Err(SchedError::InsufficientCapacity { requester: ry, capacity: cy, requested: qy, .. }),
                ) => {
                    prop_assert_eq!(rx, ry, "slot {}", i);
                    prop_assert_eq!(qx.to_bits(), qy.to_bits(), "slot {}", i);
                    prop_assert!(close(*cx, *cy),
                        "slot {}: capacity {} vs {}", i, cx, cy);
                }
                (Err(x), Err(y)) => {
                    prop_assert_eq!(format!("{x:?}"), format!("{y:?}"), "slot {}", i);
                }
                (a, b) => {
                    return Err(TestCaseError::fail(format!(
                        "slot {i}: warm/cold verdicts diverge: cold {a:?} vs warm {b:?}"
                    )));
                }
            }
        }
        for (p, (x, y)) in avail_c.iter().zip(&avail_w).enumerate() {
            prop_assert!(close(*x, *y), "availability[{}] {} vs {}", p, x, y);
        }
    }
}

// ---------------------------------------------------------------------
// Multi-resource batched admission: the same bit-identity contracts,
// lane-wise. Each lane gets its own availability vector and its own
// per-request amount; batched ≡ one-by-one and sequential ≡ parallel
// must hold with every lane's final availability compared bitwise.
// ---------------------------------------------------------------------

use agreements_sched::{MultiAdmission, MultiAdmissionRequest, MultiAllocation};

#[derive(Debug, Clone)]
struct MultiBatchScenario {
    num_groups: usize,
    group_size: usize,
    num_resources: usize,
    beta: f64,
    /// One availability vector per resource lane.
    avail: Vec<Vec<f64>>,
    /// (requester, per-lane amounts) stream; requesters past `n` cover
    /// the unknown-principal path, negative amounts the invalid path.
    reqs: Vec<(usize, Vec<f64>)>,
}

fn arb_multi_batch() -> impl Strategy<Value = MultiBatchScenario> {
    (2usize..=4, 1usize..=4, 2usize..=3).prop_flat_map(|(num_groups, group_size, num_resources)| {
        let n = num_groups * group_size;
        (
            proptest::collection::vec(proptest::collection::vec(0u32..=20, n), num_resources),
            0.05f64..0.45,
            proptest::collection::vec(
                (0usize..n + 2, proptest::collection::vec(-2.0f64..40.0, num_resources)),
                1..=16,
            ),
        )
            .prop_map(move |(avail, beta, reqs)| MultiBatchScenario {
                num_groups,
                group_size,
                num_resources,
                beta,
                avail: avail.iter().map(|lane| lane.iter().map(|&a| a as f64).collect()).collect(),
                reqs,
            })
    })
}

fn build_multi(sc: &MultiBatchScenario, parallel: bool) -> MultiAdmission {
    const NAMES: [&str; 3] = ["cpu", "bandwidth", "storage"];
    let lanes = (0..sc.num_resources)
        .map(|_| {
            let single = BatchScenario {
                num_groups: sc.num_groups,
                group_size: sc.group_size,
                beta: sc.beta,
                avail: Vec::new(),
                reqs: Vec::new(),
                split: 0,
                new_share: 0.0,
            };
            build_sched(&single, parallel)
        })
        .collect();
    MultiAdmission::new(NAMES[..sc.num_resources].to_vec(), lanes).unwrap()
}

fn to_multi_reqs(pairs: &[(usize, Vec<f64>)]) -> Vec<MultiAdmissionRequest> {
    pairs
        .iter()
        .map(|(requester, amounts)| MultiAdmissionRequest {
            requester: *requester,
            amounts: amounts.clone(),
        })
        .collect()
}

/// Bitwise comparison of two multi-resource decision streams.
fn assert_multi_decisions_identical(
    one: &[Result<MultiAllocation, SchedError>],
    bat: &[Result<MultiAllocation, SchedError>],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(one.len(), bat.len());
    for (i, (a, b)) in one.iter().zip(bat).enumerate() {
        match (a, b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.lanes.len(), y.lanes.len(), "slot {}", i);
                for (r, (p, q)) in x.lanes.iter().zip(&y.lanes).enumerate() {
                    prop_assert_eq!(p.requester, q.requester, "slot {} lane {}", i, r);
                    prop_assert_eq!(
                        p.amount.to_bits(),
                        q.amount.to_bits(),
                        "slot {} lane {}",
                        i,
                        r
                    );
                    prop_assert_eq!(p.theta.to_bits(), q.theta.to_bits(), "slot {} lane {}", i, r);
                    prop_assert_eq!(bits(&p.draws), bits(&q.draws), "slot {} lane {}", i, r);
                }
            }
            (Err(x), Err(y)) => {
                prop_assert_eq!(format!("{x:?}"), format!("{y:?}"), "slot {}", i);
            }
            (a, b) => {
                return Err(TestCaseError::fail(format!(
                    "slot {i}: verdicts diverge: one-by-one {a:?} vs batched {b:?}"
                )));
            }
        }
    }
    Ok(())
}

fn assert_lanes_bitwise(a: &[Vec<f64>], b: &[Vec<f64>]) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (r, (x, y)) in a.iter().zip(b).enumerate() {
        prop_assert_eq!(bits(x), bits(y), "lane {} availability diverged", r);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Multi-resource force-parallel admit_batch ≡ sequential admit_one
    /// per request, with every lane's availability compared bitwise.
    #[test]
    fn multi_batched_parallel_equals_sequential_one_by_one(sc in arb_multi_batch()) {
        let reference = build_multi(&sc, false);
        let subject = build_multi(&sc, true);
        let reqs = to_multi_reqs(&sc.reqs);

        let mut avail_one = sc.avail.clone();
        let one: Vec<_> = reqs
            .iter()
            .map(|q| reference.admit_one(&mut avail_one, q.requester, &q.amounts))
            .collect();
        let mut avail_bat = sc.avail.clone();
        let bat = subject.admit_batch(&mut avail_bat, &reqs);

        assert_multi_decisions_identical(&one, &bat)?;
        assert_lanes_bitwise(&avail_one, &avail_bat)?;
    }

    /// Multi-resource admit_batch on sequential lanes (the internal
    /// fallback loop) ≡ admit_batch on force-parallel lanes.
    #[test]
    fn multi_batched_sequential_equals_batched_parallel(sc in arb_multi_batch()) {
        let seq = build_multi(&sc, false);
        let par = build_multi(&sc, true);
        let reqs = to_multi_reqs(&sc.reqs);

        let mut avail_seq = sc.avail.clone();
        let a = seq.admit_batch(&mut avail_seq, &reqs);
        let mut avail_par = sc.avail.clone();
        let b = par.admit_batch(&mut avail_par, &reqs);

        assert_multi_decisions_identical(&a, &b)?;
        assert_lanes_bitwise(&avail_seq, &avail_par)?;
    }
}
