//! The admission fast-reject is not a heuristic pre-filter: the bound it
//! computes is exactly the placement LP's feasibility frontier. On
//! randomized systems, for any request size (including boundary and
//! over-capacity sizes):
//!
//! * `exceeds_bound(x, admission_bound(..))` ⇔ the full LP solve returns
//!   [`SchedError::InsufficientCapacity`],
//! * an admitted request is placed in full (the LP never discovers an
//!   infeasibility the fast-reject missed),
//! * a rejected request's error carries the bit-identical reachable
//!   capacity, so every admission site reports the same number.

#![allow(clippy::needless_range_loop)]

use agreements_flow::{AgreementMatrix, TransitiveFlow};
use agreements_sched::{
    admission_bound, exceeds_bound, AllocationSolver, SchedError, SystemState, ADMISSION_SLACK,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    s: AgreementMatrix,
    v: Vec<f64>,
    level: usize,
    requester: usize,
    /// Request sizes as fractions of reachable capacity; the range
    /// straddles 1.0 so both verdicts are exercised, and exact 1.0 plus
    /// slack-sized nudges are appended below to probe the boundary.
    fracs: Vec<f64>,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (2usize..=6).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec(0u32..=25, n * n),
            proptest::collection::vec(0u32..=50, n),
            1usize..n.max(2),
            0usize..n,
            proptest::collection::vec(0.0f64..2.0, 1..=5),
        )
            .prop_map(|(n, raw, avail, level, requester, mut fracs)| {
                let mut s = AgreementMatrix::zeros(n);
                for i in 0..n {
                    let row = &raw[i * n..(i + 1) * n];
                    let total: u32 =
                        row.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &v)| v).sum();
                    if total == 0 {
                        continue;
                    }
                    let scale = 0.95 / total.max(25) as f64;
                    for j in 0..n {
                        if i != j && row[j] > 0 {
                            s.set(i, j, row[j] as f64 * scale).unwrap();
                        }
                    }
                }
                // Probe the admission boundary exactly and just past the
                // slack on every generated system.
                fracs.push(1.0);
                let v: Vec<f64> = avail.iter().map(|&a| a as f64).collect();
                Scenario { s, v, level, requester, fracs }
            })
    })
}

fn build_state(sc: &Scenario) -> SystemState {
    let flow = TransitiveFlow::compute(&sc.s, sc.level);
    SystemState::new(flow, None, sc.v.clone()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The standalone fast-reject verdict and the full LP verdict agree
    /// on every request, and a rejection reports the bit-identical
    /// reachable capacity.
    #[test]
    fn fast_reject_verdict_matches_full_lp(sc in arb_scenario()) {
        let state = build_state(&sc);
        let mut solver = AllocationSolver::reduced();
        let mut bound = Vec::new();
        for &frac in &sc.fracs {
            let reachable = admission_bound(&state, sc.requester, &mut bound);
            prop_assert_eq!(bound.len(), state.n());
            let x = reachable * frac;
            let rejected = exceeds_bound(x, reachable);
            match solver.allocate(&state, sc.requester, x) {
                Ok(alloc) => {
                    prop_assert!(
                        !rejected,
                        "fast-reject would refuse x={x} but LP placed it (reachable={reachable})"
                    );
                    // Admitted requests are served in full (modulo the
                    // clamp to reachable capacity at the boundary).
                    prop_assert!((alloc.amount - x.min(reachable)).abs() < 1e-9);
                    let sum: f64 = alloc.draws.iter().sum();
                    prop_assert!((sum - alloc.amount).abs() < 1e-6);
                    for (i, &d) in alloc.draws.iter().enumerate() {
                        prop_assert!(d >= 0.0);
                        prop_assert!(
                            d <= bound[i] + 1e-6,
                            "draw {d} from {i} exceeds its admission bound {}",
                            bound[i]
                        );
                    }
                }
                Err(SchedError::InsufficientCapacity { requester, capacity, requested, .. }) => {
                    prop_assert!(
                        rejected,
                        "LP refused x={x} the fast-reject admitted (reachable={reachable})"
                    );
                    prop_assert_eq!(requester, sc.requester);
                    prop_assert_eq!(requested, x);
                    // Every admission site computes the same sum in the
                    // same order, so the reported capacity is the exact
                    // bits of the standalone bound.
                    prop_assert_eq!(capacity.to_bits(), reachable.to_bits());
                }
                Err(e) => {
                    return Err(TestCaseError::fail(format!(
                        "unexpected error for x={x}: {e}"
                    )));
                }
            }
        }
    }

    /// Slack-sized nudges around the exact boundary never flip the LP to
    /// a different verdict than the fast-reject.
    #[test]
    fn boundary_nudges_agree(sc in arb_scenario()) {
        let state = build_state(&sc);
        let mut solver = AllocationSolver::reduced();
        let mut bound = Vec::new();
        let reachable = admission_bound(&state, sc.requester, &mut bound);
        for x in [
            reachable,
            reachable + 0.5 * ADMISSION_SLACK,
            reachable + 2.0 * ADMISSION_SLACK,
            reachable * 1.0000001,
        ] {
            let rejected = exceeds_bound(x, reachable);
            let lp_rejected = matches!(
                solver.allocate(&state, sc.requester, x),
                Err(SchedError::InsufficientCapacity { .. })
            );
            prop_assert_eq!(rejected, lp_rejected, "verdicts split at x={}", x);
        }
    }
}
