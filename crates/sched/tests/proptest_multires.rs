//! Degeneracy oracle for the multi-resource admission path.
//!
//! A single-resource config routed through [`MultiAdmission`] with one
//! lane must be **bit-identical** to the existing single-resource
//! [`BatchedAdmission`] path — verdicts, grants (amount, theta, every
//! draw), the availability vector left behind, and the executor
//! fallback stats. The one sanctioned difference: multi-path capacity
//! rejections carry `resource: Some("cpu")` where the single path says
//! `None` — the payload is otherwise identical, which is exactly what
//! these properties check after substituting the tag out.
//!
//! This mirrors the invariant `tests/multires_consistency.rs` pins for
//! the proxysim, now at the scaled enforcement layer: the multi-resource
//! machinery must not perturb single-resource behavior at all.

use agreements_flow::AgreementMatrix;
use agreements_sched::{
    AdmissionRequest, Allocation, BatchedAdmission, HierarchicalScheduler, MultiAdmission,
    MultiAdmissionRequest, MultiAllocation, SchedError,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct DegenScenario {
    num_groups: usize,
    group_size: usize,
    beta: f64,
    avail: Vec<f64>,
    /// (requester, amount) stream; requesters past `n` cover the
    /// unknown-principal path, negative amounts the invalid path.
    reqs: Vec<(usize, f64)>,
}

fn arb_degen() -> impl Strategy<Value = DegenScenario> {
    (2usize..=5, 1usize..=5).prop_flat_map(|(num_groups, group_size)| {
        let n = num_groups * group_size;
        (
            proptest::collection::vec(0u32..=20, n),
            0.05f64..0.45,
            proptest::collection::vec((0usize..n + 2, -2.0f64..40.0), 1..=24),
        )
            .prop_map(move |(avail, beta, reqs)| DegenScenario {
                num_groups,
                group_size,
                beta,
                avail: avail.iter().map(|&a| a as f64).collect(),
                reqs,
            })
    })
}

fn build_sched(sc: &DegenScenario, parallel: bool) -> HierarchicalScheduler {
    let g = sc.num_groups;
    let mut inter = AgreementMatrix::zeros(g);
    for i in 0..g {
        for j in 0..g {
            if i != j {
                inter.set(i, j, sc.beta).unwrap();
            }
        }
    }
    let groups: Vec<Vec<usize>> =
        (0..g).map(|gi| (gi * sc.group_size..(gi + 1) * sc.group_size).collect()).collect();
    let mut sched = HierarchicalScheduler::new(groups, &inter, 1).unwrap();
    sched.set_parallel_fine(parallel);
    sched
}

fn build_multi(sc: &DegenScenario, parallel: bool) -> MultiAdmission {
    MultiAdmission::new(vec!["cpu"], vec![build_sched(sc, parallel)]).unwrap()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Strip the binding-resource tag so multi-path errors can be compared
/// against single-path errors, after asserting the tag is the one the
/// single lane must carry.
fn untag(e: &SchedError) -> Result<SchedError, TestCaseError> {
    Ok(match e {
        SchedError::InsufficientCapacity { requester, capacity, requested, resource } => {
            prop_assert_eq!(*resource, Some("cpu"), "single-lane rejections must cite cpu");
            SchedError::InsufficientCapacity {
                requester: *requester,
                capacity: *capacity,
                requested: *requested,
                resource: None,
            }
        }
        other => other.clone(),
    })
}

/// Bitwise comparison of a single-resource decision stream against a
/// one-lane multi-resource stream.
fn assert_degenerate_identical(
    single: &[Result<Allocation, SchedError>],
    multi: &[Result<MultiAllocation, SchedError>],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(single.len(), multi.len());
    for (i, (a, b)) in single.iter().zip(multi).enumerate() {
        match (a, b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(y.lanes.len(), 1, "slot {}", i);
                let y = &y.lanes[0];
                prop_assert_eq!(x.requester, y.requester, "slot {}", i);
                prop_assert_eq!(x.amount.to_bits(), y.amount.to_bits(), "slot {}", i);
                prop_assert_eq!(x.theta.to_bits(), y.theta.to_bits(), "slot {}", i);
                prop_assert_eq!(bits(&x.draws), bits(&y.draws), "slot {}", i);
            }
            (Err(x), Err(y)) => {
                let y = untag(y)?;
                prop_assert_eq!(format!("{x:?}"), format!("{y:?}"), "slot {}", i);
            }
            (a, b) => {
                return Err(TestCaseError::fail(format!(
                    "slot {i}: verdicts diverge: single {a:?} vs multi {b:?}"
                )));
            }
        }
    }
    Ok(())
}

fn to_single(pairs: &[(usize, f64)]) -> Vec<AdmissionRequest> {
    pairs.iter().map(|&(requester, amount)| AdmissionRequest { requester, amount }).collect()
}

fn to_multi(pairs: &[(usize, f64)]) -> Vec<MultiAdmissionRequest> {
    pairs
        .iter()
        .map(|&(requester, amount)| MultiAdmissionRequest { requester, amounts: vec![amount] })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Parallel batched: one-lane multi admit_batch ≡ single-resource
    /// admit_batch, including the executor fallback counters.
    #[test]
    fn single_lane_batch_is_bit_identical(sc in arb_degen()) {
        let single = BatchedAdmission::new(build_sched(&sc, true));
        let multi = build_multi(&sc, true);
        let mut avail_s = sc.avail.clone();
        let s = single.admit_batch(&mut avail_s, &to_single(&sc.reqs));
        let mut avail_m = vec![sc.avail.clone()];
        let m = multi.admit_batch(&mut avail_m, &to_multi(&sc.reqs));

        assert_degenerate_identical(&s, &m)?;
        prop_assert_eq!(bits(&avail_s), bits(&avail_m[0]), "availability diverged");
        prop_assert_eq!(
            single.scheduler().executor_fallbacks(),
            multi.lane(0).executor_fallbacks(),
            "fallback stats diverged"
        );
    }

    /// Sequential batched (the internal fallback loop): same identity.
    #[test]
    fn single_lane_sequential_batch_is_bit_identical(sc in arb_degen()) {
        let single = BatchedAdmission::new(build_sched(&sc, false));
        let multi = build_multi(&sc, false);
        let mut avail_s = sc.avail.clone();
        let s = single.admit_batch(&mut avail_s, &to_single(&sc.reqs));
        let mut avail_m = vec![sc.avail.clone()];
        let m = multi.admit_batch(&mut avail_m, &to_multi(&sc.reqs));

        assert_degenerate_identical(&s, &m)?;
        prop_assert_eq!(bits(&avail_s), bits(&avail_m[0]), "availability diverged");
        prop_assert_eq!(
            single.scheduler().executor_fallbacks(),
            multi.lane(0).executor_fallbacks(),
            "fallback stats diverged"
        );
    }

    /// One-by-one: admit_one through one lane ≡ the single-resource
    /// admit_one, request for request.
    #[test]
    fn single_lane_admit_one_is_bit_identical(sc in arb_degen()) {
        let single = BatchedAdmission::new(build_sched(&sc, false));
        let multi = build_multi(&sc, false);
        let mut avail_s = sc.avail.clone();
        let mut avail_m = vec![sc.avail.clone()];
        for &(requester, amount) in &sc.reqs {
            let s = single.admit_one(&mut avail_s, requester, amount);
            let m = multi.admit_one(&mut avail_m, requester, &[amount]);
            assert_degenerate_identical(
                std::slice::from_ref(&s),
                std::slice::from_ref(&m),
            )?;
            prop_assert_eq!(bits(&avail_s), bits(&avail_m[0]), "availability diverged");
        }
    }
}

/// Deterministic regression case: the exact mixed stream `batch.rs`
/// uses (fine grants, a coarse stall, an unknown principal, an invalid
/// amount, a capacity rejection, a zero request) through both engines.
#[test]
fn degeneracy_regression_case() {
    let sc = DegenScenario {
        num_groups: 2,
        group_size: 3,
        beta: 0.5,
        avail: vec![4.0, 3.0, 2.0, 8.0, 8.0, 8.0],
        reqs: vec![
            (0, 2.0),
            (4, 3.0),
            (1, 4.5),
            (2, 9.0),  // stalls onto the coarse path
            (9, 1.0),  // unknown principal
            (5, -1.0), // invalid amount
            (3, 2.0),
            (0, 100.0), // rejection: beyond reach
            (5, 0.0),
        ],
    };
    let single = BatchedAdmission::new(build_sched(&sc, true));
    let multi = build_multi(&sc, true);
    let mut avail_s = sc.avail.clone();
    let s = single.admit_batch(&mut avail_s, &to_single(&sc.reqs));
    let mut avail_m = vec![sc.avail.clone()];
    let m = multi.admit_batch(&mut avail_m, &to_multi(&sc.reqs));

    assert_degenerate_identical(&s, &m).unwrap();
    assert_eq!(bits(&avail_s), bits(&avail_m[0]));
    // The stream exercises every decision class.
    assert!(s.iter().filter(|d| d.is_ok()).count() >= 5);
    assert!(matches!(s[4], Err(SchedError::UnknownPrincipal { .. })));
    assert!(matches!(s[5], Err(SchedError::InvalidRequest { .. })));
    assert!(matches!(s[7], Err(SchedError::InsufficientCapacity { .. })));
    assert!(matches!(m[7], Err(SchedError::InsufficientCapacity { resource: Some("cpu"), .. })));
}
