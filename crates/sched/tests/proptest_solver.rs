//! Equivalence of the stateful [`AllocationSolver`] and the stateless
//! `solve_allocation` path, on randomized systems and request sequences:
//!
//! * cached skeleton + workspace (warm start off) is **bit-identical** to
//!   the stateless path,
//! * warm starting agrees to solver tolerance,
//! * single-solve `allocate_up_to` matches the legacy two-solve path.

#![allow(clippy::needless_range_loop)]

use agreements_flow::{AgreementMatrix, TransitiveFlow};
use agreements_lp::SimplexOptions;
use agreements_sched::lp_model::solve_allocation;
use agreements_sched::{AllocationSolver, Formulation, SchedError, SystemState};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    s: AgreementMatrix,
    v: Vec<f64>,
    level: usize,
    requester: usize,
    /// Request sizes as fractions of reachable capacity; > 1 exercises
    /// the best-effort clamp.
    fracs: Vec<f64>,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (2usize..=6).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec(0u32..=25, n * n),
            proptest::collection::vec(0u32..=50, n),
            1usize..n.max(2),
            0usize..n,
            proptest::collection::vec(0.0f64..1.5, 1..=6),
        )
            .prop_map(|(n, raw, avail, level, requester, fracs)| {
                let mut s = AgreementMatrix::zeros(n);
                for i in 0..n {
                    let row = &raw[i * n..(i + 1) * n];
                    let total: u32 =
                        row.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &v)| v).sum();
                    if total == 0 {
                        continue;
                    }
                    let scale = 0.95 / total.max(25) as f64;
                    for j in 0..n {
                        if i != j && row[j] > 0 {
                            s.set(i, j, row[j] as f64 * scale).unwrap();
                        }
                    }
                }
                let v: Vec<f64> = avail.iter().map(|&a| a as f64).collect();
                Scenario { s, v, level, requester, fracs }
            })
    })
}

fn build_state(sc: &Scenario) -> SystemState {
    let flow = TransitiveFlow::compute(&sc.s, sc.level);
    SystemState::new(flow, None, sc.v.clone()).unwrap()
}

fn reachable(state: &SystemState, a: usize) -> f64 {
    use agreements_flow::capacity::saturated_inflow;
    let v = &state.availability;
    (0..state.n())
        .map(|i| if i == a { v[a] } else { saturated_inflow(&state.flow, None, v, i, a) })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Over a whole request sequence with state evolution, the cached
    /// solver (warm start off) returns exactly what the stateless path
    /// returns — same draws, same theta, same errors.
    #[test]
    fn cached_solver_is_bit_identical(sc in arb_scenario()) {
        let mut state = build_state(&sc);
        let mut solver = AllocationSolver::reduced();
        let opts = SimplexOptions::default();
        for &frac in &sc.fracs {
            let x = reachable(&state, sc.requester) * frac;
            let stateless =
                solve_allocation(&state, sc.requester, x, Formulation::Reduced, &opts);
            let cached = solver.allocate(&state, sc.requester, x);
            match (stateless, cached) {
                (Ok(sl), Ok(ca)) => {
                    prop_assert_eq!(&sl.draws, &ca.draws);
                    prop_assert_eq!(sl.theta, ca.theta);
                    prop_assert_eq!(sl.amount, ca.amount);
                    // Evolve the state so later requests see new bounds.
                    state.apply(&ca).map_err(|e| TestCaseError::fail(format!("{e}")))?;
                }
                (Err(se), Err(ce)) => {
                    prop_assert_eq!(
                        std::mem::discriminant(&se),
                        std::mem::discriminant(&ce),
                        "error kinds differ"
                    );
                }
                (s, c) => {
                    return Err(TestCaseError::fail(format!(
                        "stateless {s:?} vs cached {c:?}"
                    )))
                }
            }
        }
    }

    /// Warm starting never changes what is found, only how: theta and
    /// draws agree with the stateless path to solver tolerance across the
    /// sequence.
    #[test]
    fn warm_start_agrees_with_stateless(sc in arb_scenario()) {
        let mut state = build_state(&sc);
        let mut solver = AllocationSolver::reduced();
        solver.set_warm_start(true);
        let opts = SimplexOptions::default();
        for &frac in &sc.fracs {
            let x = reachable(&state, sc.requester) * frac.min(0.99);
            if x <= 1e-6 {
                continue;
            }
            let sl = solve_allocation(&state, sc.requester, x, Formulation::Reduced, &opts)
                .map_err(|e| TestCaseError::fail(format!("stateless: {e}")))?;
            let ca = solver
                .allocate(&state, sc.requester, x)
                .map_err(|e| TestCaseError::fail(format!("cached: {e}")))?;
            prop_assert!(
                (sl.theta - ca.theta).abs() < 1e-7 * (1.0 + sl.theta.abs()),
                "theta {} vs {}",
                sl.theta,
                ca.theta
            );
            let sum: f64 = ca.draws.iter().sum();
            prop_assert!((sum - ca.amount).abs() < 1e-6);
            for (i, &d) in ca.draws.iter().enumerate() {
                prop_assert!(d >= 0.0);
                prop_assert!(
                    d <= state.availability[i] + 1e-6,
                    "draw {d} from {i} exceeds availability"
                );
            }
            state.apply(&ca).map_err(|e| TestCaseError::fail(format!("{e}")))?;
        }
    }

    /// The single-solve best-effort path returns exactly what the legacy
    /// two-solve path returns, including on over-capacity requests.
    #[test]
    fn single_solve_matches_two_solve(sc in arb_scenario()) {
        let mut single_state = build_state(&sc);
        let mut double_state = single_state.clone();
        let mut single = AllocationSolver::reduced();
        let mut double = AllocationSolver::reduced();
        double.set_two_solve_best_effort(true);
        for &frac in &sc.fracs {
            let x = reachable(&single_state, sc.requester) * frac;
            let s = single.allocate_up_to(&single_state, sc.requester, x);
            let d = double.allocate_up_to(&double_state, sc.requester, x);
            match (s, d) {
                (Ok(sa), Ok(da)) => {
                    prop_assert_eq!(&sa.draws, &da.draws);
                    prop_assert_eq!(sa.theta, da.theta);
                    prop_assert!((sa.amount - da.amount).abs() < 1e-9,
                        "amounts {} vs {}", sa.amount, da.amount);
                    prop_assert!(sa.amount <= x + 1e-9, "never over-places");
                    single_state
                        .apply(&sa)
                        .map_err(|e| TestCaseError::fail(format!("{e}")))?;
                    double_state
                        .apply(&da)
                        .map_err(|e| TestCaseError::fail(format!("{e}")))?;
                }
                (Err(SchedError::InvalidRequest { .. }), Err(SchedError::InvalidRequest { .. })) => {}
                (s, d) => {
                    return Err(TestCaseError::fail(format!(
                        "single {s:?} vs double {d:?}"
                    )))
                }
            }
        }
    }
}
