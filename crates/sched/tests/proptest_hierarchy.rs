//! Property tests for hierarchical multigrid allocation and
//! multi-resource requests.

// Index-based loops keep the matrix algebra legible in these tests.
#![allow(clippy::needless_range_loop)]

use agreements_flow::{AgreementMatrix, TransitiveFlow};
use agreements_sched::hierarchy::HierarchicalScheduler;
use agreements_sched::multi::{MultiState, VectorRequest};
use agreements_sched::{LpPolicy, SchedError, SystemState};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct HierScenario {
    groups: Vec<Vec<usize>>,
    inter_share: f64,
    avail: Vec<f64>,
    requester: usize,
    frac: f64,
}

fn arb_hier() -> impl Strategy<Value = HierScenario> {
    (2usize..=4, 2usize..=3).prop_flat_map(|(num_groups, group_size)| {
        let n = num_groups * group_size;
        (proptest::collection::vec(0u32..=40, n), 0.1f64..0.5, 0usize..n, 0.05f64..0.95).prop_map(
            move |(avail, inter_share, requester, frac)| {
                let groups: Vec<Vec<usize>> = (0..num_groups)
                    .map(|g| (g * group_size..(g + 1) * group_size).collect())
                    .collect();
                HierScenario {
                    groups,
                    inter_share,
                    avail: avail.iter().map(|&a| a as f64).collect(),
                    requester,
                    frac,
                }
            },
        )
    })
}

fn build(sc: &HierScenario) -> HierarchicalScheduler {
    let g = sc.groups.len();
    let mut inter = AgreementMatrix::zeros(g);
    for i in 0..g {
        for j in 0..g {
            if i != j {
                inter.set(i, j, sc.inter_share).unwrap();
            }
        }
    }
    // Level 1 (direct inter-group agreements only) so the tests can
    // compute reachability in closed form.
    HierarchicalScheduler::new(sc.groups.clone(), &inter, 1).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hierarchical draws conserve the request, never exceed per-member
    /// availability, and home-group requests stay inside the home group.
    #[test]
    fn hierarchical_draws_are_valid(sc in arb_hier()) {
        let sched = build(&sc);
        let home = sc.requester / sc.groups[0].len();
        let home_avail: f64 = sc.groups[home].iter().map(|&m| sc.avail[m]).sum();
        let x = home_avail * sc.frac;
        prop_assume!(x > 1e-6);
        let alloc = sched.allocate(&sc.avail, sc.requester, x).unwrap();
        let sum: f64 = alloc.draws.iter().sum();
        prop_assert!((sum - x).abs() < 1e-6, "sum {sum} != {x}");
        for (m, &d) in alloc.draws.iter().enumerate() {
            prop_assert!(d >= -1e-12);
            prop_assert!(d <= sc.avail[m] + 1e-6,
                "draw {d} at {m} exceeds {}", sc.avail[m]);
        }
        // Fits in the home group -> only home-group members drawn from.
        for (g, members) in sc.groups.iter().enumerate() {
            if g != home {
                for &m in members {
                    prop_assert!(alloc.draws[m].abs() < 1e-9,
                        "home-satisfiable request leaked to group {g}");
                }
            }
        }
    }

    /// Overflow requests respect the inter-group agreement cap.
    #[test]
    fn hierarchical_overflow_respects_inter_cap(sc in arb_hier()) {
        let sched = build(&sc);
        let home = sc.requester / sc.groups[0].len();
        let home_avail: f64 = sc.groups[home].iter().map(|&m| sc.avail[m]).sum();
        // Ask for everything the coarse model can reach.
        let reach: f64 = home_avail + sc.groups.iter().enumerate()
            .filter(|(g, _)| *g != home)
            .map(|(_, members)| {
                let ga: f64 = members.iter().map(|&m| sc.avail[m]).sum();
                sc.inter_share * ga
            })
            .sum::<f64>();
        prop_assume!(reach > home_avail + 1e-6);
        let x = home_avail + (reach - home_avail) * 0.8;
        let alloc = sched.allocate(&sc.avail, sc.requester, x).unwrap();
        for (g, members) in sc.groups.iter().enumerate() {
            if g == home {
                continue;
            }
            let drawn: f64 = members.iter().map(|&m| alloc.draws[m]).sum();
            let ga: f64 = members.iter().map(|&m| sc.avail[m]).sum();
            prop_assert!(drawn <= sc.inter_share * ga + 1e-6,
                "group {g} drawn {drawn} beyond cap {}", sc.inter_share * ga);
        }
        // Beyond the total reach is rejected.
        let rejected = matches!(
            sched.allocate(&sc.avail, sc.requester, reach * 1.05 + 1.0),
            Err(SchedError::InsufficientCapacity { .. })
        );
        prop_assert!(rejected, "over-reach request was not rejected");
    }

    /// Multi-resource vector requests are atomic: on failure, no state
    /// changes at all; on success, each component is applied.
    #[test]
    fn vector_requests_are_atomic(
        v1 in proptest::collection::vec(1u32..=20, 3),
        v2 in proptest::collection::vec(1u32..=20, 3),
        want1 in 1u32..=30,
        want2 in 1u32..=30,
    ) {
        let mk = |v: &[u32]| {
            let mut s = AgreementMatrix::zeros(3);
            s.set(1, 0, 0.5).unwrap();
            s.set(2, 0, 0.5).unwrap();
            let flow = TransitiveFlow::compute(&s, 2);
            SystemState::new(flow, None, v.iter().map(|&x| x as f64).collect()).unwrap()
        };
        let mut ms = MultiState::new(vec![mk(&v1), mk(&v2)]).unwrap();
        let before: Vec<Vec<f64>> =
            ms.states.iter().map(|s| s.availability.clone()).collect();
        let req = VectorRequest::new(vec![(0, want1 as f64), (1, want2 as f64)]);
        match ms.allocate_vector(&LpPolicy::reduced(), 0, &req) {
            Ok(allocs) => {
                prop_assert_eq!(allocs.len(), 2);
                // Applied: availability decreased by exactly the draws.
                for (r, alloc) in allocs.iter().enumerate() {
                    for m in 0..3 {
                        let expect = (before[r][m] - alloc.draws[m]).max(0.0);
                        prop_assert!((ms.states[r].availability[m] - expect).abs() < 1e-9);
                    }
                }
            }
            Err(_) => {
                for (r, b) in before.iter().enumerate() {
                    prop_assert_eq!(&ms.states[r].availability, b, "rollback failed");
                }
            }
        }
    }
}
