//! Differential test oracle for the scale-out sharded enforcement plane.
//!
//! On *uniform-block* economies — complete sharing at 1.0 inside each
//! block, a mutual share β < 0.5 between every cross-block pair — the
//! auto-partitioned hierarchical scheduler is exactly equivalent to the
//! flat level-1 LP: the home fine solve sees the same full-intra pool
//! the flat LP sees, and each coarse inter-group aggregate β·A_G equals
//! the flat LP's per-member sum Σ β·V_m. Every property below holds with
//! closed-form reach `home + β·(total − home)`, so admit/deny verdicts,
//! conservation, and parallel/sequential bit-identity are all checkable
//! against first principles.
//!
//! β stays below the 0.5 mutual-share partition threshold so
//! `auto_partition` recovers exactly the blocks, and requests keep a
//! multiplicative margin from the reach boundary so FP noise cannot flip
//! a verdict.

use agreements_flow::{AgreementMatrix, PartitionOptions, TransitiveFlow};
use agreements_sched::hierarchy::HierarchicalScheduler;
use agreements_sched::{AllocationSolver, SchedError, SystemState};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct ScaleScenario {
    num_groups: usize,
    group_size: usize,
    beta: f64,
    avail: Vec<f64>,
    requester: usize,
    frac: f64,
    over: bool,
}

/// Randomized hierarchical-taxonomy systems, n ≤ 64.
fn arb_scale() -> impl Strategy<Value = ScaleScenario> {
    (2usize..=8, 2usize..=8).prop_flat_map(|(num_groups, group_size)| {
        let n = num_groups * group_size;
        (
            proptest::collection::vec(0u32..=40, n),
            0.05f64..0.45,
            0usize..n,
            0.05f64..0.95,
            any::<bool>(),
        )
            .prop_map(move |(avail, beta, requester, frac, over)| ScaleScenario {
                num_groups,
                group_size,
                beta,
                avail: avail.iter().map(|&a| a as f64).collect(),
                requester,
                frac,
                over,
            })
    })
}

fn economy(sc: &ScaleScenario) -> AgreementMatrix {
    let n = sc.num_groups * sc.group_size;
    let mut s = AgreementMatrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if i / sc.group_size == j / sc.group_size {
                s.set(i, j, 1.0).unwrap();
            } else {
                s.set(i, j, sc.beta).unwrap();
            }
        }
    }
    s
}

/// Closed-form reach of `requester` in the uniform-block economy: the
/// whole home block plus β of everything else.
fn reach(sc: &ScaleScenario) -> f64 {
    let home = sc.requester / sc.group_size;
    let home_avail: f64 = sc.avail[home * sc.group_size..(home + 1) * sc.group_size].iter().sum();
    let total: f64 = sc.avail.iter().sum();
    home_avail + sc.beta * (total - home_avail)
}

/// The request amount: a fraction of reach (admit side) or reach plus a
/// ≥ 1.0 margin (deny side) — never near the boundary.
fn amount(sc: &ScaleScenario) -> f64 {
    let r = reach(sc);
    if sc.over {
        r + 1.0 + sc.frac
    } else {
        r * sc.frac
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The differential oracle: auto-partitioned hierarchical allocation
    /// agrees with the flat level-1 LP on every admit/deny verdict.
    #[test]
    fn hierarchical_verdicts_match_flat_lp(sc in arb_scale()) {
        let s = economy(&sc);
        let sched = HierarchicalScheduler::auto(&s, &PartitionOptions::default(), 1).unwrap();
        prop_assert_eq!(sched.num_groups(), sc.num_groups,
            "auto partition failed to recover the blocks");

        let flow = Arc::new(TransitiveFlow::compute(&s, 1));
        let state = SystemState::new(flow, None, sc.avail.clone()).unwrap();
        let mut flat = AllocationSolver::reduced();

        let x = amount(&sc);
        prop_assume!(x > 1e-9);
        let hier_ok = match sched.allocate(&sc.avail, sc.requester, x) {
            Ok(_) => true,
            Err(SchedError::InsufficientCapacity { .. }) => false,
            Err(e) => return Err(TestCaseError::fail(format!("hier failed: {e}"))),
        };
        let flat_ok = match flat.allocate(&state, sc.requester, x) {
            Ok(_) => true,
            Err(SchedError::InsufficientCapacity { .. }) => false,
            Err(e) => return Err(TestCaseError::fail(format!("flat oracle failed: {e}"))),
        };
        prop_assert_eq!(hier_ok, flat_ok,
            "verdict diverged: requester {}, x {:.6}, reach {:.6}",
            sc.requester, x, reach(&sc));
        // Both sides must match the closed-form reach too.
        prop_assert_eq!(hier_ok, !sc.over, "verdict contradicts closed-form reach");
    }

    /// Admitted allocations conserve the pool: draws sum to the grant,
    /// no member goes below zero or above its availability.
    #[test]
    fn admitted_draws_conserve_pool_totals(sc in arb_scale()) {
        let s = economy(&sc);
        let sched = HierarchicalScheduler::auto(&s, &PartitionOptions::default(), 1).unwrap();
        let x = reach(&sc) * sc.frac;
        prop_assume!(x > 1e-9);
        let alloc = sched.allocate(&sc.avail, sc.requester, x).unwrap();
        let drawn: f64 = alloc.draws.iter().sum();
        prop_assert!((drawn - x).abs() < 1e-6, "drew {drawn}, granted {x}");
        let mut after = sc.avail.clone();
        for (v, &d) in after.iter_mut().zip(&alloc.draws) {
            prop_assert!(d >= -1e-12, "negative draw {d}");
            *v -= d;
            prop_assert!(*v > -1e-9, "member oversubscribed by {v}");
        }
        let before: f64 = sc.avail.iter().sum();
        let remaining: f64 = after.iter().sum();
        prop_assert!((remaining + drawn - before).abs() < 1e-6,
            "pool total not conserved: {remaining} + {drawn} != {before}");
    }

    /// Parallel fine solves are bit-identical to sequential, including
    /// on coarse overflow requests that fan out across several groups.
    #[test]
    fn parallel_fine_solves_are_bit_identical(sc in arb_scale()) {
        let s = economy(&sc);
        let seq = HierarchicalScheduler::auto(&s, &PartitionOptions::default(), 1).unwrap();
        let mut par = HierarchicalScheduler::auto(&s, &PartitionOptions::default(), 1).unwrap();
        par.set_parallel_fine(true);
        let x = reach(&sc) * sc.frac;
        prop_assume!(x > 1e-9);
        let a = seq.allocate(&sc.avail, sc.requester, x).unwrap();
        let b = par.allocate(&sc.avail, sc.requester, x).unwrap();
        prop_assert_eq!(a.theta.to_bits(), b.theta.to_bits(), "theta diverged");
        prop_assert_eq!(a.amount.to_bits(), b.amount.to_bits(), "amount diverged");
        for (m, (da, db)) in a.draws.iter().zip(&b.draws).enumerate() {
            prop_assert_eq!(da.to_bits(), db.to_bits(), "draw diverged at member {}", m);
        }
    }
}

// ---------------------------------------------------------------------
// Per-resource differential oracle: the multi-resource hierarchical
// verdict must be the *conjunction* of per-resource flat-LP verdicts —
// admitted iff every resource's flat level-1 LP admits its lane — and a
// rejection must name the first denying lane in resource order. All on
// the same uniform-block economies, so each lane's verdict is also
// checkable against the closed-form reach.
// ---------------------------------------------------------------------

use agreements_sched::MultiAdmission;

#[derive(Debug, Clone)]
struct MultiScaleScenario {
    num_groups: usize,
    group_size: usize,
    beta: f64,
    requester: usize,
    /// One (availability, request fraction, deny?) triple per resource.
    lanes: Vec<(Vec<f64>, f64, bool)>,
}

fn arb_multi_scale() -> impl Strategy<Value = MultiScaleScenario> {
    (2usize..=6, 2usize..=6, 2usize..=3).prop_flat_map(|(num_groups, group_size, rk)| {
        let n = num_groups * group_size;
        (
            0.05f64..0.45,
            0usize..n,
            proptest::collection::vec(
                (proptest::collection::vec(0u32..=40, n), 0.05f64..0.95, any::<bool>()),
                rk,
            ),
        )
            .prop_map(move |(beta, requester, lanes)| MultiScaleScenario {
                num_groups,
                group_size,
                beta,
                requester,
                lanes: lanes
                    .into_iter()
                    .map(|(avail, frac, over)| {
                        (avail.iter().map(|&a| a as f64).collect(), frac, over)
                    })
                    .collect(),
            })
    })
}

fn base_of(sc: &MultiScaleScenario, avail: &[f64], frac: f64, over: bool) -> ScaleScenario {
    ScaleScenario {
        num_groups: sc.num_groups,
        group_size: sc.group_size,
        beta: sc.beta,
        avail: avail.to_vec(),
        requester: sc.requester,
        frac,
        over,
    }
}

const LANE_NAMES: [&str; 3] = ["cpu", "bandwidth", "storage"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Multi-resource hierarchical verdict ≡ conjunction of per-resource
    /// flat-LP verdicts; rejections name the first denying resource; and
    /// grants conserve each resource's pool independently.
    #[test]
    fn multi_verdict_is_conjunction_of_flat_lane_verdicts(sc in arb_multi_scale()) {
        let s = economy(&base_of(&sc, &sc.lanes[0].0, 0.5, false));
        let rk = sc.lanes.len();
        let schedulers: Vec<_> = (0..rk)
            .map(|_| HierarchicalScheduler::auto(&s, &PartitionOptions::default(), 1).unwrap())
            .collect();
        let multi = MultiAdmission::new(LANE_NAMES[..rk].to_vec(), schedulers).unwrap();

        let flow = Arc::new(TransitiveFlow::compute(&s, 1));
        let mut amounts = Vec::with_capacity(rk);
        let mut flat_verdicts = Vec::with_capacity(rk);
        for (avail, frac, over) in &sc.lanes {
            let lane_sc = base_of(&sc, avail, *frac, *over);
            let x = amount(&lane_sc);
            prop_assume!(x > 1e-9);
            amounts.push(x);
            let state = SystemState::new(flow.clone(), None, avail.clone()).unwrap();
            let mut flat = AllocationSolver::reduced();
            let ok = match flat.allocate(&state, sc.requester, x) {
                Ok(_) => true,
                Err(SchedError::InsufficientCapacity { .. }) => false,
                Err(e) => return Err(TestCaseError::fail(format!("flat oracle failed: {e}"))),
            };
            // The flat verdict itself must match the closed-form reach.
            prop_assert_eq!(ok, !*over, "flat verdict contradicts closed-form reach");
            flat_verdicts.push(ok);
        }

        let mut avail: Vec<Vec<f64>> =
            sc.lanes.iter().map(|(a, _, _)| a.clone()).collect();
        let before: Vec<f64> = avail.iter().map(|a| a.iter().sum()).collect();
        match multi.admit_one(&mut avail, sc.requester, &amounts) {
            Ok(grant) => {
                prop_assert!(flat_verdicts.iter().all(|&v| v),
                    "multi admitted but a flat lane denies: {:?}", flat_verdicts);
                // Per-resource pool conservation.
                prop_assert_eq!(grant.lanes.len(), rk);
                for (r, alloc) in grant.lanes.iter().enumerate() {
                    let drawn: f64 = alloc.draws.iter().sum();
                    prop_assert!((drawn - amounts[r]).abs() < 1e-6,
                        "lane {}: drew {}, granted {}", r, drawn, amounts[r]);
                    let remaining: f64 = avail[r].iter().sum();
                    prop_assert!((remaining + drawn - before[r]).abs() < 1e-6,
                        "lane {}: pool not conserved", r);
                    for (m, &v) in avail[r].iter().enumerate() {
                        prop_assert!(v > -1e-9, "lane {} member {} oversubscribed", r, m);
                    }
                }
            }
            Err(SchedError::InsufficientCapacity { resource, .. }) => {
                let first_deny = flat_verdicts.iter().position(|&v| !v);
                prop_assert!(first_deny.is_some(),
                    "multi denied but every flat lane admits");
                prop_assert_eq!(resource, Some(LANE_NAMES[first_deny.unwrap()]),
                    "rejection names the wrong binding resource");
                // A rejection must leave every lane's pool untouched.
                for (r, (start, _, _)) in sc.lanes.iter().enumerate() {
                    let now: f64 = avail[r].iter().sum();
                    let was: f64 = start.iter().sum();
                    prop_assert!((now - was).abs() == 0.0, "lane {} moved on rejection", r);
                }
            }
            Err(e) => return Err(TestCaseError::fail(format!("multi failed: {e}"))),
        }
    }
}
