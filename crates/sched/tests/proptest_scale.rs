//! Differential test oracle for the scale-out sharded enforcement plane.
//!
//! On *uniform-block* economies — complete sharing at 1.0 inside each
//! block, a mutual share β < 0.5 between every cross-block pair — the
//! auto-partitioned hierarchical scheduler is exactly equivalent to the
//! flat level-1 LP: the home fine solve sees the same full-intra pool
//! the flat LP sees, and each coarse inter-group aggregate β·A_G equals
//! the flat LP's per-member sum Σ β·V_m. Every property below holds with
//! closed-form reach `home + β·(total − home)`, so admit/deny verdicts,
//! conservation, and parallel/sequential bit-identity are all checkable
//! against first principles.
//!
//! β stays below the 0.5 mutual-share partition threshold so
//! `auto_partition` recovers exactly the blocks, and requests keep a
//! multiplicative margin from the reach boundary so FP noise cannot flip
//! a verdict.

use agreements_flow::{AgreementMatrix, PartitionOptions, TransitiveFlow};
use agreements_sched::hierarchy::HierarchicalScheduler;
use agreements_sched::{AllocationSolver, SchedError, SystemState};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct ScaleScenario {
    num_groups: usize,
    group_size: usize,
    beta: f64,
    avail: Vec<f64>,
    requester: usize,
    frac: f64,
    over: bool,
}

/// Randomized hierarchical-taxonomy systems, n ≤ 64.
fn arb_scale() -> impl Strategy<Value = ScaleScenario> {
    (2usize..=8, 2usize..=8).prop_flat_map(|(num_groups, group_size)| {
        let n = num_groups * group_size;
        (
            proptest::collection::vec(0u32..=40, n),
            0.05f64..0.45,
            0usize..n,
            0.05f64..0.95,
            any::<bool>(),
        )
            .prop_map(move |(avail, beta, requester, frac, over)| ScaleScenario {
                num_groups,
                group_size,
                beta,
                avail: avail.iter().map(|&a| a as f64).collect(),
                requester,
                frac,
                over,
            })
    })
}

fn economy(sc: &ScaleScenario) -> AgreementMatrix {
    let n = sc.num_groups * sc.group_size;
    let mut s = AgreementMatrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if i / sc.group_size == j / sc.group_size {
                s.set(i, j, 1.0).unwrap();
            } else {
                s.set(i, j, sc.beta).unwrap();
            }
        }
    }
    s
}

/// Closed-form reach of `requester` in the uniform-block economy: the
/// whole home block plus β of everything else.
fn reach(sc: &ScaleScenario) -> f64 {
    let home = sc.requester / sc.group_size;
    let home_avail: f64 = sc.avail[home * sc.group_size..(home + 1) * sc.group_size].iter().sum();
    let total: f64 = sc.avail.iter().sum();
    home_avail + sc.beta * (total - home_avail)
}

/// The request amount: a fraction of reach (admit side) or reach plus a
/// ≥ 1.0 margin (deny side) — never near the boundary.
fn amount(sc: &ScaleScenario) -> f64 {
    let r = reach(sc);
    if sc.over {
        r + 1.0 + sc.frac
    } else {
        r * sc.frac
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The differential oracle: auto-partitioned hierarchical allocation
    /// agrees with the flat level-1 LP on every admit/deny verdict.
    #[test]
    fn hierarchical_verdicts_match_flat_lp(sc in arb_scale()) {
        let s = economy(&sc);
        let sched = HierarchicalScheduler::auto(&s, &PartitionOptions::default(), 1).unwrap();
        prop_assert_eq!(sched.num_groups(), sc.num_groups,
            "auto partition failed to recover the blocks");

        let flow = Arc::new(TransitiveFlow::compute(&s, 1));
        let state = SystemState::new(flow, None, sc.avail.clone()).unwrap();
        let mut flat = AllocationSolver::reduced();

        let x = amount(&sc);
        prop_assume!(x > 1e-9);
        let hier_ok = match sched.allocate(&sc.avail, sc.requester, x) {
            Ok(_) => true,
            Err(SchedError::InsufficientCapacity { .. }) => false,
            Err(e) => return Err(TestCaseError::fail(format!("hier failed: {e}"))),
        };
        let flat_ok = match flat.allocate(&state, sc.requester, x) {
            Ok(_) => true,
            Err(SchedError::InsufficientCapacity { .. }) => false,
            Err(e) => return Err(TestCaseError::fail(format!("flat oracle failed: {e}"))),
        };
        prop_assert_eq!(hier_ok, flat_ok,
            "verdict diverged: requester {}, x {:.6}, reach {:.6}",
            sc.requester, x, reach(&sc));
        // Both sides must match the closed-form reach too.
        prop_assert_eq!(hier_ok, !sc.over, "verdict contradicts closed-form reach");
    }

    /// Admitted allocations conserve the pool: draws sum to the grant,
    /// no member goes below zero or above its availability.
    #[test]
    fn admitted_draws_conserve_pool_totals(sc in arb_scale()) {
        let s = economy(&sc);
        let sched = HierarchicalScheduler::auto(&s, &PartitionOptions::default(), 1).unwrap();
        let x = reach(&sc) * sc.frac;
        prop_assume!(x > 1e-9);
        let alloc = sched.allocate(&sc.avail, sc.requester, x).unwrap();
        let drawn: f64 = alloc.draws.iter().sum();
        prop_assert!((drawn - x).abs() < 1e-6, "drew {drawn}, granted {x}");
        let mut after = sc.avail.clone();
        for (v, &d) in after.iter_mut().zip(&alloc.draws) {
            prop_assert!(d >= -1e-12, "negative draw {d}");
            *v -= d;
            prop_assert!(*v > -1e-9, "member oversubscribed by {v}");
        }
        let before: f64 = sc.avail.iter().sum();
        let remaining: f64 = after.iter().sum();
        prop_assert!((remaining + drawn - before).abs() < 1e-6,
            "pool total not conserved: {remaining} + {drawn} != {before}");
    }

    /// Parallel fine solves are bit-identical to sequential, including
    /// on coarse overflow requests that fan out across several groups.
    #[test]
    fn parallel_fine_solves_are_bit_identical(sc in arb_scale()) {
        let s = economy(&sc);
        let seq = HierarchicalScheduler::auto(&s, &PartitionOptions::default(), 1).unwrap();
        let mut par = HierarchicalScheduler::auto(&s, &PartitionOptions::default(), 1).unwrap();
        par.set_parallel_fine(true);
        let x = reach(&sc) * sc.frac;
        prop_assume!(x > 1e-9);
        let a = seq.allocate(&sc.avail, sc.requester, x).unwrap();
        let b = par.allocate(&sc.avail, sc.requester, x).unwrap();
        prop_assert_eq!(a.theta.to_bits(), b.theta.to_bits(), "theta diverged");
        prop_assert_eq!(a.amount.to_bits(), b.amount.to_bits(), "amount diverged");
        for (m, (da, db)) in a.draws.iter().zip(&b.draws).enumerate() {
            prop_assert_eq!(da.to_bits(), db.to_bits(), "draw diverged at member {}", m);
        }
    }
}
