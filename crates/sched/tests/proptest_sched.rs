//! Property tests: allocation correctness and LP optimality.

// Index-based loops keep the matrix algebra legible in these tests.
#![allow(clippy::needless_range_loop)]

use agreements_flow::{AgreementMatrix, TransitiveFlow};
use agreements_lp::SimplexOptions;
use agreements_sched::lp_model::solve_allocation;
use agreements_sched::state::perturbation;
use agreements_sched::{
    AllocationPolicy, Formulation, GreedyPolicy, LpPolicy, SchedError, SystemState,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    s: AgreementMatrix,
    v: Vec<f64>,
    level: usize,
    requester: usize,
    frac: f64, // request as a fraction of reachable capacity
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (2usize..=6).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec(0u32..=25, n * n),
            proptest::collection::vec(0u32..=50, n),
            1usize..n.max(2),
            0usize..n,
            0.0f64..1.0,
        )
            .prop_map(|(n, raw, avail, level, requester, frac)| {
                let mut s = AgreementMatrix::zeros(n);
                for i in 0..n {
                    let row = &raw[i * n..(i + 1) * n];
                    let total: u32 =
                        row.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &v)| v).sum();
                    if total == 0 {
                        continue;
                    }
                    let scale = 0.95 / total.max(25) as f64;
                    for j in 0..n {
                        if i != j && row[j] > 0 {
                            s.set(i, j, row[j] as f64 * scale).unwrap();
                        }
                    }
                }
                let v: Vec<f64> = avail.iter().map(|&a| a as f64).collect();
                Scenario { s, v, level, requester, frac }
            })
    })
}

fn build_state(sc: &Scenario) -> SystemState {
    let flow = TransitiveFlow::compute(&sc.s, sc.level);
    SystemState::new(flow, None, sc.v.clone()).unwrap()
}

fn reachable(state: &SystemState, a: usize) -> f64 {
    use agreements_flow::capacity::saturated_inflow;
    let v = &state.availability;
    (0..state.n())
        .map(|i| if i == a { v[a] } else { saturated_inflow(&state.flow, None, v, i, a) })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The LP's draws always sum to the request, stay within per-owner
    /// entitlements, and never exceed availability.
    #[test]
    fn lp_draws_are_valid(sc in arb_scenario()) {
        let state = build_state(&sc);
        let cap = reachable(&state, sc.requester);
        let x = cap * sc.frac;
        prop_assume!(x > 1e-6);
        let a = solve_allocation(&state, sc.requester, x, Formulation::Reduced,
            &SimplexOptions::default()).unwrap();
        let sum: f64 = a.draws.iter().sum();
        prop_assert!((sum - a.amount).abs() < 1e-6, "sum {sum} != x {}", a.amount);
        for (i, &d) in a.draws.iter().enumerate() {
            prop_assert!(d >= 0.0);
            prop_assert!(d <= state.availability[i] + 1e-6,
                "draw {d} from {i} exceeds availability {}", state.availability[i]);
        }
        prop_assert!(a.theta >= -1e-9);
    }

    /// Reported θ matches an independent recomputation of the worst
    /// capacity drop (validates the LP's constraint encoding). The
    /// independent computation uses saturated capacities, which coincide
    /// with the LP's linear ones when no entitlement saturates; we only
    /// compare in that regime.
    #[test]
    fn theta_matches_recomputation(sc in arb_scenario()) {
        let state = build_state(&sc);
        let cap = reachable(&state, sc.requester);
        let x = cap * sc.frac * 0.9;
        prop_assume!(x > 1e-6);
        let a = solve_allocation(&state, sc.requester, x, Formulation::Reduced,
            &SimplexOptions::default()).unwrap();
        // Saturation check: relative inflow below owner availability for
        // all pairs, before and after.
        let sat_free = |v: &[f64]| {
            (0..state.n()).all(|k| (0..state.n()).all(|i| {
                k == i || state.flow.coefficient(k, i) < 1.0 - 1e-9 || v[k] == 0.0
            }))
        };
        prop_assume!(sat_free(&state.availability));
        let recomputed = perturbation(&state, sc.requester, &a.draws);
        prop_assert!((recomputed - a.theta).abs() < 1e-5 * (1.0 + a.theta),
            "theta {} vs recomputed {}", a.theta, recomputed);
    }

    /// Full and reduced formulations find the same optimum.
    #[test]
    fn formulations_agree(sc in arb_scenario()) {
        let state = build_state(&sc);
        let cap = reachable(&state, sc.requester);
        let x = cap * sc.frac;
        prop_assume!(x > 1e-6);
        let r = solve_allocation(&state, sc.requester, x, Formulation::Reduced,
            &SimplexOptions::default()).unwrap();
        let f = solve_allocation(&state, sc.requester, x, Formulation::Full,
            &SimplexOptions::default()).unwrap();
        prop_assert!((r.theta - f.theta).abs() < 1e-5 * (1.0 + r.theta.abs()),
            "reduced {} vs full {}", r.theta, f.theta);
    }

    /// The LP never does worse (in θ) than the greedy baseline — it is by
    /// construction the minimizer of θ.
    #[test]
    fn lp_is_theta_optimal_vs_greedy(sc in arb_scenario()) {
        let state = build_state(&sc);
        let cap = reachable(&state, sc.requester);
        let x = cap * sc.frac;
        prop_assume!(x > 1e-6);
        let lp = LpPolicy::reduced().allocate(&state, sc.requester, x).unwrap();
        match GreedyPolicy.allocate(&state, sc.requester, x) {
            Ok(gr) => {
                // Compare in the LP's own (linear) metric.
                let lin_drop = |draws: &[f64]| {
                    (0..state.n()).filter(|&i| i != sc.requester).map(|i| {
                        draws[i] + (0..state.n()).filter(|&k| k != i)
                            .map(|k| state.flow.coefficient(k, i) * draws[k])
                            .sum::<f64>()
                    }).fold(0.0, f64::max)
                };
                prop_assert!(lin_drop(&lp.draws) <= lin_drop(&gr.draws) + 1e-6,
                    "LP {} worse than greedy {}", lin_drop(&lp.draws), lin_drop(&gr.draws));
            }
            Err(SchedError::InsufficientCapacity { .. }) => {
                // Greedy can fall short when transitive chains overlap;
                // the LP handling it is itself the win.
            }
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        }
    }

    /// Requests above reachable capacity are rejected with the capacity
    /// reported; requests at or below it succeed.
    #[test]
    fn admission_boundary_is_tight(sc in arb_scenario()) {
        let state = build_state(&sc);
        let cap = reachable(&state, sc.requester);
        prop_assume!(cap > 1e-6);
        let ok = solve_allocation(&state, sc.requester, cap * 0.999,
            Formulation::Reduced, &SimplexOptions::default());
        prop_assert!(ok.is_ok(), "{:?}", ok.err());
        let err = solve_allocation(&state, sc.requester, cap * 1.01 + 1e-6,
            Formulation::Reduced, &SimplexOptions::default());
        match err {
            Err(SchedError::InsufficientCapacity { capacity, .. }) => {
                prop_assert!((capacity - cap).abs() < 1e-6);
            }
            other => return Err(TestCaseError::fail(format!("expected rejection: {other:?}"))),
        }
    }

    /// Applying then releasing an allocation restores availability.
    #[test]
    fn apply_release_inverse(sc in arb_scenario()) {
        let mut state = build_state(&sc);
        let cap = reachable(&state, sc.requester);
        let x = cap * sc.frac;
        prop_assume!(x > 1e-6);
        let before = state.availability.clone();
        let a = LpPolicy::reduced().allocate(&state, sc.requester, x).unwrap();
        state.apply(&a).unwrap();
        state.release(&a).unwrap();
        for (b, c) in before.iter().zip(&state.availability) {
            prop_assert!((b - c).abs() < 1e-9);
        }
    }
}
