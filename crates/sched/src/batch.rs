//! Cross-request batched admission: the front door that lets one warm
//! fine solver amortize over a whole drained admission queue (PR 6).
//!
//! The GRM serve loop already drains its mailbox on every wakeup; before
//! this module each drained allocation request still paid a full
//! scheduler round trip one at a time. [`BatchedAdmission`] instead takes
//! the drained run of requests, groups them by the requester's home
//! group, and ships each group's slot-ordered run to the persistent
//! [`crate::executor::ShardExecutor`] worker that owns that group's warm
//! solver. Workers replay their runs against a private copy of their
//! members' availability; the coordinator then commits accepted steps
//! **in global slot order** with the same full-vector
//! `(v − d).max(0.0)` expression the GRM applies, so the availability
//! vector evolves through literally the same sequence of operations as
//! one-by-one submission — including the `-0.0` normalization of
//! untouched entries. That is the bit-identity contract, property-tested
//! in `tests/proptest_batch.rs`.
//!
//! # The wave/stall protocol
//!
//! Requests that fit in their home group are independent across groups
//! (groups are disjoint), so they parallelize freely. A request its home
//! group cannot cover needs the coarse LP over *global* state, which
//! depends on every earlier decision. The batch therefore executes in
//! waves:
//!
//! 1. Fan the undecided tail of the batch out as per-group runs; each
//!    worker stops at the first request its group cannot cover.
//! 2. Let `S` be the earliest stalled slot across groups. Steps for
//!    slots before `S` are final (nothing at or after `S` can affect
//!    them); commit them in slot order. Steps at or after `S` are
//!    discarded — a coarse draw at `S` may touch their groups.
//! 3. Decide slot `S` inline through the ordinary one-by-one path (the
//!    coarse LP), then start the next wave at `S + 1`.
//!
//! Every wave decides at least one slot, so the loop terminates; a batch
//! with no coarse traffic finishes in a single wave.

use crate::error::SchedError;
use crate::executor::{GroupRun, RunRequest, RunStep};
use crate::hierarchy::{FineMode, HierarchicalScheduler};
use crate::state::Allocation;
use agreements_telemetry::Telemetry;

/// One queued allocation request: principal index and amount.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionRequest {
    /// Requesting principal (global index).
    pub requester: usize,
    /// Units requested.
    pub amount: f64,
}

/// Batched admission front door over a [`HierarchicalScheduler`] (see
/// module docs). Owns the scheduler; the caller owns the availability
/// vector and passes it mutably — decisions are committed into it, so
/// after a call it reflects every granted allocation.
#[derive(Debug)]
pub struct BatchedAdmission {
    sched: HierarchicalScheduler,
}

impl BatchedAdmission {
    /// Wrap a scheduler. Enable its executor (`set_parallel_auto` /
    /// `set_parallel_fine`) *before* wrapping, or via
    /// [`Self::scheduler_mut`].
    pub fn new(sched: HierarchicalScheduler) -> Self {
        BatchedAdmission { sched }
    }

    /// The underlying scheduler.
    pub fn scheduler(&self) -> &HierarchicalScheduler {
        &self.sched
    }

    /// Mutable access to the underlying scheduler (mode switches,
    /// telemetry).
    pub fn scheduler_mut(&mut self) -> &mut HierarchicalScheduler {
        &mut self.sched
    }

    /// Attach a telemetry plane (delegates to the scheduler, which also
    /// broadcasts it to any live executor workers).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.sched.set_telemetry(telemetry);
    }

    /// Renegotiate one inter-group agreement mid-stream; returns the
    /// number of coarse flow rows recomputed. Requests admitted after
    /// this call see the new agreement — batched or not.
    pub fn set_inter(
        &mut self,
        from_group: usize,
        to_group: usize,
        share: f64,
    ) -> Result<usize, SchedError> {
        self.sched.set_inter(from_group, to_group, share)
    }

    /// Admit a single request: allocate through the scheduler and commit
    /// the draws into `availability` with the GRM's full-vector
    /// `(v − d).max(0.0)` expression. Errors leave the vector untouched.
    pub fn admit_one(
        &self,
        availability: &mut [f64],
        requester: usize,
        amount: f64,
    ) -> Result<Allocation, SchedError> {
        let alloc = self.sched.allocate(availability, requester, amount)?;
        for (v, d) in availability.iter_mut().zip(&alloc.draws) {
            *v = (*v - *d).max(0.0);
        }
        Ok(alloc)
    }

    /// Admit a whole batch, returning one decision per request in input
    /// order. Bit-identical to calling [`Self::admit_one`] on each
    /// request in the same order — the parallel path exists purely for
    /// throughput. Falls back to the one-by-one loop when no executor is
    /// live or a wave's fan-out is below the measured break-even.
    pub fn admit_batch(
        &self,
        availability: &mut [f64],
        reqs: &[AdmissionRequest],
    ) -> Vec<Result<Allocation, SchedError>> {
        let k = reqs.len();
        let n = self.sched.num_principals();
        let executor_live =
            availability.len() == n && self.sched.shard_executor().is_some() && k >= 2;
        if !executor_live {
            if self.sched.fine_mode() != FineMode::Sequential && k >= 2 {
                self.sched.exec_stats().note_fallback();
            }
            return reqs
                .iter()
                .map(|r| self.admit_one(availability, r.requester, r.amount))
                .collect();
        }
        let ex = self.sched.shard_executor().expect("checked above");

        let mut decisions: Vec<Option<Result<Allocation, SchedError>>> =
            (0..k).map(|_| None).collect();
        let mut i = 0;
        while i < k {
            // Build per-group runs over the undecided tail, deciding
            // stateless validation errors inline (they never touch
            // availability, so deciding them early changes nothing).
            let mut run_of_group: Vec<usize> = vec![usize::MAX; self.sched.num_groups()];
            let mut runs: Vec<GroupRun> = Vec::new();
            for slot in i..k {
                if decisions[slot].is_some() {
                    continue;
                }
                let r = &reqs[slot];
                if r.requester >= n {
                    decisions[slot] =
                        Some(Err(SchedError::UnknownPrincipal { index: r.requester, n }));
                    continue;
                }
                if !r.amount.is_finite() || r.amount < 0.0 {
                    decisions[slot] = Some(Err(SchedError::InvalidRequest { amount: r.amount }));
                    continue;
                }
                let g = self.sched.group_of(r.requester).expect("validated requester");
                if run_of_group[g] == usize::MAX {
                    run_of_group[g] = runs.len();
                    let members = &self.sched.groups()[g];
                    runs.push(GroupRun {
                        group: g,
                        first_member: members[0],
                        start: members.iter().map(|&m| availability[m]).collect(),
                        reqs: Vec::new(),
                    });
                }
                runs[run_of_group[g]].reqs.push(RunRequest { slot, amount: r.amount });
            }

            if !ex.should_parallelize(runs.len()) {
                if runs.len() >= 2 {
                    self.sched.exec_stats().note_fallback();
                }
                for slot in i..k {
                    if decisions[slot].is_none() {
                        let r = &reqs[slot];
                        decisions[slot] = Some(self.admit_one(availability, r.requester, r.amount));
                    }
                }
                break;
            }

            let outcomes = ex.run_fan(runs);
            let stall = outcomes.iter().filter_map(|o| o.stalled_at).min();
            let cutoff = stall.unwrap_or(k);

            // Steps before the earliest stall are final. Collect them
            // across groups and commit in global slot order — the exact
            // state evolution one-by-one submission would produce.
            let mut accepted: Vec<(usize, RunStep)> = Vec::new();
            for outcome in outcomes {
                for step in outcome.steps {
                    if step.slot < cutoff {
                        accepted.push((outcome.group, step));
                    }
                }
            }
            accepted.sort_by_key(|(_, step)| step.slot);
            for (group, step) in accepted {
                let slot = step.slot;
                let r = &reqs[slot];
                decisions[slot] = Some(step.result.map(|(local, theta)| {
                    let mut draws = vec![0.0; n];
                    for (&m, d) in self.sched.groups()[group].iter().zip(local) {
                        draws[m] += d;
                    }
                    for (v, d) in availability.iter_mut().zip(&draws) {
                        *v = (*v - *d).max(0.0);
                    }
                    Allocation { requester: r.requester, amount: r.amount, draws, theta }
                }));
            }

            match stall {
                Some(s) => {
                    // The stalled request needs global state (the coarse
                    // LP); decide it through the ordinary path.
                    let r = &reqs[s];
                    decisions[s] = Some(self.admit_one(availability, r.requester, r.amount));
                    i = s + 1;
                }
                None => i = k,
            }
        }
        decisions.into_iter().map(|d| d.expect("every slot decided")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreements_flow::AgreementMatrix;

    /// 2 groups of 3; groups share 50% with each other.
    fn sched(parallel: bool) -> HierarchicalScheduler {
        let groups = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let mut inter = AgreementMatrix::zeros(2);
        inter.set(0, 1, 0.5).unwrap();
        inter.set(1, 0, 0.5).unwrap();
        let mut s = HierarchicalScheduler::new(groups, &inter, 1).unwrap();
        if parallel {
            s.set_parallel_fine(true);
        }
        s
    }

    fn batch_requests() -> Vec<AdmissionRequest> {
        vec![
            AdmissionRequest { requester: 0, amount: 2.0 },
            AdmissionRequest { requester: 4, amount: 3.0 },
            AdmissionRequest { requester: 1, amount: 4.5 },
            // Slot 3 overflows group 0 and must stall onto the coarse path.
            AdmissionRequest { requester: 2, amount: 9.0 },
            AdmissionRequest { requester: 9, amount: 1.0 }, // unknown principal
            AdmissionRequest { requester: 5, amount: -1.0 }, // invalid amount
            AdmissionRequest { requester: 3, amount: 2.0 },
            AdmissionRequest { requester: 0, amount: 100.0 }, // reject: beyond reach
            AdmissionRequest { requester: 5, amount: 0.0 },
        ]
    }

    #[test]
    fn batched_is_bit_identical_to_one_by_one() {
        let reqs = batch_requests();
        let start = vec![4.0, 3.0, 2.0, 8.0, 8.0, 8.0];

        let solo = BatchedAdmission::new(sched(false));
        let mut solo_avail = start.clone();
        let solo_decisions: Vec<_> =
            reqs.iter().map(|r| solo.admit_one(&mut solo_avail, r.requester, r.amount)).collect();

        let batched = BatchedAdmission::new(sched(true));
        let mut batch_avail = start;
        let batch_decisions = batched.admit_batch(&mut batch_avail, &reqs);

        assert!(
            solo_avail.iter().zip(&batch_avail).all(|(a, b)| a.to_bits() == b.to_bits()),
            "final availability differs: {solo_avail:?} vs {batch_avail:?}"
        );
        for (slot, (a, b)) in solo_decisions.iter().zip(&batch_decisions).enumerate() {
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.requester, y.requester, "slot {slot}");
                    assert_eq!(x.amount.to_bits(), y.amount.to_bits(), "slot {slot}");
                    assert_eq!(x.theta.to_bits(), y.theta.to_bits(), "slot {slot}");
                    assert!(
                        x.draws.iter().zip(&y.draws).all(|(p, q)| p.to_bits() == q.to_bits()),
                        "slot {slot}: {:?} vs {:?}",
                        x.draws,
                        y.draws
                    );
                }
                (Err(x), Err(y)) => assert_eq!(format!("{x:?}"), format!("{y:?}"), "slot {slot}"),
                other => panic!("slot {slot}: decision kind differs: {other:?}"),
            }
        }
    }

    #[test]
    fn empty_and_singleton_batches() {
        let b = BatchedAdmission::new(sched(true));
        let mut avail = vec![1.0; 6];
        assert!(b.admit_batch(&mut avail, &[]).is_empty());
        let d = b.admit_batch(&mut avail, &[AdmissionRequest { requester: 0, amount: 1.0 }]);
        assert_eq!(d.len(), 1);
        assert!(d[0].is_ok());
        assert!((avail.iter().sum::<f64>() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn set_inter_between_batches_changes_decisions() {
        let mut b = BatchedAdmission::new(sched(true));
        // Group 0 empty: requester 0 lives off the 50% inter-group share.
        let mut avail = vec![0.0, 0.0, 0.0, 4.0, 3.0, 3.0];
        let d = b.admit_batch(&mut avail, &[AdmissionRequest { requester: 0, amount: 2.0 }]);
        assert!(d[0].is_ok());
        // Revoke the agreement: the identical request must now reject.
        b.set_inter(1, 0, 0.0).unwrap();
        let d = b.admit_batch(&mut avail, &[AdmissionRequest { requester: 0, amount: 2.0 }]);
        assert!(d[0].is_err());
    }

    #[test]
    fn sequential_mode_batches_through_the_fallback() {
        let b = BatchedAdmission::new(sched(false));
        let mut avail = vec![4.0, 4.0, 4.0, 4.0, 4.0, 4.0];
        let reqs = vec![
            AdmissionRequest { requester: 0, amount: 6.0 },
            AdmissionRequest { requester: 3, amount: 6.0 },
        ];
        let d = b.admit_batch(&mut avail, &reqs);
        assert!(d.iter().all(Result::is_ok));
        assert!((avail.iter().sum::<f64>() - 12.0).abs() < 1e-9);
    }
}
