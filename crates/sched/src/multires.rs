//! Multi-resource admission at scale (paper §3.2, scaled path).
//!
//! The flat §3.2 machinery in [`crate::multi`] handles vector requests
//! against one [`SystemState`] whose availability is a single pool. This
//! module instead runs **one full enforcement lane per resource** —
//! CPU, bandwidth, storage — each with its own agreement-derived state
//! and warm LP solver, and admits a request iff *every* resource's LP
//! admits it. A rejection names the **binding resource**: the first
//! lane, in resource order, whose admission failed.
//!
//! Two front doors mirror the single-resource stack:
//!
//! - [`MultiSolver`] — flat per-lane [`AllocationSolver`]s over a slice
//!   of [`SystemState`]s (the GRM server's engine).
//! - [`MultiAdmission`] — per-lane [`HierarchicalScheduler`]s with the
//!   batched wave/stall protocol of [`crate::batch`] run lane-wise (the
//!   scaled engine).
//!
//! # Degeneracy contract
//!
//! With a single lane, every path here reduces to the exact
//! single-resource algorithm: the wave protocol computes the same
//! cutoffs, commits the same steps in the same order, and evaluates the
//! same expressions, so decisions and availability are **bit-identical**
//! to [`crate::batch::BatchedAdmission`] — the only difference is that
//! `InsufficientCapacity` rejections carry `resource: Some(name)`
//! instead of `None`. `tests/proptest_multires.rs` pins this.
//!
//! # The multi-lane wave protocol
//!
//! Per wave, each lane fans its own per-group runs to its own
//! [`crate::executor::ShardExecutor`]. The cutoff is the earliest slot,
//! across *all* lanes, that either stalled (needs the coarse LP) or was
//! rejected by its lane's group solver. The rejection cap is new to the
//! multi-lane case: a slot rejected in one lane is rejected *globally*,
//! so lanes that accepted it advanced their private availability past a
//! decision the system will never commit — everything at or beyond that
//! slot must be replayed. Slots before the cutoff were accepted by every
//! lane and commit in global slot order, lane by lane; the cutoff slot
//! is decided inline through [`MultiAdmission::admit_one`] (which
//! reproduces the lane verdicts on the now-current availability), and
//! the next wave starts after it. Each per-lane rejection therefore
//! costs a wave — correctness over throughput.

use crate::error::SchedError;
use crate::executor::{GroupRun, RunRequest};
use crate::hierarchy::{FineMode, HierarchicalScheduler};
use crate::solver::AllocationSolver;
use crate::state::{Allocation, SystemState};
use agreements_telemetry::Telemetry;

/// The standard three-resource schema, in lane order.
pub const STANDARD_RESOURCES: [&str; 3] = ["cpu", "bandwidth", "storage"];

/// A per-resource amount vector in lane order (CPU, bandwidth, storage
/// under [`STANDARD_RESOURCES`]; any arity is allowed).
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceVector(pub Vec<f64>);

impl ResourceVector {
    /// The standard three-resource vector.
    pub fn cpu_bandwidth_storage(cpu: f64, bandwidth: f64, storage: f64) -> Self {
        ResourceVector(vec![cpu, bandwidth, storage])
    }

    /// The same amount in every one of `k` lanes.
    pub fn uniform(amount: f64, k: usize) -> Self {
        ResourceVector(vec![amount; k])
    }

    /// Number of resource lanes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector has no lanes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The amounts as a slice, lane order.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Sum across lanes (total units requested, all resources).
    pub fn total(&self) -> f64 {
        self.0.iter().sum()
    }
}

impl From<Vec<f64>> for ResourceVector {
    fn from(v: Vec<f64>) -> Self {
        ResourceVector(v)
    }
}

impl std::ops::Index<usize> for ResourceVector {
    type Output = f64;
    fn index(&self, r: usize) -> &f64 {
        &self.0[r]
    }
}

/// One queued multi-resource request: principal index plus one amount
/// per resource lane.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiAdmissionRequest {
    /// Requesting principal (global index).
    pub requester: usize,
    /// Per-lane amounts, resource order.
    pub amounts: Vec<f64>,
}

/// A granted multi-resource request: one [`Allocation`] per lane, in
/// resource order. Grants are atomic — every lane admitted, or the
/// whole request was rejected and no lane's availability moved.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiAllocation {
    /// Per-resource allocations, lane order.
    pub lanes: Vec<Allocation>,
}

impl MultiAllocation {
    /// Total units granted across all lanes.
    pub fn total(&self) -> f64 {
        self.lanes.iter().map(|a| a.amount).sum()
    }
}

/// Stamp the binding-resource name onto a capacity rejection; other
/// error kinds (validation, LP trouble) pass through untouched.
fn tag(e: SchedError, name: &'static str) -> SchedError {
    match e {
        SchedError::InsufficientCapacity { requester, capacity, requested, .. } => {
            SchedError::InsufficientCapacity {
                requester,
                capacity,
                requested,
                resource: Some(name),
            }
        }
        other => other,
    }
}

/// Flat per-resource admission: one warm [`AllocationSolver`] per lane
/// over caller-owned [`SystemState`]s. This is the multi-resource
/// analogue of the GRM server's single cached solver.
#[derive(Debug)]
pub struct MultiSolver {
    names: Vec<&'static str>,
    solvers: Vec<AllocationSolver>,
}

impl MultiSolver {
    /// One warm reduced-form solver per named resource lane.
    pub fn reduced(names: Vec<&'static str>) -> Self {
        let solvers = names.iter().map(|_| AllocationSolver::reduced()).collect();
        MultiSolver { names, solvers }
    }

    /// The resource names, lane order.
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// Number of resource lanes.
    pub fn num_resources(&self) -> usize {
        self.names.len()
    }

    /// Attach a telemetry plane to every lane's solver.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for s in &mut self.solvers {
            s.set_telemetry(telemetry.clone());
        }
    }

    /// Evaluate every lane in resource order and return the per-lane
    /// allocations iff all admit. The first lane to refuse decides the
    /// verdict, with capacity rejections tagged by that lane's name.
    /// States are not mutated — the caller commits grants.
    pub fn allocate(
        &mut self,
        states: &[SystemState],
        requester: usize,
        amounts: &[f64],
    ) -> Result<MultiAllocation, SchedError> {
        let k = self.names.len();
        if states.len() != k {
            return Err(SchedError::DimensionMismatch { expected: k, got: states.len() });
        }
        if amounts.len() != k {
            return Err(SchedError::DimensionMismatch { expected: k, got: amounts.len() });
        }
        let mut lanes = Vec::with_capacity(k);
        for (r, (state, solver)) in states.iter().zip(&mut self.solvers).enumerate() {
            match solver.allocate(state, requester, amounts[r]) {
                Ok(a) => lanes.push(a),
                Err(e) => return Err(tag(e, self.names[r])),
            }
        }
        Ok(MultiAllocation { lanes })
    }
}

/// Batched multi-resource admission over one [`HierarchicalScheduler`]
/// per resource lane (see module docs for the wave protocol and the
/// single-lane degeneracy contract). All lanes must share the same
/// principal partition; availability is one vector per lane.
#[derive(Debug)]
pub struct MultiAdmission {
    names: Vec<&'static str>,
    lanes: Vec<HierarchicalScheduler>,
}

impl MultiAdmission {
    /// Wrap one scheduler per named resource. Fails with
    /// [`SchedError::DimensionMismatch`] if names and lanes disagree in
    /// count, no lanes are given, or the lanes' group partitions differ
    /// (the wave protocol shares one run structure across lanes).
    pub fn new(
        names: Vec<&'static str>,
        lanes: Vec<HierarchicalScheduler>,
    ) -> Result<Self, SchedError> {
        if names.len() != lanes.len() {
            return Err(SchedError::DimensionMismatch { expected: names.len(), got: lanes.len() });
        }
        if lanes.is_empty() {
            return Err(SchedError::DimensionMismatch { expected: 1, got: 0 });
        }
        for lane in &lanes[1..] {
            if lane.groups() != lanes[0].groups() {
                return Err(SchedError::DimensionMismatch {
                    expected: lanes[0].num_principals(),
                    got: lane.num_principals(),
                });
            }
        }
        Ok(MultiAdmission { names, lanes })
    }

    /// The resource names, lane order.
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// Number of resource lanes.
    pub fn num_resources(&self) -> usize {
        self.names.len()
    }

    /// Number of principals (identical across lanes).
    pub fn num_principals(&self) -> usize {
        self.lanes[0].num_principals()
    }

    /// The scheduler driving resource lane `r`.
    pub fn lane(&self, r: usize) -> &HierarchicalScheduler {
        &self.lanes[r]
    }

    /// Mutable access to lane `r`'s scheduler (mode switches).
    pub fn lane_mut(&mut self, r: usize) -> &mut HierarchicalScheduler {
        &mut self.lanes[r]
    }

    /// Attach a telemetry plane to every lane.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        for lane in &mut self.lanes {
            lane.set_telemetry(telemetry.clone());
        }
    }

    /// Renegotiate one inter-group agreement in every lane; returns the
    /// coarse rows recomputed in the last lane (identical counts, the
    /// partitions being shared).
    pub fn set_inter(
        &mut self,
        from_group: usize,
        to_group: usize,
        share: f64,
    ) -> Result<usize, SchedError> {
        let mut rows = 0;
        for lane in &mut self.lanes {
            rows = lane.set_inter(from_group, to_group, share)?;
        }
        Ok(rows)
    }

    /// Admit a single multi-resource request: evaluate every lane in
    /// resource order against its availability vector (no mutation),
    /// and only if all admit, commit each lane's draws with the GRM's
    /// `(v − d).max(0.0)` expression. The first refusing lane decides
    /// the verdict; capacity rejections are tagged with that lane's
    /// name. Errors leave every availability vector untouched.
    pub fn admit_one(
        &self,
        availability: &mut [Vec<f64>],
        requester: usize,
        amounts: &[f64],
    ) -> Result<MultiAllocation, SchedError> {
        let k = self.lanes.len();
        if availability.len() != k {
            return Err(SchedError::DimensionMismatch { expected: k, got: availability.len() });
        }
        if amounts.len() != k {
            return Err(SchedError::DimensionMismatch { expected: k, got: amounts.len() });
        }
        let mut lanes = Vec::with_capacity(k);
        for r in 0..k {
            match self.lanes[r].allocate(&availability[r], requester, amounts[r]) {
                Ok(a) => lanes.push(a),
                Err(e) => return Err(tag(e, self.names[r])),
            }
        }
        for (avail, alloc) in availability.iter_mut().zip(&lanes) {
            for (v, d) in avail.iter_mut().zip(&alloc.draws) {
                *v = (*v - *d).max(0.0);
            }
        }
        Ok(MultiAllocation { lanes })
    }

    /// Admit a whole batch, returning one decision per request in input
    /// order. Bit-identical to calling [`Self::admit_one`] on each
    /// request in order; the wave protocol (module docs) exists purely
    /// for throughput. Falls back to the one-by-one loop when any lane
    /// lacks a live executor or a wave's fan-out is below break-even.
    pub fn admit_batch(
        &self,
        availability: &mut [Vec<f64>],
        reqs: &[MultiAdmissionRequest],
    ) -> Vec<Result<MultiAllocation, SchedError>> {
        let rk = self.lanes.len();
        let k = reqs.len();
        let n = self.num_principals();
        let executor_live = availability.len() == rk
            && availability.iter().all(|a| a.len() == n)
            && self.lanes.iter().all(|l| l.shard_executor().is_some())
            && k >= 2;
        if !executor_live {
            for lane in &self.lanes {
                if lane.fine_mode() != FineMode::Sequential && k >= 2 {
                    lane.exec_stats().note_fallback();
                }
            }
            return reqs
                .iter()
                .map(|r| self.admit_one(availability, r.requester, &r.amounts))
                .collect();
        }

        let mut decisions: Vec<Option<Result<MultiAllocation, SchedError>>> =
            (0..k).map(|_| None).collect();
        let mut i = 0;
        while i < k {
            // Build per-lane runs over the undecided tail, deciding
            // stateless validation errors inline — in [`Self::admit_one`]
            // order (dimensions, then principal, then lane-0 amount), so
            // the inline verdict is the one the one-by-one path reports.
            // Run structure (groups, slots) is identical across lanes;
            // amounts differ.
            let mut run_of_group: Vec<usize> = vec![usize::MAX; self.lanes[0].num_groups()];
            let mut runs: Vec<Vec<GroupRun>> = (0..rk).map(|_| Vec::new()).collect();
            // Earliest slot whose verdict is state-dependent despite
            // being a sure rejection: an invalid amount in a lane past
            // the first, where an earlier lane may refuse on capacity
            // first. Such a slot must be decided inline at its turn,
            // exactly like a stall.
            let mut forced_cut: Option<usize> = None;
            for slot in i..k {
                if decisions[slot].is_some() {
                    continue;
                }
                let r = &reqs[slot];
                if r.amounts.len() != rk {
                    decisions[slot] = Some(Err(SchedError::DimensionMismatch {
                        expected: rk,
                        got: r.amounts.len(),
                    }));
                    continue;
                }
                if r.requester >= n {
                    decisions[slot] =
                        Some(Err(SchedError::UnknownPrincipal { index: r.requester, n }));
                    continue;
                }
                if !r.amounts[0].is_finite() || r.amounts[0] < 0.0 {
                    decisions[slot] =
                        Some(Err(SchedError::InvalidRequest { amount: r.amounts[0] }));
                    continue;
                }
                if r.amounts[1..].iter().any(|a| !a.is_finite() || *a < 0.0) {
                    if forced_cut.is_none() {
                        forced_cut = Some(slot);
                    }
                    continue;
                }
                let g = self.lanes[0].group_of(r.requester).expect("validated requester");
                if run_of_group[g] == usize::MAX {
                    run_of_group[g] = runs[0].len();
                    for (lane_runs, avail) in runs.iter_mut().zip(availability.iter()) {
                        let members = &self.lanes[0].groups()[g];
                        lane_runs.push(GroupRun {
                            group: g,
                            first_member: members[0],
                            start: members.iter().map(|&m| avail[m]).collect(),
                            reqs: Vec::new(),
                        });
                    }
                }
                let ri = run_of_group[g];
                for (lane_idx, lane_runs) in runs.iter_mut().enumerate() {
                    lane_runs[ri].reqs.push(RunRequest { slot, amount: r.amounts[lane_idx] });
                }
            }

            let fan = runs[0].len();
            if self
                .lanes
                .iter()
                .any(|l| !l.shard_executor().expect("checked live").should_parallelize(fan))
            {
                if fan >= 2 {
                    for lane in &self.lanes {
                        lane.exec_stats().note_fallback();
                    }
                }
                for slot in i..k {
                    if decisions[slot].is_none() {
                        let r = &reqs[slot];
                        decisions[slot] =
                            Some(self.admit_one(availability, r.requester, &r.amounts));
                    }
                }
                break;
            }

            let mut outcomes_by_lane = Vec::with_capacity(rk);
            for (lane, lane_runs) in self.lanes.iter().zip(runs) {
                outcomes_by_lane
                    .push(lane.shard_executor().expect("checked live").run_fan(lane_runs));
            }

            // Cutoff: earliest stall across all lanes — and, with more
            // than one lane, the earliest per-lane rejection too (module
            // docs), plus any slot whose verdict is state-dependent
            // (`forced_cut`). A single lane keeps the single-resource
            // rule so the degeneracy contract holds structurally.
            let mut cut: Option<usize> = forced_cut;
            let mut note = |s: usize| cut = Some(cut.map_or(s, |c| c.min(s)));
            for outcomes in &outcomes_by_lane {
                for o in outcomes {
                    if let Some(s) = o.stalled_at {
                        note(s);
                    }
                    if rk > 1 {
                        for step in &o.steps {
                            if step.result.is_err() {
                                note(step.slot);
                            }
                        }
                    }
                }
            }
            let cutoff = cut.unwrap_or(k);

            // Steps before the cutoff are final in every lane. Sort by
            // (slot, lane) and commit in global slot order, lane by
            // lane — the exact state evolution of one-by-one admission.
            let mut accepted: Vec<(usize, usize, usize, _)> = Vec::new();
            for (lane_idx, outcomes) in outcomes_by_lane.into_iter().enumerate() {
                for outcome in outcomes {
                    for step in outcome.steps {
                        if step.slot < cutoff {
                            accepted.push((step.slot, lane_idx, outcome.group, step.result));
                        }
                    }
                }
            }
            accepted.sort_by_key(|&(slot, lane, _, _)| (slot, lane));
            let mut per_slot: Vec<Vec<(usize, _)>> = (0..k).map(|_| Vec::new()).collect();
            let mut slots_in_order: Vec<usize> = Vec::new();
            for (slot, _lane, group, result) in accepted {
                if per_slot[slot].is_empty() {
                    slots_in_order.push(slot);
                }
                per_slot[slot].push((group, result));
            }
            for slot in slots_in_order {
                let entries = std::mem::take(&mut per_slot[slot]);
                debug_assert_eq!(entries.len(), rk, "one step per lane below the cutoff");
                let r = &reqs[slot];
                let mut lane_allocs: Vec<Allocation> = Vec::with_capacity(rk);
                let mut failure: Option<SchedError> = None;
                for (lane_idx, (group, result)) in entries.into_iter().enumerate() {
                    match result {
                        Ok((local, theta)) => {
                            let mut draws = vec![0.0; n];
                            for (&m, d) in self.lanes[0].groups()[group].iter().zip(local) {
                                draws[m] += d;
                            }
                            lane_allocs.push(Allocation {
                                requester: r.requester,
                                amount: r.amounts[lane_idx],
                                draws,
                                theta,
                            });
                        }
                        Err(e) => {
                            // Only reachable with a single lane (multi
                            // lanes cap the cutoff at rejections); the
                            // worker never advanced availability, so the
                            // rejection commits without state effect.
                            debug_assert_eq!(rk, 1, "lane rejections cap the cutoff when rk > 1");
                            failure = Some(tag(e, self.names[lane_idx]));
                        }
                    }
                }
                decisions[slot] = Some(match failure {
                    Some(e) => Err(e),
                    None => {
                        for (avail, alloc) in availability.iter_mut().zip(&lane_allocs) {
                            for (v, d) in avail.iter_mut().zip(&alloc.draws) {
                                *v = (*v - *d).max(0.0);
                            }
                        }
                        Ok(MultiAllocation { lanes: lane_allocs })
                    }
                });
            }

            if cutoff < k {
                // The cutoff slot needs global state (a coarse LP) or a
                // fresh conjunction verdict; decide it through the
                // ordinary one-by-one path.
                let r = &reqs[cutoff];
                decisions[cutoff] = Some(self.admit_one(availability, r.requester, &r.amounts));
                i = cutoff + 1;
            } else {
                i = k;
            }
        }
        decisions.into_iter().map(|d| d.expect("every slot decided")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreements_flow::AgreementMatrix;

    /// 2 groups of 3; groups share 50% each way (the batch.rs economy).
    fn lane(parallel: bool) -> HierarchicalScheduler {
        let groups = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let mut inter = AgreementMatrix::zeros(2);
        inter.set(0, 1, 0.5).unwrap();
        inter.set(1, 0, 0.5).unwrap();
        let mut s = HierarchicalScheduler::new(groups, &inter, 1).unwrap();
        if parallel {
            s.set_parallel_fine(true);
        }
        s
    }

    fn multi(parallel: bool, rk: usize) -> MultiAdmission {
        let names: Vec<&'static str> = STANDARD_RESOURCES[..rk].to_vec();
        MultiAdmission::new(names, (0..rk).map(|_| lane(parallel)).collect()).unwrap()
    }

    #[test]
    fn rejection_names_the_binding_resource() {
        let m = multi(false, 3);
        // Plenty of CPU and storage; bandwidth pool nearly empty.
        let mut avail = vec![vec![8.0; 6], vec![0.1; 6], vec![8.0; 6]];
        let err = m.admit_one(&mut avail, 0, &[2.0, 2.0, 2.0]).unwrap_err();
        match err {
            SchedError::InsufficientCapacity { resource, .. } => {
                assert_eq!(resource, Some("bandwidth"));
            }
            other => panic!("expected capacity rejection, got {other:?}"),
        }
        // Rejection left every lane untouched (atomicity).
        assert!(avail[0].iter().all(|&v| v == 8.0));
        assert!(avail[2].iter().all(|&v| v == 8.0));
    }

    #[test]
    fn grant_commits_every_lane() {
        let m = multi(false, 2);
        let mut avail = vec![vec![4.0; 6], vec![4.0; 6]];
        let got = m.admit_one(&mut avail, 1, &[3.0, 1.0]).unwrap();
        assert_eq!(got.lanes.len(), 2);
        assert!((got.total() - 4.0).abs() < 1e-9);
        let cpu_left: f64 = avail[0].iter().sum();
        let bw_left: f64 = avail[1].iter().sum();
        assert!((cpu_left - 21.0).abs() < 1e-9, "cpu pool {cpu_left}");
        assert!((bw_left - 23.0).abs() < 1e-9, "bandwidth pool {bw_left}");
    }

    #[test]
    fn batch_is_bit_identical_to_one_by_one() {
        let reqs = vec![
            MultiAdmissionRequest { requester: 0, amounts: vec![2.0, 1.0] },
            MultiAdmissionRequest { requester: 4, amounts: vec![3.0, 0.5] },
            MultiAdmissionRequest { requester: 1, amounts: vec![4.5, 0.5] },
            // Overflows group 0's CPU pool: coarse path.
            MultiAdmissionRequest { requester: 2, amounts: vec![9.0, 0.1] },
            MultiAdmissionRequest { requester: 9, amounts: vec![1.0, 1.0] },
            MultiAdmissionRequest { requester: 5, amounts: vec![-1.0, 1.0] },
            MultiAdmissionRequest { requester: 5, amounts: vec![1.0] },
            // Bandwidth-bound: CPU fits, lane 1 must refuse.
            MultiAdmissionRequest { requester: 3, amounts: vec![1.0, 50.0] },
            MultiAdmissionRequest { requester: 0, amounts: vec![100.0, 0.0] },
            MultiAdmissionRequest { requester: 5, amounts: vec![0.0, 0.0] },
        ];
        let start = vec![vec![4.0, 3.0, 2.0, 8.0, 8.0, 8.0], vec![2.0, 2.0, 2.0, 2.0, 2.0, 2.0]];

        let solo = multi(false, 2);
        let mut solo_avail = start.clone();
        let solo_decisions: Vec<_> =
            reqs.iter().map(|r| solo.admit_one(&mut solo_avail, r.requester, &r.amounts)).collect();

        let batched = multi(true, 2);
        let mut batch_avail = start;
        let batch_decisions = batched.admit_batch(&mut batch_avail, &reqs);

        for (lane, (a, b)) in solo_avail.iter().zip(&batch_avail).enumerate() {
            assert!(
                a.iter().zip(b.iter()).all(|(x, y)| x.to_bits() == y.to_bits()),
                "lane {lane} availability differs: {a:?} vs {b:?}"
            );
        }
        for (slot, (a, b)) in solo_decisions.iter().zip(&batch_decisions).enumerate() {
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    for (r, (p, q)) in x.lanes.iter().zip(&y.lanes).enumerate() {
                        assert_eq!(p.amount.to_bits(), q.amount.to_bits(), "slot {slot} lane {r}");
                        assert_eq!(p.theta.to_bits(), q.theta.to_bits(), "slot {slot} lane {r}");
                        assert!(
                            p.draws.iter().zip(&q.draws).all(|(u, v)| u.to_bits() == v.to_bits()),
                            "slot {slot} lane {r}: {:?} vs {:?}",
                            p.draws,
                            q.draws
                        );
                    }
                }
                (Err(x), Err(y)) => assert_eq!(format!("{x:?}"), format!("{y:?}"), "slot {slot}"),
                other => panic!("slot {slot}: decision kind differs: {other:?}"),
            }
        }
    }

    #[test]
    fn mismatched_partitions_are_refused() {
        let a = lane(false);
        let groups = vec![vec![0, 1], vec![2, 3, 4, 5]];
        let mut inter = AgreementMatrix::zeros(2);
        inter.set(0, 1, 0.5).unwrap();
        let b = HierarchicalScheduler::new(groups, &inter, 1).unwrap();
        assert!(matches!(
            MultiAdmission::new(vec!["cpu", "bandwidth"], vec![a, b]),
            Err(SchedError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn flat_multi_solver_names_binding_lane() {
        use agreements_flow::TransitiveFlow;
        let mut s = AgreementMatrix::zeros(2);
        s.set(0, 1, 0.5).unwrap();
        s.set(1, 0, 0.5).unwrap();
        let flow = TransitiveFlow::compute(&s, 1);
        let states = vec![
            SystemState::new(flow.clone(), None, vec![5.0, 5.0]).unwrap(),
            SystemState::new(flow, None, vec![0.5, 0.5]).unwrap(),
        ];
        let mut solver = MultiSolver::reduced(vec!["cpu", "bandwidth"]);
        let got = solver.allocate(&states, 0, &[2.0, 0.5]).unwrap();
        assert_eq!(got.lanes.len(), 2);
        let err = solver.allocate(&states, 0, &[2.0, 3.0]).unwrap_err();
        match err {
            SchedError::InsufficientCapacity { resource, .. } => {
                assert_eq!(resource, Some("bandwidth"));
            }
            other => panic!("expected capacity rejection, got {other:?}"),
        }
    }
}
