//! Hierarchical multigrid allocation (paper §3.2), scaled out.
//!
//! For the "hierarchical" agreement taxonomy — complete sharing inside
//! groups, sparse agreements between groups — the paper suggests a
//! multigrid refinement: try the requester's own group first; if it cannot
//! cover the request, solve a *coarse* LP over group aggregates to split
//! the draw across groups, then a *fine* LP inside each contributing group
//! to pick the actual owners. This keeps each LP at group size rather
//! than system size.
//!
//! This module is the scale-out revision of that scheduler:
//!
//! - **Auto-partitioning** ([`HierarchicalScheduler::auto`]): the partition
//!   and the aggregate inter-group matrix are derived straight from the
//!   `AgreementMatrix` by [`agreements_flow::auto_partition`] — no hand
//!   partitions at n = 1000.
//! - **Pooled fine solvers**: each group owns a persistent
//!   [`SimplexWorkspace`] plus a cached standard-form skeleton of its
//!   min-max refinement LP (the PR 1 pattern), so the steady state
//!   performs no model construction and no heap allocation beyond the
//!   per-group draw vector.
//! - **Parallel fine solves** ([`HierarchicalScheduler::set_parallel_fine`]
//!   / [`HierarchicalScheduler::set_parallel_auto`]): contributing groups
//!   refine concurrently on the persistent [`crate::executor::ShardExecutor`]
//!   workers (warm solvers, no per-solve thread spawn), merged in
//!   ascending group order. Groups are disjoint and per-group solves are
//!   cold-started and deterministic, so parallel results are bit-identical
//!   to sequential — property-tested in `tests/proptest_scale.rs`. Auto
//!   mode measures a per-construction break-even and falls back to the
//!   sequential loop (counted in [`ExecutorStats`]) whenever the fan-out
//!   would not pay; on a 1-core host it never builds an executor at all.
//! - **Incremental coarse flow**: the group-level transitive flow is
//!   maintained through [`IncrementalFlow`], so an agreement renegotiation
//!   ([`HierarchicalScheduler::set_inter`]) repairs only the dirty rows
//!   instead of recomputing the closure.

use crate::error::SchedError;
use crate::executor::{ExecutorStats, GroupSolver, ShardExecutor};
use crate::lp_model::{solve_allocation, Formulation};
use crate::state::{Allocation, SystemState};
use agreements_flow::partition::{auto_partition, PartitionOptions};
use agreements_flow::{AgreementMatrix, IncrementalFlow};
use agreements_lp::{LpError, SimplexOptions};
use agreements_telemetry::{HistKind, Telemetry};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// How fine refinement chooses between the sequential loop and the
/// shard executor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum FineMode {
    /// No executor; the sequential loop, always.
    Sequential,
    /// Executor always consulted, no break-even gate (tests, opt-in).
    Force,
    /// Executor built only when the host has ≥ 2 cores; every fan-out is
    /// gated on the measured break-even.
    Auto,
}

/// Hierarchical scheduler: a partition of principals into groups plus the
/// group-level agreement matrix (see module docs).
pub struct HierarchicalScheduler {
    groups: Vec<Vec<usize>>,
    /// Which group each principal belongs to.
    member_of: Vec<usize>,
    /// Group-level transitive flow, incrementally maintained across
    /// [`Self::set_inter`] renegotiations. Behind a mutex because
    /// `snapshot()` caches through `&mut self` while `allocate` takes
    /// `&self` (the GRM serves through a shared handle).
    coarse: Mutex<IncrementalFlow>,
    /// One pooled fine solver per group for the sequential path; the
    /// executor workers own their *own* warm solvers, so these never
    /// contend with a fan-out.
    fine: Vec<Mutex<GroupSolver>>,
    opts: SimplexOptions,
    /// Persistent shard executor; present in Force mode and in Auto mode
    /// on multi-core hosts.
    executor: Option<ShardExecutor>,
    mode: FineMode,
    /// Fan-out/fallback counters shared with the executor; surfaced
    /// through the GRM as `executor_fallbacks_sequential`.
    exec_stats: Arc<ExecutorStats>,
    /// Opt-in batch-scoped warm starts for executor runs (default off);
    /// survives executor rebuilds from the `set_parallel_*` switches.
    warm_runs: bool,
    telemetry: Telemetry,
}

impl fmt::Debug for HierarchicalScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HierarchicalScheduler")
            .field("groups", &self.groups)
            .field("mode", &self.mode)
            .field("workers", &self.executor.as_ref().map(ShardExecutor::num_workers))
            .finish_non_exhaustive()
    }
}

impl HierarchicalScheduler {
    /// Build from a partition and the inter-group agreement matrix.
    /// `inter.n()` must equal `groups.len()`; groups must partition
    /// `0..n` exactly and be non-empty.
    pub fn new(
        groups: Vec<Vec<usize>>,
        inter: &AgreementMatrix,
        level: usize,
    ) -> Result<Self, SchedError> {
        if inter.n() != groups.len() {
            return Err(SchedError::DimensionMismatch { expected: groups.len(), got: inter.n() });
        }
        let n: usize = groups.iter().map(Vec::len).sum();
        let mut member_of = vec![usize::MAX; n];
        for (g, members) in groups.iter().enumerate() {
            if members.is_empty() {
                return Err(SchedError::EmptyGroup { group: g });
            }
            for &m in members {
                if m >= n || member_of[m] != usize::MAX {
                    return Err(SchedError::UnknownPrincipal { index: m, n });
                }
                member_of[m] = g;
            }
        }
        if member_of.contains(&usize::MAX) {
            return Err(SchedError::DimensionMismatch { expected: n, got: 0 });
        }
        let coarse = Mutex::new(IncrementalFlow::new(inter.clone(), level));
        let fine = groups.iter().map(|_| Mutex::new(GroupSolver::new())).collect();
        Ok(HierarchicalScheduler {
            groups,
            member_of,
            coarse,
            fine,
            opts: SimplexOptions::default(),
            executor: None,
            mode: FineMode::Sequential,
            exec_stats: Arc::new(ExecutorStats::default()),
            warm_runs: false,
            telemetry: Telemetry::default(),
        })
    }

    /// Build directly from an agreement economy: derive the partition and
    /// the aggregate inter-group matrix with
    /// [`agreements_flow::auto_partition`], then construct the scheduler
    /// over them. `level` is the coarse transitivity cap.
    pub fn auto(
        s: &AgreementMatrix,
        opts: &PartitionOptions,
        level: usize,
    ) -> Result<Self, SchedError> {
        let p = auto_partition(s, opts).map_err(SchedError::Flow)?;
        Self::new(p.groups, &p.inter, level)
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The partition (groups ordered as constructed, members ascending
    /// when built via [`Self::auto`]).
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// Which group `principal` belongs to.
    pub fn group_of(&self, principal: usize) -> Option<usize> {
        self.member_of.get(principal).copied()
    }

    /// Force parallel fine solves on the persistent shard executor (or
    /// tear the executor down with `false`). Forced mode skips the
    /// break-even gate — every multi-group refinement fans out — and is
    /// meant for tests and explicit opt-in; production callers should
    /// prefer [`Self::set_parallel_auto`]. Results are bit-identical
    /// either way.
    pub fn set_parallel_fine(&mut self, on: bool) {
        if on {
            self.mode = FineMode::Force;
            let ex = ShardExecutor::force(
                self.groups.len(),
                self.opts.clone(),
                self.telemetry.clone(),
                self.exec_stats.clone(),
            );
            ex.set_warm_runs(self.warm_runs);
            self.executor = Some(ex);
        } else {
            self.mode = FineMode::Sequential;
            self.executor = None;
        }
    }

    /// Enable parallel fine solves only where they can pay: builds the
    /// executor when `std::thread::available_parallelism()` reports ≥ 2
    /// cores (never on a 1-core host), and gates every fan-out on the
    /// break-even measured at construction. Below break-even the
    /// sequential loop runs and the fallback is counted in
    /// [`Self::executor_fallbacks`].
    pub fn set_parallel_auto(&mut self) {
        self.mode = FineMode::Auto;
        let sizes: Vec<usize> = self.groups.iter().map(Vec::len).collect();
        self.executor = ShardExecutor::auto(
            self.groups.len(),
            &sizes,
            self.opts.clone(),
            self.telemetry.clone(),
            self.exec_stats.clone(),
        );
        if let Some(ex) = &self.executor {
            ex.set_warm_runs(self.warm_runs);
        }
    }

    /// Opt batched executor runs in (or out) of batch-scoped warm-started
    /// bases. Off by default: cold-base batching is bit-identical to
    /// one-by-one admission, which is the contract every determinism
    /// oracle in the repo asserts. With warm runs on, a run's decisions
    /// agree with the cold path to solver tolerance (verdicts and grant
    /// amounts identical, draw vectors within LP convergence slack) and
    /// replay deterministically — the trade documented in DESIGN.md §14.
    pub fn set_warm_runs(&mut self, on: bool) {
        self.warm_runs = on;
        if let Some(ex) = &self.executor {
            ex.set_warm_runs(on);
        }
    }

    /// Whether batched executor runs currently use warm-started bases.
    pub fn warm_runs(&self) -> bool {
        self.warm_runs
    }

    /// Whether a live shard executor backs fine refinement.
    pub fn parallel_fine(&self) -> bool {
        self.executor.is_some()
    }

    /// Times a parallel-capable configuration fell back to the
    /// sequential loop (no executor on this host, or below break-even).
    pub fn executor_fallbacks(&self) -> u64 {
        self.exec_stats.fallbacks_sequential()
    }

    /// Number of principals across all groups.
    pub fn num_principals(&self) -> usize {
        self.member_of.len()
    }

    pub(crate) fn fine_mode(&self) -> FineMode {
        self.mode
    }

    pub(crate) fn shard_executor(&self) -> Option<&ShardExecutor> {
        self.executor.as_ref()
    }

    pub(crate) fn exec_stats(&self) -> &Arc<ExecutorStats> {
        &self.exec_stats
    }

    /// Attach a telemetry plane: coarse/fine LP solve spans land in the
    /// [`HistKind::LpSolveSeconds`] histogram, and `hier.home_hits` /
    /// `hier.coarse_solves` / `hier.fine_solves` count path traffic.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        if let Some(ex) = &self.executor {
            ex.set_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    /// Renegotiate one inter-group agreement: `from_group` now shares
    /// `share` of its aggregate with `to_group`. The coarse flow is
    /// repaired incrementally; returns the number of flow rows recomputed.
    pub fn set_inter(
        &mut self,
        from_group: usize,
        to_group: usize,
        share: f64,
    ) -> Result<usize, SchedError> {
        self.coarse.get_mut().set(from_group, to_group, share).map_err(SchedError::Flow)
    }

    /// Allocate `x` units to `requester` given current per-principal
    /// availability. Tries the requester's group alone first (fine LP
    /// only); on shortfall, runs the coarse LP over group aggregates and
    /// refines each group's share.
    pub fn allocate(
        &self,
        availability: &[f64],
        requester: usize,
        x: f64,
    ) -> Result<Allocation, SchedError> {
        let n = self.member_of.len();
        if availability.len() != n {
            return Err(SchedError::DimensionMismatch { expected: n, got: availability.len() });
        }
        if requester >= n {
            return Err(SchedError::UnknownPrincipal { index: requester, n });
        }
        if !x.is_finite() || x < 0.0 {
            return Err(SchedError::InvalidRequest { amount: x });
        }
        let home = self.member_of[requester];
        let home_avail: f64 = self.groups[home].iter().map(|&m| availability[m]).sum();

        let mut draws = vec![0.0; n];
        if home_avail + 1e-12 >= x {
            // Fine LP inside the home group only.
            self.telemetry.add("hier.home_hits", 1);
            if x > 0.0 {
                self.refine_group(home, availability, x.min(home_avail), &mut draws)?;
            }
            // Only home members hold non-zero draws, and every other
            // entry is exactly +0.0 (freshly zeroed, never written), so
            // folding over the members is bit-identical to folding over
            // the full vector — without the O(n) scan on the fast path.
            let theta = self.groups[home].iter().map(|&m| draws[m]).fold(0.0, f64::max);
            return Ok(Allocation { requester, amount: x, draws, theta });
        }

        // Coarse LP over group aggregates: the home group "requests" the
        // total, drawing on other groups via inter-group agreements.
        let g = self.groups.len();
        let group_avail: Vec<f64> =
            (0..g).map(|gi| self.groups[gi].iter().map(|&m| availability[m]).sum()).collect();
        let coarse_flow = self.coarse.lock().snapshot();
        let coarse_state = SystemState::new(coarse_flow, None, group_avail.clone())?;
        self.telemetry.add("hier.coarse_solves", 1);
        let span = self.telemetry.start();
        let coarse = solve_allocation(&coarse_state, home, x, Formulation::Reduced, &self.opts)
            .map_err(|e| match e {
                SchedError::InsufficientCapacity { capacity, .. } => {
                    SchedError::InsufficientCapacity {
                        requester,
                        capacity,
                        requested: x,
                        resource: None,
                    }
                }
                other => other,
            })?;
        self.telemetry.stop(HistKind::LpSolveSeconds, span);

        // Refine each group's share among its members. Shares are clamped
        // to the group's availability: the coarse optimum can overshoot it
        // by a rounding epsilon, which must not read as infeasibility.
        let contributing: Vec<(usize, f64)> = coarse
            .draws
            .iter()
            .enumerate()
            .filter(|&(_, &share)| share > 1e-12)
            .map(|(gi, &share)| (gi, share.min(group_avail[gi])))
            .collect();
        match &self.executor {
            Some(ex) if ex.should_parallelize(contributing.len()) => {
                self.refine_executor(&contributing, availability, &mut draws)?;
            }
            _ => {
                if self.mode != FineMode::Sequential && contributing.len() >= 2 {
                    self.exec_stats.note_fallback();
                }
                for &(gi, share) in &contributing {
                    self.refine_group(gi, availability, share, &mut draws)?;
                }
            }
        }
        let theta = coarse.theta;
        Ok(Allocation { requester, amount: x, draws, theta })
    }

    /// Split `amount` among members of group `gi`, minimizing the largest
    /// single draw (complete sharing inside a group makes every member's
    /// availability reachable), accumulating into the global draw vector.
    fn refine_group(
        &self,
        gi: usize,
        availability: &[f64],
        amount: f64,
        draws: &mut [f64],
    ) -> Result<(), SchedError> {
        let local = self.solve_fine(gi, availability, amount)?;
        for (&m, d) in self.groups[gi].iter().zip(local) {
            draws[m] += d;
        }
        Ok(())
    }

    /// Refine all contributing groups on the persistent shard executor,
    /// merging results in ascending group order (the fan-out returns
    /// replies keyed by slot, so merge order is input order). Each group
    /// is solved by the worker that owns its warm solver; groups are
    /// disjoint and solves are cold-started, so this is bit-identical to
    /// the sequential loop (property-tested). The workers record the
    /// `hier.fine_solves` counter and the LP solve span, mirroring
    /// [`Self::solve_fine`].
    fn refine_executor(
        &self,
        contributing: &[(usize, f64)],
        availability: &[f64],
        draws: &mut [f64],
    ) -> Result<(), SchedError> {
        let ex = self.executor.as_ref().expect("refine_executor requires an executor");
        let jobs: Vec<(usize, Vec<f64>, f64)> = contributing
            .iter()
            .map(|&(gi, share)| {
                let mavail = self.groups[gi].iter().map(|&m| availability[m]).collect();
                (gi, mavail, share)
            })
            .collect();
        let results = ex.solve_fan(jobs);
        for (&(gi, share), result) in contributing.iter().zip(results) {
            let local = result.map_err(|e| match e {
                LpError::Infeasible { .. } => SchedError::InsufficientCapacity {
                    requester: self.groups[gi][0],
                    capacity: self.groups[gi].iter().map(|&m| availability[m]).sum(),
                    requested: share,
                    resource: None,
                },
                other => SchedError::Lp(other),
            })?;
            for (&m, d) in self.groups[gi].iter().zip(local) {
                draws[m] += d;
            }
        }
        Ok(())
    }

    /// One group's fine solve through its pooled workspace; maps LP
    /// infeasibility to `InsufficientCapacity` for that group.
    fn solve_fine(
        &self,
        gi: usize,
        availability: &[f64],
        amount: f64,
    ) -> Result<Vec<f64>, SchedError> {
        let members = &self.groups[gi];
        let mavail: Vec<f64> = members.iter().map(|&m| availability[m]).collect();
        self.telemetry.add("hier.fine_solves", 1);
        let span = self.telemetry.start();
        let solved = self.fine[gi].lock().solve(&mavail, amount, &self.opts);
        self.telemetry.stop(HistKind::LpSolveSeconds, span);
        solved.map_err(|e| match e {
            LpError::Infeasible { .. } => SchedError::InsufficientCapacity {
                requester: members[0],
                capacity: mavail.iter().sum(),
                requested: amount,
                resource: None,
            },
            other => SchedError::Lp(other),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-7;

    /// 2 groups of 3; groups share 50% with each other.
    fn sched() -> HierarchicalScheduler {
        let groups = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let mut inter = AgreementMatrix::zeros(2);
        inter.set(0, 1, 0.5).unwrap();
        inter.set(1, 0, 0.5).unwrap();
        HierarchicalScheduler::new(groups, &inter, 1).unwrap()
    }

    #[test]
    fn home_group_satisfies_small_requests() {
        let s = sched();
        let avail = vec![4.0, 4.0, 4.0, 100.0, 100.0, 100.0];
        let a = s.allocate(&avail, 0, 9.0).unwrap();
        // All 9 from group 0, balanced: 3 each.
        for m in 0..3 {
            assert!((a.draws[m] - 3.0).abs() < EPS, "{:?}", a.draws);
        }
        for m in 3..6 {
            assert_eq!(a.draws[m], 0.0);
        }
    }

    #[test]
    fn overflow_draws_from_other_group() {
        let s = sched();
        let avail = vec![2.0, 2.0, 2.0, 10.0, 10.0, 10.0];
        let a = s.allocate(&avail, 0, 12.0).unwrap();
        let home: f64 = a.draws[..3].iter().sum();
        let away: f64 = a.draws[3..].iter().sum();
        assert!((home + away - 12.0).abs() < EPS);
        assert!(away > 0.0, "needs remote group: {:?}", a.draws);
        // Inter-group agreement caps the remote draw at 50% of 30 = 15.
        assert!(away <= 15.0 + EPS);
    }

    #[test]
    fn inter_group_cap_enforced() {
        let s = sched();
        // Home group empty; remote has 10 total; 50% shared -> reach 5.
        let avail = vec![0.0, 0.0, 0.0, 4.0, 3.0, 3.0];
        assert!(s.allocate(&avail, 0, 6.0).is_err());
        let a = s.allocate(&avail, 0, 5.0).unwrap();
        let away: f64 = a.draws[3..].iter().sum();
        assert!((away - 5.0).abs() < EPS);
        // Balanced within the remote group.
        assert!(a.draws[3..].iter().cloned().fold(0.0, f64::max) < 2.0 + EPS);
    }

    #[test]
    fn partition_validation() {
        let mut inter = AgreementMatrix::zeros(2);
        inter.set(0, 1, 0.5).unwrap();
        // Overlapping member.
        assert!(HierarchicalScheduler::new(vec![vec![0, 1], vec![1, 2]], &inter, 1).is_err());
        // Wrong matrix size.
        let inter3 = AgreementMatrix::zeros(3);
        assert!(HierarchicalScheduler::new(vec![vec![0], vec![1]], &inter3, 1).is_err());
    }

    #[test]
    fn bad_inputs_rejected() {
        let s = sched();
        let avail = vec![1.0; 6];
        assert!(s.allocate(&avail[..5], 0, 1.0).is_err());
        assert!(s.allocate(&avail, 9, 1.0).is_err());
        assert!(s.allocate(&avail, 0, f64::INFINITY).is_err());
    }

    #[test]
    fn zero_request_is_empty() {
        let s = sched();
        let avail = vec![1.0; 6];
        let a = s.allocate(&avail, 2, 0.0).unwrap();
        assert!(a.draws.iter().all(|&d| d == 0.0));
    }

    #[test]
    fn auto_constructor_matches_hand_partition() {
        // Two complete blocks with a uniform 25% cross share: auto must
        // find the hand partition and allocate identically.
        let mut s = AgreementMatrix::zeros(6);
        for g in [0usize, 3] {
            for i in g..g + 3 {
                for j in g..g + 3 {
                    if i != j {
                        s.set(i, j, 1.0).unwrap();
                    }
                }
            }
        }
        for i in 0..3 {
            for j in 3..6 {
                s.set(i, j, 0.25).unwrap();
                s.set(j, i, 0.25).unwrap();
            }
        }
        let auto = HierarchicalScheduler::auto(&s, &PartitionOptions::default(), 1).unwrap();
        assert_eq!(auto.groups(), &[vec![0, 1, 2], vec![3, 4, 5]]);

        let groups = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let mut inter = AgreementMatrix::zeros(2);
        inter.set(0, 1, 0.25).unwrap();
        inter.set(1, 0, 0.25).unwrap();
        let hand = HierarchicalScheduler::new(groups, &inter, 1).unwrap();

        let avail = vec![1.0, 2.0, 0.5, 8.0, 8.0, 8.0];
        let a = auto.allocate(&avail, 0, 5.0).unwrap();
        let b = hand.allocate(&avail, 0, 5.0).unwrap();
        assert_eq!(a.draws, b.draws);
        assert_eq!(a.theta, b.theta);
    }

    #[test]
    fn set_inter_renegotiation_takes_effect() {
        let mut s = sched();
        let avail = vec![0.0, 0.0, 0.0, 4.0, 3.0, 3.0];
        // 50% of 10 reachable.
        assert!(s.allocate(&avail, 0, 5.0).is_ok());
        // Revoke the agreement: nothing reachable across groups.
        let dirty = s.set_inter(1, 0, 0.0).unwrap();
        assert!(dirty > 0);
        assert!(s.allocate(&avail, 0, 1.0).is_err());
        // Re-grant at 80%: 8 reachable now.
        s.set_inter(1, 0, 0.8).unwrap();
        let a = s.allocate(&avail, 0, 8.0).unwrap();
        assert!((a.draws[3..].iter().sum::<f64>() - 8.0).abs() < EPS);
    }

    #[test]
    fn parallel_fine_is_bit_identical() {
        let mut par = sched();
        par.set_parallel_fine(true);
        let seq = sched();
        let avail = vec![2.0, 1.0, 0.5, 10.0, 7.0, 3.0];
        let a = seq.allocate(&avail, 0, 10.0).unwrap();
        let b = par.allocate(&avail, 0, 10.0).unwrap();
        assert!(a.draws.iter().zip(&b.draws).all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_eq!(a.theta.to_bits(), b.theta.to_bits());
    }

    #[test]
    fn auto_mode_is_safe_and_bit_identical_on_any_host() {
        let mut auto = sched();
        auto.set_parallel_auto();
        // On a 1-core host the executor must not exist; either way the
        // results match sequential bit for bit.
        if std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1) < 2 {
            assert!(!auto.parallel_fine(), "1-core host must stay sequential");
        }
        let seq = sched();
        let avail = vec![2.0, 1.0, 0.5, 10.0, 7.0, 3.0];
        let a = seq.allocate(&avail, 0, 10.0).unwrap();
        let b = auto.allocate(&avail, 0, 10.0).unwrap();
        assert!(a.draws.iter().zip(&b.draws).all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_eq!(a.theta.to_bits(), b.theta.to_bits());
    }

    #[test]
    fn empty_group_rejected() {
        let mut inter = AgreementMatrix::zeros(2);
        inter.set(0, 1, 0.5).unwrap();
        let err = HierarchicalScheduler::new(vec![vec![0, 1], vec![]], &inter, 1).unwrap_err();
        assert!(matches!(err, SchedError::EmptyGroup { group: 1 }));
    }

    #[test]
    fn repeated_allocations_reuse_fine_skeletons() {
        // Smoke the skeleton-currency path: same pattern of exhausted
        // members across calls must keep results stable.
        let s = sched();
        let mut avail = vec![5.0, 5.0, 5.0, 5.0, 5.0, 5.0];
        for _ in 0..4 {
            let a = s.allocate(&avail, 1, 1.5).unwrap();
            for (v, d) in avail.iter_mut().zip(&a.draws) {
                *v -= d;
            }
            assert!((a.draws.iter().sum::<f64>() - 1.5).abs() < EPS);
        }
    }
}
