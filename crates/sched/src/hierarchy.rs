//! Hierarchical multigrid allocation (paper §3.2).
//!
//! For the "hierarchical" agreement taxonomy — complete sharing inside
//! groups, sparse agreements between groups — the paper suggests a
//! multigrid refinement: try the requester's own group first; if it cannot
//! cover the request, solve a *coarse* LP over group aggregates to split
//! the draw across groups, then a *fine* LP inside each contributing group
//! to pick the actual owners. This keeps each LP at group size rather
//! than system size.

use crate::error::SchedError;
use crate::lp_model::{solve_allocation, Formulation};
use crate::state::{Allocation, SystemState};
use agreements_flow::{AgreementMatrix, TransitiveFlow};
use agreements_lp::{Problem, Relation, Sense, SimplexOptions, VarId};

/// Hierarchical scheduler: a partition of principals into groups plus the
/// group-level agreement matrix.
#[derive(Debug, Clone)]
pub struct HierarchicalScheduler {
    groups: Vec<Vec<usize>>,
    /// Which group each principal belongs to.
    member_of: Vec<usize>,
    /// Group-level transitive flow (from the inter-group agreement
    /// matrix).
    coarse_flow: TransitiveFlow,
    opts: SimplexOptions,
}

impl HierarchicalScheduler {
    /// Build from a partition and the inter-group agreement matrix.
    /// `inter.n()` must equal `groups.len()`; groups must partition
    /// `0..n` exactly.
    pub fn new(
        groups: Vec<Vec<usize>>,
        inter: &AgreementMatrix,
        level: usize,
    ) -> Result<Self, SchedError> {
        if inter.n() != groups.len() {
            return Err(SchedError::DimensionMismatch { expected: groups.len(), got: inter.n() });
        }
        let n: usize = groups.iter().map(Vec::len).sum();
        let mut member_of = vec![usize::MAX; n];
        for (g, members) in groups.iter().enumerate() {
            for &m in members {
                if m >= n || member_of[m] != usize::MAX {
                    return Err(SchedError::UnknownPrincipal { index: m, n });
                }
                member_of[m] = g;
            }
        }
        if member_of.contains(&usize::MAX) {
            return Err(SchedError::DimensionMismatch { expected: n, got: 0 });
        }
        let coarse_flow = TransitiveFlow::compute(inter, level);
        Ok(HierarchicalScheduler {
            groups,
            member_of,
            coarse_flow,
            opts: SimplexOptions::default(),
        })
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Allocate `x` units to `requester` given current per-principal
    /// availability. Tries the requester's group alone first (fine LP
    /// only); on shortfall, runs the coarse LP over group aggregates and
    /// refines each group's share.
    pub fn allocate(
        &self,
        availability: &[f64],
        requester: usize,
        x: f64,
    ) -> Result<Allocation, SchedError> {
        let n = self.member_of.len();
        if availability.len() != n {
            return Err(SchedError::DimensionMismatch { expected: n, got: availability.len() });
        }
        if requester >= n {
            return Err(SchedError::UnknownPrincipal { index: requester, n });
        }
        if !x.is_finite() || x < 0.0 {
            return Err(SchedError::InvalidRequest { amount: x });
        }
        let home = self.member_of[requester];
        let home_avail: f64 = self.groups[home].iter().map(|&m| availability[m]).sum();

        let mut draws = vec![0.0; n];
        if home_avail + 1e-12 >= x {
            // Fine LP inside the home group only.
            self.refine_group(home, availability, x, &mut draws)?;
            let theta = draws.iter().cloned().fold(0.0, f64::max);
            return Ok(Allocation { requester, amount: x, draws, theta });
        }

        // Coarse LP over group aggregates: the home group "requests" the
        // total, drawing on other groups via inter-group agreements.
        let g = self.groups.len();
        let group_avail: Vec<f64> =
            (0..g).map(|gi| self.groups[gi].iter().map(|&m| availability[m]).sum()).collect();
        let coarse_state = SystemState::new(self.coarse_flow.clone(), None, group_avail)?;
        let coarse = solve_allocation(&coarse_state, home, x, Formulation::Reduced, &self.opts)?;

        // Refine each group's share among its members.
        for (gi, &share) in coarse.draws.iter().enumerate() {
            if share > 1e-12 {
                self.refine_group(gi, availability, share, &mut draws)?;
            }
        }
        let theta = coarse.theta;
        Ok(Allocation { requester, amount: x, draws, theta })
    }

    /// Split `amount` among members of group `gi`, minimizing the largest
    /// single draw (complete sharing inside a group makes every member's
    /// availability reachable).
    fn refine_group(
        &self,
        gi: usize,
        availability: &[f64],
        amount: f64,
        draws: &mut [f64],
    ) -> Result<(), SchedError> {
        let members = &self.groups[gi];
        let mut p = Problem::new(Sense::Minimize);
        let vars: Vec<VarId> = members
            .iter()
            .map(|&m| p.add_var(&format!("d{m}"), 0.0, availability[m], 0.0))
            .collect();
        let theta = p.add_var("theta", 0.0, f64::INFINITY, 1.0);
        let sum: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(&sum, Relation::Eq, amount);
        for &v in &vars {
            p.add_constraint(&[(v, 1.0), (theta, -1.0)], Relation::Le, 0.0);
        }
        let sol = p.solve_with(&self.opts).map_err(|e| match e {
            agreements_lp::LpError::Infeasible { .. } => SchedError::InsufficientCapacity {
                requester: members[0],
                capacity: members.iter().map(|&m| availability[m]).sum(),
                requested: amount,
            },
            other => SchedError::Lp(other),
        })?;
        for (&m, &v) in members.iter().zip(&vars) {
            draws[m] += sol.value(v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-7;

    /// 2 groups of 3; groups share 50% with each other.
    fn sched() -> HierarchicalScheduler {
        let groups = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let mut inter = AgreementMatrix::zeros(2);
        inter.set(0, 1, 0.5).unwrap();
        inter.set(1, 0, 0.5).unwrap();
        HierarchicalScheduler::new(groups, &inter, 1).unwrap()
    }

    #[test]
    fn home_group_satisfies_small_requests() {
        let s = sched();
        let avail = vec![4.0, 4.0, 4.0, 100.0, 100.0, 100.0];
        let a = s.allocate(&avail, 0, 9.0).unwrap();
        // All 9 from group 0, balanced: 3 each.
        for m in 0..3 {
            assert!((a.draws[m] - 3.0).abs() < EPS, "{:?}", a.draws);
        }
        for m in 3..6 {
            assert_eq!(a.draws[m], 0.0);
        }
    }

    #[test]
    fn overflow_draws_from_other_group() {
        let s = sched();
        let avail = vec![2.0, 2.0, 2.0, 10.0, 10.0, 10.0];
        let a = s.allocate(&avail, 0, 12.0).unwrap();
        let home: f64 = a.draws[..3].iter().sum();
        let away: f64 = a.draws[3..].iter().sum();
        assert!((home + away - 12.0).abs() < EPS);
        assert!(away > 0.0, "needs remote group: {:?}", a.draws);
        // Inter-group agreement caps the remote draw at 50% of 30 = 15.
        assert!(away <= 15.0 + EPS);
    }

    #[test]
    fn inter_group_cap_enforced() {
        let s = sched();
        // Home group empty; remote has 10 total; 50% shared -> reach 5.
        let avail = vec![0.0, 0.0, 0.0, 4.0, 3.0, 3.0];
        assert!(s.allocate(&avail, 0, 6.0).is_err());
        let a = s.allocate(&avail, 0, 5.0).unwrap();
        let away: f64 = a.draws[3..].iter().sum();
        assert!((away - 5.0).abs() < EPS);
        // Balanced within the remote group.
        assert!(a.draws[3..].iter().cloned().fold(0.0, f64::max) < 2.0 + EPS);
    }

    #[test]
    fn partition_validation() {
        let mut inter = AgreementMatrix::zeros(2);
        inter.set(0, 1, 0.5).unwrap();
        // Overlapping member.
        assert!(HierarchicalScheduler::new(vec![vec![0, 1], vec![1, 2]], &inter, 1).is_err());
        // Wrong matrix size.
        let inter3 = AgreementMatrix::zeros(3);
        assert!(HierarchicalScheduler::new(vec![vec![0], vec![1]], &inter3, 1).is_err());
    }

    #[test]
    fn bad_inputs_rejected() {
        let s = sched();
        let avail = vec![1.0; 6];
        assert!(s.allocate(&avail[..5], 0, 1.0).is_err());
        assert!(s.allocate(&avail, 9, 1.0).is_err());
        assert!(s.allocate(&avail, 0, f64::INFINITY).is_err());
    }

    #[test]
    fn zero_request_is_empty() {
        let s = sched();
        let avail = vec![1.0; 6];
        let a = s.allocate(&avail, 2, 0.0).unwrap();
        assert!(a.draws.iter().all(|&d| d == 0.0));
    }
}
