//! Stateful, reusable allocation solver for the consultation hot path.
//!
//! [`crate::lp_model::solve_allocation`] is stateless: every call builds a
//! fresh [`agreements_lp::Problem`], standardizes it, and cold-starts the
//! simplex. In the simulator, the scheduler solves the *same-shaped* LP
//! thousands of times per run — only the right-hand side (the requested
//! amount) and the variable bounds (current entitlements) move between
//! consecutive requests, while the constraint matrix is a pure function of
//! the transitive flow table.
//!
//! [`AllocationSolver`] exploits that: it caches the standardized model
//! skeleton per `(n, requester, zero-bound pattern)` — rebuilt only when
//! the flow table or the pattern of exhausted owners changes — and solves
//! through a persistent [`SimplexWorkspace`], so the steady state performs
//! no model construction and no heap allocation beyond the returned draw
//! vector. With warm starting enabled the workspace additionally resumes
//! from the previous optimal basis.
//!
//! The skeleton replicates `Problem::standardize` for the reduced
//! formulation **exactly** (same columns, same coefficient placement, same
//! fixed-variable substitution), so with warm starting off the solver is
//! bit-identical to `solve_allocation` — property-tested in
//! `tests/proptest_solver.rs`. The full formulation has per-request
//! variable bounds woven through its standardization, so it is delegated
//! to the stateless path unchanged.
//!
//! `allocate_up_to` here is **single-solve**: the reachable capacity is
//! already computed for the admission check, so best-effort placement
//! clamps the demand to it and solves once, instead of the trait default's
//! solve → catch `InsufficientCapacity` → re-solve round trip. The old
//! two-solve behaviour stays available behind
//! [`AllocationSolver::set_two_solve_best_effort`] and is property-tested
//! equivalent.

use crate::admission::{admission_bound, exceeds_bound};
use crate::error::SchedError;
use crate::lp_model::{solve_full, Formulation, DRAW_EPS};
use crate::state::{Allocation, SystemState};
use agreements_flow::TransitiveFlow;
use agreements_lp::{solve_bounded_with, SimplexOptions, SimplexWorkspace};
use agreements_telemetry::{HistKind, Telemetry, TelemetryEvent};
use std::sync::Arc;

/// Cached standard-form skeleton of the reduced allocation LP for one
/// `(n, requester, zero-bound pattern, flow)` configuration.
#[derive(Debug)]
struct Skeleton {
    n: usize,
    requester: usize,
    /// Which draw variables had a zero upper bound at build time; these
    /// are substituted out (`Problem` fixes `lb == ub` variables), so the
    /// pattern is part of the model shape.
    fixed: Vec<bool>,
    /// The flow snapshot the matrix was built from. Holding the `Arc`
    /// keeps the allocation alive, so `Arc::ptr_eq` against an incoming
    /// state is an exact O(1) currency test (no ABA reuse possible):
    /// the GRM and the simulator reuse one snapshot across requests, so
    /// the steady-state check never touches the n² coefficients.
    flow: Arc<TransitiveFlow>,
    /// Flattened `n × n` snapshot of the flow coefficients the matrix was
    /// built from — the structural fallback for callers that rebuild an
    /// equal flow table into a fresh `Arc`; any drift invalidates the
    /// skeleton.
    coeffs: Vec<f64>,
    /// Standard-form column of each principal's draw variable (`None` for
    /// fixed ones).
    col_of: Vec<Option<usize>>,
    a: Vec<Vec<f64>>,
    b: Vec<f64>,
    c: Vec<f64>,
    upper: Vec<f64>,
    num_structural: usize,
}

/// Counters exposed for benchmarks and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Total LP solves performed.
    pub solves: u64,
    /// Entitlement-bound vector computations (`n` saturated-inflow
    /// evaluations each); the legacy two-solve best-effort path performs
    /// two per over-capacity request.
    pub bound_builds: u64,
    /// Skeleton (re)builds — steady state is 1 per flow/requester change.
    pub skeleton_rebuilds: u64,
    /// Solves that resumed from a saved basis instead of running phase 1.
    pub warm_hits: u64,
}

/// A reusable allocation solver (see module docs).
///
/// Not `Sync`: give each thread its own instance (the experiment sweeps
/// do exactly that).
#[derive(Debug)]
pub struct AllocationSolver {
    formulation: Formulation,
    opts: SimplexOptions,
    ws: SimplexWorkspace,
    skeleton: Option<Skeleton>,
    /// Entitlement bound scratch, recomputed per request.
    bound: Vec<f64>,
    two_solve_best_effort: bool,
    stats: SolverStats,
    /// Telemetry plane; disabled (no-op) by default.
    telemetry: Telemetry,
}

impl AllocationSolver {
    /// Build a solver for the given formulation and simplex options.
    pub fn new(formulation: Formulation, opts: SimplexOptions) -> Self {
        AllocationSolver {
            formulation,
            opts,
            ws: SimplexWorkspace::new(),
            skeleton: None,
            bound: Vec::new(),
            two_solve_best_effort: false,
            stats: SolverStats::default(),
            telemetry: Telemetry::default(),
        }
    }

    /// The production configuration: reduced formulation, default simplex.
    pub fn reduced() -> Self {
        Self::new(Formulation::Reduced, SimplexOptions::default())
    }

    /// Enable warm starting across same-shaped solves. Off by default;
    /// results then agree with the cold path to solver tolerance instead
    /// of bit-for-bit.
    pub fn set_warm_start(&mut self, on: bool) {
        self.ws.set_warm_start(on);
    }

    /// Drop any saved basis so the next solve runs cold; the warm-start
    /// *setting* itself is unchanged. Drivers call this between
    /// independent runs so a replay never inherits acceleration state
    /// from the previous one and stays bit-reproducible.
    pub fn invalidate_warm_start(&mut self) {
        self.ws.invalidate_warm_start();
    }

    /// Revert `allocate_up_to` to the legacy two-solve behaviour
    /// (allocate, catch `InsufficientCapacity`, retry at the reachable
    /// amount). Kept for equivalence testing and A/B measurement.
    pub fn set_two_solve_best_effort(&mut self, on: bool) {
        self.two_solve_best_effort = on;
    }

    /// The formulation this solver uses.
    pub fn formulation(&self) -> Formulation {
        self.formulation
    }

    /// Attach a telemetry plane (LP-solve-time histogram plus
    /// admitted/fast-reject events). The default is the disabled plane,
    /// whose calls are no-ops on the untimed path.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Usage counters (solves, skeleton rebuilds, warm-start hits).
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Whether the most recent LP solve warm-started.
    pub fn last_solve_was_warm(&self) -> bool {
        self.ws.last_solve_was_warm()
    }

    /// Place exactly `x` units for `requester`; errs with
    /// [`SchedError::InsufficientCapacity`] when `x` exceeds reach.
    /// Semantics identical to [`crate::lp_model::solve_allocation`].
    pub fn allocate(
        &mut self,
        state: &SystemState,
        requester: usize,
        x: f64,
    ) -> Result<Allocation, SchedError> {
        self.place(state, requester, x, false)
    }

    /// Best-effort placement: serve `min(x, reachable)` in a single LP
    /// solve (or the legacy two solves when the flag is set).
    pub fn allocate_up_to(
        &mut self,
        state: &SystemState,
        requester: usize,
        x: f64,
    ) -> Result<Allocation, SchedError> {
        if self.two_solve_best_effort {
            return match self.allocate(state, requester, x) {
                Ok(a) => Ok(a),
                Err(SchedError::InsufficientCapacity { capacity, .. }) => {
                    self.allocate(state, requester, capacity.max(0.0).min(x))
                }
                Err(e) => Err(e),
            };
        }
        self.place(state, requester, x, true)
    }

    fn place(
        &mut self,
        state: &SystemState,
        a: usize,
        x: f64,
        best_effort: bool,
    ) -> Result<Allocation, SchedError> {
        let n = state.n();
        if a >= n {
            return Err(SchedError::UnknownPrincipal { index: a, n });
        }
        if !x.is_finite() || x < 0.0 {
            return Err(SchedError::InvalidRequest { amount: x });
        }
        if x == 0.0 {
            return Ok(Allocation { requester: a, amount: 0.0, draws: vec![0.0; n], theta: 0.0 });
        }

        // Admission bounds (the shared arithmetic, `crate::admission`).
        self.stats.bound_builds += 1;
        let reachable = admission_bound(state, a, &mut self.bound);
        if exceeds_bound(x, reachable) {
            self.telemetry.add("sched.fast_rejects", 1);
            self.telemetry.record_with(|| TelemetryEvent::FastReject {
                requester: a,
                requested: x,
                bound: reachable,
                clamped: best_effort,
            });
            if !best_effort {
                return Err(SchedError::InsufficientCapacity {
                    requester: a,
                    capacity: reachable,
                    requested: x,
                    resource: None,
                });
            }
        } else {
            self.telemetry.record_with(|| TelemetryEvent::Admitted {
                requester: a,
                requested: x,
                bound: reachable,
            });
        }
        let x = x.min(reachable);
        if x <= 0.0 {
            // Best-effort clamp hit an empty system.
            return Ok(Allocation { requester: a, amount: 0.0, draws: vec![0.0; n], theta: 0.0 });
        }

        self.stats.solves += 1;
        let span = self.telemetry.start();
        let (draws, theta) = match self.formulation {
            Formulation::Reduced => self.solve_reduced_cached(state, a, x)?,
            Formulation::Full => solve_full(state, a, x, &self.bound, &self.opts)?,
        };
        self.telemetry.stop(HistKind::LpSolveSeconds, span);
        let draws: Vec<f64> =
            draws.into_iter().map(|d| if d < DRAW_EPS { 0.0 } else { d }).collect();
        Ok(Allocation { requester: a, amount: x, draws, theta })
    }

    /// Reduced-form solve through the cached skeleton and workspace.
    fn solve_reduced_cached(
        &mut self,
        state: &SystemState,
        a: usize,
        x: f64,
    ) -> Result<(Vec<f64>, f64), SchedError> {
        let n = state.n();
        if !self.skeleton_is_current(state, a) {
            self.rebuild_skeleton(state, a);
            // A rebuilt skeleton is a different model (the requester, the
            // zero-bound pattern, or a flow coefficient moved); a basis
            // saved for the old model must not seed the new one, even if
            // the matrix dimensions happen to coincide.
            self.ws.invalidate_warm_start();
        }
        let sk = self.skeleton.as_mut().expect("skeleton just ensured");
        sk.b[0] = x;
        for i in 0..n {
            if let Some(col) = sk.col_of[i] {
                sk.upper[col] = self.bound[i].max(0.0);
            }
        }
        let sol = solve_bounded_with(
            &mut self.ws,
            &sk.a,
            &sk.b,
            &sk.c,
            &sk.upper,
            sk.num_structural,
            &self.opts,
        )?;
        if self.ws.last_solve_was_warm() {
            self.stats.warm_hits += 1;
        }
        let draws = (0..n).map(|i| sk.col_of[i].map_or(0.0, |col| sol.x[col])).collect();
        Ok((draws, sol.objective))
    }

    /// The skeleton is reusable iff nothing that shapes the matrix moved:
    /// dimension, requester, the zero-bound pattern, and the flow table.
    /// Flow currency is decided by `Arc` pointer identity first — the
    /// hot-path case, one pointer compare — and only falls back to the
    /// structural coefficient scan when the caller handed a *different*
    /// snapshot object (adopting its identity when the coefficients turn
    /// out equal, so the scan runs once per fresh `Arc`, not per solve).
    fn skeleton_is_current(&mut self, state: &SystemState, a: usize) -> bool {
        let n = state.n();
        let bound = &self.bound;
        let Some(sk) = &mut self.skeleton else { return false };
        if sk.n != n || sk.requester != a {
            return false;
        }
        for (i, &b) in bound.iter().enumerate() {
            if sk.fixed[i] != (b.max(0.0) == 0.0) {
                return false;
            }
        }
        if Arc::ptr_eq(&sk.flow, &state.flow) {
            return true;
        }
        for k in 0..n {
            for i in 0..n {
                if state.flow.coefficient(k, i) != sk.coeffs[k * n + i] {
                    return false;
                }
            }
        }
        sk.flow = Arc::clone(&state.flow);
        true
    }

    /// Build the standard form that `Problem::standardize` (native bound
    /// mode) produces for `lp_model::solve_reduced`, reusing buffers.
    ///
    /// Column layout: one column per draw variable with a positive bound
    /// (ascending principal order), then θ, then one slack per drop
    /// constraint. Zero-bound draws are substituted out (`lb == ub`),
    /// matching `Problem`'s fixed-variable handling — that keeps the two
    /// paths bit-identical, at the cost of a rebuild when the pattern of
    /// exhausted owners changes.
    fn rebuild_skeleton(&mut self, state: &SystemState, a: usize) {
        self.stats.skeleton_rebuilds += 1;
        let n = state.n();
        let mut sk = self.skeleton.take().unwrap_or_else(|| Skeleton {
            n: 0,
            requester: 0,
            fixed: Vec::new(),
            flow: Arc::clone(&state.flow),
            coeffs: Vec::new(),
            col_of: Vec::new(),
            a: Vec::new(),
            b: Vec::new(),
            c: Vec::new(),
            upper: Vec::new(),
            num_structural: 0,
        });
        sk.n = n;
        sk.requester = a;
        sk.flow = Arc::clone(&state.flow);
        sk.fixed.clear();
        sk.col_of.clear();
        let mut col = 0usize;
        for &b in &self.bound {
            let is_fixed = b.max(0.0) == 0.0;
            sk.fixed.push(is_fixed);
            if is_fixed {
                sk.col_of.push(None);
            } else {
                sk.col_of.push(Some(col));
                col += 1;
            }
        }
        let theta_col = col;
        let num_structural = col + 1;
        let m = n; // 1 demand row + (n − 1) drop rows
        let num_slack = n - 1;
        let total = num_structural + num_slack;

        sk.coeffs.clear();
        sk.coeffs.reserve(n * n);
        for k in 0..n {
            for i in 0..n {
                sk.coeffs.push(state.flow.coefficient(k, i));
            }
        }

        sk.a.resize_with(m, Vec::new);
        sk.a.truncate(m);
        for row in &mut sk.a {
            row.clear();
            row.resize(total, 0.0);
        }
        sk.b.clear();
        sk.b.resize(m, 0.0);

        // Row 0: Σ d_i = x (rhs rewritten per request).
        for i in 0..n {
            if let Some(c) = sk.col_of[i] {
                sk.a[0][c] = 1.0;
            }
        }
        // Rows 1..n: for each i ≠ a, d_i + Σ_{k≠i} T[k][i]·d_k − θ + s = 0.
        let mut r = 1usize;
        for i in 0..n {
            if i == a {
                continue;
            }
            if let Some(c) = sk.col_of[i] {
                sk.a[r][c] += 1.0;
            }
            for k in 0..n {
                if k == i {
                    continue;
                }
                let t = sk.coeffs[k * n + i];
                if t > 0.0 {
                    if let Some(c) = sk.col_of[k] {
                        sk.a[r][c] += t;
                    }
                }
            }
            sk.a[r][theta_col] = -1.0;
            sk.a[r][num_structural + (r - 1)] = 1.0;
            r += 1;
        }

        sk.c.clear();
        sk.c.resize(total, 0.0);
        sk.c[theta_col] = 1.0;
        sk.upper.clear();
        sk.upper.resize(total, f64::INFINITY);
        // Draw bounds are rewritten per request; θ and slacks stay ∞.
        sk.num_structural = num_structural;
        self.skeleton = Some(sk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp_model::solve_allocation;
    use agreements_flow::{AgreementMatrix, TransitiveFlow};

    const EPS: f64 = 1e-7;

    fn mk_state(n: usize, edges: &[(usize, usize, f64)], v: Vec<f64>, level: usize) -> SystemState {
        let mut s = AgreementMatrix::zeros(n);
        for &(i, j, w) in edges {
            s.set(i, j, w).unwrap();
        }
        let flow = TransitiveFlow::compute(&s, level);
        SystemState::new(flow, None, v).unwrap()
    }

    fn opts() -> SimplexOptions {
        SimplexOptions::default()
    }

    #[test]
    fn cached_reduced_is_bit_identical_to_stateless() {
        let mut solver = AllocationSolver::reduced();
        let configs: Vec<(SystemState, usize, f64)> = vec![
            (mk_state(2, &[(0, 1, 0.5), (1, 0, 0.5)], vec![10.0, 10.0], 1), 0, 3.0),
            (mk_state(2, &[(1, 0, 0.5)], vec![0.0, 10.0], 1), 0, 4.0),
            (mk_state(3, &[(1, 0, 0.5), (2, 0, 0.5)], vec![0.0, 10.0, 10.0], 1), 0, 6.0),
            (mk_state(3, &[(1, 0, 0.8), (2, 0, 0.1)], vec![0.0, 10.0, 10.0], 1), 0, 9.0),
            (
                mk_state(4, &[(1, 0, 0.8), (2, 1, 0.8), (3, 2, 0.8)], vec![1.0, 4.0, 4.0, 4.0], 3),
                0,
                5.0,
            ),
        ];
        for (st, a, x) in &configs {
            let stateless = solve_allocation(st, *a, *x, Formulation::Reduced, &opts()).unwrap();
            let cached = solver.allocate(st, *a, *x).unwrap();
            assert_eq!(stateless.draws, cached.draws, "draws diverge at x={x}");
            assert_eq!(stateless.theta, cached.theta);
            assert_eq!(stateless.amount, cached.amount);
        }
    }

    #[test]
    fn skeleton_survives_rhs_and_bound_changes() {
        // Same flow, same requester, availability moving but never hitting
        // zero: the skeleton must be built exactly once.
        let st = mk_state(3, &[(1, 0, 0.5), (2, 0, 0.5)], vec![5.0, 10.0, 10.0], 1);
        let mut solver = AllocationSolver::reduced();
        let mut state = st;
        for _ in 0..5 {
            let alloc = solver.allocate(&state, 0, 1.0).unwrap();
            state.apply(&alloc).unwrap();
        }
        assert_eq!(solver.stats().skeleton_rebuilds, 1);
        assert_eq!(solver.stats().solves, 5);
    }

    #[test]
    fn zero_bound_pattern_change_rebuilds() {
        let mut solver = AllocationSolver::reduced();
        let busy = mk_state(2, &[(1, 0, 0.5)], vec![2.0, 10.0], 1);
        solver.allocate(&busy, 0, 1.0).unwrap();
        // Requester drained: its draw variable becomes fixed.
        let drained = mk_state(2, &[(1, 0, 0.5)], vec![0.0, 10.0], 1);
        let al = solver.allocate(&drained, 0, 1.0).unwrap();
        assert!((al.draws[1] - 1.0).abs() < EPS);
        assert_eq!(solver.stats().skeleton_rebuilds, 2);
    }

    #[test]
    fn requester_or_flow_change_rebuilds() {
        let mut solver = AllocationSolver::reduced();
        let st = mk_state(2, &[(0, 1, 0.5), (1, 0, 0.5)], vec![10.0, 10.0], 1);
        solver.allocate(&st, 0, 1.0).unwrap();
        solver.allocate(&st, 1, 1.0).unwrap();
        assert_eq!(solver.stats().skeleton_rebuilds, 2, "requester flip rebuilds");
        let st2 = mk_state(2, &[(0, 1, 0.3), (1, 0, 0.5)], vec![10.0, 10.0], 1);
        solver.allocate(&st2, 1, 1.0).unwrap();
        assert_eq!(solver.stats().skeleton_rebuilds, 3, "flow drift rebuilds");
    }

    #[test]
    fn fresh_arc_with_equal_coefficients_reuses_skeleton() {
        let mut solver = AllocationSolver::reduced();
        let st = mk_state(2, &[(1, 0, 0.5)], vec![2.0, 10.0], 1);
        solver.allocate(&st, 0, 1.0).unwrap();
        // The same coefficients rebuilt into a different snapshot object
        // must hit the structural fallback, not force a rebuild.
        let st2 = mk_state(2, &[(1, 0, 0.5)], vec![2.0, 10.0], 1);
        solver.allocate(&st2, 0, 1.0).unwrap();
        assert!(!std::sync::Arc::ptr_eq(&st.flow, &st2.flow));
        assert_eq!(solver.stats().skeleton_rebuilds, 1, "fallback adopts the new Arc");
    }

    #[test]
    fn warm_start_matches_cold_results() {
        let mut cold = AllocationSolver::reduced();
        let mut warm = AllocationSolver::reduced();
        warm.set_warm_start(true);
        let mut cold_state = mk_state(3, &[(1, 0, 0.6), (2, 0, 0.6)], vec![4.0, 20.0, 20.0], 1);
        let mut warm_state = cold_state.clone();
        for step in 0..12 {
            let x = 0.7 + 0.3 * (step % 4) as f64;
            let ca = cold.allocate(&cold_state, 0, x).unwrap();
            let wa = warm.allocate(&warm_state, 0, x).unwrap();
            assert!((ca.theta - wa.theta).abs() < 1e-9, "theta at step {step}");
            for (d1, d2) in ca.draws.iter().zip(&wa.draws) {
                assert!((d1 - d2).abs() < 1e-7, "draws at step {step}");
            }
            cold_state.apply(&ca).unwrap();
            warm_state.apply(&wa).unwrap();
        }
        assert!(warm.stats().warm_hits > 5, "warm hits: {}", warm.stats().warm_hits);
        assert_eq!(cold.stats().warm_hits, 0);
    }

    #[test]
    fn single_solve_matches_two_solve_best_effort() {
        let mut single = AllocationSolver::reduced();
        let mut double = AllocationSolver::reduced();
        double.set_two_solve_best_effort(true);
        let st = mk_state(2, &[(1, 0, 0.5)], vec![1.0, 10.0], 1);
        // Excess demand: both clamp to the reachable 6.0 — exactly, not
        // shaved by an epsilon.
        let s = single.allocate_up_to(&st, 0, 100.0).unwrap();
        let d = double.allocate_up_to(&st, 0, 100.0).unwrap();
        assert_eq!(s.amount, 6.0);
        assert_eq!(s.amount, d.amount);
        assert_eq!(s.draws, d.draws);
        assert_eq!(s.theta, d.theta);
        assert_eq!(single.stats().bound_builds, 1, "one admission pass");
        assert_eq!(double.stats().bound_builds, 2, "legacy path re-runs admission");
        // In-capacity demand: both solve once and agree.
        let s2 = single.allocate_up_to(&st, 0, 2.0).unwrap();
        let d2 = double.allocate_up_to(&st, 0, 2.0).unwrap();
        assert_eq!(s2.draws, d2.draws);
    }

    #[test]
    fn best_effort_on_empty_system_places_nothing() {
        let mut solver = AllocationSolver::reduced();
        let st = mk_state(2, &[(1, 0, 0.5)], vec![0.0, 0.0], 1);
        let al = solver.allocate_up_to(&st, 0, 5.0).unwrap();
        assert_eq!(al.amount, 0.0);
        assert_eq!(al.draws, vec![0.0, 0.0]);
        assert_eq!(solver.stats().solves, 0, "no LP for an empty system");
    }

    #[test]
    fn full_formulation_delegates_correctly() {
        let mut solver = AllocationSolver::new(Formulation::Full, opts());
        let st = mk_state(3, &[(1, 0, 0.5), (2, 0, 0.5)], vec![0.0, 10.0, 10.0], 1);
        let cached = solver.allocate(&st, 0, 6.0).unwrap();
        let stateless = solve_allocation(&st, 0, 6.0, Formulation::Full, &opts()).unwrap();
        assert_eq!(cached.draws, stateless.draws);
        assert_eq!(cached.theta, stateless.theta);
    }

    #[test]
    fn validation_errors_match_stateless() {
        let mut solver = AllocationSolver::reduced();
        let st = mk_state(2, &[], vec![5.0, 5.0], 1);
        assert!(matches!(solver.allocate(&st, 5, 1.0), Err(SchedError::UnknownPrincipal { .. })));
        assert!(matches!(solver.allocate(&st, 0, -1.0), Err(SchedError::InvalidRequest { .. })));
        assert!(matches!(
            solver.allocate(&st, 0, f64::NAN),
            Err(SchedError::InvalidRequest { .. })
        ));
        assert!(matches!(
            solver.allocate(&st, 0, 100.0),
            Err(SchedError::InsufficientCapacity { .. })
        ));
    }
}
