//! Alternative allocation objectives (paper §3.1):
//!
//! > "In general this decision depends on several factors such as the
//! > cost of borrowing resources from a different site and concerns of
//! > fairness."
//!
//! The paper then restricts itself to the min-θ perturbation objective;
//! this module supplies the two factors it names as LP variants that
//! reuse the same constraint structure:
//!
//! - [`CostAwareLpPolicy`] minimizes `θ + λ·Σ cost_i·d_i`: perturbation
//!   plus a borrowing-cost term, trading global head-room against, e.g.,
//!   WAN transfer expense.
//! - [`FairShareLpPolicy`] minimizes the worst *relative* capacity drop
//!   `max_{i≠A} (C_i − C'_i)/C_i`, so small principals are not drained
//!   proportionally harder than large ones.

use crate::admission::{admission_bound, exceeds_bound};
use crate::error::SchedError;
use crate::policy::AllocationPolicy;
use crate::state::{Allocation, SystemState};
use agreements_lp::{Problem, Relation, Sense, SimplexOptions, VarId};

/// Common setup shared by the objective variants: per-owner draw bounds
/// and the admission check.
fn draw_bounds(state: &SystemState, a: usize, x: f64) -> Result<Vec<f64>, SchedError> {
    let n = state.n();
    if a >= n {
        return Err(SchedError::UnknownPrincipal { index: a, n });
    }
    if !x.is_finite() || x < 0.0 {
        return Err(SchedError::InvalidRequest { amount: x });
    }
    let mut bound = Vec::new();
    let reachable = admission_bound(state, a, &mut bound);
    if exceeds_bound(x, reachable) {
        return Err(SchedError::InsufficientCapacity {
            requester: a,
            capacity: reachable,
            requested: x,
            resource: None,
        });
    }
    Ok(bound)
}

/// Min `θ + λ·Σ cost[A][i]·d_i`: the perturbation objective plus a
/// linear borrowing cost per unit drawn, which may depend on who is
/// asking (e.g. WAN distance between requester and owner).
#[derive(Debug, Clone)]
pub struct CostAwareLpPolicy {
    /// `cost[requester][owner]`: cost of moving one unit from `owner` to
    /// `requester`. The diagonal is typically 0.
    pub costs: Vec<Vec<f64>>,
    /// Weight of the cost term relative to the perturbation term. 0
    /// recovers the plain LP policy.
    pub lambda: f64,
    /// Simplex configuration.
    pub opts: SimplexOptions,
}

impl CostAwareLpPolicy {
    /// Requester-independent costs: the same per-owner borrowing cost no
    /// matter who asks.
    pub fn new(costs: Vec<f64>, lambda: f64) -> Self {
        let n = costs.len();
        CostAwareLpPolicy { costs: vec![costs; n.max(1)], lambda, opts: SimplexOptions::default() }
    }

    /// Full requester × owner cost matrix.
    pub fn with_matrix(costs: Vec<Vec<f64>>, lambda: f64) -> Self {
        CostAwareLpPolicy { costs, lambda, opts: SimplexOptions::default() }
    }

    /// Costs proportional to circular ring distance (ISPs around time
    /// zones): `cost[a][i] = per_hop × circular_distance(a, i)`.
    pub fn ring_distance(n: usize, per_hop: f64, lambda: f64) -> Self {
        let costs = (0..n)
            .map(|a| {
                (0..n)
                    .map(|i| {
                        let fwd = (i + n - a) % n;
                        per_hop * fwd.min(n - fwd) as f64
                    })
                    .collect()
            })
            .collect();
        CostAwareLpPolicy::with_matrix(costs, lambda)
    }
}

impl AllocationPolicy for CostAwareLpPolicy {
    fn allocate(
        &self,
        state: &SystemState,
        requester: usize,
        x: f64,
    ) -> Result<Allocation, SchedError> {
        let n = state.n();
        if self.costs.len() != n || self.costs.iter().any(|row| row.len() != n) {
            return Err(SchedError::DimensionMismatch { expected: n, got: self.costs.len() });
        }
        let bound = draw_bounds(state, requester, x)?;
        let x = x.min(bound.iter().sum());
        if x == 0.0 {
            return Ok(Allocation { requester, amount: 0.0, draws: vec![0.0; n], theta: 0.0 });
        }
        let mut p = Problem::new(Sense::Minimize);
        let d: Vec<VarId> = (0..n)
            .map(|i| {
                p.add_var(
                    &format!("d{i}"),
                    0.0,
                    bound[i].max(0.0),
                    self.lambda * self.costs[requester][i],
                )
            })
            .collect();
        let theta = p.add_var("theta", 0.0, f64::INFINITY, 1.0);
        let all: Vec<(VarId, f64)> = d.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(&all, Relation::Eq, x);
        for i in 0..n {
            if i == requester {
                continue;
            }
            let mut terms: Vec<(VarId, f64)> = vec![(d[i], 1.0), (theta, -1.0)];
            for k in 0..n {
                if k != i {
                    let t = state.flow.coefficient(k, i);
                    if t > 0.0 {
                        terms.push((d[k], t));
                    }
                }
            }
            p.add_constraint(&terms, Relation::Le, 0.0);
        }
        let sol = p.solve_with(&self.opts)?;
        let draws: Vec<f64> = d.iter().map(|&v| sol.value(v).max(0.0)).collect();
        Ok(Allocation { requester, amount: x, draws, theta: sol.value(theta) })
    }

    fn name(&self) -> &'static str {
        "lp-cost-aware"
    }
}

/// Min `max_{i≠A} (C_i − C'_i)/C_i`: the worst *relative* capacity drop.
/// Constraints divide by pre-allocation capacity, so an owner with little
/// to begin with is protected from being drained proportionally harder.
#[derive(Debug, Clone, Default)]
pub struct FairShareLpPolicy {
    /// Simplex configuration.
    pub opts: SimplexOptions,
}

impl AllocationPolicy for FairShareLpPolicy {
    fn allocate(
        &self,
        state: &SystemState,
        requester: usize,
        x: f64,
    ) -> Result<Allocation, SchedError> {
        let n = state.n();
        let bound = draw_bounds(state, requester, x)?;
        let x = x.min(bound.iter().sum());
        if x == 0.0 {
            return Ok(Allocation { requester, amount: 0.0, draws: vec![0.0; n], theta: 0.0 });
        }
        // Pre-allocation linear capacities for the relative denominators.
        let v = &state.availability;
        let cap_lin: Vec<f64> = (0..n)
            .map(|i| {
                v[i] + (0..n)
                    .filter(|&k| k != i)
                    .map(|k| v[k] * state.flow.coefficient(k, i))
                    .sum::<f64>()
            })
            .collect();
        let mut p = Problem::new(Sense::Minimize);
        let d: Vec<VarId> =
            (0..n).map(|i| p.add_var(&format!("d{i}"), 0.0, bound[i].max(0.0), 0.0)).collect();
        let phi = p.add_var("phi", 0.0, f64::INFINITY, 1.0);
        let all: Vec<(VarId, f64)> = d.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(&all, Relation::Eq, x);
        for i in 0..n {
            if i == requester || cap_lin[i] <= 1e-12 {
                // An owner with zero capacity cannot lose any; its draws
                // are already bounded at 0 through `bound`.
                continue;
            }
            // (d_i + Σ T[k][i]·d_k) / C_i ≤ φ.
            let inv = 1.0 / cap_lin[i];
            let mut terms: Vec<(VarId, f64)> = vec![(d[i], inv), (phi, -1.0)];
            for k in 0..n {
                if k != i {
                    let t = state.flow.coefficient(k, i);
                    if t > 0.0 {
                        terms.push((d[k], t * inv));
                    }
                }
            }
            p.add_constraint(&terms, Relation::Le, 0.0);
        }
        let sol = p.solve_with(&self.opts)?;
        let draws: Vec<f64> = d.iter().map(|&v| sol.value(v).max(0.0)).collect();
        // Report the *absolute* worst drop as theta for comparability
        // with the other policies.
        let theta = crate::state::perturbation(state, requester, &draws);
        Ok(Allocation { requester, amount: x, draws, theta })
    }

    fn name(&self) -> &'static str {
        "lp-fair-share"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::LpPolicy;
    use agreements_flow::{AgreementMatrix, TransitiveFlow};

    const EPS: f64 = 1e-7;

    fn state(edges: &[(usize, usize, f64)], v: Vec<f64>) -> SystemState {
        let n = v.len();
        let mut s = AgreementMatrix::zeros(n);
        for &(i, j, w) in edges {
            s.set(i, j, w).unwrap();
        }
        let flow = TransitiveFlow::compute(&s, n - 1);
        SystemState::new(flow, None, v).unwrap()
    }

    #[test]
    fn zero_lambda_matches_plain_lp() {
        let st = state(&[(1, 0, 0.5), (2, 0, 0.5)], vec![0.0, 10.0, 10.0]);
        let plain = LpPolicy::reduced().allocate(&st, 0, 6.0).unwrap();
        let costed =
            CostAwareLpPolicy::new(vec![0.0, 5.0, 1.0], 0.0).allocate(&st, 0, 6.0).unwrap();
        assert!((plain.theta - costed.theta).abs() < EPS);
        let sum: f64 = costed.draws.iter().sum();
        assert!((sum - 6.0).abs() < EPS);
    }

    #[test]
    fn high_cost_owner_is_avoided() {
        // Symmetric owners, but owner 1 is expensive to borrow from.
        let st = state(&[(1, 0, 0.5), (2, 0, 0.5)], vec![0.0, 10.0, 10.0]);
        let plain = LpPolicy::reduced().allocate(&st, 0, 6.0).unwrap();
        assert!((plain.draws[1] - plain.draws[2]).abs() < EPS, "plain splits evenly");
        let costed =
            CostAwareLpPolicy::new(vec![0.0, 10.0, 0.0], 1.0).allocate(&st, 0, 6.0).unwrap();
        assert!(
            costed.draws[1] < costed.draws[2],
            "cost-aware shifts away from the expensive owner: {:?}",
            costed.draws
        );
    }

    #[test]
    fn cost_dimension_checked() {
        let st = state(&[], vec![5.0, 5.0]);
        let pol = CostAwareLpPolicy::new(vec![0.0], 1.0);
        assert!(matches!(pol.allocate(&st, 0, 1.0), Err(SchedError::DimensionMismatch { .. })));
    }

    #[test]
    fn ring_distance_costs_prefer_near_owners() {
        // Ring of 4; requester 0 can draw equally from owners 1 (1 hop)
        // and 2 (2 hops).
        let st = state(&[(1, 0, 0.5), (2, 0, 0.5)], vec![0.0, 10.0, 10.0, 0.0]);
        let pol = CostAwareLpPolicy::ring_distance(4, 1.0, 2.0);
        assert_eq!(pol.costs[0][1], 1.0);
        assert_eq!(pol.costs[0][2], 2.0);
        assert_eq!(pol.costs[0][3], 1.0, "circular distance");
        let a = pol.allocate(&st, 0, 6.0).unwrap();
        assert!(a.draws[1] > a.draws[2], "closer owner preferred: {:?}", a.draws);
    }

    #[test]
    fn cost_matrix_is_requester_relative() {
        // Owner 1 is cheap for requester 0 but expensive for requester 2.
        let st = state(
            &[(1, 0, 0.5), (1, 2, 0.5), (3, 0, 0.5), (3, 2, 0.5)],
            vec![0.0, 10.0, 0.0, 10.0],
        );
        let mut costs = vec![vec![0.0; 4]; 4];
        costs[0][1] = 0.0;
        costs[0][3] = 5.0;
        costs[2][1] = 5.0;
        costs[2][3] = 0.0;
        let pol = CostAwareLpPolicy::with_matrix(costs, 2.0);
        let a0 = pol.allocate(&st, 0, 4.0).unwrap();
        let a2 = pol.allocate(&st, 2, 4.0).unwrap();
        assert!(a0.draws[1] > a0.draws[3], "{:?}", a0.draws);
        assert!(a2.draws[3] > a2.draws[1], "{:?}", a2.draws);
    }

    #[test]
    fn fair_share_protects_small_owners() {
        // Owner 1 is large (100), owner 2 small (10); both share 50% with
        // the requester. Absolute min-θ splits the draw evenly; the fair
        // policy draws more from the large owner.
        let st = state(&[(1, 0, 0.5), (2, 0, 0.5)], vec![0.0, 100.0, 10.0]);
        let plain = LpPolicy::reduced().allocate(&st, 0, 8.0).unwrap();
        let fair = FairShareLpPolicy::default().allocate(&st, 0, 8.0).unwrap();
        assert!(
            fair.draws[1] > plain.draws[1] + 1.0,
            "fair {:?} vs plain {:?}",
            fair.draws,
            plain.draws
        );
        // Relative drops equalized (within entitlement limits).
        let rel = |draws: &[f64], i: usize, cap: f64| {
            (draws[i]
                + (0..3)
                    .filter(|&k| k != i)
                    .map(|k| st.flow.coefficient(k, i) * draws[k])
                    .sum::<f64>())
                / cap
        };
        let r1 = rel(&fair.draws, 1, 100.0);
        let r2 = rel(&fair.draws, 2, 10.0 + 0.0);
        // Capacities: C_1 = 100, C_2 = 10 (no inflows to 1 or 2 here).
        assert!((r1 - r2).abs() < 0.05, "relative drops {r1:.3} vs {r2:.3}");
    }

    #[test]
    fn fair_share_respects_entitlements() {
        let st = state(&[(1, 0, 0.2), (2, 0, 0.9)], vec![0.0, 10.0, 10.0]);
        let fair = FairShareLpPolicy::default().allocate(&st, 0, 10.0).unwrap();
        assert!(fair.draws[1] <= 2.0 + EPS, "entitlement cap: {:?}", fair.draws);
        let sum: f64 = fair.draws.iter().sum();
        assert!((sum - 10.0).abs() < EPS);
    }

    #[test]
    fn both_policies_admit_and_reject_like_plain_lp() {
        let st = state(&[(1, 0, 0.5)], vec![1.0, 10.0]);
        // Reach = 1 + 5 = 6.
        for pol in [
            Box::new(CostAwareLpPolicy::new(vec![0.0, 1.0], 0.5)) as Box<dyn AllocationPolicy>,
            Box::new(FairShareLpPolicy::default()),
        ] {
            assert!(pol.allocate(&st, 0, 6.0).is_ok(), "{}", pol.name());
            assert!(matches!(
                pol.allocate(&st, 0, 6.5),
                Err(SchedError::InsufficientCapacity { .. })
            ));
        }
    }

    #[test]
    fn zero_request_short_circuits() {
        let st = state(&[], vec![1.0]);
        let a = CostAwareLpPolicy::new(vec![0.0], 1.0).allocate(&st, 0, 0.0).unwrap();
        assert_eq!(a.draws, vec![0.0]);
        let b = FairShareLpPolicy::default().allocate(&st, 0, 0.0).unwrap();
        assert_eq!(b.draws, vec![0.0]);
    }
}
