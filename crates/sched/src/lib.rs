//! Enforcing sharing agreements: the LP allocation scheduler (paper §3).
//!
//! Given an agreement structure (transitive flow table from
//! [`agreements_flow`]), current per-owner availability `V`, and a request
//! for `x` units by principal `A`, the scheduler decides *which owners'
//! resources to draw from*:
//!
//! 1. **Admission**: `A` may be served only if its reachable capacity
//!    `C_A = V_A + Σ_k U[k][A]` covers `x` (tickets of sufficient value,
//!    §3 intro).
//! 2. **Placement**: among the many ways to split the draw, pick the one
//!    minimizing `θ = max_{i≠A} (C_i − C'_i)` — the largest capacity loss
//!    inflicted on any *other* principal — by linear programming.
//!
//! Two LP formulations are provided and proven equivalent by tests:
//! the paper's **full** §3.1 system over `I'_ij, C'_i, V'_i, θ`
//! (`n² + n + 1` variables) and a **reduced** system over the draw vector
//! and `θ` (`n + 1` variables) obtained by substituting constraint (1)
//! into (2). The reduced form is what the simulator uses; the full form
//! exists for fidelity and the ablation benchmark.
//!
//! *Deviation note*: constraint (6) applied to the requester itself forces
//! `θ ≥ x` (its capacity drops by exactly `x` per constraint (3)), which
//! would make every feasible allocation "optimal". We therefore take the
//! max over `i ≠ A`, which preserves the paper's stated intent — "leave
//! the system in a state where it has sufficient resources to satisfy
//! future requests independent of which principal is making the request".
//!
//! Alternative policies for the paper's comparisons live in [`policy`]:
//! the proportional end-point scheme of Figure 13 and a greedy
//! most-available baseline. Multi-resource vector requests and coupled
//! resource binding (§3.2) live in [`multi`]; hierarchical multigrid
//! refinement in [`hierarchy`].
//!
//! # Example
//!
//! ```
//! use agreements_flow::{AgreementMatrix, TransitiveFlow};
//! use agreements_sched::{SystemState, LpPolicy, AllocationPolicy};
//!
//! // Two principals sharing 50% each way; principal 0 is exhausted.
//! let mut s = AgreementMatrix::zeros(2);
//! s.set(0, 1, 0.5).unwrap();
//! s.set(1, 0, 0.5).unwrap();
//! let flow = TransitiveFlow::compute(&s, 1);
//! let mut state = SystemState::new(flow, None, vec![0.0, 10.0]).unwrap();
//!
//! let alloc = LpPolicy::reduced().allocate(&state, 0, 3.0).unwrap();
//! assert!((alloc.draws[1] - 3.0).abs() < 1e-9, "all drawn from 1");
//! state.apply(&alloc).unwrap();
//! assert!((state.availability[1] - 7.0).abs() < 1e-9);
//! ```

// Index-based loops are idiomatic for the dense matrix math in this
// crate; clippy's iterator rewrites would obscure the row/column algebra.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod admission;
pub mod batch;
pub mod error;
pub mod executor;
pub mod explain;
pub mod hierarchy;
pub mod lp_model;
pub mod multi;
pub mod multires;
pub mod objectives;
pub mod policy;
pub mod solver;
pub mod state;

pub use admission::{admission_bound, exceeds_bound, first_binding_resource, ADMISSION_SLACK};
pub use batch::{AdmissionRequest, BatchedAdmission};
pub use error::SchedError;
pub use executor::ExecutorStats;
pub use explain::{explain_allocation, Explanation};
pub use hierarchy::HierarchicalScheduler;
pub use lp_model::Formulation;
pub use multires::{
    MultiAdmission, MultiAdmissionRequest, MultiAllocation, MultiSolver, ResourceVector,
    STANDARD_RESOURCES,
};
pub use objectives::{CostAwareLpPolicy, FairShareLpPolicy};
pub use policy::{AllocationPolicy, CachedLpPolicy, GreedyPolicy, LpPolicy, ProportionalPolicy};
pub use solver::{AllocationSolver, SolverStats};
pub use state::{Allocation, SystemState};
