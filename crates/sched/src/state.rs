//! System state and allocation results.

use crate::error::SchedError;
use agreements_flow::{capacities, AbsoluteMatrix, CapacityReport, TransitiveFlow};
use std::sync::Arc;

/// The scheduler's view of the world for one resource type: the (static)
/// agreement flow table and the (dynamic) per-owner availability.
///
/// The flow table is held by `Arc` so request handling never clones the
/// n×n coefficient matrix: the GRM serve loop and the proxy simulator
/// share one snapshot across every request against an unchanged
/// agreement set, and the allocation solver keys its cached skeleton on
/// the `Arc`'s pointer identity.
#[derive(Debug, Clone)]
pub struct SystemState {
    /// Precomputed transitive flow coefficients (clamped), shared.
    pub flow: Arc<TransitiveFlow>,
    /// Optional absolute agreements.
    pub absolute: Option<AbsoluteMatrix>,
    /// Current availability `V_i` at each owner, in resource units.
    pub availability: Vec<f64>,
}

impl SystemState {
    /// Build a state; validates dimensions. Accepts either an owned
    /// [`TransitiveFlow`] or an existing `Arc<TransitiveFlow>` (pass the
    /// `Arc` to share a snapshot without copying the table).
    pub fn new(
        flow: impl Into<Arc<TransitiveFlow>>,
        absolute: Option<AbsoluteMatrix>,
        availability: Vec<f64>,
    ) -> Result<Self, SchedError> {
        let flow = flow.into();
        let n = flow.n();
        if availability.len() != n {
            return Err(SchedError::DimensionMismatch { expected: n, got: availability.len() });
        }
        if let Some(a) = &absolute {
            if a.n() != n {
                return Err(SchedError::DimensionMismatch { expected: n, got: a.n() });
            }
        }
        if availability.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(SchedError::InvalidRequest {
                amount: *availability
                    .iter()
                    .find(|v| !v.is_finite() || **v < 0.0)
                    .expect("checked any() above"),
            });
        }
        Ok(SystemState { flow, absolute, availability })
    }

    /// Number of principals.
    #[inline]
    pub fn n(&self) -> usize {
        self.availability.len()
    }

    /// Capacity report at current availability.
    pub fn capacity_report(&self) -> CapacityReport {
        capacities(&self.flow, self.absolute.as_ref(), &self.availability)
    }

    /// Reachable capacity of one principal.
    pub fn capacity(&self, i: usize) -> f64 {
        self.capacity_report().capacity(i)
    }

    /// Deduct an allocation's draws from availability.
    pub fn apply(&mut self, alloc: &Allocation) -> Result<(), SchedError> {
        if alloc.draws.len() != self.n() {
            return Err(SchedError::DimensionMismatch {
                expected: self.n(),
                got: alloc.draws.len(),
            });
        }
        for (v, d) in self.availability.iter_mut().zip(&alloc.draws) {
            // Guard tiny LP negatives / overdraws from floating point.
            *v = (*v - d).max(0.0);
        }
        Ok(())
    }

    /// Return a draw to the pool (a previously allocated request
    /// completed and its resources free up).
    pub fn release(&mut self, alloc: &Allocation) -> Result<(), SchedError> {
        if alloc.draws.len() != self.n() {
            return Err(SchedError::DimensionMismatch {
                expected: self.n(),
                got: alloc.draws.len(),
            });
        }
        for (v, d) in self.availability.iter_mut().zip(&alloc.draws) {
            *v += d;
        }
        Ok(())
    }
}

/// A placement decision: how much to draw from each owner.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Requesting principal `A`.
    pub requester: usize,
    /// Requested amount `x`.
    pub amount: f64,
    /// `draws[i] = V_i − V'_i`: units taken from owner `i`;
    /// sums to `amount`.
    pub draws: Vec<f64>,
    /// Optimized perturbation metric `θ = max_{i≠A}(C_i − C'_i)`; for
    /// non-LP policies this is computed after the fact for comparability.
    pub theta: f64,
}

impl Allocation {
    /// Units served from the requester's own resources.
    pub fn local(&self) -> f64 {
        self.draws[self.requester]
    }

    /// Units served remotely (redirected).
    pub fn remote(&self) -> f64 {
        self.amount - self.local()
    }

    /// Owners drawn from, excluding the requester, with amounts.
    pub fn remote_draws(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.draws.iter().copied().enumerate().filter(move |&(i, d)| i != self.requester && d > 0.0)
    }
}

/// Compute the perturbation `θ` a draw vector inflicts: the largest
/// capacity drop among principals other than the requester.
pub fn perturbation(state: &SystemState, requester: usize, draws: &[f64]) -> f64 {
    let n = state.n();
    let before = state.capacity_report();
    let v_after: Vec<f64> =
        state.availability.iter().zip(draws).map(|(v, d)| (v - d).max(0.0)).collect();
    let after = capacities(&state.flow, state.absolute.as_ref(), &v_after);
    (0..n)
        .filter(|&i| i != requester)
        .map(|i| before.capacity(i) - after.capacity(i))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreements_flow::AgreementMatrix;

    fn state2() -> SystemState {
        let mut s = AgreementMatrix::zeros(2);
        s.set(0, 1, 0.5).unwrap();
        s.set(1, 0, 0.5).unwrap();
        let flow = TransitiveFlow::compute(&s, 1);
        SystemState::new(flow, None, vec![10.0, 10.0]).unwrap()
    }

    #[test]
    fn dimension_validation() {
        let mut s = AgreementMatrix::zeros(2);
        s.set(0, 1, 0.5).unwrap();
        let flow = TransitiveFlow::compute(&s, 1);
        assert!(matches!(
            SystemState::new(flow.clone(), None, vec![1.0]),
            Err(SchedError::DimensionMismatch { expected: 2, got: 1 })
        ));
        let a3 = AbsoluteMatrix::zeros(3);
        assert!(matches!(
            SystemState::new(flow, Some(a3), vec![1.0, 1.0]),
            Err(SchedError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn negative_availability_rejected() {
        let s = AgreementMatrix::zeros(1);
        let flow = TransitiveFlow::compute(&s, 1);
        assert!(SystemState::new(flow, None, vec![-1.0]).is_err());
    }

    #[test]
    fn apply_and_release_round_trip() {
        let mut st = state2();
        let alloc = Allocation { requester: 0, amount: 4.0, draws: vec![3.0, 1.0], theta: 0.0 };
        st.apply(&alloc).unwrap();
        assert_eq!(st.availability, vec![7.0, 9.0]);
        st.release(&alloc).unwrap();
        assert_eq!(st.availability, vec![10.0, 10.0]);
    }

    #[test]
    fn apply_clamps_at_zero() {
        let mut st = state2();
        let alloc =
            Allocation { requester: 0, amount: 11.0, draws: vec![10.0 + 1e-12, 1.0], theta: 0.0 };
        st.apply(&alloc).unwrap();
        assert!(st.availability[0] >= 0.0);
    }

    #[test]
    fn allocation_local_remote_split() {
        let alloc = Allocation { requester: 1, amount: 5.0, draws: vec![2.0, 3.0], theta: 0.0 };
        assert_eq!(alloc.local(), 3.0);
        assert_eq!(alloc.remote(), 2.0);
        let remotes: Vec<_> = alloc.remote_draws().collect();
        assert_eq!(remotes, vec![(0, 2.0)]);
    }

    #[test]
    fn perturbation_measures_capacity_drop() {
        let st = state2();
        // Draw 2 from owner 1 as requester 0: C_1 = 15 -> 13 - ... compute:
        // after: v = [10, 8]; C_1' = 8 + 0.5*10 = 13; drop = 2.
        let theta = perturbation(&st, 0, &[0.0, 2.0]);
        assert!((theta - 2.0).abs() < 1e-9);
        // Draw locally: C_1' = 10 - ... v = [8, 10]; C_1' = 10 + 4 = 14; drop 1.
        let theta = perturbation(&st, 0, &[2.0, 0.0]);
        assert!((theta - 1.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_uses_flow_and_absolute() {
        let st = state2();
        assert!((st.capacity(0) - 15.0).abs() < 1e-9);
        let mut a = AbsoluteMatrix::zeros(2);
        a.set(1, 0, 2.0).unwrap();
        let st2 = SystemState::new(st.flow.clone(), Some(a), vec![10.0, 10.0]).unwrap();
        assert!((st2.capacity(0) - 17.0).abs() < 1e-9);
    }
}
