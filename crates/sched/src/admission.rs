//! The single home of the capacity fast-reject ("admission") arithmetic.
//!
//! Admission (§3 intro) asks whether requester `A`'s *reachable* capacity
//! `C_A = V_A + Σ_{i≠A} saturated_inflow(i → A)` covers the request. The
//! same bound vector then parameterizes the placement LP (per-draw upper
//! bounds), and the GRM server uses the same test to refuse hopeless
//! requests before paying for a solve.
//!
//! Every consumer — [`crate::lp_model::solve_allocation`], the cached
//! [`crate::AllocationSolver`] hot path, and the GRM server's fast-reject
//! — calls [`admission_bound`] / [`exceeds_bound`], so the arithmetic
//! (per-principal evaluation order, summation order, and the
//! floating-point slack) cannot drift between sites: a verdict computed
//! here *is* the verdict the LP would reach.

use crate::state::SystemState;
use agreements_flow::capacity::saturated_inflow;

/// Floating-point slack of the admission test: a request within this of
/// the reachable total is admitted (and clamped to it), so accumulated
/// rounding in availability bookkeeping never rejects a borderline
/// request the LP could serve.
pub const ADMISSION_SLACK: f64 = 1e-9;

/// Fill `bound` with requester `requester`'s per-principal entitlement
/// bounds — its own availability at `bound[requester]`, each other
/// owner's saturated inflow elsewhere — and return their sum, the
/// reachable capacity `C_A`.
///
/// `bound` is caller-owned scratch (cleared here) so hot paths reuse one
/// allocation across requests. Evaluation and summation order are fixed
/// (ascending principal index); callers rely on the result being
/// bit-identical across all admission sites.
#[inline]
pub fn admission_bound(state: &SystemState, requester: usize, bound: &mut Vec<f64>) -> f64 {
    let n = state.n();
    let v = &state.availability;
    let absolute = state.absolute.as_ref();
    bound.clear();
    for i in 0..n {
        bound.push(if i == requester {
            v[requester]
        } else {
            saturated_inflow(&state.flow, absolute, v, i, requester)
        });
    }
    bound.iter().sum()
}

/// The admission verdict: does `requested` exceed the reachable capacity
/// beyond [`ADMISSION_SLACK`]?
#[inline]
pub fn exceeds_bound(requested: f64, reachable: f64) -> bool {
    requested > reachable + ADMISSION_SLACK
}

/// Multi-resource fast reject: scan the per-resource lanes in ascending
/// lane order and return the first whose bound refuses its amount —
/// `(lane index, reachable capacity)` — or `None` when every lane's
/// fast check admits. Lanes whose amount is non-positive or non-finite
/// are skipped, mirroring the single-resource GRM guard (validation
/// errors belong to the solver, not the fast path). The returned lane
/// is by construction the **binding resource** a full per-lane
/// evaluation in the same order would report.
pub fn first_binding_resource(
    states: &[SystemState],
    requester: usize,
    amounts: &[f64],
    scratch: &mut Vec<f64>,
) -> Option<(usize, f64)> {
    for (r, (state, &amount)) in states.iter().zip(amounts).enumerate() {
        if !(amount.is_finite() && amount > 0.0) {
            continue;
        }
        let reachable = admission_bound(state, requester, scratch);
        if exceeds_bound(amount, reachable) {
            return Some((r, reachable));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreements_flow::{AgreementMatrix, TransitiveFlow};

    fn state(n: usize, edges: &[(usize, usize, f64)], v: Vec<f64>) -> SystemState {
        let mut s = AgreementMatrix::zeros(n);
        for &(i, j, w) in edges {
            s.set(i, j, w).unwrap();
        }
        let flow = TransitiveFlow::compute(&s, n - 1);
        SystemState::new(flow, None, v).unwrap()
    }

    #[test]
    fn bound_is_own_availability_plus_saturated_inflows() {
        let st = state(3, &[(1, 0, 0.5), (2, 0, 0.25)], vec![2.0, 8.0, 8.0]);
        let mut bound = Vec::new();
        let reachable = admission_bound(&st, 0, &mut bound);
        assert_eq!(bound.len(), 3);
        assert!((bound[0] - 2.0).abs() < 1e-12, "own availability");
        assert!((bound[1] - 4.0).abs() < 1e-12, "50% of 8");
        assert!((bound[2] - 2.0).abs() < 1e-12, "25% of 8");
        assert!((reachable - 8.0).abs() < 1e-12);
    }

    #[test]
    fn scratch_is_cleared_between_calls() {
        let st = state(2, &[(1, 0, 0.5)], vec![1.0, 4.0]);
        let mut bound = vec![99.0; 7];
        let reachable = admission_bound(&st, 0, &mut bound);
        assert_eq!(bound.len(), 2);
        assert!((reachable - 3.0).abs() < 1e-12);
    }

    #[test]
    fn binding_resource_is_first_refusing_lane() {
        // Lane 0 (cpu) is roomy; lane 1 (bandwidth) is nearly empty.
        let cpu = state(2, &[(1, 0, 0.5)], vec![4.0, 4.0]);
        let bw = state(2, &[(1, 0, 0.5)], vec![0.1, 0.1]);
        let states = [cpu, bw];
        let mut scratch = Vec::new();
        assert_eq!(first_binding_resource(&states, 0, &[1.0, 0.1], &mut scratch), None);
        let (lane, reachable) =
            first_binding_resource(&states, 0, &[1.0, 2.0], &mut scratch).unwrap();
        assert_eq!(lane, 1, "bandwidth binds, not cpu");
        assert!((reachable - 0.15).abs() < 1e-12, "reachable {reachable}");
        // Non-positive and non-finite lanes are skipped, so a hopeless
        // amount there never masks the true binding lane.
        let (lane, _) = first_binding_resource(&states, 0, &[f64::NAN, 2.0], &mut scratch).unwrap();
        assert_eq!(lane, 1);
        assert_eq!(first_binding_resource(&states, 0, &[0.0, 0.1], &mut scratch), None);
    }

    #[test]
    fn slack_admits_borderline_requests() {
        let reachable = 10.0;
        assert!(!exceeds_bound(10.0, reachable));
        assert!(!exceeds_bound(10.0 + 0.5 * ADMISSION_SLACK, reachable));
        assert!(exceeds_bound(10.0 + 2.0 * ADMISSION_SLACK, reachable));
    }
}
