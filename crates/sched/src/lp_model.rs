//! LP formulations of the allocation problem (paper §3.1).

use crate::admission::{admission_bound, exceeds_bound};
use crate::error::SchedError;
use crate::state::{Allocation, SystemState};
use agreements_lp::{Problem, Relation, Sense, SimplexOptions, VarId};

/// Which encoding of the §3.1 linear system to solve. Both reach the same
/// optimum (verified by tests and the `ablation_lp_formulation` bench);
/// the reduced form is ~n× smaller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Formulation {
    /// The paper's verbatim system over `I'_ij, C'_i, V'_i, θ`
    /// (`n² + n + 1` variables, constraints (1)–(6)).
    Full,
    /// Substituted system over the draw vector `d` and `θ`
    /// (`n + 1` variables): constraint (1) `I'_ij = V'_i·T_ij` is folded
    /// into (2), leaving `drop_i = d_i + Σ_{k≠i} T_ki·d_k ≤ θ`.
    Reduced,
}

/// Numerical floor under which a draw is treated as zero.
pub(crate) const DRAW_EPS: f64 = 1e-9;

/// Solve the allocation problem: requester `a` asks for `x` units.
///
/// Runs the admission check (`x ≤ C_a`), then the placement LP minimizing
/// `θ = max_{i≠a}(C_i − C'_i)`.
pub fn solve_allocation(
    state: &SystemState,
    a: usize,
    x: f64,
    formulation: Formulation,
    opts: &SimplexOptions,
) -> Result<Allocation, SchedError> {
    let n = state.n();
    if a >= n {
        return Err(SchedError::UnknownPrincipal { index: a, n });
    }
    if !x.is_finite() || x < 0.0 {
        return Err(SchedError::InvalidRequest { amount: x });
    }
    if x == 0.0 {
        return Ok(Allocation { requester: a, amount: 0.0, draws: vec![0.0; n], theta: 0.0 });
    }

    // Admission: the most `a` can draw is its own availability plus each
    // owner's saturated inflow (shared arithmetic, `crate::admission`).
    let mut bound = Vec::with_capacity(n);
    let reachable = admission_bound(state, a, &mut bound);
    if exceeds_bound(x, reachable) {
        return Err(SchedError::InsufficientCapacity {
            requester: a,
            capacity: reachable,
            requested: x,
            resource: None,
        });
    }
    // Floating-point slack: if x is within tolerance of the reachable
    // total, shave it so the LP stays feasible.
    let x = x.min(reachable);

    let (draws, theta) = match formulation {
        Formulation::Reduced => solve_reduced(state, a, x, &bound, opts)?,
        Formulation::Full => solve_full(state, a, x, &bound, opts)?,
    };
    let draws: Vec<f64> = draws.into_iter().map(|d| if d < DRAW_EPS { 0.0 } else { d }).collect();
    Ok(Allocation { requester: a, amount: x, draws, theta })
}

/// Reduced system: variables `d_i ∈ [0, bound_i]` and `θ ≥ 0`;
/// `Σ d = x`; for every `i ≠ a`: `d_i + Σ_{k≠i} T[k][i]·d_k ≤ θ`.
fn solve_reduced(
    state: &SystemState,
    a: usize,
    x: f64,
    bound: &[f64],
    opts: &SimplexOptions,
) -> Result<(Vec<f64>, f64), SchedError> {
    let n = state.n();
    let mut p = Problem::new(Sense::Minimize);
    let d: Vec<VarId> =
        (0..n).map(|i| p.add_var(&format!("d{i}"), 0.0, bound[i].max(0.0), 0.0)).collect();
    let theta = p.add_var("theta", 0.0, f64::INFINITY, 1.0);

    let all: Vec<(VarId, f64)> = d.iter().map(|&v| (v, 1.0)).collect();
    p.add_constraint(&all, Relation::Eq, x);

    for i in 0..n {
        if i == a {
            continue;
        }
        // drop_i = d_i + Σ_{k≠i} T[k][i]·d_k ≤ θ.
        let mut terms: Vec<(VarId, f64)> = vec![(d[i], 1.0), (theta, -1.0)];
        for k in 0..n {
            if k != i {
                let t = state.flow.coefficient(k, i);
                if t > 0.0 {
                    terms.push((d[k], t));
                }
            }
        }
        p.add_constraint(&terms, Relation::Le, 0.0);
    }

    let sol = p.solve_with(opts)?;
    let draws = d.iter().map(|&v| sol.value(v)).collect();
    Ok((draws, sol.objective))
}

/// Full system, constraints (1)–(6) of §3.1 (with (6) over `i ≠ a`; see
/// crate docs for why the requester is excluded).
pub(crate) fn solve_full(
    state: &SystemState,
    a: usize,
    x: f64,
    bound: &[f64],
    opts: &SimplexOptions,
) -> Result<(Vec<f64>, f64), SchedError> {
    let n = state.n();
    let v = &state.availability;
    // Pre-allocation capacities in the model's own linear terms
    // (C_i = V_i + Σ_k V_k·T[k][i]), so (6) is consistent with (1)+(2).
    let cap_lin: Vec<f64> = (0..n)
        .map(|i| {
            v[i] + (0..n)
                .filter(|&k| k != i)
                .map(|k| v[k] * state.flow.coefficient(k, i))
                .sum::<f64>()
        })
        .collect();
    let mut p = Problem::new(Sense::Minimize);

    // V'_i with bound (4): V_i − bound_i ≤ V'_i ≤ V_i.
    let vp: Vec<VarId> = (0..n)
        .map(|i| p.add_var(&format!("v'{i}"), (v[i] - bound[i]).max(0.0), v[i], 0.0))
        .collect();
    // I'_ki for k ≠ i.
    let mut ip = vec![vec![None; n]; n];
    for k in 0..n {
        for i in 0..n {
            if k != i {
                ip[k][i] =
                    Some(p.add_var(&format!("i'{k}_{i}"), f64::NEG_INFINITY, f64::INFINITY, 0.0));
            }
        }
    }
    // C'_i for i ≠ a.
    let cp: Vec<Option<VarId>> = (0..n)
        .map(|i| {
            (i != a).then(|| p.add_var(&format!("c'{i}"), f64::NEG_INFINITY, f64::INFINITY, 0.0))
        })
        .collect();
    let theta = p.add_var("theta", 0.0, f64::INFINITY, 1.0);

    // (1) I'_ki = V'_k · T[k][i].
    for k in 0..n {
        for i in 0..n {
            if let Some(ivar) = ip[k][i] {
                let t = state.flow.coefficient(k, i);
                p.add_constraint(&[(ivar, 1.0), (vp[k], -t)], Relation::Eq, 0.0);
            }
        }
    }
    // (2) C'_i = V'_i + Σ_{k≠i} I'_ki  (i ≠ a).
    for i in 0..n {
        if let Some(cvar) = cp[i] {
            let mut terms = vec![(cvar, 1.0), (vp[i], -1.0)];
            for (k, row) in ip.iter().enumerate() {
                if let Some(ivar) = row[i] {
                    let _ = k;
                    terms.push((ivar, -1.0));
                }
            }
            p.add_constraint(&terms, Relation::Eq, 0.0);
        }
    }
    // (5) Σ (V_i − V'_i) = x  ⇔  Σ V'_i = Σ V_i − x.
    let total_v: f64 = v.iter().sum();
    let sum_terms: Vec<(VarId, f64)> = vp.iter().map(|&var| (var, 1.0)).collect();
    p.add_constraint(&sum_terms, Relation::Eq, total_v - x);
    // (6) C_i − θ ≤ C'_i ≤ C_i  (i ≠ a).
    for i in 0..n {
        if let Some(cvar) = cp[i] {
            let ci = cap_lin[i];
            p.add_constraint(&[(cvar, 1.0), (theta, 1.0)], Relation::Ge, ci);
            p.add_constraint(&[(cvar, 1.0)], Relation::Le, ci);
        }
    }

    let sol = p.solve_with(opts)?;
    let draws = (0..n).map(|i| v[i] - sol.value(vp[i])).collect();
    Ok((draws, sol.objective))
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreements_flow::{AgreementMatrix, TransitiveFlow};

    const EPS: f64 = 1e-7;

    fn mk_state(n: usize, edges: &[(usize, usize, f64)], v: Vec<f64>, level: usize) -> SystemState {
        let mut s = AgreementMatrix::zeros(n);
        for &(i, j, w) in edges {
            s.set(i, j, w).unwrap();
        }
        let flow = TransitiveFlow::compute(&s, level);
        SystemState::new(flow, None, v).unwrap()
    }

    fn opts() -> SimplexOptions {
        SimplexOptions::default()
    }

    #[test]
    fn local_request_served_locally() {
        let st = mk_state(2, &[(0, 1, 0.5), (1, 0, 0.5)], vec![10.0, 10.0], 1);
        let a = solve_allocation(&st, 0, 3.0, Formulation::Reduced, &opts()).unwrap();
        assert!((a.draws[0] - 3.0).abs() < EPS, "local draw preferred: {:?}", a.draws);
        assert!(a.draws[1].abs() < EPS);
        assert!((a.theta - 1.5).abs() < EPS, "C_1 loses 0.5 * 3 = 1.5");
    }

    #[test]
    fn exhausted_requester_draws_remotely() {
        let st = mk_state(2, &[(1, 0, 0.5)], vec![0.0, 10.0], 1);
        let a = solve_allocation(&st, 0, 4.0, Formulation::Reduced, &opts()).unwrap();
        assert!((a.draws[1] - 4.0).abs() < EPS);
        assert!((a.remote() - 4.0).abs() < EPS);
        assert!((a.theta - 4.0).abs() < EPS, "owner 1 loses the full 4");
    }

    #[test]
    fn admission_rejects_beyond_reach() {
        let st = mk_state(2, &[(1, 0, 0.5)], vec![1.0, 10.0], 1);
        // Reachable: 1 + 0.5*10 = 6.
        match solve_allocation(&st, 0, 7.0, Formulation::Reduced, &opts()) {
            Err(SchedError::InsufficientCapacity { capacity, requested, .. }) => {
                assert!((capacity - 6.0).abs() < EPS);
                assert_eq!(requested, 7.0);
            }
            other => panic!("expected insufficient capacity, got {other:?}"),
        }
        // Exactly at the boundary succeeds.
        let a = solve_allocation(&st, 0, 6.0, Formulation::Reduced, &opts()).unwrap();
        assert!((a.amount - 6.0).abs() < EPS);
    }

    #[test]
    fn no_agreement_no_remote_draw() {
        let st = mk_state(2, &[], vec![5.0, 100.0], 1);
        let a = solve_allocation(&st, 0, 5.0, Formulation::Reduced, &opts()).unwrap();
        assert!((a.draws[0] - 5.0).abs() < EPS);
        assert_eq!(a.draws[1], 0.0);
        assert!(solve_allocation(&st, 0, 5.1, Formulation::Reduced, &opts()).is_err());
    }

    #[test]
    fn zero_request_is_trivial() {
        let st = mk_state(2, &[], vec![5.0, 5.0], 1);
        let a = solve_allocation(&st, 1, 0.0, Formulation::Full, &opts()).unwrap();
        assert_eq!(a.draws, vec![0.0, 0.0]);
        assert_eq!(a.theta, 0.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let st = mk_state(2, &[], vec![5.0, 5.0], 1);
        assert!(matches!(
            solve_allocation(&st, 5, 1.0, Formulation::Reduced, &opts()),
            Err(SchedError::UnknownPrincipal { .. })
        ));
        assert!(matches!(
            solve_allocation(&st, 0, -1.0, Formulation::Reduced, &opts()),
            Err(SchedError::InvalidRequest { .. })
        ));
        assert!(matches!(
            solve_allocation(&st, 0, f64::NAN, Formulation::Reduced, &opts()),
            Err(SchedError::InvalidRequest { .. })
        ));
    }

    #[test]
    fn spreads_draws_to_minimize_max_perturbation() {
        // Requester 0 exhausted; owners 1 and 2 symmetric; drawing all
        // from one would perturb it fully, so the LP splits evenly.
        let st = mk_state(3, &[(1, 0, 0.5), (2, 0, 0.5)], vec![0.0, 10.0, 10.0], 1);
        let a = solve_allocation(&st, 0, 6.0, Formulation::Reduced, &opts()).unwrap();
        assert!((a.draws[1] - 3.0).abs() < EPS, "{:?}", a.draws);
        assert!((a.draws[2] - 3.0).abs() < EPS);
        assert!((a.theta - 3.0).abs() < EPS);
    }

    #[test]
    fn asymmetric_entitlements_respected() {
        // Owner 1 shares 80%, owner 2 shares 10% with requester 0.
        let st = mk_state(3, &[(1, 0, 0.8), (2, 0, 0.1)], vec![0.0, 10.0, 10.0], 1);
        let a = solve_allocation(&st, 0, 9.0, Formulation::Reduced, &opts()).unwrap();
        // Entitlements: 8 from 1, 1 from 2. Both must saturate to reach 9.
        assert!((a.draws[1] - 8.0).abs() < EPS);
        assert!((a.draws[2] - 1.0).abs() < EPS);
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn full_and_reduced_agree() {
        let configs: Vec<(usize, Vec<(usize, usize, f64)>, Vec<f64>, usize, f64)> = vec![
            (2, vec![(0, 1, 0.5), (1, 0, 0.5)], vec![10.0, 10.0], 1, 3.0),
            (3, vec![(1, 0, 0.5), (2, 0, 0.5), (1, 2, 0.2)], vec![0.0, 10.0, 8.0], 2, 6.0),
            (4, vec![(1, 0, 0.8), (2, 1, 0.8), (3, 2, 0.8)], vec![1.0, 4.0, 4.0, 4.0], 3, 5.0),
            (3, vec![(1, 0, 0.3), (2, 0, 0.9)], vec![2.0, 5.0, 5.0], 1, 6.0),
        ];
        for (n, edges, v, level, x) in configs {
            let st = mk_state(n, &edges, v, level);
            let r = solve_allocation(&st, 0, x, Formulation::Reduced, &opts()).unwrap();
            let f = solve_allocation(&st, 0, x, Formulation::Full, &opts()).unwrap();
            assert!(
                (r.theta - f.theta).abs() < 1e-6,
                "theta mismatch: reduced {} vs full {} (n={n})",
                r.theta,
                f.theta
            );
            let sum_r: f64 = r.draws.iter().sum();
            let sum_f: f64 = f.draws.iter().sum();
            assert!((sum_r - x).abs() < 1e-6);
            assert!((sum_f - x).abs() < 1e-6);
        }
    }

    #[test]
    fn transitive_level_changes_reach() {
        // Chain 2 -> 1 -> 0 at 50%; level 1 gives 0 nothing from 2.
        let edges = vec![(1, 0, 0.5), (2, 1, 0.5)];
        let st1 = mk_state(3, &edges, vec![0.0, 0.0, 8.0], 1);
        assert!(matches!(
            solve_allocation(&st1, 0, 1.0, Formulation::Reduced, &opts()),
            Err(SchedError::InsufficientCapacity { .. })
        ));
        let st2 = mk_state(3, &edges, vec![0.0, 0.0, 8.0], 2);
        let a = solve_allocation(&st2, 0, 1.0, Formulation::Reduced, &opts()).unwrap();
        assert!((a.draws[2] - 1.0).abs() < EPS, "transitive draw from 2");
    }

    #[test]
    fn draws_respect_saturation_with_absolute() {
        use agreements_flow::AbsoluteMatrix;
        let mut s = AgreementMatrix::zeros(2);
        s.set(1, 0, 0.5).unwrap();
        let flow = TransitiveFlow::compute(&s, 1);
        let mut abs = AbsoluteMatrix::zeros(2);
        abs.set(1, 0, 4.0).unwrap();
        let st = SystemState::new(flow, Some(abs), vec![0.0, 6.0]).unwrap();
        // Entitlement: min(0.5*6 + 4, 6) = 6; all of owner 1.
        let a = solve_allocation(&st, 0, 6.0, Formulation::Reduced, &opts()).unwrap();
        assert!((a.draws[1] - 6.0).abs() < EPS);
        assert!(solve_allocation(&st, 0, 6.5, Formulation::Reduced, &opts()).is_err());
    }
}
