//! Allocation policies: the LP global scheduler and the baselines it is
//! compared against in the paper's Figure 13.

use crate::error::SchedError;
use crate::lp_model::{solve_allocation, Formulation};
use crate::state::{perturbation, Allocation, SystemState};
use agreements_flow::capacity::saturated_inflow;
use agreements_flow::AgreementMatrix;
use agreements_lp::SimplexOptions;
use std::sync::Mutex;

/// A strategy for placing a resource request across owners under sharing
/// agreements.
pub trait AllocationPolicy {
    /// Place a request of exactly `x` units for `requester`; errs with
    /// [`SchedError::InsufficientCapacity`] when `x` exceeds what the
    /// policy can reach.
    fn allocate(
        &self,
        state: &SystemState,
        requester: usize,
        x: f64,
    ) -> Result<Allocation, SchedError>;

    /// Best-effort variant: place as much of `x` as the policy can
    /// (possibly zero), never erring on capacity. Used by the simulator,
    /// where unplaced work simply stays queued.
    fn allocate_up_to(
        &self,
        state: &SystemState,
        requester: usize,
        x: f64,
    ) -> Result<Allocation, SchedError> {
        match self.allocate(state, requester, x) {
            Ok(a) => Ok(a),
            Err(SchedError::InsufficientCapacity { capacity, .. }) => {
                // Retry at exactly the reachable amount. The solver already
                // shaves `x` to the reachable total internally, so an extra
                // epsilon here would only under-allocate; clamping to
                // `[0, x]` guards against a policy reporting capacity
                // above the request or below zero.
                let y = capacity.max(0.0).min(x);
                self.allocate(state, requester, y)
            }
            Err(e) => Err(e),
        }
    }

    /// Called by drivers at the start of each independent run or replay.
    /// Stateful policies drop cross-run acceleration state here (saved
    /// simplex bases, counters) so repeated runs of the same driver are
    /// reproducible. Stateless policies keep the default no-op.
    fn begin_run(&self) {}

    /// Attach a telemetry plane. Policies that own an instrumented
    /// component (the cached LP solver) forward the handle; the default
    /// ignores it, so stateless baselines stay untouched.
    fn set_telemetry(&self, _telemetry: &agreements_telemetry::Telemetry) {}

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's scheme: global LP minimizing the worst capacity
/// perturbation inflicted on other principals (§3.1).
#[derive(Debug, Clone)]
pub struct LpPolicy {
    /// Which encoding to solve.
    pub formulation: Formulation,
    /// Simplex configuration.
    pub opts: SimplexOptions,
}

impl LpPolicy {
    /// The production configuration: reduced formulation, default simplex.
    pub fn reduced() -> Self {
        LpPolicy { formulation: Formulation::Reduced, opts: SimplexOptions::default() }
    }

    /// The paper-verbatim configuration (ablation).
    pub fn full() -> Self {
        LpPolicy { formulation: Formulation::Full, opts: SimplexOptions::default() }
    }
}

impl AllocationPolicy for LpPolicy {
    fn allocate(
        &self,
        state: &SystemState,
        requester: usize,
        x: f64,
    ) -> Result<Allocation, SchedError> {
        solve_allocation(state, requester, x, self.formulation, &self.opts)
    }

    fn name(&self) -> &'static str {
        match self.formulation {
            Formulation::Full => "lp-full",
            Formulation::Reduced => "lp-reduced",
        }
    }
}

/// [`LpPolicy`]'s semantics served by a persistent [`AllocationSolver`]:
/// the standardized model skeleton and the simplex workspace survive
/// across consultations and `allocate_up_to` places in a single solve.
/// This is what the simulator consultation loop runs on.
///
/// The [`AllocationPolicy`] trait takes `&self`, so the solver sits
/// behind a [`Mutex`]; contention is nil because every simulator owns
/// its policy exclusively (parallel sweeps give each configuration its
/// own instance). [`AllocationPolicy::begin_run`] drops the saved basis,
/// which keeps repeated runs of one simulator bit-reproducible.
///
/// [`CachedLpPolicy::reduced`] keeps warm starting off and is
/// bit-identical to [`LpPolicy`]; [`CachedLpPolicy::reduced_warm`]
/// additionally resumes each same-model solve from the previous optimal
/// basis, which agrees with [`LpPolicy`] to solver tolerance only.
#[derive(Debug)]
pub struct CachedLpPolicy {
    solver: Mutex<crate::solver::AllocationSolver>,
}

impl CachedLpPolicy {
    /// The production configuration: reduced formulation, cached skeleton
    /// and workspace, warm starting off — bit-identical to [`LpPolicy`].
    pub fn reduced() -> Self {
        Self::from_solver(crate::solver::AllocationSolver::reduced())
    }

    /// Like [`CachedLpPolicy::reduced`] but resuming from the previous
    /// optimal basis when the model is unchanged. Fastest, but agreement
    /// with [`LpPolicy`] is to solver tolerance, not bit-exact — opt in
    /// where that is acceptable (benchmarks, standalone studies).
    pub fn reduced_warm() -> Self {
        let mut solver = crate::solver::AllocationSolver::reduced();
        solver.set_warm_start(true);
        Self::from_solver(solver)
    }

    /// Wrap an explicitly configured solver.
    pub fn from_solver(solver: crate::solver::AllocationSolver) -> Self {
        CachedLpPolicy { solver: Mutex::new(solver) }
    }

    /// Usage counters of the underlying solver.
    pub fn stats(&self) -> crate::solver::SolverStats {
        self.lock().stats()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, crate::solver::AllocationSolver> {
        // A poisoned lock means a previous solve panicked mid-update;
        // the solver re-derives all cached state from the next request,
        // so continuing is sound.
        self.solver.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl AllocationPolicy for CachedLpPolicy {
    fn allocate(
        &self,
        state: &SystemState,
        requester: usize,
        x: f64,
    ) -> Result<Allocation, SchedError> {
        self.lock().allocate(state, requester, x)
    }

    fn allocate_up_to(
        &self,
        state: &SystemState,
        requester: usize,
        x: f64,
    ) -> Result<Allocation, SchedError> {
        self.lock().allocate_up_to(state, requester, x)
    }

    fn begin_run(&self) {
        self.lock().invalidate_warm_start();
    }

    fn set_telemetry(&self, telemetry: &agreements_telemetry::Telemetry) {
        self.lock().set_telemetry(telemetry.clone());
    }

    fn name(&self) -> &'static str {
        "lp-cached"
    }
}

/// The Figure 13 baseline: end-point enforcement with proportional
/// redistribution. Local resources first; overflow is split across other
/// owners **in proportion to the direct agreement quantities**
/// `S[k][requester]`, regardless of how busy those owners are ("the
/// non-linear scheme tends to redistribute requests to nearby ISPs no
/// matter whether they are busy or not"). Each owner's end point enforces
/// its agreement *quota* — by default the share of its currently
/// *available* resources, or, when [`ProportionalPolicy::with_endpoint_caps`]
/// is set, the share of its raw capacity (blind acceptance: redirected
/// work queues at the busy owner). Work bounced by a quota stays local.
#[derive(Debug, Clone)]
pub struct ProportionalPolicy {
    /// The direct (level-1) agreement matrix.
    pub direct: AgreementMatrix,
    /// Per-owner capacity base for the end-point quota. `None` bases the
    /// quota on current availability (`S[k][A]·V_k`); `Some(caps)` bases
    /// it on raw capacity (`S[k][A]·caps[k]`), accepting work regardless
    /// of load — the paper's end-point scheme.
    pub endpoint_caps: Option<Vec<f64>>,
}

impl ProportionalPolicy {
    /// Build from the direct agreement matrix (availability-based quota).
    pub fn new(direct: AgreementMatrix) -> Self {
        ProportionalPolicy { direct, endpoint_caps: None }
    }

    /// Switch to blind capacity-based end-point quotas (paper Figure 13).
    pub fn with_endpoint_caps(mut self, caps: Vec<f64>) -> Self {
        self.endpoint_caps = Some(caps);
        self
    }

    /// The quota owner `k` enforces for `requester` given current
    /// availability `v`.
    fn quota(&self, k: usize, requester: usize, v: &[f64]) -> f64 {
        let share = self.direct.get(k, requester);
        match &self.endpoint_caps {
            Some(caps) => share * caps[k],
            None => share * v[k],
        }
    }
}

impl AllocationPolicy for ProportionalPolicy {
    fn allocate(
        &self,
        state: &SystemState,
        requester: usize,
        x: f64,
    ) -> Result<Allocation, SchedError> {
        let n = state.n();
        if requester >= n {
            return Err(SchedError::UnknownPrincipal { index: requester, n });
        }
        if !x.is_finite() || x < 0.0 {
            return Err(SchedError::InvalidRequest { amount: x });
        }
        let v = &state.availability;
        let mut draws = vec![0.0; n];
        // Local first.
        draws[requester] = x.min(v[requester]);
        let mut overflow = x - draws[requester];
        if overflow > 1e-12 {
            let weights: Vec<f64> = (0..n)
                .map(|k| if k == requester { 0.0 } else { self.direct.get(k, requester) })
                .collect();
            let total_w: f64 = weights.iter().sum();
            if total_w > 0.0 {
                // Proportional split; each end point enforces its quota.
                // Undeliverable residue bounces back (handled below as an
                // admission failure).
                let mut placed = 0.0;
                for k in 0..n {
                    if weights[k] == 0.0 {
                        continue;
                    }
                    let want = overflow * weights[k] / total_w;
                    let got = want.min(self.quota(k, requester, v));
                    draws[k] = got;
                    placed += got;
                }
                overflow -= placed;
            }
        }
        if overflow > 1e-9 {
            let capacity = x - overflow;
            return Err(SchedError::InsufficientCapacity {
                requester,
                capacity,
                requested: x,
                resource: None,
            });
        }
        // Assign residual rounding dust to the requester's local draw.
        let sum: f64 = draws.iter().sum();
        draws[requester] += (x - sum).max(0.0);
        let theta = perturbation(state, requester, &draws);
        Ok(Allocation { requester, amount: x, draws, theta })
    }

    /// End-point semantics are inherently partial: every owner accepts
    /// whatever its agreement cap allows of its proportional share, and
    /// the bounced remainder simply stays queued at the requester. So the
    /// best-effort variant keeps the successfully placed part instead of
    /// re-running the split at a smaller total (which would re-shrink the
    /// shares of owners that had room).
    fn allocate_up_to(
        &self,
        state: &SystemState,
        requester: usize,
        x: f64,
    ) -> Result<Allocation, SchedError> {
        match self.allocate(state, requester, x) {
            Ok(a) => Ok(a),
            Err(SchedError::InsufficientCapacity { .. }) => {
                let n = state.n();
                let v = &state.availability;
                let mut draws = vec![0.0; n];
                draws[requester] = x.min(v[requester]);
                let overflow = x - draws[requester];
                let weights: Vec<f64> = (0..n)
                    .map(|k| if k == requester { 0.0 } else { self.direct.get(k, requester) })
                    .collect();
                let total_w: f64 = weights.iter().sum();
                if total_w > 0.0 && overflow > 0.0 {
                    for k in 0..n {
                        if weights[k] > 0.0 {
                            let want = overflow * weights[k] / total_w;
                            draws[k] = want.min(self.quota(k, requester, v));
                        }
                    }
                }
                let amount: f64 = draws.iter().sum();
                let theta = perturbation(state, requester, &draws);
                Ok(Allocation { requester, amount, draws, theta })
            }
            Err(e) => Err(e),
        }
    }

    fn name(&self) -> &'static str {
        "proportional-endpoint"
    }
}

/// A greedy baseline: local first, then owners by descending entitlement,
/// saturating each before moving on. Cheap, availability-aware, but blind
/// to the perturbation it causes.
#[derive(Debug, Clone, Default)]
pub struct GreedyPolicy;

impl AllocationPolicy for GreedyPolicy {
    fn allocate(
        &self,
        state: &SystemState,
        requester: usize,
        x: f64,
    ) -> Result<Allocation, SchedError> {
        let n = state.n();
        if requester >= n {
            return Err(SchedError::UnknownPrincipal { index: requester, n });
        }
        if !x.is_finite() || x < 0.0 {
            return Err(SchedError::InvalidRequest { amount: x });
        }
        let v = &state.availability;
        let mut draws = vec![0.0; n];
        draws[requester] = x.min(v[requester]);
        let mut remaining = x - draws[requester];
        if remaining > 1e-12 {
            let mut entitlements: Vec<(usize, f64)> = (0..n)
                .filter(|&k| k != requester)
                .map(|k| {
                    (k, saturated_inflow(&state.flow, state.absolute.as_ref(), v, k, requester))
                })
                .collect();
            entitlements.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            for (k, ent) in entitlements {
                if remaining <= 1e-12 {
                    break;
                }
                let take = remaining.min(ent);
                if take > 0.0 {
                    draws[k] = take;
                    remaining -= take;
                }
            }
        }
        if remaining > 1e-9 {
            return Err(SchedError::InsufficientCapacity {
                requester,
                capacity: x - remaining,
                requested: x,
                resource: None,
            });
        }
        let theta = perturbation(state, requester, &draws);
        Ok(Allocation { requester, amount: x, draws, theta })
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreements_flow::TransitiveFlow;

    const EPS: f64 = 1e-7;

    fn mk(
        n: usize,
        edges: &[(usize, usize, f64)],
        v: Vec<f64>,
        level: usize,
    ) -> (SystemState, AgreementMatrix) {
        let mut s = AgreementMatrix::zeros(n);
        for &(i, j, w) in edges {
            s.set(i, j, w).unwrap();
        }
        let flow = TransitiveFlow::compute(&s, level);
        (SystemState::new(flow, None, v).unwrap(), s)
    }

    #[test]
    fn proportional_splits_by_agreement_quantity() {
        // Owners 1 and 2 share 20% and 10% with requester 0.
        let (st, s) = mk(3, &[(1, 0, 0.2), (2, 0, 0.1)], vec![0.0, 100.0, 100.0], 1);
        let pol = ProportionalPolicy::new(s);
        let a = pol.allocate(&st, 0, 9.0).unwrap();
        assert!((a.draws[1] - 6.0).abs() < EPS, "2/3 of 9: {:?}", a.draws);
        assert!((a.draws[2] - 3.0).abs() < EPS);
    }

    #[test]
    fn proportional_is_blind_to_busyness() {
        // Owner 1 is nearly exhausted but has the bigger agreement: the
        // proportional scheme still routes most of the overflow at it and
        // the end point bounces the excess -> insufficient.
        let (st, s) = mk(3, &[(1, 0, 0.8), (2, 0, 0.1)], vec![0.0, 1.0, 100.0], 1);
        let pol = ProportionalPolicy::new(s.clone());
        match pol.allocate(&st, 0, 9.0) {
            Err(SchedError::InsufficientCapacity { capacity, .. }) => {
                // Wants 8 from owner 1 (cap 0.8), 1 from owner 2 (ok).
                assert!(capacity < 9.0);
            }
            Ok(a) => panic!("expected bounce, got {:?}", a.draws),
            Err(e) => panic!("unexpected {e}"),
        }
        // The LP, seeing availability, places it all.
        let lp = LpPolicy::reduced();
        let a = lp.allocate(&st, 0, 9.0).unwrap();
        assert!((a.draws.iter().sum::<f64>() - 9.0).abs() < EPS);
    }

    #[test]
    fn proportional_local_first() {
        let (st, s) = mk(2, &[(1, 0, 0.5)], vec![10.0, 10.0], 1);
        let pol = ProportionalPolicy::new(s);
        let a = pol.allocate(&st, 0, 8.0).unwrap();
        assert!((a.draws[0] - 8.0).abs() < EPS);
        assert_eq!(a.draws[1], 0.0);
    }

    #[test]
    fn greedy_saturates_best_entitlement_first() {
        let (st, _) = mk(3, &[(1, 0, 0.8), (2, 0, 0.3)], vec![0.0, 10.0, 10.0], 1);
        let g = GreedyPolicy;
        let a = g.allocate(&st, 0, 9.0).unwrap();
        assert!((a.draws[1] - 8.0).abs() < EPS, "{:?}", a.draws);
        assert!((a.draws[2] - 1.0).abs() < EPS);
    }

    #[test]
    fn lp_beats_greedy_on_perturbation() {
        let (st, _) = mk(3, &[(1, 0, 0.5), (2, 0, 0.5)], vec![0.0, 10.0, 10.0], 1);
        let lp = LpPolicy::reduced().allocate(&st, 0, 6.0).unwrap();
        let gr = GreedyPolicy.allocate(&st, 0, 6.0).unwrap();
        assert!(lp.theta <= gr.theta + EPS, "lp {} vs greedy {}", lp.theta, gr.theta);
        assert!(gr.theta > lp.theta + 1.0, "greedy concentrates: {} vs {}", gr.theta, lp.theta);
    }

    #[test]
    fn allocate_up_to_clamps_gracefully() {
        let (st, s) = mk(2, &[(1, 0, 0.5)], vec![1.0, 10.0], 1);
        for pol in [
            Box::new(LpPolicy::reduced()) as Box<dyn AllocationPolicy>,
            Box::new(ProportionalPolicy::new(s.clone())),
            Box::new(GreedyPolicy),
        ] {
            let a = pol.allocate_up_to(&st, 0, 100.0).unwrap();
            assert!(a.amount <= 6.0 + EPS, "{} placed {}", pol.name(), a.amount);
            assert!(a.amount > 0.0);
        }
    }

    #[test]
    fn allocate_up_to_places_exact_reachable_capacity() {
        // Regression: the retry used to shave the reachable amount by
        // 1e-9 "for floating-point safety", permanently leaking capacity.
        // Reachable here is exactly 1 + 0.5·10 = 6.0 and must be placed
        // in full.
        let (st, _) = mk(2, &[(1, 0, 0.5)], vec![1.0, 10.0], 1);
        for pol in
            [Box::new(LpPolicy::reduced()) as Box<dyn AllocationPolicy>, Box::new(GreedyPolicy)]
        {
            let a = pol.allocate_up_to(&st, 0, 100.0).unwrap();
            assert_eq!(a.amount, 6.0, "{} must not shave the clamp", pol.name());
            assert!((a.draws.iter().sum::<f64>() - 6.0).abs() < EPS);
        }
        // A capacity report above the request is clamped back to x.
        let a = LpPolicy::reduced().allocate_up_to(&st, 0, 2.0).unwrap();
        assert_eq!(a.amount, 2.0);
    }

    #[test]
    fn proportional_partial_placement_keeps_deliverable_part() {
        // Owner 1 (80% share) is drained; owner 2 (10%) has room. The
        // partial best-effort keeps owner 2's full quota instead of
        // re-shrinking it.
        let (st, s) = mk(3, &[(1, 0, 0.8), (2, 0, 0.1)], vec![0.0, 1.0, 100.0], 1);
        let pol = ProportionalPolicy::new(s);
        let a = pol.allocate_up_to(&st, 0, 9.0).unwrap();
        // Owner 1 quota: 0.8*1 = 0.8; owner 2 wants 1/9 of 9 = 1, quota 10.
        assert!((a.draws[1] - 0.8).abs() < EPS, "{:?}", a.draws);
        assert!((a.draws[2] - 1.0).abs() < EPS);
        assert!((a.amount - 1.8).abs() < EPS, "placed = sum of draws");
    }

    #[test]
    fn endpoint_caps_make_quota_blind_to_load() {
        // Same scenario, but quotas based on raw capacity 10: owner 1
        // accepts its full proportional share even though it is drained.
        let (st, s) = mk(3, &[(1, 0, 0.8), (2, 0, 0.1)], vec![0.0, 1.0, 100.0], 1);
        let pol = ProportionalPolicy::new(s).with_endpoint_caps(vec![10.0; 3]);
        let a = pol.allocate(&st, 0, 9.0).unwrap();
        assert!((a.draws[1] - 8.0).abs() < EPS, "blind: 8 of 9 at owner 1: {:?}", a.draws);
        assert!((a.draws[2] - 1.0).abs() < EPS);
    }

    #[test]
    fn policy_names_are_distinct() {
        let (_, s) = mk(2, &[], vec![1.0, 1.0], 1);
        let names = [
            LpPolicy::reduced().name(),
            LpPolicy::full().name(),
            CachedLpPolicy::reduced().name(),
            ProportionalPolicy::new(s).name(),
            GreedyPolicy.name(),
        ];
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn cached_policy_agrees_with_lp_policy() {
        // Bit-identical with warm starting off; to tolerance with it on.
        let (mut st, _) = mk(3, &[(1, 0, 0.5), (2, 0, 0.3)], vec![2.0, 10.0, 10.0], 1);
        let exact = CachedLpPolicy::reduced();
        let warm = CachedLpPolicy::reduced_warm();
        let lp = LpPolicy::reduced();
        for x in [1.5, 4.0, 9.0, 50.0] {
            let a = lp.allocate_up_to(&st, 0, x).unwrap();
            let e = exact.allocate_up_to(&st, 0, x).unwrap();
            assert_eq!(a.draws, e.draws, "x={x}");
            assert_eq!(a.theta, e.theta);
            let w = warm.allocate_up_to(&st, 0, x).unwrap();
            assert!((a.theta - w.theta).abs() < 1e-7 * (1.0 + a.theta.abs()));
            assert!((a.amount - w.amount).abs() < 1e-9);
            st.apply(&a).unwrap();
        }
        // The skeleton is reused whenever the zero-bound pattern holds
        // (draining an owner to zero is a legitimate rebuild).
        assert_eq!(exact.stats().solves, 4);
        assert!(
            exact.stats().skeleton_rebuilds < exact.stats().solves,
            "skeleton must be reused: {:?}",
            exact.stats()
        );
    }

    #[test]
    fn begin_run_makes_replays_reproducible() {
        let (st, _) = mk(3, &[(1, 0, 0.5), (2, 0, 0.5)], vec![0.0, 8.0, 6.0], 1);
        let pol = CachedLpPolicy::reduced_warm();
        let run = |p: &CachedLpPolicy| -> Vec<Vec<f64>> {
            p.begin_run();
            [3.0, 7.0, 11.0].iter().map(|&x| p.allocate_up_to(&st, 0, x).unwrap().draws).collect()
        };
        let a = run(&pol);
        let b = run(&pol);
        assert_eq!(a, b, "a replay must not inherit the saved basis");
    }

    #[test]
    fn greedy_tie_breaks_deterministically() {
        let (st, _) = mk(3, &[(1, 0, 0.5), (2, 0, 0.5)], vec![0.0, 10.0, 10.0], 1);
        let a = GreedyPolicy.allocate(&st, 0, 5.0).unwrap();
        let b = GreedyPolicy.allocate(&st, 0, 5.0).unwrap();
        assert_eq!(a.draws, b.draws);
        assert!((a.draws[1] - 5.0).abs() < EPS, "lower index wins ties");
    }
}
