//! Allocation policies: the LP global scheduler and the baselines it is
//! compared against in the paper's Figure 13.

use crate::error::SchedError;
use crate::lp_model::{solve_allocation, Formulation};
use crate::state::{perturbation, Allocation, SystemState};
use agreements_flow::capacity::saturated_inflow;
use agreements_flow::AgreementMatrix;
use agreements_lp::SimplexOptions;

/// A strategy for placing a resource request across owners under sharing
/// agreements.
pub trait AllocationPolicy {
    /// Place a request of exactly `x` units for `requester`; errs with
    /// [`SchedError::InsufficientCapacity`] when `x` exceeds what the
    /// policy can reach.
    fn allocate(
        &self,
        state: &SystemState,
        requester: usize,
        x: f64,
    ) -> Result<Allocation, SchedError>;

    /// Best-effort variant: place as much of `x` as the policy can
    /// (possibly zero), never erring on capacity. Used by the simulator,
    /// where unplaced work simply stays queued.
    fn allocate_up_to(
        &self,
        state: &SystemState,
        requester: usize,
        x: f64,
    ) -> Result<Allocation, SchedError> {
        match self.allocate(state, requester, x) {
            Ok(a) => Ok(a),
            Err(SchedError::InsufficientCapacity { capacity, .. }) => {
                // Retry at the reachable amount (slightly shaved for
                // floating-point safety).
                let y = (capacity - 1e-9).max(0.0);
                self.allocate(state, requester, y)
            }
            Err(e) => Err(e),
        }
    }

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's scheme: global LP minimizing the worst capacity
/// perturbation inflicted on other principals (§3.1).
#[derive(Debug, Clone)]
pub struct LpPolicy {
    /// Which encoding to solve.
    pub formulation: Formulation,
    /// Simplex configuration.
    pub opts: SimplexOptions,
}

impl LpPolicy {
    /// The production configuration: reduced formulation, default simplex.
    pub fn reduced() -> Self {
        LpPolicy { formulation: Formulation::Reduced, opts: SimplexOptions::default() }
    }

    /// The paper-verbatim configuration (ablation).
    pub fn full() -> Self {
        LpPolicy { formulation: Formulation::Full, opts: SimplexOptions::default() }
    }
}

impl AllocationPolicy for LpPolicy {
    fn allocate(
        &self,
        state: &SystemState,
        requester: usize,
        x: f64,
    ) -> Result<Allocation, SchedError> {
        solve_allocation(state, requester, x, self.formulation, &self.opts)
    }

    fn name(&self) -> &'static str {
        match self.formulation {
            Formulation::Full => "lp-full",
            Formulation::Reduced => "lp-reduced",
        }
    }
}

/// The Figure 13 baseline: end-point enforcement with proportional
/// redistribution. Local resources first; overflow is split across other
/// owners **in proportion to the direct agreement quantities**
/// `S[k][requester]`, regardless of how busy those owners are ("the
/// non-linear scheme tends to redistribute requests to nearby ISPs no
/// matter whether they are busy or not"). Each owner's end point enforces
/// its agreement *quota* — by default the share of its currently
/// *available* resources, or, when [`ProportionalPolicy::with_endpoint_caps`]
/// is set, the share of its raw capacity (blind acceptance: redirected
/// work queues at the busy owner). Work bounced by a quota stays local.
#[derive(Debug, Clone)]
pub struct ProportionalPolicy {
    /// The direct (level-1) agreement matrix.
    pub direct: AgreementMatrix,
    /// Per-owner capacity base for the end-point quota. `None` bases the
    /// quota on current availability (`S[k][A]·V_k`); `Some(caps)` bases
    /// it on raw capacity (`S[k][A]·caps[k]`), accepting work regardless
    /// of load — the paper's end-point scheme.
    pub endpoint_caps: Option<Vec<f64>>,
}

impl ProportionalPolicy {
    /// Build from the direct agreement matrix (availability-based quota).
    pub fn new(direct: AgreementMatrix) -> Self {
        ProportionalPolicy { direct, endpoint_caps: None }
    }

    /// Switch to blind capacity-based end-point quotas (paper Figure 13).
    pub fn with_endpoint_caps(mut self, caps: Vec<f64>) -> Self {
        self.endpoint_caps = Some(caps);
        self
    }

    /// The quota owner `k` enforces for `requester` given current
    /// availability `v`.
    fn quota(&self, k: usize, requester: usize, v: &[f64]) -> f64 {
        let share = self.direct.get(k, requester);
        match &self.endpoint_caps {
            Some(caps) => share * caps[k],
            None => share * v[k],
        }
    }
}

impl AllocationPolicy for ProportionalPolicy {
    fn allocate(
        &self,
        state: &SystemState,
        requester: usize,
        x: f64,
    ) -> Result<Allocation, SchedError> {
        let n = state.n();
        if requester >= n {
            return Err(SchedError::UnknownPrincipal { index: requester, n });
        }
        if !x.is_finite() || x < 0.0 {
            return Err(SchedError::InvalidRequest { amount: x });
        }
        let v = &state.availability;
        let mut draws = vec![0.0; n];
        // Local first.
        draws[requester] = x.min(v[requester]);
        let mut overflow = x - draws[requester];
        if overflow > 1e-12 {
            let weights: Vec<f64> = (0..n)
                .map(|k| if k == requester { 0.0 } else { self.direct.get(k, requester) })
                .collect();
            let total_w: f64 = weights.iter().sum();
            if total_w > 0.0 {
                // Proportional split; each end point enforces its quota.
                // Undeliverable residue bounces back (handled below as an
                // admission failure).
                let mut placed = 0.0;
                for k in 0..n {
                    if weights[k] == 0.0 {
                        continue;
                    }
                    let want = overflow * weights[k] / total_w;
                    let got = want.min(self.quota(k, requester, v));
                    draws[k] = got;
                    placed += got;
                }
                overflow -= placed;
            }
        }
        if overflow > 1e-9 {
            let capacity = x - overflow;
            return Err(SchedError::InsufficientCapacity {
                requester,
                capacity,
                requested: x,
            });
        }
        // Assign residual rounding dust to the requester's local draw.
        let sum: f64 = draws.iter().sum();
        draws[requester] += (x - sum).max(0.0);
        let theta = perturbation(state, requester, &draws);
        Ok(Allocation { requester, amount: x, draws, theta })
    }

    /// End-point semantics are inherently partial: every owner accepts
    /// whatever its agreement cap allows of its proportional share, and
    /// the bounced remainder simply stays queued at the requester. So the
    /// best-effort variant keeps the successfully placed part instead of
    /// re-running the split at a smaller total (which would re-shrink the
    /// shares of owners that had room).
    fn allocate_up_to(
        &self,
        state: &SystemState,
        requester: usize,
        x: f64,
    ) -> Result<Allocation, SchedError> {
        match self.allocate(state, requester, x) {
            Ok(a) => Ok(a),
            Err(SchedError::InsufficientCapacity { .. }) => {
                let n = state.n();
                let v = &state.availability;
                let mut draws = vec![0.0; n];
                draws[requester] = x.min(v[requester]);
                let overflow = x - draws[requester];
                let weights: Vec<f64> = (0..n)
                    .map(|k| if k == requester { 0.0 } else { self.direct.get(k, requester) })
                    .collect();
                let total_w: f64 = weights.iter().sum();
                if total_w > 0.0 && overflow > 0.0 {
                    for k in 0..n {
                        if weights[k] > 0.0 {
                            let want = overflow * weights[k] / total_w;
                            draws[k] = want.min(self.quota(k, requester, v));
                        }
                    }
                }
                let amount: f64 = draws.iter().sum();
                let theta = perturbation(state, requester, &draws);
                Ok(Allocation { requester, amount, draws, theta })
            }
            Err(e) => Err(e),
        }
    }

    fn name(&self) -> &'static str {
        "proportional-endpoint"
    }
}

/// A greedy baseline: local first, then owners by descending entitlement,
/// saturating each before moving on. Cheap, availability-aware, but blind
/// to the perturbation it causes.
#[derive(Debug, Clone, Default)]
pub struct GreedyPolicy;

impl AllocationPolicy for GreedyPolicy {
    fn allocate(
        &self,
        state: &SystemState,
        requester: usize,
        x: f64,
    ) -> Result<Allocation, SchedError> {
        let n = state.n();
        if requester >= n {
            return Err(SchedError::UnknownPrincipal { index: requester, n });
        }
        if !x.is_finite() || x < 0.0 {
            return Err(SchedError::InvalidRequest { amount: x });
        }
        let v = &state.availability;
        let mut draws = vec![0.0; n];
        draws[requester] = x.min(v[requester]);
        let mut remaining = x - draws[requester];
        if remaining > 1e-12 {
            let mut entitlements: Vec<(usize, f64)> = (0..n)
                .filter(|&k| k != requester)
                .map(|k| {
                    (k, saturated_inflow(&state.flow, state.absolute.as_ref(), v, k, requester))
                })
                .collect();
            entitlements
                .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            for (k, ent) in entitlements {
                if remaining <= 1e-12 {
                    break;
                }
                let take = remaining.min(ent);
                if take > 0.0 {
                    draws[k] = take;
                    remaining -= take;
                }
            }
        }
        if remaining > 1e-9 {
            return Err(SchedError::InsufficientCapacity {
                requester,
                capacity: x - remaining,
                requested: x,
            });
        }
        let theta = perturbation(state, requester, &draws);
        Ok(Allocation { requester, amount: x, draws, theta })
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreements_flow::TransitiveFlow;

    const EPS: f64 = 1e-7;

    fn mk(
        n: usize,
        edges: &[(usize, usize, f64)],
        v: Vec<f64>,
        level: usize,
    ) -> (SystemState, AgreementMatrix) {
        let mut s = AgreementMatrix::zeros(n);
        for &(i, j, w) in edges {
            s.set(i, j, w).unwrap();
        }
        let flow = TransitiveFlow::compute(&s, level);
        (SystemState::new(flow, None, v).unwrap(), s)
    }

    #[test]
    fn proportional_splits_by_agreement_quantity() {
        // Owners 1 and 2 share 20% and 10% with requester 0.
        let (st, s) = mk(3, &[(1, 0, 0.2), (2, 0, 0.1)], vec![0.0, 100.0, 100.0], 1);
        let pol = ProportionalPolicy::new(s);
        let a = pol.allocate(&st, 0, 9.0).unwrap();
        assert!((a.draws[1] - 6.0).abs() < EPS, "2/3 of 9: {:?}", a.draws);
        assert!((a.draws[2] - 3.0).abs() < EPS);
    }

    #[test]
    fn proportional_is_blind_to_busyness() {
        // Owner 1 is nearly exhausted but has the bigger agreement: the
        // proportional scheme still routes most of the overflow at it and
        // the end point bounces the excess -> insufficient.
        let (st, s) = mk(3, &[(1, 0, 0.8), (2, 0, 0.1)], vec![0.0, 1.0, 100.0], 1);
        let pol = ProportionalPolicy::new(s.clone());
        match pol.allocate(&st, 0, 9.0) {
            Err(SchedError::InsufficientCapacity { capacity, .. }) => {
                // Wants 8 from owner 1 (cap 0.8), 1 from owner 2 (ok).
                assert!(capacity < 9.0);
            }
            Ok(a) => panic!("expected bounce, got {:?}", a.draws),
            Err(e) => panic!("unexpected {e}"),
        }
        // The LP, seeing availability, places it all.
        let lp = LpPolicy::reduced();
        let a = lp.allocate(&st, 0, 9.0).unwrap();
        assert!((a.draws.iter().sum::<f64>() - 9.0).abs() < EPS);
    }

    #[test]
    fn proportional_local_first() {
        let (st, s) = mk(2, &[(1, 0, 0.5)], vec![10.0, 10.0], 1);
        let pol = ProportionalPolicy::new(s);
        let a = pol.allocate(&st, 0, 8.0).unwrap();
        assert!((a.draws[0] - 8.0).abs() < EPS);
        assert_eq!(a.draws[1], 0.0);
    }

    #[test]
    fn greedy_saturates_best_entitlement_first() {
        let (st, _) = mk(3, &[(1, 0, 0.8), (2, 0, 0.3)], vec![0.0, 10.0, 10.0], 1);
        let g = GreedyPolicy;
        let a = g.allocate(&st, 0, 9.0).unwrap();
        assert!((a.draws[1] - 8.0).abs() < EPS, "{:?}", a.draws);
        assert!((a.draws[2] - 1.0).abs() < EPS);
    }

    #[test]
    fn lp_beats_greedy_on_perturbation() {
        let (st, _) = mk(3, &[(1, 0, 0.5), (2, 0, 0.5)], vec![0.0, 10.0, 10.0], 1);
        let lp = LpPolicy::reduced().allocate(&st, 0, 6.0).unwrap();
        let gr = GreedyPolicy.allocate(&st, 0, 6.0).unwrap();
        assert!(lp.theta <= gr.theta + EPS, "lp {} vs greedy {}", lp.theta, gr.theta);
        assert!(gr.theta > lp.theta + 1.0, "greedy concentrates: {} vs {}", gr.theta, lp.theta);
    }

    #[test]
    fn allocate_up_to_clamps_gracefully() {
        let (st, s) = mk(2, &[(1, 0, 0.5)], vec![1.0, 10.0], 1);
        for pol in [
            Box::new(LpPolicy::reduced()) as Box<dyn AllocationPolicy>,
            Box::new(ProportionalPolicy::new(s.clone())),
            Box::new(GreedyPolicy),
        ] {
            let a = pol.allocate_up_to(&st, 0, 100.0).unwrap();
            assert!(a.amount <= 6.0 + EPS, "{} placed {}", pol.name(), a.amount);
            assert!(a.amount > 0.0);
        }
    }

    #[test]
    fn proportional_partial_placement_keeps_deliverable_part() {
        // Owner 1 (80% share) is drained; owner 2 (10%) has room. The
        // partial best-effort keeps owner 2's full quota instead of
        // re-shrinking it.
        let (st, s) = mk(3, &[(1, 0, 0.8), (2, 0, 0.1)], vec![0.0, 1.0, 100.0], 1);
        let pol = ProportionalPolicy::new(s);
        let a = pol.allocate_up_to(&st, 0, 9.0).unwrap();
        // Owner 1 quota: 0.8*1 = 0.8; owner 2 wants 1/9 of 9 = 1, quota 10.
        assert!((a.draws[1] - 0.8).abs() < EPS, "{:?}", a.draws);
        assert!((a.draws[2] - 1.0).abs() < EPS);
        assert!((a.amount - 1.8).abs() < EPS, "placed = sum of draws");
    }

    #[test]
    fn endpoint_caps_make_quota_blind_to_load() {
        // Same scenario, but quotas based on raw capacity 10: owner 1
        // accepts its full proportional share even though it is drained.
        let (st, s) = mk(3, &[(1, 0, 0.8), (2, 0, 0.1)], vec![0.0, 1.0, 100.0], 1);
        let pol = ProportionalPolicy::new(s).with_endpoint_caps(vec![10.0; 3]);
        let a = pol.allocate(&st, 0, 9.0).unwrap();
        assert!((a.draws[1] - 8.0).abs() < EPS, "blind: 8 of 9 at owner 1: {:?}", a.draws);
        assert!((a.draws[2] - 1.0).abs() < EPS);
    }

    #[test]
    fn policy_names_are_distinct() {
        let (_, s) = mk(2, &[], vec![1.0, 1.0], 1);
        let names = [
            LpPolicy::reduced().name(),
            LpPolicy::full().name(),
            ProportionalPolicy::new(s).name(),
            GreedyPolicy.name(),
        ];
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn greedy_tie_breaks_deterministically() {
        let (st, _) = mk(3, &[(1, 0, 0.5), (2, 0, 0.5)], vec![0.0, 10.0, 10.0], 1);
        let a = GreedyPolicy.allocate(&st, 0, 5.0).unwrap();
        let b = GreedyPolicy.allocate(&st, 0, 5.0).unwrap();
        assert_eq!(a.draws, b.draws);
        assert!((a.draws[1] - 5.0).abs() < EPS, "lower index wins ties");
    }
}
