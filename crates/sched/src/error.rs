//! Scheduler error type.

use agreements_flow::FlowError;
use agreements_lp::LpError;
use std::fmt;

/// Errors from allocation scheduling.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// The requester cannot reach enough resources, directly or
    /// transitively, to cover the request.
    InsufficientCapacity {
        /// Requesting principal.
        requester: usize,
        /// Reachable capacity `C_A`.
        capacity: f64,
        /// Requested amount `x`.
        requested: f64,
        /// Which resource's admission failed, for multi-resource
        /// requests (`"cpu"`, `"bandwidth"`, …): the *binding* resource
        /// — the first lane, in resource order, whose LP refused. Always
        /// `None` on the single-resource paths, so their payloads (and
        /// golden fingerprints) are unchanged.
        resource: Option<&'static str>,
    },
    /// Requester index out of range.
    UnknownPrincipal {
        /// The offending index.
        index: usize,
        /// The number of principals.
        n: usize,
    },
    /// Request amounts must be positive and finite.
    InvalidRequest {
        /// The rejected amount.
        amount: f64,
    },
    /// The underlying LP failed (numerical trouble; infeasibility is
    /// normally caught by the admission check first).
    Lp(LpError),
    /// Mismatched dimensions between flow table, availability, and/or
    /// absolute matrix.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension supplied.
        got: usize,
    },
    /// A hierarchical partition contained an empty group.
    EmptyGroup {
        /// Index of the offending group.
        group: usize,
    },
    /// An agreement-matrix operation failed (partition derivation or
    /// coarse-flow renegotiation).
    Flow(FlowError),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::InsufficientCapacity { requester, capacity, requested, resource } => {
                write!(
                    f,
                    "principal {requester} can reach only {capacity:.4} of the {requested:.4} requested"
                )?;
                if let Some(name) = resource {
                    write!(f, " (binding resource: {name})")?;
                }
                Ok(())
            }
            SchedError::UnknownPrincipal { index, n } => {
                write!(f, "principal {index} out of range for {n} principals")
            }
            SchedError::InvalidRequest { amount } => {
                write!(f, "invalid request amount {amount}")
            }
            SchedError::Lp(e) => write!(f, "allocation LP failed: {e}"),
            SchedError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            SchedError::EmptyGroup { group } => {
                write!(f, "group {group} of the hierarchical partition is empty")
            }
            SchedError::Flow(e) => write!(f, "agreement matrix operation failed: {e}"),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Lp(e) => Some(e),
            SchedError::Flow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LpError> for SchedError {
    fn from(e: LpError) -> Self {
        SchedError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SchedError::InsufficientCapacity {
            requester: 2,
            capacity: 1.5,
            requested: 3.0,
            resource: None,
        };
        assert!(e.to_string().contains("principal 2"));
        assert!(!e.to_string().contains("binding resource"));
        let tagged = SchedError::InsufficientCapacity {
            requester: 2,
            capacity: 1.5,
            requested: 3.0,
            resource: Some("bandwidth"),
        };
        assert!(tagged.to_string().contains("binding resource: bandwidth"));
        let lp = SchedError::Lp(LpError::IterationLimit { limit: 5 });
        assert!(std::error::Error::source(&lp).is_some());
        assert!(std::error::Error::source(&e).is_none());
    }
}
