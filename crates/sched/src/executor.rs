//! Persistent shard executor: long-lived worker threads owning warm fine
//! solvers (PR 6 tentpole).
//!
//! `BENCH_PR5.json` showed the old parallel mode losing everywhere
//! (29.8k vs 120.2k alloc/s at n = 128): it spawned a fresh
//! `crossbeam::thread::scope` per allocation, so every fine solve paid
//! thread creation, stack setup, and a cold [`GroupSolver`]. This module
//! replaces that with a shard-manager/worker split:
//!
//! - **Worker ownership.** Each worker thread owns the [`GroupSolver`]s
//!   of the groups hashed onto it (`group % workers`), so their simplex
//!   workspaces and cached skeletons stay warm across requests. Groups
//!   are disjoint and a group is always served by the same worker, so no
//!   solver is ever shared — no locks on the solve path.
//! - **Channel protocol.** The coordinator sends [`Job`]s over an
//!   unbounded channel per worker and collects replies on a per-fan-out
//!   channel keyed by slot, merging results **in input order** — the
//!   fixed ascending merge order that keeps parallel output bit-identical
//!   to sequential.
//! - **Shutdown/respawn.** Dropping the executor sends `Shutdown` to every
//!   worker and joins it. If a worker dies early (a panic in a solve),
//!   the next dispatch to it observes the closed channel — crossbeam's
//!   `SendError` hands the job back — respawns the worker, and resends.
//! - **Break-even fallback.** [`ShardExecutor::auto`] measures, at
//!   construction, the channel round-trip cost and one warm fine-solve at
//!   the mean group size, and [`ShardExecutor::should_parallelize`] only
//!   says yes when the solve time saved by fanning out exceeds the
//!   dispatch tax. On a 1-core host `auto` refuses to build an executor
//!   at all, so sequential hosts never regress.
//!
//! The batched-run protocol ([`GroupRun`] → [`RunOutcome`]) is the
//! executor half of [`crate::batch::BatchedAdmission`]: a worker replays a
//! slot-ordered run of home-group requests against a private copy of its
//! members' availability, stopping at the first request its group cannot
//! cover (the coordinator finishes that one on the coarse path). Every
//! arithmetic step mirrors [`crate::hierarchy::HierarchicalScheduler::allocate`]
//! exactly — same fit test, same min-clamp, same `(v - d).max(0.0)`
//! commit expression — which is what makes batched admission bit-identical
//! to one-by-one submission (property-tested in `tests/proptest_batch.rs`).

use crate::error::SchedError;
use crate::lp_model::DRAW_EPS;
use agreements_lp::{solve_bounded_with, LpError, SimplexOptions, SimplexWorkspace};
use agreements_telemetry::{HistKind, Telemetry};
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A per-group fine solver: persistent simplex workspace plus the cached
/// standard form of the group's min-max refinement LP
///
/// ```text
/// min θ  s.t.  Σ_i d_i = amount,   d_i − θ ≤ 0,   0 ≤ d_i ≤ avail_i
/// ```
///
/// Column layout (the `AllocationSolver` skeleton convention): one column
/// per member with positive availability (ascending member order), then
/// θ, then one slack per drop row. Zero-availability members are
/// substituted out, so the skeleton is keyed on that pattern and rebuilt
/// only when it changes. Warm starting stays off by default: every solve
/// is a cold start, which is what makes parallel and sequential
/// refinement bit-identical. A batched run may opt in to a *warm-start
/// window* ([`GroupSolver::begin_warm_run`]) scoped to that run; the
/// window is closed (and the basis dropped) before any other traffic
/// touches the solver, so opting in never leaks into the default path.
pub(crate) struct GroupSolver {
    ws: SimplexWorkspace,
    /// Zero-availability pattern the skeleton was built for.
    fixed: Vec<bool>,
    /// Standard-form column of each member's draw variable.
    col_of: Vec<Option<usize>>,
    a: Vec<Vec<f64>>,
    b: Vec<f64>,
    c: Vec<f64>,
    upper: Vec<f64>,
    num_structural: usize,
    built: bool,
}

impl GroupSolver {
    pub(crate) fn new() -> Self {
        GroupSolver {
            ws: SimplexWorkspace::new(),
            fixed: Vec::new(),
            col_of: Vec::new(),
            a: Vec::new(),
            b: Vec::new(),
            c: Vec::new(),
            upper: Vec::new(),
            num_structural: 0,
            built: false,
        }
    }

    fn skeleton_is_current(&self, mavail: &[f64]) -> bool {
        self.built
            && self.fixed.len() == mavail.len()
            && mavail.iter().zip(&self.fixed).all(|(&v, &f)| f == (v.max(0.0) == 0.0))
    }

    fn rebuild(&mut self, mavail: &[f64]) {
        let m = mavail.len();
        self.fixed.clear();
        self.col_of.clear();
        let mut col = 0usize;
        for &v in mavail {
            let is_fixed = v.max(0.0) == 0.0;
            self.fixed.push(is_fixed);
            if is_fixed {
                self.col_of.push(None);
            } else {
                self.col_of.push(Some(col));
                col += 1;
            }
        }
        let k = col;
        let theta_col = k;
        let num_structural = k + 1;
        let rows = 1 + k;
        let total = num_structural + k;

        self.a.resize_with(rows, Vec::new);
        self.a.truncate(rows);
        for row in &mut self.a {
            row.clear();
            row.resize(total, 0.0);
        }
        self.b.clear();
        self.b.resize(rows, 0.0);
        // Row 0: Σ d_i = amount (rhs rewritten per solve).
        for i in 0..m {
            if let Some(c) = self.col_of[i] {
                self.a[0][c] = 1.0;
            }
        }
        // Rows 1..=k: d_t − θ + s_t = 0 for each active member t.
        for t in 0..k {
            self.a[1 + t][t] = 1.0;
            self.a[1 + t][theta_col] = -1.0;
            self.a[1 + t][num_structural + t] = 1.0;
        }
        self.c.clear();
        self.c.resize(total, 0.0);
        self.c[theta_col] = 1.0;
        self.upper.clear();
        self.upper.resize(total, f64::INFINITY);
        self.num_structural = num_structural;
        self.built = true;
        // A rebuilt skeleton is a different model; never seed it from an
        // old basis (fine solves are cold anyway — defense in depth).
        self.ws.invalidate_warm_start();
    }

    /// Solve the refinement LP; returns per-member draws (group-local
    /// order), with sub-`DRAW_EPS` dust zeroed like the flat path.
    pub(crate) fn solve(
        &mut self,
        mavail: &[f64],
        amount: f64,
        opts: &SimplexOptions,
    ) -> Result<Vec<f64>, LpError> {
        if !self.skeleton_is_current(mavail) {
            self.rebuild(mavail);
        }
        self.b[0] = amount;
        for (i, &v) in mavail.iter().enumerate() {
            if let Some(c) = self.col_of[i] {
                self.upper[c] = v.max(0.0);
            }
        }
        let sol = solve_bounded_with(
            &mut self.ws,
            &self.a,
            &self.b,
            &self.c,
            &self.upper,
            self.num_structural,
            opts,
        )?;
        Ok((0..mavail.len())
            .map(|i| {
                self.col_of[i].map_or(0.0, |c| {
                    let d = sol.x[c];
                    if d < DRAW_EPS {
                        0.0
                    } else {
                        d
                    }
                })
            })
            .collect())
    }

    /// Open a batch-scoped warm-start window: the first solve inside the
    /// window runs cold (the saved basis is invalidated here), later
    /// solves reseed the simplex from the previous optimal basis. The
    /// run's consecutive solves share the skeleton and differ only in
    /// bounds/rhs — exactly the shape warm starting exploits.
    pub(crate) fn begin_warm_run(&mut self) {
        self.ws.set_warm_start(true);
        self.ws.invalidate_warm_start();
    }

    /// Close the warm-start window, dropping the saved basis so every
    /// solve outside a window (plain `Job::Solve` traffic) stays a cold
    /// start — the bit-identity contract of the default configuration.
    pub(crate) fn end_warm_run(&mut self) {
        self.ws.set_warm_start(false);
    }
}

/// One queued allocation request inside a [`GroupRun`]: `slot` is its
/// position in the original admission batch (global decision order),
/// `amount` the validated request size.
pub(crate) struct RunRequest {
    pub(crate) slot: usize,
    pub(crate) amount: f64,
}

/// A slot-ordered run of home-group requests for one group, executed by
/// the group's worker against a private copy of the members' current
/// availability (`start`, in member order). `first_member` rides along so
/// the worker can produce the exact `InsufficientCapacity` payload the
/// sequential path would.
pub(crate) struct GroupRun {
    pub(crate) group: usize,
    pub(crate) first_member: usize,
    pub(crate) start: Vec<f64>,
    pub(crate) reqs: Vec<RunRequest>,
}

/// One decided step of a run: per-member draws (group-local order) plus
/// θ on success, or the allocation error. Errors do not advance the
/// worker's availability copy — exactly like a rejected request leaves
/// global state untouched.
pub(crate) struct RunStep {
    pub(crate) slot: usize,
    pub(crate) result: Result<(Vec<f64>, f64), SchedError>,
}

/// Result of executing a [`GroupRun`]: the decided steps in slot order,
/// and the slot of the first request the group could not cover on its
/// own, if any (the run stops there; later slots are left for the next
/// wave).
pub(crate) struct RunOutcome {
    pub(crate) group: usize,
    pub(crate) steps: Vec<RunStep>,
    pub(crate) stalled_at: Option<usize>,
}

/// Wire protocol between the coordinator and a worker thread.
enum Job {
    /// One fine refinement solve (the coarse-path fan-out).
    Solve {
        slot: usize,
        group: usize,
        mavail: Vec<f64>,
        amount: f64,
        reply: Sender<(usize, Result<Vec<f64>, LpError>)>,
    },
    /// A batched home-group run (the admission front door). `warm`
    /// opens a batch-scoped warm-start window around the run's solves.
    Run { slot: usize, run: GroupRun, warm: bool, reply: Sender<(usize, RunOutcome)> },
    /// Round-trip probe used by break-even calibration.
    Ping { reply: Sender<()> },
    /// Swap the worker's telemetry plane.
    Configure { telemetry: Telemetry },
    /// Exit the worker loop.
    Shutdown,
    /// Test-only: panic the worker to exercise respawn.
    #[cfg(test)]
    Crash,
}

/// Counters shared between the executor and the scheduler that owns it;
/// surfaced through `GrmStats` as `executor_fallbacks_sequential`.
#[derive(Debug, Default)]
pub struct ExecutorStats {
    fallbacks_sequential: AtomicU64,
    parallel_fanouts: AtomicU64,
}

impl ExecutorStats {
    /// Times a parallel-capable scheduler chose the sequential path
    /// because the fan-out was below break-even (or no executor exists).
    pub fn fallbacks_sequential(&self) -> u64 {
        self.fallbacks_sequential.load(Ordering::Relaxed)
    }

    /// Times work was actually fanned out to the workers.
    pub fn parallel_fanouts(&self) -> u64 {
        self.parallel_fanouts.load(Ordering::Relaxed)
    }

    pub(crate) fn note_fallback(&self) {
        self.fallbacks_sequential.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_fanout(&self) {
        self.parallel_fanouts.fetch_add(1, Ordering::Relaxed);
    }
}

struct WorkerLink {
    tx: Sender<Job>,
    join: Option<JoinHandle<()>>,
}

/// The persistent shard executor (see module docs). Constructed in
/// *forced* mode ([`ShardExecutor::force`], always fans out, for tests and
/// explicit opt-in) or *auto* mode ([`ShardExecutor::auto`], calibrated
/// break-even gate, refuses to build on a 1-core host).
pub(crate) struct ShardExecutor {
    workers: Vec<Mutex<WorkerLink>>,
    opts: SimplexOptions,
    telemetry: Mutex<Telemetry>,
    stats: Arc<ExecutorStats>,
    /// Whether `should_parallelize` applies the measured break-even gate.
    gated: bool,
    /// Opt-in: batched runs reuse the simplex basis within each run
    /// (batch-scoped warm starts). Off by default — the default path
    /// stays bit-identical to cold-base batching.
    warm_runs: std::sync::atomic::AtomicBool,
    /// Measured cost of one job dispatch + reply (channel round trip).
    dispatch_ns: u64,
    /// Measured cost of one warm fine solve at the mean group size.
    solve_ns: u64,
}

fn available_cores() -> usize {
    std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1)
}

fn spawn_worker(
    index: usize,
    opts: SimplexOptions,
    telemetry: Telemetry,
) -> (Sender<Job>, JoinHandle<()>) {
    let (tx, rx) = channel::unbounded();
    let handle = std::thread::Builder::new()
        .name(format!("shard-worker-{index}"))
        .spawn(move || worker_loop(rx, opts, telemetry))
        .expect("spawn shard worker");
    (tx, handle)
}

fn worker_loop(rx: Receiver<Job>, opts: SimplexOptions, mut telemetry: Telemetry) {
    // Warm solvers for every group hashed onto this worker, keyed by
    // group index. Built lazily; skeletons persist across requests.
    let mut solvers: HashMap<usize, GroupSolver> = HashMap::new();
    for job in rx.iter() {
        match job {
            Job::Solve { slot, group, mavail, amount, reply } => {
                telemetry.add("hier.fine_solves", 1);
                let span = telemetry.start();
                let solver = solvers.entry(group).or_insert_with(GroupSolver::new);
                let result = solver.solve(&mavail, amount, &opts);
                telemetry.stop(HistKind::LpSolveSeconds, span);
                let _ = reply.send((slot, result));
            }
            Job::Run { slot, run, warm, reply } => {
                let solver = solvers.entry(run.group).or_insert_with(GroupSolver::new);
                if warm {
                    solver.begin_warm_run();
                }
                let outcome = execute_run(solver, &run, &opts, &telemetry);
                if warm {
                    solver.end_warm_run();
                }
                let _ = reply.send((slot, outcome));
            }
            Job::Ping { reply } => {
                let _ = reply.send(());
            }
            Job::Configure { telemetry: t } => telemetry = t,
            Job::Shutdown => break,
            #[cfg(test)]
            Job::Crash => panic!("shard worker crashed on request (test)"),
        }
    }
}

/// Replay a slot-ordered run of home-group requests against a private
/// copy of the group's availability. Every step mirrors the sequential
/// home path in `HierarchicalScheduler::allocate` bit for bit: same
/// member-order fit sum, same `+ 1e-12` slack, same `x.min(home_avail)`
/// clamp, same θ fold seeded at 0.0, and the same `(v − d).max(0.0)`
/// commit expression the GRM applies globally. The first request the
/// group cannot cover stalls the run — the coordinator decides it on the
/// coarse path and re-dispatches everything after it.
fn execute_run(
    solver: &mut GroupSolver,
    run: &GroupRun,
    opts: &SimplexOptions,
    telemetry: &Telemetry,
) -> RunOutcome {
    let mut avail = run.start.clone();
    let mut steps = Vec::with_capacity(run.reqs.len());
    let mut stalled_at = None;
    for req in &run.reqs {
        let home_avail: f64 = avail.iter().sum();
        // Exact negation of the sequential fit test, NOT `<`: a NaN sum
        // (poisoned availability) must stall here so the coordinator's
        // one-by-one path decides it, exactly like sequential would.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(home_avail + 1e-12 >= req.amount) {
            stalled_at = Some(req.slot);
            break;
        }
        telemetry.add("hier.home_hits", 1);
        if req.amount == 0.0 {
            steps.push(RunStep { slot: req.slot, result: Ok((vec![0.0; avail.len()], 0.0)) });
            continue;
        }
        let solve_amt = req.amount.min(home_avail);
        telemetry.add("hier.fine_solves", 1);
        let span = telemetry.start();
        let solved = solver.solve(&avail, solve_amt, opts);
        telemetry.stop(HistKind::LpSolveSeconds, span);
        match solved {
            Ok(local) => {
                let theta = local.iter().cloned().fold(0.0, f64::max);
                for (v, d) in avail.iter_mut().zip(&local) {
                    *v = (*v - *d).max(0.0);
                }
                steps.push(RunStep { slot: req.slot, result: Ok((local, theta)) });
            }
            Err(LpError::Infeasible { .. }) => steps.push(RunStep {
                slot: req.slot,
                result: Err(SchedError::InsufficientCapacity {
                    requester: run.first_member,
                    capacity: home_avail,
                    requested: solve_amt,
                    resource: None,
                }),
            }),
            Err(other) => {
                steps.push(RunStep { slot: req.slot, result: Err(SchedError::Lp(other)) })
            }
        }
    }
    RunOutcome { group: run.group, steps, stalled_at }
}

impl ShardExecutor {
    /// Forced mode: always fan out (no break-even gate). Workers are
    /// capped at the group count but get at least 2 even on a 1-core
    /// host, so forced mode exercises real cross-thread traffic anywhere.
    pub(crate) fn force(
        num_groups: usize,
        opts: SimplexOptions,
        telemetry: Telemetry,
        stats: Arc<ExecutorStats>,
    ) -> Self {
        let workers = num_groups.min(available_cores().max(2)).max(1);
        Self::with_workers(workers, opts, telemetry, stats, false)
    }

    /// Auto mode: `None` on hosts where parallelism cannot pay (fewer
    /// than 2 cores, or fewer than 2 groups); otherwise spin up
    /// `min(cores, groups)` workers and calibrate the break-even gate.
    pub(crate) fn auto(
        num_groups: usize,
        group_sizes: &[usize],
        opts: SimplexOptions,
        telemetry: Telemetry,
        stats: Arc<ExecutorStats>,
    ) -> Option<Self> {
        let cores = available_cores();
        if cores < 2 || num_groups < 2 {
            return None;
        }
        let mut ex = Self::with_workers(cores.min(num_groups), opts, telemetry, stats, true);
        ex.calibrate(group_sizes);
        Some(ex)
    }

    fn with_workers(
        workers: usize,
        opts: SimplexOptions,
        telemetry: Telemetry,
        stats: Arc<ExecutorStats>,
        gated: bool,
    ) -> Self {
        let links = (0..workers)
            .map(|i| {
                let (tx, join) = spawn_worker(i, opts.clone(), telemetry.clone());
                Mutex::new(WorkerLink { tx, join: Some(join) })
            })
            .collect();
        ShardExecutor {
            workers: links,
            opts,
            telemetry: Mutex::new(telemetry),
            stats,
            gated,
            warm_runs: std::sync::atomic::AtomicBool::new(false),
            dispatch_ns: 1,
            solve_ns: 1,
        }
    }

    /// Toggle batch-scoped warm starts for batched runs (default off).
    pub(crate) fn set_warm_runs(&self, on: bool) {
        self.warm_runs.store(on, Ordering::Relaxed);
    }

    /// Whether batched runs currently open warm-start windows.
    pub(crate) fn warm_runs(&self) -> bool {
        self.warm_runs.load(Ordering::Relaxed)
    }

    /// Measure the two sides of the break-even inequality: the channel
    /// round-trip tax (mean of 16 pings after 4 warm-ups) and one warm
    /// fine solve at the mean group size (best of 8 on a scratch solver,
    /// uniform availability, half-capacity request).
    fn calibrate(&mut self, group_sizes: &[usize]) {
        let (tx, rx) = channel::unbounded();
        for _ in 0..4 {
            self.dispatch(0, Job::Ping { reply: tx.clone() });
            let _ = rx.recv();
        }
        let t0 = Instant::now();
        for _ in 0..16 {
            self.dispatch(0, Job::Ping { reply: tx.clone() });
            let _ = rx.recv();
        }
        self.dispatch_ns = ((t0.elapsed().as_nanos() / 16) as u64).max(1);

        let mean = (group_sizes.iter().sum::<usize>() / group_sizes.len().max(1)).max(1);
        let mavail = vec![1.0; mean];
        let amount = mean as f64 / 2.0;
        let mut scratch = GroupSolver::new();
        let _ = scratch.solve(&mavail, amount, &self.opts);
        let mut best = u64::MAX;
        for _ in 0..8 {
            let t = Instant::now();
            let _ = scratch.solve(&mavail, amount, &self.opts);
            best = best.min(t.elapsed().as_nanos() as u64);
        }
        self.solve_ns = best.max(1);
    }

    /// Break-even gate: fanning `k` jobs over `w` workers saves
    /// `(k − ⌈k/w⌉)` solve spans and costs `k` dispatches. Forced mode
    /// skips the measurement and says yes to any real fan-out.
    pub(crate) fn should_parallelize(&self, k: usize) -> bool {
        if k < 2 {
            return false;
        }
        if !self.gated {
            return true;
        }
        let w = self.workers.len();
        if w < 2 {
            return false;
        }
        let k64 = k as u64;
        let per_worker = k.div_ceil(w) as u64;
        (k64 - per_worker) * self.solve_ns > k64 * self.dispatch_ns
    }

    pub(crate) fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The worker that owns `group` — a fixed hash, so the group's warm
    /// solver never migrates.
    fn worker_of(&self, group: usize) -> usize {
        group % self.workers.len()
    }

    /// Send a job to a worker, respawning it first if it died (the
    /// `SendError` hands the job back, so nothing is lost).
    fn dispatch(&self, worker: usize, job: Job) {
        let mut link = self.workers[worker].lock();
        if let Err(channel::SendError(job)) = link.tx.send(job) {
            let telemetry = self.telemetry.lock().clone();
            let (tx, join) = spawn_worker(worker, self.opts.clone(), telemetry);
            if let Some(old) = link.join.take() {
                let _ = old.join();
            }
            link.tx = tx;
            link.join = Some(join);
            let _ = link.tx.send(job);
        }
    }

    /// Swap the telemetry plane on the coordinator and every worker.
    pub(crate) fn set_telemetry(&self, telemetry: Telemetry) {
        *self.telemetry.lock() = telemetry.clone();
        for w in 0..self.workers.len() {
            self.dispatch(w, Job::Configure { telemetry: telemetry.clone() });
        }
    }

    /// Fan `(group, member availability, amount)` fine solves out to the
    /// owning workers and merge replies in input order.
    pub(crate) fn solve_fan(
        &self,
        jobs: Vec<(usize, Vec<f64>, f64)>,
    ) -> Vec<Result<Vec<f64>, LpError>> {
        let k = jobs.len();
        self.stats.note_fanout();
        let (tx, rx) = channel::unbounded();
        for (slot, (group, mavail, amount)) in jobs.into_iter().enumerate() {
            let worker = self.worker_of(group);
            self.dispatch(worker, Job::Solve { slot, group, mavail, amount, reply: tx.clone() });
        }
        drop(tx);
        collect_slotted(rx, k)
    }

    /// Fan batched home-group runs out to the owning workers and merge
    /// outcomes in input order.
    pub(crate) fn run_fan(&self, runs: Vec<GroupRun>) -> Vec<RunOutcome> {
        let k = runs.len();
        let warm = self.warm_runs();
        self.stats.note_fanout();
        let (tx, rx) = channel::unbounded();
        for (slot, run) in runs.into_iter().enumerate() {
            let worker = self.worker_of(run.group);
            self.dispatch(worker, Job::Run { slot, run, warm, reply: tx.clone() });
        }
        drop(tx);
        collect_slotted(rx, k)
    }

    /// Test-only: kill a worker thread to exercise the respawn path.
    #[cfg(test)]
    fn crash_worker(&self, worker: usize) {
        self.dispatch(worker, Job::Crash);
    }
}

/// Collect `k` `(slot, value)` replies into slot order. Replies arrive in
/// completion order; slots restore input order, which is what keeps the
/// merged result independent of worker scheduling.
fn collect_slotted<T>(rx: Receiver<(usize, T)>, k: usize) -> Vec<T> {
    let mut out: Vec<Option<T>> = (0..k).map(|_| None).collect();
    for _ in 0..k {
        let (slot, value) = rx.recv().expect("shard worker reply");
        out[slot] = Some(value);
    }
    out.into_iter().map(|v| v.expect("every slot replied")).collect()
}

impl Drop for ShardExecutor {
    fn drop(&mut self) {
        for link in &self.workers {
            let mut link = link.lock();
            let _ = link.tx.send(Job::Shutdown);
            if let Some(join) = link.join.take() {
                let _ = join.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn force_executor(groups: usize) -> ShardExecutor {
        ShardExecutor::force(
            groups,
            SimplexOptions::default(),
            Telemetry::default(),
            Arc::new(ExecutorStats::default()),
        )
    }

    #[test]
    fn solve_fan_matches_direct_solver_bit_for_bit() {
        let ex = force_executor(4);
        let jobs: Vec<(usize, Vec<f64>, f64)> = vec![
            (0, vec![3.0, 1.0, 2.0], 4.0),
            (1, vec![5.0, 0.0, 0.5], 2.0),
            (2, vec![1.0, 1.0], 1.5),
            (3, vec![2.5], 2.0),
        ];
        let fanned = ex.solve_fan(jobs.clone());
        let opts = SimplexOptions::default();
        for ((_, mavail, amount), got) in jobs.into_iter().zip(fanned) {
            let want = GroupSolver::new().solve(&mavail, amount, &opts).unwrap();
            let got = got.unwrap();
            assert_eq!(want.len(), got.len());
            assert!(want.iter().zip(&got).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn solve_fan_merges_in_input_order_across_workers() {
        let ex = force_executor(8);
        // Distinguishable amounts: slot i requests i + 1 from capacity 8.
        let jobs: Vec<(usize, Vec<f64>, f64)> =
            (0..8).map(|g| (g, vec![8.0], g as f64 + 1.0)).collect();
        let results = ex.solve_fan(jobs);
        for (i, r) in results.into_iter().enumerate() {
            let draws = r.unwrap();
            assert!((draws[0] - (i as f64 + 1.0)).abs() < 1e-9, "slot {i}: {draws:?}");
        }
    }

    #[test]
    fn run_protocol_stalls_at_first_unservable_slot() {
        let ex = force_executor(1);
        let run = GroupRun {
            group: 0,
            first_member: 7,
            start: vec![4.0, 2.0],
            // Slots 0 and 1 fit (6 total); slot 2 wants 10 — stall;
            // slot 3 would fit but must be left for the next wave.
            reqs: vec![
                RunRequest { slot: 0, amount: 3.0 },
                RunRequest { slot: 1, amount: 2.0 },
                RunRequest { slot: 2, amount: 10.0 },
                RunRequest { slot: 3, amount: 0.5 },
            ],
        };
        let mut outcomes = ex.run_fan(vec![run]);
        assert_eq!(outcomes.len(), 1);
        let outcome = outcomes.pop().unwrap();
        assert_eq!(outcome.group, 0);
        assert_eq!(outcome.stalled_at, Some(2));
        assert_eq!(outcome.steps.len(), 2);
        let (draws0, theta0) = outcome.steps[0].result.as_ref().unwrap();
        assert!((draws0.iter().sum::<f64>() - 3.0).abs() < 1e-9);
        assert!(*theta0 > 0.0);
        let (draws1, _) = outcome.steps[1].result.as_ref().unwrap();
        assert!((draws1.iter().sum::<f64>() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn run_replays_commits_between_steps() {
        // Two steps of 2.0 against [3.0, 1.0]: step 1 must see the
        // availability left by step 0, exactly as one-by-one would.
        let ex = force_executor(1);
        let run = GroupRun {
            group: 0,
            first_member: 0,
            start: vec![3.0, 1.0],
            reqs: vec![RunRequest { slot: 0, amount: 2.0 }, RunRequest { slot: 1, amount: 2.0 }],
        };
        let outcome = ex.run_fan(vec![run]).pop().unwrap();
        assert_eq!(outcome.stalled_at, None);
        let opts = SimplexOptions::default();
        let mut solver = GroupSolver::new();
        let mut avail = vec![3.0, 1.0];
        for step in &outcome.steps {
            let want = solver.solve(&avail, 2.0, &opts).unwrap();
            let (got, _) = step.result.as_ref().unwrap();
            assert!(want.iter().zip(got).all(|(a, b)| a.to_bits() == b.to_bits()));
            for (v, d) in avail.iter_mut().zip(&want) {
                *v = (*v - *d).max(0.0);
            }
        }
    }

    #[test]
    fn dead_worker_is_respawned_and_job_survives() {
        let ex = force_executor(1);
        ex.crash_worker(0);
        // Wait until the worker's channel actually reports disconnected:
        // the panic has to finish unwinding (dropping the receiver)
        // before a dispatch can observe the death and respawn. Probe with
        // raw sends so we don't trigger the respawn path early.
        let (ptx, _prx) = channel::unbounded();
        for _ in 0..1000 {
            if ex.workers[0].lock().tx.send(Job::Ping { reply: ptx.clone() }).is_err() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let results = ex.solve_fan(vec![(0, vec![4.0, 4.0], 2.0)]);
        let draws = results[0].as_ref().unwrap();
        assert!((draws.iter().sum::<f64>() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn break_even_gate_logic() {
        let mut ex = force_executor(4);
        assert!(!ex.should_parallelize(0));
        assert!(!ex.should_parallelize(1));
        assert!(ex.should_parallelize(2), "forced mode fans out any real fan-out");
        // Gated with a cheap solve vs expensive dispatch: never pays.
        ex.gated = true;
        ex.dispatch_ns = 10_000;
        ex.solve_ns = 100;
        assert!(!ex.should_parallelize(64));
        // Gated with an expensive solve: pays as soon as work is saved.
        ex.dispatch_ns = 100;
        ex.solve_ns = 1_000_000;
        assert!(ex.should_parallelize(2));
    }

    #[test]
    fn auto_refuses_on_single_core_or_single_group() {
        let stats = Arc::new(ExecutorStats::default());
        let single_group = ShardExecutor::auto(
            1,
            &[8],
            SimplexOptions::default(),
            Telemetry::default(),
            stats.clone(),
        );
        assert!(single_group.is_none());
        let auto = ShardExecutor::auto(
            4,
            &[4, 4, 4, 4],
            SimplexOptions::default(),
            Telemetry::default(),
            stats,
        );
        if available_cores() < 2 {
            assert!(auto.is_none(), "1-core host must never build an executor");
        } else {
            let ex = auto.unwrap();
            assert!(ex.num_workers() >= 2);
            assert!(ex.dispatch_ns >= 1 && ex.solve_ns >= 1);
        }
    }
}
