//! Allocation explanations: *why* the scheduler drew what it drew.
//!
//! Operators of a sharing federation need to audit decisions ("why did my
//! job land on site 3?"). This module decomposes an [`Allocation`]
//! against its [`SystemState`]: per-owner entitlements and how much of
//! each was used, the capacity perturbation inflicted on every principal,
//! which constraint was binding, and the LP's shadow price on the
//! admission constraint (the marginal θ-cost of requesting one more
//! unit).

use crate::admission::{admission_bound, exceeds_bound};
use crate::error::SchedError;
use crate::state::{Allocation, SystemState};
use agreements_lp::{Problem, Relation, Sense, SimplexOptions, VarId};
use std::fmt;

/// Per-owner line of an explanation.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnerLine {
    /// Owner index.
    pub owner: usize,
    /// The requester's entitlement against this owner (its own
    /// availability for the requester itself).
    pub entitlement: f64,
    /// Units actually drawn.
    pub drawn: f64,
    /// Capacity this owner lost through the allocation (its own draw plus
    /// entitlement losses on others' draws).
    pub capacity_drop: f64,
    /// Whether this owner's perturbation constraint was binding at the
    /// optimum (its drop equals θ).
    pub binding: bool,
}

/// A decomposed allocation decision.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The explained allocation.
    pub allocation: Allocation,
    /// Per-owner breakdown, indexed by owner.
    pub owners: Vec<OwnerLine>,
    /// Shadow price of the demand constraint: the marginal increase of θ
    /// per additional unit requested (0 when slack remains everywhere).
    pub marginal_theta: f64,
}

impl Explanation {
    /// Owners whose perturbation constraint binds (they set θ).
    pub fn bottlenecks(&self) -> impl Iterator<Item = &OwnerLine> {
        self.owners.iter().filter(|o| o.binding)
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "allocation of {:.4} to principal {} (theta = {:.4}, marginal theta = {:.4})",
            self.allocation.amount,
            self.allocation.requester,
            self.allocation.theta,
            self.marginal_theta
        )?;
        writeln!(
            f,
            "{:>6} {:>12} {:>12} {:>12} {:>8}",
            "owner", "entitlement", "drawn", "cap_drop", "binding"
        )?;
        for o in &self.owners {
            writeln!(
                f,
                "{:>6} {:>12.4} {:>12.4} {:>12.4} {:>8}",
                o.owner, o.entitlement, o.drawn, o.capacity_drop, o.binding
            )?;
        }
        Ok(())
    }
}

/// Solve the allocation (reduced formulation) and decompose the result.
pub fn explain_allocation(
    state: &SystemState,
    requester: usize,
    x: f64,
) -> Result<Explanation, SchedError> {
    let n = state.n();
    if requester >= n {
        return Err(SchedError::UnknownPrincipal { index: requester, n });
    }
    if !x.is_finite() || x < 0.0 {
        return Err(SchedError::InvalidRequest { amount: x });
    }
    let mut bound = Vec::new();
    let reachable = admission_bound(state, requester, &mut bound);
    if exceeds_bound(x, reachable) {
        return Err(SchedError::InsufficientCapacity {
            requester,
            capacity: reachable,
            requested: x,
            resource: None,
        });
    }
    let x = x.min(reachable);

    // Rebuild the reduced LP here (rather than reusing lp_model's private
    // builder) so we can keep hold of the constraint ids for duals.
    let opts = SimplexOptions::default();
    let mut p = Problem::new(Sense::Minimize);
    let d: Vec<VarId> =
        (0..n).map(|i| p.add_var(&format!("d{i}"), 0.0, bound[i].max(0.0), 0.0)).collect();
    let theta = p.add_var("theta", 0.0, f64::INFINITY, 1.0);
    let all: Vec<(VarId, f64)> = d.iter().map(|&var| (var, 1.0)).collect();
    let demand_c = p.add_constraint(&all, Relation::Eq, x);
    let mut drop_cs = vec![None; n];
    for i in 0..n {
        if i == requester {
            continue;
        }
        let mut terms: Vec<(VarId, f64)> = vec![(d[i], 1.0), (theta, -1.0)];
        for k in 0..n {
            if k != i {
                let t = state.flow.coefficient(k, i);
                if t > 0.0 {
                    terms.push((d[k], t));
                }
            }
        }
        drop_cs[i] = Some(p.add_constraint(&terms, Relation::Le, 0.0));
    }
    let sol = p.solve_with(&opts)?;
    let draws: Vec<f64> = d.iter().map(|&var| sol.value(var).max(0.0)).collect();
    let theta_val = sol.value(theta);

    let owners: Vec<OwnerLine> = (0..n)
        .map(|i| {
            let capacity_drop = if i == requester {
                x
            } else {
                draws[i]
                    + (0..n)
                        .filter(|&k| k != i)
                        .map(|k| state.flow.coefficient(k, i) * draws[k])
                        .sum::<f64>()
            };
            OwnerLine {
                owner: i,
                entitlement: bound[i],
                drawn: draws[i],
                capacity_drop,
                binding: i != requester && (capacity_drop - theta_val).abs() < 1e-6,
            }
        })
        .collect();

    Ok(Explanation {
        allocation: Allocation { requester, amount: x, draws, theta: theta_val },
        owners,
        marginal_theta: sol.dual(demand_c),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp_model::{solve_allocation, Formulation};
    use agreements_flow::{AgreementMatrix, TransitiveFlow};

    const EPS: f64 = 1e-6;

    fn state(edges: &[(usize, usize, f64)], v: Vec<f64>) -> SystemState {
        let n = v.len();
        let mut s = AgreementMatrix::zeros(n);
        for &(i, j, w) in edges {
            s.set(i, j, w).unwrap();
        }
        let flow = TransitiveFlow::compute(&s, n - 1);
        SystemState::new(flow, None, v).unwrap()
    }

    #[test]
    fn explanation_matches_solver() {
        let st = state(&[(1, 0, 0.5), (2, 0, 0.5)], vec![0.0, 10.0, 10.0]);
        let e = explain_allocation(&st, 0, 6.0).unwrap();
        let a = solve_allocation(&st, 0, 6.0, Formulation::Reduced, &SimplexOptions::default())
            .unwrap();
        assert!((e.allocation.theta - a.theta).abs() < EPS);
        let sum: f64 = e.allocation.draws.iter().sum();
        assert!((sum - 6.0).abs() < EPS);
    }

    #[test]
    fn binding_owners_identified() {
        // Symmetric owners: both bind at the optimum.
        let st = state(&[(1, 0, 0.5), (2, 0, 0.5)], vec![0.0, 10.0, 10.0]);
        let e = explain_allocation(&st, 0, 6.0).unwrap();
        let binding: Vec<usize> = e.bottlenecks().map(|o| o.owner).collect();
        assert_eq!(binding, vec![1, 2], "{e}");
        // Requester line reports its fixed drop and no binding flag.
        assert!(!e.owners[0].binding);
        assert!((e.owners[0].capacity_drop - 6.0).abs() < EPS);
    }

    #[test]
    fn marginal_theta_prices_extra_demand() {
        let st = state(&[(1, 0, 0.5), (2, 0, 0.5)], vec![0.0, 10.0, 10.0]);
        let e = explain_allocation(&st, 0, 6.0).unwrap();
        // Empirical check: theta(x + h) - theta(x) ≈ marginal * h.
        let e2 = explain_allocation(&st, 0, 6.5).unwrap();
        let observed = (e2.allocation.theta - e.allocation.theta) / 0.5;
        assert!(
            (observed - e.marginal_theta).abs() < 0.05,
            "marginal {} vs observed {}",
            e.marginal_theta,
            observed
        );
    }

    #[test]
    fn local_service_has_zero_marginal_theta_until_exhausted() {
        let st = state(&[(1, 0, 0.5)], vec![10.0, 10.0]);
        let e = explain_allocation(&st, 0, 3.0).unwrap();
        // Served locally; the only other owner loses 0.5 per local unit...
        // actually drawing locally costs owner 1 nothing (T[0][1] = 0), so
        // theta stays 0 and so does the marginal.
        assert!((e.allocation.theta).abs() < EPS);
        assert!(e.marginal_theta.abs() < EPS, "marginal {}", e.marginal_theta);
    }

    #[test]
    fn errors_mirror_solver() {
        let st = state(&[], vec![1.0, 1.0]);
        assert!(matches!(
            explain_allocation(&st, 0, 5.0),
            Err(SchedError::InsufficientCapacity { .. })
        ));
        assert!(matches!(
            explain_allocation(&st, 7, 1.0),
            Err(SchedError::UnknownPrincipal { .. })
        ));
        assert!(matches!(explain_allocation(&st, 0, -1.0), Err(SchedError::InvalidRequest { .. })));
    }

    #[test]
    fn display_is_readable() {
        let st = state(&[(1, 0, 0.5)], vec![2.0, 10.0]);
        let e = explain_allocation(&st, 0, 4.0).unwrap();
        let text = e.to_string();
        assert!(text.contains("allocation of 4.0000 to principal 0"));
        assert!(text.contains("entitlement"));
    }
}
