//! Multi-resource requests and coupled-resource binding (paper §3.2).
//!
//! A request naming several resource types `⟨r₁, …, r_k⟩` is served by
//! solving one LP per type against that type's own availability state;
//! either every component places or the whole request fails and any
//! partial placement is rolled back. Resources that must be co-located
//! (the paper's CPU+memory example) are *bound* into a composite type
//! whose per-owner availability is the binding bottleneck, so they are
//! always allocated together.
//!
//! ```
//! use agreements_flow::{AgreementMatrix, TransitiveFlow};
//! use agreements_sched::multi::{MultiState, VectorRequest};
//! use agreements_sched::{LpPolicy, SystemState};
//!
//! let state = |avail: Vec<f64>| {
//!     let mut s = AgreementMatrix::zeros(2);
//!     s.set(1, 0, 0.5).unwrap();
//!     SystemState::new(TransitiveFlow::compute(&s, 1), None, avail).unwrap()
//! };
//! let mut ms = MultiState::new(vec![
//!     state(vec![2.0, 8.0]),   // cpu
//!     state(vec![64.0, 64.0]), // memory
//! ]).unwrap();
//! let req = VectorRequest::new(vec![(0, 5.0), (1, 32.0)]);
//! let allocs = ms.allocate_vector(&LpPolicy::reduced(), 0, &req).unwrap();
//! assert_eq!(allocs.len(), 2);
//! assert!((allocs[0].amount - 5.0).abs() < 1e-9);
//! ```

use crate::error::SchedError;
use crate::policy::AllocationPolicy;
use crate::state::{Allocation, SystemState};

/// A request for multiple resource types at once: `(resource index,
/// amount)` pairs. Resource indices address [`MultiState::states`].
#[derive(Debug, Clone, PartialEq)]
pub struct VectorRequest {
    /// Component demands.
    pub demands: Vec<(usize, f64)>,
}

impl VectorRequest {
    /// Build from `(resource, amount)` pairs.
    pub fn new(demands: Vec<(usize, f64)>) -> Self {
        VectorRequest { demands }
    }
}

/// Per-resource-type system states sharing one principal set.
#[derive(Debug, Clone)]
pub struct MultiState {
    /// One state per resource type.
    pub states: Vec<SystemState>,
}

impl MultiState {
    /// Build; all states must agree on the number of principals.
    pub fn new(states: Vec<SystemState>) -> Result<Self, SchedError> {
        if let Some(first) = states.first() {
            let n = first.n();
            for s in &states {
                if s.n() != n {
                    return Err(SchedError::DimensionMismatch { expected: n, got: s.n() });
                }
            }
        }
        Ok(MultiState { states })
    }

    /// Allocate every component of `req` (one LP per resource, §3.2) and
    /// apply the draws. Atomic: on any component failure, previously
    /// applied components are released and the error returned.
    pub fn allocate_vector(
        &mut self,
        policy: &dyn AllocationPolicy,
        requester: usize,
        req: &VectorRequest,
    ) -> Result<Vec<Allocation>, SchedError> {
        let mut done: Vec<(usize, Allocation)> = Vec::with_capacity(req.demands.len());
        for &(resource, amount) in &req.demands {
            let state = self
                .states
                .get(resource)
                .ok_or(SchedError::UnknownPrincipal { index: resource, n: self.states.len() })?;
            match policy.allocate(state, requester, amount) {
                Ok(alloc) => {
                    self.states[resource].apply(&alloc)?;
                    done.push((resource, alloc));
                }
                Err(e) => {
                    for (r, a) in done.iter().rev() {
                        self.states[*r].release(a)?;
                    }
                    return Err(e);
                }
            }
        }
        Ok(done.into_iter().map(|(_, a)| a).collect())
    }
}

/// Bind resource types into a composite that is always allocated together.
///
/// `components` lists `(state, units_per_composite_unit)`. The composite's
/// per-owner availability is the bottleneck
/// `min_c availability_c[i] / units_c`, and its agreement structure is the
/// first component's flow table (bound resources live on the same machines
/// under the same agreements — the paper's premise for binding).
pub fn bind_coupled(components: &[(&SystemState, f64)]) -> Result<SystemState, SchedError> {
    let (first, _) = components.first().ok_or(SchedError::InvalidRequest { amount: 0.0 })?;
    let n = first.n();
    for (s, units) in components {
        if s.n() != n {
            return Err(SchedError::DimensionMismatch { expected: n, got: s.n() });
        }
        if !units.is_finite() || *units <= 0.0 {
            return Err(SchedError::InvalidRequest { amount: *units });
        }
    }
    let availability: Vec<f64> = (0..n)
        .map(|i| {
            components
                .iter()
                .map(|(s, units)| s.availability[i] / units)
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    SystemState::new(first.flow.clone(), first.absolute.clone(), availability)
}

/// Expand a composite allocation back into per-component draw vectors
/// (same order as the `bind_coupled` input).
pub fn split_coupled_draws(alloc: &Allocation, units: &[f64]) -> Vec<Allocation> {
    units
        .iter()
        .map(|&u| Allocation {
            requester: alloc.requester,
            amount: alloc.amount * u,
            draws: alloc.draws.iter().map(|d| d * u).collect(),
            theta: alloc.theta * u,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::LpPolicy;
    use agreements_flow::{AgreementMatrix, TransitiveFlow};

    const EPS: f64 = 1e-7;

    fn state(edges: &[(usize, usize, f64)], v: Vec<f64>) -> SystemState {
        let n = v.len();
        let mut s = AgreementMatrix::zeros(n);
        for &(i, j, w) in edges {
            s.set(i, j, w).unwrap();
        }
        let flow = TransitiveFlow::compute(&s, n - 1);
        SystemState::new(flow, None, v).unwrap()
    }

    #[test]
    fn vector_request_allocates_each_component() {
        let cpu = state(&[(1, 0, 0.5)], vec![4.0, 10.0]);
        let mem = state(&[(1, 0, 0.5)], vec![100.0, 100.0]);
        let mut ms = MultiState::new(vec![cpu, mem]).unwrap();
        let req = VectorRequest::new(vec![(0, 6.0), (1, 50.0)]);
        let allocs = ms.allocate_vector(&LpPolicy::reduced(), 0, &req).unwrap();
        assert_eq!(allocs.len(), 2);
        assert!((allocs[0].amount - 6.0).abs() < EPS);
        assert!((allocs[1].amount - 50.0).abs() < EPS);
        // Applied: availability decreased.
        assert!((ms.states[0].availability.iter().sum::<f64>() - 8.0).abs() < EPS);
        assert!((ms.states[1].availability.iter().sum::<f64>() - 150.0).abs() < EPS);
    }

    #[test]
    fn vector_request_rolls_back_on_failure() {
        let cpu = state(&[], vec![4.0, 10.0]);
        let mem = state(&[], vec![1.0, 1.0]);
        let mut ms = MultiState::new(vec![cpu, mem]).unwrap();
        let req = VectorRequest::new(vec![(0, 3.0), (1, 50.0)]); // mem fails
        let err = ms.allocate_vector(&LpPolicy::reduced(), 0, &req).unwrap_err();
        assert!(matches!(err, SchedError::InsufficientCapacity { .. }));
        // CPU draw rolled back.
        assert_eq!(ms.states[0].availability, vec![4.0, 10.0]);
        assert_eq!(ms.states[1].availability, vec![1.0, 1.0]);
    }

    #[test]
    fn vector_request_unknown_resource() {
        let cpu = state(&[], vec![4.0]);
        let mut ms = MultiState::new(vec![cpu]).unwrap();
        let req = VectorRequest::new(vec![(7, 1.0)]);
        assert!(ms.allocate_vector(&LpPolicy::reduced(), 0, &req).is_err());
    }

    #[test]
    fn multistate_dimension_check() {
        let a = state(&[], vec![1.0, 2.0]);
        let b = state(&[], vec![1.0]);
        assert!(matches!(MultiState::new(vec![a, b]), Err(SchedError::DimensionMismatch { .. })));
    }

    #[test]
    fn coupled_binding_takes_bottleneck() {
        // 1 composite unit = 1 cpu + 2 mem.
        let cpu = state(&[(1, 0, 0.5)], vec![4.0, 10.0]);
        let mem = state(&[(1, 0, 0.5)], vec![6.0, 100.0]);
        let bound = bind_coupled(&[(&cpu, 1.0), (&mem, 2.0)]).unwrap();
        // Owner 0: min(4/1, 6/2) = 3 composite units.
        assert!((bound.availability[0] - 3.0).abs() < EPS);
        assert!((bound.availability[1] - 10.0).abs() < EPS);
    }

    #[test]
    fn coupled_allocation_splits_back() {
        let cpu = state(&[(1, 0, 1.0)], vec![4.0, 10.0]);
        let mem = state(&[(1, 0, 1.0)], vec![8.0, 100.0]);
        let bound = bind_coupled(&[(&cpu, 1.0), (&mem, 2.0)]).unwrap();
        let alloc = LpPolicy::reduced().allocate(&bound, 0, 5.0).unwrap();
        let parts = split_coupled_draws(&alloc, &[1.0, 2.0]);
        assert_eq!(parts.len(), 2);
        assert!((parts[0].amount - 5.0).abs() < EPS, "cpu units");
        assert!((parts[1].amount - 10.0).abs() < EPS, "mem units");
        // Component draws preserve the composite's placement shape.
        for i in 0..2 {
            assert!((parts[1].draws[i] - 2.0 * parts[0].draws[i]).abs() < EPS);
        }
    }

    #[test]
    fn bind_rejects_bad_units() {
        let cpu = state(&[], vec![1.0]);
        assert!(bind_coupled(&[(&cpu, 0.0)]).is_err());
        assert!(bind_coupled(&[]).is_err());
    }
}
