//! Algebraic properties of [`Snapshot::merge`] — the operation the
//! parallel experiment sweeps rely on to fold per-thread recorders into
//! one document in whatever order the threads finish.
//!
//! Counters and histograms form a commutative monoid under merge
//! (identity [`Snapshot::empty`]); the event trace is only *associative*
//! (concatenation keeps arrival order), so the commutativity property
//! deliberately excludes events. All generated f64s are multiples of
//! 0.25 well inside the exact-integer range, so sums reassociate without
//! rounding and every comparison below can be exact equality.

use agreements_telemetry::{CounterSnapshot, HistogramSnapshot, Snapshot, TelemetryEvent};
use proptest::prelude::*;

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
const BUCKETS: usize = 8;

fn quarter(k: u32) -> f64 {
    k as f64 * 0.25
}

/// Vary first-touch order between snapshots without a shuffle
/// combinator: rotate by a generated offset.
fn rotated<T>(mut v: Vec<T>, by: usize) -> Vec<T> {
    if !v.is_empty() {
        let k = by % v.len();
        v.rotate_left(k);
    }
    v
}

fn arb_counters() -> impl Strategy<Value = Vec<CounterSnapshot>> {
    (proptest::collection::vec(proptest::option::of(0u64..1_000_000), NAMES.len()), 0usize..4)
        .prop_map(|(values, rot)| {
            let counters = values
                .into_iter()
                .enumerate()
                .filter_map(|(i, v)| {
                    v.map(|value| CounterSnapshot { name: NAMES[i].to_string(), value })
                })
                .collect::<Vec<_>>();
            rotated(counters, rot)
        })
}

fn arb_histograms() -> impl Strategy<Value = Vec<HistogramSnapshot>> {
    let one =
        (proptest::collection::vec(0u64..100, BUCKETS), 0u32..4000, 0u32..4000, 0u32..4_000_000);
    (proptest::collection::vec(proptest::option::of(one), NAMES.len()), 0usize..4).prop_map(
        |(hists, rot)| {
            let histograms = hists
                .into_iter()
                .enumerate()
                .filter_map(|(i, h)| {
                    h.map(|(buckets, a, b, sum)| {
                        let count: u64 = buckets.iter().sum();
                        let (min, max) = if count == 0 {
                            (0.0, 0.0)
                        } else {
                            (quarter(a.min(b)), quarter(a.max(b)))
                        };
                        HistogramSnapshot {
                            name: NAMES[i].to_string(),
                            base: 1e-6,
                            growth: 2.0,
                            count,
                            sum: if count == 0 { 0.0 } else { quarter(sum) },
                            min,
                            max,
                            buckets,
                        }
                    })
                })
                .collect::<Vec<_>>();
            rotated(histograms, rot)
        },
    )
}

fn arb_events() -> impl Strategy<Value = Vec<TelemetryEvent>> {
    let one = prop_oneof![
        (0usize..64, 0u32..400, 0u32..400).prop_map(|(requester, x, b)| {
            TelemetryEvent::Admitted { requester, requested: quarter(x), bound: quarter(b) }
        }),
        (0usize..64, 0u32..400, 0u32..400, any::<bool>()).prop_map(|(requester, x, b, clamped)| {
            TelemetryEvent::FastReject {
                requester,
                requested: quarter(x),
                bound: quarter(b),
                clamped,
            }
        }),
    ];
    proptest::collection::vec(one, 0..5)
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (arb_counters(), arb_histograms(), arb_events(), 0u64..1000).prop_map(
        |(counters, histograms, events, events_dropped)| Snapshot {
            counters,
            histograms,
            events,
            events_dropped,
        },
    )
}

/// Canonical form for order-insensitive comparison: counters and
/// histograms sorted by name, the (order-sensitive) event trace dropped.
fn canon(mut s: Snapshot) -> Snapshot {
    s.counters.sort_by(|x, y| x.name.cmp(&y.name));
    s.histograms.sort_by(|x, y| x.name.cmp(&y.name));
    s.events.clear();
    s
}

fn merged(a: &Snapshot, b: &Snapshot) -> Snapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Counters and histograms merge commutatively (events concatenate,
    /// so they are excluded by canonicalization).
    #[test]
    fn merge_is_commutative_up_to_order(a in arb_snapshot(), b in arb_snapshot()) {
        prop_assert_eq!(canon(merged(&a, &b)), canon(merged(&b, &a)));
    }

    /// Merge is fully associative — including the event trace, whose
    /// concatenation order is a-then-b-then-c either way, and including
    /// Vec order, since first-touch order only depends on the sequence.
    #[test]
    fn merge_is_associative(
        a in arb_snapshot(),
        b in arb_snapshot(),
        c in arb_snapshot(),
    ) {
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    /// The empty snapshot is a two-sided identity.
    #[test]
    fn empty_is_identity(a in arb_snapshot()) {
        prop_assert_eq!(merged(&a, &Snapshot::empty()), a.clone());
        prop_assert_eq!(merged(&Snapshot::empty(), &a), a);
    }

    /// Merged counter totals are the per-name sums of the inputs.
    #[test]
    fn merged_counters_are_per_name_sums(a in arb_snapshot(), b in arb_snapshot()) {
        let m = merged(&a, &b);
        for name in NAMES {
            prop_assert_eq!(m.counter(name), a.counter(name) + b.counter(name));
        }
        // Histogram observation counts add the same way.
        for h in &m.histograms {
            let find = |s: &Snapshot| {
                s.histograms.iter().find(|x| x.name == h.name).map_or(0, |x| x.count)
            };
            prop_assert_eq!(h.count, find(&a) + find(&b));
        }
    }

    /// Snapshots survive a JSON round-trip bit-for-bit.
    #[test]
    fn json_round_trip_is_lossless(a in arb_snapshot()) {
        let back = Snapshot::from_json(&a.to_json()).expect("parse");
        prop_assert_eq!(back, a);
    }
}
