//! Unified telemetry plane for the enforcement stack.
//!
//! Every instrumented crate (`agreements-sched`, `agreements-grm`,
//! `agreements-flow`, `agreements-faults`, `agreements-proxysim`) talks
//! to telemetry through one cheap, cloneable [`Telemetry`] handle:
//!
//! - **Counters** — monotonic `u64` totals keyed by a static name
//!   (`"grm.fast_rejects"`, `"sched.solves"`, …).
//! - **Histograms** — fixed-bucket log-scale distributions for the hot
//!   latencies (LP solve time, serve-loop drain time, end-to-end request
//!   latency) and for flow-repair dirty-row counts ([`HistKind`]).
//! - **Event trace** — a bounded ring buffer of structured
//!   [`TelemetryEvent`]s (admissions, fast rejects, grants with the
//!   solved `θ` and post-solve `V'` deltas, agreement mutations,
//!   chaos-plane actions, degraded-mode transitions) dumpable on demand
//!   for post-mortem audit.
//!
//! The default handle is **disabled**: every call is a branch on a
//! `None` and returns immediately — no clock reads, no allocation, no
//! locking — so threading a disabled handle through the hot path is
//! bit-identical to not having telemetry at all. All instrumentation
//! goes through the [`TelemetrySink`] trait, so tests can substitute a
//! deterministic sink and assert exact event sequences.
//!
//! The bundled [`Recorder`] sink aggregates into a serializable,
//! mergeable [`Snapshot`] (vendored `serde_json`), which the fig/bench
//! binaries and the CLI export behind `--telemetry-out`.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default capacity of the [`Recorder`]'s event ring buffer.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// The fixed histogram set. Latency histograms are in seconds on a
/// log-scale grid from 100 ns; the dirty-row histogram uses power-of-two
/// buckets (a row count is an integer, not a duration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistKind {
    /// Wall-clock time of one LP solve in `AllocationSolver::place`.
    LpSolveSeconds,
    /// Wall-clock time of one GRM serve-loop wakeup drain
    /// (`handle_batch` over everything that piled up while asleep).
    ServeDrainSeconds,
    /// End-to-end latency of one GRM request decision (receipt to reply).
    RequestLatencySeconds,
    /// Dirty rows recomputed by one `IncrementalFlow::set` repair.
    FlowDirtyRows,
    /// Allocation requests decided per contiguous request run inside one
    /// GRM serve-loop wakeup (the batched-admission front door).
    BatchSize,
    /// Time an allocation request spent queued between the client's send
    /// and the serve loop starting its batch.
    QueueWaitSeconds,
    /// Wall-clock time of one durable-journal fsync (the group-commit
    /// barrier a networked GRM daemon pays before releasing replies).
    JournalFsyncSeconds,
    /// Encoded size, in bytes, of one wire frame (payload + envelope)
    /// crossing a GRM socket in either direction.
    FrameBytes,
    /// Journal records covered by one group-commit fsync (the unsynced
    /// tail a power cut at that instant would have lost).
    GroupCommitRecords,
}

impl HistKind {
    /// All kinds, in snapshot order.
    pub const ALL: [HistKind; 9] = [
        HistKind::LpSolveSeconds,
        HistKind::ServeDrainSeconds,
        HistKind::RequestLatencySeconds,
        HistKind::FlowDirtyRows,
        HistKind::BatchSize,
        HistKind::QueueWaitSeconds,
        HistKind::JournalFsyncSeconds,
        HistKind::FrameBytes,
        HistKind::GroupCommitRecords,
    ];

    /// Stable snapshot name.
    pub fn name(self) -> &'static str {
        match self {
            HistKind::LpSolveSeconds => "lp_solve_seconds",
            HistKind::ServeDrainSeconds => "serve_drain_seconds",
            HistKind::RequestLatencySeconds => "request_latency_seconds",
            HistKind::FlowDirtyRows => "flow_dirty_rows",
            HistKind::BatchSize => "batch_size",
            HistKind::QueueWaitSeconds => "queue_wait_seconds",
            HistKind::JournalFsyncSeconds => "journal_fsync_seconds",
            HistKind::FrameBytes => "frame_bytes",
            HistKind::GroupCommitRecords => "group_commit_records",
        }
    }

    fn index(self) -> usize {
        match self {
            HistKind::LpSolveSeconds => 0,
            HistKind::ServeDrainSeconds => 1,
            HistKind::RequestLatencySeconds => 2,
            HistKind::FlowDirtyRows => 3,
            HistKind::BatchSize => 4,
            HistKind::QueueWaitSeconds => 5,
            HistKind::JournalFsyncSeconds => 6,
            HistKind::FrameBytes => 7,
            HistKind::GroupCommitRecords => 8,
        }
    }

    /// `(base, growth, buckets)` of this kind's log grid: bucket 0 holds
    /// values below `base`, bucket `k ≥ 1` covers
    /// `[base·growth^(k−1), base·growth^k)`, the last bucket is open.
    fn grid(self) -> (f64, f64, usize) {
        match self {
            // 100 ns … ≈ 700 s at ≤ 60% relative error: covers a
            // sub-microsecond cache-hit solve and a pathological stall.
            HistKind::LpSolveSeconds
            | HistKind::ServeDrainSeconds
            | HistKind::RequestLatencySeconds
            | HistKind::QueueWaitSeconds
            | HistKind::JournalFsyncSeconds => (1e-7, 1.6, 52),
            // 1 … 2^30 rows in power-of-two buckets.
            HistKind::FlowDirtyRows => (1.0, 2.0, 32),
            // Batch sizes are small integers; 1 … 2^22 is generous.
            // Group-commit windows are bounded by `max_pending`, which
            // shares the same range.
            HistKind::BatchSize | HistKind::GroupCommitRecords => (1.0, 2.0, 24),
            // Frames span a 6-byte ping to a ~1 MiB availability dump;
            // power-of-two buckets over 1 … 2^30 bytes.
            HistKind::FrameBytes => (1.0, 2.0, 32),
        }
    }
}

/// One structured event in the audit trace. Externally tagged, so the
/// exported JSON reads `{"FastReject": {...}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    /// A request passed the capacity fast-reject and went to the LP.
    Admitted {
        /// Requesting principal.
        requester: usize,
        /// Requested amount (resource units).
        requested: f64,
        /// Shared `admission_bound()` value at decision time.
        bound: f64,
    },
    /// A request exceeded the reachable-capacity bound. `clamped` is
    /// false for a hard reject and true for the best-effort path, which
    /// clamps the request to the bound instead of refusing it.
    FastReject {
        /// Requesting principal.
        requester: usize,
        /// Requested amount (resource units).
        requested: f64,
        /// Shared `admission_bound()` value the request was tested against.
        bound: f64,
        /// Whether the request was clamped (best-effort) or refused.
        clamped: bool,
    },
    /// An allocation was granted: the solved perturbation `θ` and the
    /// post-solve availability deltas `V' − V` (one per principal,
    /// negative = drawn down).
    Granted {
        /// Requesting principal.
        requester: usize,
        /// Granted amount (resource units).
        amount: f64,
        /// Solved worst-case capacity perturbation `θ` (§3.1).
        theta: f64,
        /// Per-principal availability draw (resource units).
        draws: Vec<f64>,
    },
    /// A direct agreement `S[from][to]` was mutated.
    AgreementSet {
        /// Granting principal.
        from: usize,
        /// Receiving principal.
        to: usize,
        /// New direct share.
        share: f64,
        /// Flow-table rows the incremental repair recomputed.
        dirty_rows: u64,
    },
    /// The chaos plane dropped a message on `link`.
    ChaosDrop {
        /// Fault-plane link name.
        link: String,
    },
    /// The chaos plane duplicated a message on `link`.
    ChaosDup {
        /// Fault-plane link name.
        link: String,
    },
    /// The chaos plane delayed a message on `link`.
    ChaosHold {
        /// Fault-plane link name.
        link: String,
    },
    /// The chaos plane injected in-place latency on `link`.
    ChaosDelay {
        /// Fault-plane link name.
        link: String,
    },
    /// The chaos plane healed: faults off, held messages flushed.
    ChaosHeal {},
    /// An LRM lost the GRM and granted from its local pool, journalling
    /// the grant for later reconciliation.
    DegradedGrant {
        /// Granted amount (resource units).
        amount: f64,
    },
    /// A journalled degraded-mode grant was replayed into the GRM's
    /// books during reconciliation.
    ReconcileReplay {
        /// Requesting principal the grant is settled against.
        requester: usize,
        /// Replayed amount (resource units).
        amount: f64,
    },
    /// One simulator scheduler consultation: the solved `θ` for this
    /// epoch's overflow placement.
    EpochTheta {
        /// Epoch start time, seconds into the measured day.
        time: f64,
        /// Consulting (overloaded) proxy.
        proxy: usize,
        /// Work it asked to shed (work-seconds).
        excess: f64,
        /// Solved perturbation `θ`.
        theta: f64,
        /// Total work actually moved (work-seconds).
        moved: f64,
    },
}

/// Where instrumentation lands. Implementations must be cheap and
/// non-blocking enough for hot paths; they must never influence the
/// decisions they observe.
pub trait TelemetrySink: Send + Sync {
    /// Add `delta` to the monotonic counter `name`.
    fn add(&self, name: &'static str, delta: u64);
    /// Record one observation into histogram `kind`.
    fn observe(&self, kind: HistKind, value: f64);
    /// Append one event to the trace.
    fn record(&self, event: TelemetryEvent);
}

/// The handle threaded through the stack. `Default` (and
/// [`Telemetry::disabled`]) is the no-op plane: every method returns
/// immediately without reading a clock or building an event.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<dyn TelemetrySink>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.enabled() { "Telemetry(enabled)" } else { "Telemetry(disabled)" })
    }
}

impl Telemetry {
    /// The no-op plane (same as `Default`).
    pub fn disabled() -> Self {
        Telemetry { sink: None }
    }

    /// A plane backed by the given sink.
    pub fn new(sink: Arc<dyn TelemetrySink>) -> Self {
        Telemetry { sink: Some(sink) }
    }

    /// A plane backed by a fresh [`Recorder`] with the given event-trace
    /// capacity; returns the recorder for snapshotting.
    pub fn recorder(event_capacity: usize) -> (Self, Arc<Recorder>) {
        let rec = Arc::new(Recorder::new(event_capacity));
        (Telemetry::new(Arc::clone(&rec) as Arc<dyn TelemetrySink>), rec)
    }

    /// Whether a sink is attached.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Add `delta` to counter `name`.
    #[inline]
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(sink) = &self.sink {
            sink.add(name, delta);
        }
    }

    /// Record one histogram observation.
    #[inline]
    pub fn observe(&self, kind: HistKind, value: f64) {
        if let Some(sink) = &self.sink {
            sink.observe(kind, value);
        }
    }

    /// Append the event built by `make` — the closure runs only when a
    /// sink is attached, so disabled planes never pay for event
    /// construction (strings, draw vectors).
    pub fn record_with(&self, make: impl FnOnce() -> TelemetryEvent) {
        if let Some(sink) = &self.sink {
            sink.record(make());
        }
    }

    /// Start a timing span: `None` when disabled (no clock read).
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Finish a timing span started by [`Telemetry::start`].
    #[inline]
    pub fn stop(&self, kind: HistKind, started: Option<Instant>) {
        if let Some(t0) = started {
            self.observe(kind, t0.elapsed().as_secs_f64());
        }
    }
}

/// A log-scale histogram over one [`HistKind`] grid.
#[derive(Debug, Clone)]
struct Histogram {
    kind: HistKind,
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn new(kind: HistKind) -> Self {
        let (_, _, n) = kind.grid();
        Histogram { kind, buckets: vec![0; n], count: 0, sum: 0.0, min: f64::INFINITY, max: 0.0 }
    }

    fn bucket_of(kind: HistKind, value: f64) -> usize {
        let (base, growth, n) = kind.grid();
        if value < base {
            return 0;
        }
        let k = ((value / base).ln() / growth.ln()).floor() as usize + 1;
        k.min(n - 1)
    }

    fn record(&mut self, value: f64) {
        let v = value.max(0.0);
        self.buckets[Self::bucket_of(self.kind, v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

struct RecorderInner {
    counters: Vec<(&'static str, u64)>,
    hists: Vec<Histogram>,
    events: VecDeque<TelemetryEvent>,
    events_dropped: u64,
    event_capacity: usize,
}

/// The bundled aggregating sink: counters, the fixed histogram set, and
/// a bounded ring-buffer event trace. One mutex around everything —
/// instrumented paths are single-threaded per component, and cross-
/// component contention is limited to the rare enabled-telemetry runs.
pub struct Recorder {
    inner: Mutex<RecorderInner>,
}

impl Recorder {
    /// A recorder whose event trace keeps the most recent
    /// `event_capacity` events (older ones are counted as dropped).
    pub fn new(event_capacity: usize) -> Self {
        Recorder {
            inner: Mutex::new(RecorderInner {
                counters: Vec::new(),
                hists: HistKind::ALL.iter().map(|&k| Histogram::new(k)).collect(),
                events: VecDeque::new(),
                events_dropped: 0,
                event_capacity,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Materialize the current state as a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|&(name, value)| CounterSnapshot { name: name.to_string(), value })
                .collect(),
            histograms: inner
                .hists
                .iter()
                .map(|h| {
                    let (base, growth, _) = h.kind.grid();
                    HistogramSnapshot {
                        name: h.kind.name().to_string(),
                        base,
                        growth,
                        count: h.count,
                        sum: h.sum,
                        min: if h.count == 0 { 0.0 } else { h.min },
                        max: h.max,
                        buckets: h.buckets.clone(),
                    }
                })
                .collect(),
            events: inner.events.iter().cloned().collect(),
            events_dropped: inner.events_dropped,
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new(DEFAULT_EVENT_CAPACITY)
    }
}

impl TelemetrySink for Recorder {
    fn add(&self, name: &'static str, delta: u64) {
        let mut inner = self.lock();
        match inner.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += delta,
            None => inner.counters.push((name, delta)),
        }
    }

    fn observe(&self, kind: HistKind, value: f64) {
        self.lock().hists[kind.index()].record(value);
    }

    fn record(&self, event: TelemetryEvent) {
        let mut inner = self.lock();
        if inner.events.len() >= inner.event_capacity {
            inner.events.pop_front();
            inner.events_dropped += 1;
        }
        inner.events.push_back(event);
    }
}

/// One counter in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Counter name.
    pub name: String,
    /// Monotonic total.
    pub value: u64,
}

/// One histogram in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Histogram name ([`HistKind::name`]).
    pub name: String,
    /// Grid base: bucket 0 holds values below it.
    pub base: f64,
    /// Grid growth factor per bucket.
    pub growth: f64,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value (0 when empty).
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Bucket counts; the last bucket is open-ended.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A serializable, mergeable view of one recorder — the unit the
/// fig/bench binaries and CLI export behind `--telemetry-out`, and the
/// unit parallel sweeps merge into one document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Monotonic counters, in first-touch order.
    pub counters: Vec<CounterSnapshot>,
    /// The fixed histogram set, in [`HistKind::ALL`] order.
    pub histograms: Vec<HistogramSnapshot>,
    /// The retained event trace, oldest first.
    pub events: Vec<TelemetryEvent>,
    /// Events evicted from the ring buffer.
    pub events_dropped: u64,
}

impl Snapshot {
    /// An empty snapshot (identity for [`Snapshot::merge`]).
    pub fn empty() -> Self {
        Snapshot {
            counters: Vec::new(),
            histograms: Vec::new(),
            events: Vec::new(),
            events_dropped: 0,
        }
    }

    /// Fold `other` into `self`: counters add by name, histograms add
    /// bucketwise by name (grids are fixed per kind), events concatenate
    /// (self's first), dropped counts add.
    pub fn merge(&mut self, other: &Snapshot) {
        for c in &other.counters {
            match self.counters.iter_mut().find(|mine| mine.name == c.name) {
                Some(mine) => mine.value += c.value,
                None => self.counters.push(c.clone()),
            }
        }
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|mine| mine.name == h.name) {
                Some(mine) => {
                    debug_assert_eq!(mine.buckets.len(), h.buckets.len());
                    for (a, b) in mine.buckets.iter_mut().zip(&h.buckets) {
                        *a += b;
                    }
                    if h.count > 0 {
                        mine.min = if mine.count == 0 { h.min } else { mine.min.min(h.min) };
                        mine.max = mine.max.max(h.max);
                    }
                    mine.count += h.count;
                    mine.sum += h.sum;
                }
                None => self.histograms.push(h.clone()),
            }
        }
        self.events.extend(other.events.iter().cloned());
        self.events_dropped += other.events_dropped;
    }

    /// Find a counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|c| c.name == name).map_or(0, |c| c.value)
    }

    /// Find a histogram by [`HistKind`].
    pub fn histogram(&self, kind: HistKind) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == kind.name())
    }

    /// Serialize as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Parse a snapshot back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plane_is_inert() {
        let t = Telemetry::default();
        assert!(!t.enabled());
        assert!(t.start().is_none());
        t.add("anything", 3);
        t.observe(HistKind::LpSolveSeconds, 1.0);
        let mut built = false;
        t.record_with(|| {
            built = true;
            TelemetryEvent::ChaosHeal {}
        });
        assert!(!built, "disabled plane must not construct events");
    }

    #[test]
    fn recorder_aggregates_counters_and_histograms() {
        let (t, rec) = Telemetry::recorder(16);
        t.add("grm.requests", 2);
        t.add("grm.requests", 3);
        t.observe(HistKind::LpSolveSeconds, 1e-5);
        t.observe(HistKind::LpSolveSeconds, 2e-5);
        t.observe(HistKind::FlowDirtyRows, 7.0);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("grm.requests"), 5);
        let lp = snap.histogram(HistKind::LpSolveSeconds).unwrap();
        assert_eq!(lp.count, 2);
        assert!((lp.sum - 3e-5).abs() < 1e-12);
        assert!((lp.min - 1e-5).abs() < 1e-12 && (lp.max - 2e-5).abs() < 1e-12);
        assert_eq!(lp.buckets.iter().sum::<u64>(), 2);
        let rows = snap.histogram(HistKind::FlowDirtyRows).unwrap();
        // 7 rows lands in bucket ⌊log2 7⌋ + 1 = 3 of the power-of-two grid.
        assert_eq!(rows.buckets[3], 1);
    }

    #[test]
    fn histogram_bucket_edges_are_log_scale() {
        // Below base → bucket 0; exactly base → bucket 1.
        assert_eq!(Histogram::bucket_of(HistKind::LpSolveSeconds, 0.0), 0);
        assert_eq!(Histogram::bucket_of(HistKind::LpSolveSeconds, 9e-8), 0);
        assert_eq!(Histogram::bucket_of(HistKind::LpSolveSeconds, 1e-7), 1);
        // Huge values clamp into the open last bucket.
        let (_, _, n) = HistKind::LpSolveSeconds.grid();
        assert_eq!(Histogram::bucket_of(HistKind::LpSolveSeconds, 1e12), n - 1);
        // Monotone: larger values never land in earlier buckets.
        let mut last = 0;
        for k in 0..60 {
            let v = 1e-7 * 1.5f64.powi(k);
            let b = Histogram::bucket_of(HistKind::LpSolveSeconds, v);
            assert!(b >= last);
            last = b;
        }
    }

    #[test]
    fn batch_histograms_are_in_the_fixed_set() {
        let (t, rec) = Telemetry::recorder(4);
        t.observe(HistKind::BatchSize, 6.0);
        t.observe(HistKind::QueueWaitSeconds, 3e-6);
        let snap = rec.snapshot();
        assert_eq!(snap.histograms.len(), HistKind::ALL.len());
        let b = snap.histogram(HistKind::BatchSize).unwrap();
        assert_eq!(b.count, 1);
        // 6 requests land in bucket ⌊log2 6⌋ + 1 = 3 of the power-of-two grid.
        assert_eq!(b.buckets[3], 1);
        let q = snap.histogram(HistKind::QueueWaitSeconds).unwrap();
        assert_eq!(q.count, 1);
        assert!((q.sum - 3e-6).abs() < 1e-12);
    }

    #[test]
    fn event_ring_buffer_is_bounded() {
        let (t, rec) = Telemetry::recorder(4);
        for i in 0..10 {
            t.record_with(|| TelemetryEvent::Admitted {
                requester: i,
                requested: i as f64,
                bound: 100.0,
            });
        }
        let snap = rec.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.events_dropped, 6);
        // The survivors are the most recent four, oldest first.
        match &snap.events[0] {
            TelemetryEvent::Admitted { requester, .. } => assert_eq!(*requester, 6),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn snapshots_merge_by_name() {
        let (t1, r1) = Telemetry::recorder(8);
        let (t2, r2) = Telemetry::recorder(8);
        t1.add("a", 1);
        t2.add("a", 2);
        t2.add("b", 5);
        t1.observe(HistKind::RequestLatencySeconds, 1e-4);
        t2.observe(HistKind::RequestLatencySeconds, 1e-3);
        t1.record_with(|| TelemetryEvent::ChaosHeal {});
        let mut merged = r1.snapshot();
        merged.merge(&r2.snapshot());
        assert_eq!(merged.counter("a"), 3);
        assert_eq!(merged.counter("b"), 5);
        let h = merged.histogram(HistKind::RequestLatencySeconds).unwrap();
        assert_eq!(h.count, 2);
        assert!((h.min - 1e-4).abs() < 1e-15 && (h.max - 1e-3).abs() < 1e-15);
        assert_eq!(merged.events.len(), 1);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let (t, rec) = Telemetry::recorder(8);
        t.add("grm.granted", 7);
        t.observe(HistKind::ServeDrainSeconds, 2e-6);
        t.record_with(|| TelemetryEvent::FastReject {
            requester: 3,
            requested: 20.0,
            bound: 15.0,
            clamped: false,
        });
        t.record_with(|| TelemetryEvent::Granted {
            requester: 1,
            amount: 4.0,
            theta: 0.25,
            draws: vec![0.0, 4.0],
        });
        let snap = rec.snapshot();
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).expect("parse");
        assert_eq!(back, snap);
        assert!(json.contains("\"FastReject\""));
    }
}
