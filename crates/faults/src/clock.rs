//! A deterministic logical clock for chaos schedules.
//!
//! The GRM's lease-based liveness is driven by caller-supplied ticks
//! (`GrmHandle::tick(now, lease)`), precisely so that tests control time.
//! [`ChaosClock`] is the harness side of that contract: a logical clock
//! that only moves when the schedule says so, with an optional seeded
//! jitter so sweeps exercise irregular tick spacing without losing
//! reproducibility.

use rand::prelude::*;

/// A monotonically advancing logical clock.
#[derive(Debug, Clone)]
pub struct ChaosClock {
    now: u64,
    jitter: Option<(StdRng, u64)>,
}

impl ChaosClock {
    /// A clock starting at `start`, advancing exactly as asked.
    pub fn new(start: u64) -> Self {
        ChaosClock { now: start, jitter: None }
    }

    /// A clock whose every advance is stretched by a seeded extra of
    /// `0..=max_jitter` ticks — irregular but reproducible lease timing.
    pub fn with_jitter(start: u64, seed: u64, max_jitter: u64) -> Self {
        ChaosClock { now: start, jitter: Some((StdRng::seed_from_u64(seed), max_jitter)) }
    }

    /// The current logical time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advance by `ticks` (plus jitter, if configured); returns the new
    /// time, ready to hand to `GrmHandle::tick`.
    pub fn advance(&mut self, ticks: u64) -> u64 {
        let extra = match &mut self.jitter {
            Some((rng, max)) if *max > 0 => rng.gen_range(0..=*max),
            _ => 0,
        };
        self.now = self.now.saturating_add(ticks).saturating_add(extra);
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_clock_advances_exactly() {
        let mut c = ChaosClock::new(5);
        assert_eq!(c.now(), 5);
        assert_eq!(c.advance(3), 8);
        assert_eq!(c.advance(0), 8);
    }

    #[test]
    fn jittered_clock_is_reproducible_and_monotone() {
        let mut a = ChaosClock::with_jitter(0, 77, 4);
        let mut b = ChaosClock::with_jitter(0, 77, 4);
        let mut last = 0;
        for _ in 0..50 {
            let va = a.advance(2);
            let vb = b.advance(2);
            assert_eq!(va, vb);
            assert!(va >= last + 2);
            last = va;
        }
        let mut c = ChaosClock::with_jitter(0, 78, 4);
        let seq_a: Vec<u64> = (0..50).map(|_| a.advance(2)).collect();
        let seq_c: Vec<u64> = (0..50).map(|_| c.advance(2)).collect();
        assert_ne!(seq_a, seq_c);
    }
}
