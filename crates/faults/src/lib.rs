//! Deterministic chaos plane for the GRM/LRM federation.
//!
//! The paper's enforcement architecture (§3.2) is distributed — a
//! centralized GRM scheduling for many LRMs over a network — and a real
//! network drops, delays, duplicates, and reorders messages, while
//! processes crash and restart. This crate provides the machinery to
//! reproduce those conditions *deterministically*, so a failing fault
//! schedule is a seed, not a flake:
//!
//! - [`FaultPlane`] interposes on any channel [`Sender`] at the GRM↔LRM
//!   boundary and applies a seeded per-link fault schedule (message drop,
//!   duplication, and hold-back delay, which also reorders). Decisions
//!   depend only on the plane seed, the link name, and the message's
//!   sequence number on that link — never on wall-clock timing.
//! - [`ChaosClock`] is the logical clock the chaos harness uses to drive
//!   the GRM's lease-based liveness (`GrmHandle::tick`), so lease expiry
//!   in a fault schedule is as reproducible as the faults themselves.
//!
//! The plane is inert until wired in: production code paths construct
//! their channels directly and never pay for it. `FaultPlane::heal`
//! flips a live plane into a transparent pipe (flushing anything held),
//! which is how chaos tests model a network that has recovered.

#![warn(missing_docs)]

use agreements_telemetry::{Telemetry, TelemetryEvent};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use rand::prelude::*;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

pub mod clock;

pub use clock::ChaosClock;

/// Per-message fault probabilities applied by a [`FaultPlane`] link.
///
/// Fates are evaluated in order drop → duplicate → hold → delay;
/// exactly one (or none) applies per message. A held message is
/// released only after `1..=max_hold` *subsequent* messages have passed
/// it on the same link, which both delays it and reorders it past its
/// successors. A delayed message keeps its place in line but waits a
/// seeded `1..=max_delay_us` microseconds of wall clock before being
/// forwarded — injected latency/jitter without reordering (head-of-line
/// delay, like a slow in-order transport).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultMix {
    /// Probability a message is silently dropped.
    pub drop: f64,
    /// Probability a message is delivered twice.
    pub dup: f64,
    /// Probability a message is held back (delayed + reordered).
    pub hold: f64,
    /// Maximum hold distance, in later messages that overtake the held
    /// one (must be ≥ 1 for `hold` to have any effect).
    pub max_hold: u64,
    /// Probability a message is delayed in place (latency, no reorder).
    pub delay: f64,
    /// Maximum injected delay in microseconds (must be ≥ 1 for `delay`
    /// to have any effect).
    pub max_delay_us: u64,
}

impl FaultMix {
    /// A transparent mix: every message delivered exactly once, in order.
    pub fn none() -> Self {
        FaultMix { drop: 0.0, dup: 0.0, hold: 0.0, max_hold: 0, delay: 0.0, max_delay_us: 0 }
    }

    /// A drop-dominated lossy link.
    pub fn drop_heavy() -> Self {
        FaultMix { drop: 0.25, dup: 0.0, hold: 0.0, max_hold: 0, delay: 0.0, max_delay_us: 0 }
    }

    /// A duplication-dominated link (at-least-once transport).
    pub fn dup_heavy() -> Self {
        FaultMix { drop: 0.0, dup: 0.35, hold: 0.0, max_hold: 0, delay: 0.0, max_delay_us: 0 }
    }

    /// A delay/reorder-dominated link.
    pub fn delay_heavy() -> Self {
        FaultMix { drop: 0.0, dup: 0.0, hold: 0.35, max_hold: 4, delay: 0.0, max_delay_us: 0 }
    }

    /// Everything at once: the general mixed-failure network.
    pub fn mixed() -> Self {
        FaultMix { drop: 0.12, dup: 0.12, hold: 0.15, max_hold: 3, delay: 0.0, max_delay_us: 0 }
    }

    /// Pure injected latency: every message waits a seeded
    /// `1..=max_delay_us` microseconds, none are lost or reordered.
    pub fn latency(max_delay_us: u64) -> Self {
        FaultMix { drop: 0.0, dup: 0.0, hold: 0.0, max_hold: 0, delay: 1.0, max_delay_us }
    }

    /// Layer seeded latency/jitter onto this mix: `delay` probability of
    /// a `1..=max_delay_us` µs in-place stall per message. The delay
    /// threshold sits *after* drop/dup/hold, so adding latency to an
    /// existing mix never changes which messages those fates hit.
    pub fn with_latency(mut self, delay: f64, max_delay_us: u64) -> Self {
        self.delay = delay;
        self.max_delay_us = max_delay_us;
        self
    }
}

/// The fate the schedule assigns one message (or frame) on a link.
///
/// Exactly one fate applies per message; a fate never depends on the
/// fates of earlier messages, only on the (seed, link, index) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Delivered exactly once, in order.
    Deliver,
    /// Silently dropped.
    Drop,
    /// Delivered twice, back to back.
    Duplicate,
    /// Held back until `distance` later messages have passed it.
    Hold {
        /// How many successors overtake the held message (≥ 1).
        distance: u64,
    },
    /// Delivered in order, but only after `micros` microseconds of wall
    /// clock — injected latency without reordering.
    Delay {
        /// How long the message stalls at the head of the line (≥ 1 µs).
        micros: u64,
    },
}

/// The seeded per-link fate stream shared by every fault injector in
/// the system: the in-process channel plane ([`FaultPlane`]) and the
/// socket-level frame proxy (`agreements-net`) draw from this one
/// implementation, so "mirroring ChaosPlane semantics" is a structural
/// fact, not a convention. A schedule is a pure function of the plane
/// seed, the link name, and the message index on that link: two draws
/// are burned per message so one message's fate never shifts the
/// schedule of its successors.
pub struct FaultSchedule {
    rng: StdRng,
    mix: FaultMix,
}

impl FaultSchedule {
    /// The deterministic schedule for `link` under `(seed, mix)`.
    pub fn new(seed: u64, link: &str, mix: FaultMix) -> Self {
        FaultSchedule { rng: StdRng::seed_from_u64(seed ^ fnv1a(link.as_bytes())), mix }
    }

    /// The fate of the next message on this link.
    pub fn next_fate(&mut self) -> Fate {
        // Burn a fixed number of draws per message so one message's
        // fate never shifts the schedule of its successors.
        let (u_fate, u_hold) = (self.rng.gen::<f64>(), self.rng.gen::<f64>());
        let mix = self.mix;
        if u_fate < mix.drop {
            Fate::Drop
        } else if u_fate < mix.drop + mix.dup {
            Fate::Duplicate
        } else if u_fate < mix.drop + mix.dup + mix.hold && mix.max_hold >= 1 {
            Fate::Hold { distance: 1 + (u_hold * mix.max_hold as f64) as u64 }
        } else if u_fate < mix.drop + mix.dup + mix.hold + mix.delay && mix.max_delay_us >= 1 {
            // Delay re-parameterizes the second draw (a delayed message
            // has no hold distance), so a mix with `delay: 0.0` is
            // bit-identical to the pre-delay schedule for the same seed.
            Fate::Delay { micros: 1 + (u_hold * mix.max_delay_us as f64) as u64 }
        } else {
            Fate::Deliver
        }
    }
}

/// Held-back messages awaiting their release index: a min-heap keyed by
/// `(release_at, arrival)` so ties release in arrival order. Shared by
/// the channel plane and the socket proxy so hold/reorder semantics are
/// identical in both.
pub struct HoldBuffer<T> {
    heap: BinaryHeap<Held<T>>,
}

impl<T> Default for HoldBuffer<T> {
    fn default() -> Self {
        HoldBuffer { heap: BinaryHeap::new() }
    }
}

impl<T> HoldBuffer<T> {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hold `msg`, arriving as message `arrival`, until `distance` later
    /// messages have passed it.
    pub fn hold(&mut self, arrival: u64, distance: u64, msg: T) {
        self.heap.push(Held { release_at: arrival + distance, arrival, msg });
    }

    /// Pop the next message whose hold distance has elapsed at sequence
    /// number `seq`, earliest `(release_at, arrival)` first.
    pub fn release_due(&mut self, seq: u64) -> Option<T> {
        if self.heap.peek().is_some_and(|h| h.release_at <= seq) {
            self.heap.pop().map(|h| h.msg)
        } else {
            None
        }
    }

    /// Drain everything in `(release_at, arrival)` order (heal/flush).
    pub fn drain(&mut self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.heap.pop().map(|h| h.msg))
    }

    /// Number of messages currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Counters of what a [`FaultPlane`] actually did, across all its links.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlaneStats {
    /// Messages forwarded to the upstream (duplicates counted twice).
    pub delivered: u64,
    /// Messages dropped.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages held back past at least one successor.
    pub held: u64,
    /// Messages delayed in place (latency injected, order preserved).
    pub delayed: u64,
}

#[derive(Default)]
struct PlaneCounters {
    delivered: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    held: AtomicU64,
    delayed: AtomicU64,
}

/// A seeded, schedule-reproducible fault injector for channel links.
///
/// One plane can interpose on many links; each link draws an independent
/// deterministic stream derived from the plane seed and the link name.
/// Cloning shares the plane (its switches and counters), so a harness
/// can heal every link at once.
#[derive(Clone)]
pub struct FaultPlane {
    seed: u64,
    mix: FaultMix,
    enabled: Arc<AtomicBool>,
    counters: Arc<PlaneCounters>,
    telemetry: Telemetry,
}

/// How long an idle pump thread waits before re-checking for a heal
/// (held messages must not outlive a healed plane just because the link
/// went quiet).
const PUMP_IDLE: Duration = Duration::from_millis(2);

impl FaultPlane {
    /// A plane injecting the given mix, seeded for reproducibility.
    pub fn new(seed: u64, mix: FaultMix) -> Self {
        FaultPlane {
            seed,
            mix,
            enabled: Arc::new(AtomicBool::new(true)),
            counters: Arc::new(PlaneCounters::default()),
            telemetry: Telemetry::default(),
        }
    }

    /// Attach a telemetry plane: drop/dup/hold/heal land in the event
    /// trace (and `faults.*` counters). Attach *before* wrapping links —
    /// pump threads capture the plane at [`FaultPlane::wrap`] time.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// A transparent plane (useful as a control arm: same plumbing, no
    /// faults).
    pub fn inert(seed: u64) -> Self {
        FaultPlane::new(seed, FaultMix::none())
    }

    /// The network recovers: stop injecting faults on every link and
    /// flush anything still held back. Irreversible by design — a healed
    /// schedule stays healed, keeping post-heal invariants meaningful.
    pub fn heal(&self) {
        self.enabled.store(false, Ordering::SeqCst);
        self.telemetry.add("faults.heals", 1);
        self.telemetry.record_with(|| TelemetryEvent::ChaosHeal {});
    }

    /// Whether the plane is still injecting faults.
    pub fn is_active(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Snapshot of the plane's counters.
    pub fn stats(&self) -> PlaneStats {
        PlaneStats {
            delivered: self.counters.delivered.load(Ordering::SeqCst),
            dropped: self.counters.dropped.load(Ordering::SeqCst),
            duplicated: self.counters.duplicated.load(Ordering::SeqCst),
            held: self.counters.held.load(Ordering::SeqCst),
            delayed: self.counters.delayed.load(Ordering::SeqCst),
        }
    }

    /// Interpose on a link: returns a new sender whose traffic passes
    /// through this plane's fault schedule before reaching `upstream`.
    ///
    /// The returned sender is cloneable like any channel sender; all
    /// clones share one sequence-numbered stream, so the fault schedule
    /// is a deterministic function of (plane seed, link name, per-link
    /// message index). Requires `T: Clone` because duplication re-sends
    /// the same message.
    pub fn wrap<T: Send + Clone + 'static>(&self, link: &str, upstream: Sender<T>) -> Sender<T> {
        let (tx, rx) = unbounded::<T>();
        let schedule = FaultSchedule::new(self.seed, link, self.mix);
        let plane = self.clone();
        let link = link.to_string();
        std::thread::Builder::new()
            .name(format!("fault-plane:{link}"))
            .spawn(move || plane.pump(&link, rx, upstream, schedule))
            .expect("spawn fault-plane pump");
        tx
    }

    fn pump<T: Clone>(
        &self,
        link: &str,
        rx: Receiver<T>,
        upstream: Sender<T>,
        mut schedule: FaultSchedule,
    ) {
        let mut held: HoldBuffer<T> = HoldBuffer::new();
        let mut seq: u64 = 0;
        loop {
            let msg = match rx.recv_timeout(PUMP_IDLE) {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => {
                    // A healed plane must not keep messages hostage on a
                    // quiet link.
                    if !self.is_active() {
                        flush_all(&mut held, &upstream, &self.counters);
                    }
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    flush_all(&mut held, &upstream, &self.counters);
                    return;
                }
            };
            if !self.is_active() {
                flush_all(&mut held, &upstream, &self.counters);
                if upstream.send(msg).is_err() {
                    return;
                }
                self.counters.delivered.fetch_add(1, Ordering::SeqCst);
                continue;
            }
            match schedule.next_fate() {
                Fate::Drop => {
                    self.counters.dropped.fetch_add(1, Ordering::SeqCst);
                    self.telemetry.add("faults.dropped", 1);
                    self.telemetry
                        .record_with(|| TelemetryEvent::ChaosDrop { link: link.to_string() });
                }
                Fate::Duplicate => {
                    self.counters.duplicated.fetch_add(1, Ordering::SeqCst);
                    self.telemetry.add("faults.duplicated", 1);
                    self.telemetry
                        .record_with(|| TelemetryEvent::ChaosDup { link: link.to_string() });
                    for m in [msg.clone(), msg] {
                        if upstream.send(m).is_err() {
                            return;
                        }
                        self.counters.delivered.fetch_add(1, Ordering::SeqCst);
                    }
                }
                Fate::Hold { distance } => {
                    self.counters.held.fetch_add(1, Ordering::SeqCst);
                    self.telemetry.add("faults.held", 1);
                    self.telemetry
                        .record_with(|| TelemetryEvent::ChaosHold { link: link.to_string() });
                    held.hold(seq, distance, msg);
                }
                Fate::Delay { micros } => {
                    self.counters.delayed.fetch_add(1, Ordering::SeqCst);
                    self.telemetry.add("faults.delayed", 1);
                    self.telemetry
                        .record_with(|| TelemetryEvent::ChaosDelay { link: link.to_string() });
                    // Head-of-line stall: successors wait behind the
                    // delayed message, so order (and determinism) hold.
                    std::thread::sleep(Duration::from_micros(micros));
                    if upstream.send(msg).is_err() {
                        return;
                    }
                    self.counters.delivered.fetch_add(1, Ordering::SeqCst);
                }
                Fate::Deliver => {
                    if upstream.send(msg).is_err() {
                        return;
                    }
                    self.counters.delivered.fetch_add(1, Ordering::SeqCst);
                }
            }
            seq += 1;
            // Release everything whose hold distance has elapsed.
            while let Some(msg) = held.release_due(seq) {
                if upstream.send(msg).is_err() {
                    return;
                }
                self.counters.delivered.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
}

fn flush_all<T>(held: &mut HoldBuffer<T>, upstream: &Sender<T>, counters: &PlaneCounters) {
    // Drain in (release_at, arrival) order for determinism.
    for msg in held.drain() {
        if upstream.send(msg).is_ok() {
            counters.delivered.fetch_add(1, Ordering::SeqCst);
        }
    }
}

struct Held<T> {
    release_at: u64,
    arrival: u64,
    msg: T,
}

impl<T> PartialEq for Held<T> {
    fn eq(&self, other: &Self) -> bool {
        self.release_at == other.release_at && self.arrival == other.arrival
    }
}
impl<T> Eq for Held<T> {}
impl<T> PartialOrd for Held<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Held<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest release (then
        // earliest arrival) pops first.
        (other.release_at, other.arrival).cmp(&(self.release_at, self.arrival))
    }
}

/// FNV-1a over the link name: stable, platform-independent link salt.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_until_quiet(rx: &Receiver<u32>) -> Vec<u32> {
        let mut out = Vec::new();
        while let Ok(v) = rx.recv_timeout(Duration::from_millis(50)) {
            out.push(v);
            // Keep draining while messages keep arriving.
            while let Ok(v) = rx.try_recv() {
                out.push(v);
            }
        }
        out
    }

    fn run_schedule(seed: u64, mix: FaultMix, n: u32) -> Vec<u32> {
        let (up_tx, up_rx) = unbounded();
        let plane = FaultPlane::new(seed, mix);
        let tx = plane.wrap("test", up_tx);
        for i in 0..n {
            tx.send(i).unwrap();
        }
        drop(tx);
        collect_until_quiet(&up_rx)
    }

    #[test]
    fn inert_plane_is_transparent() {
        let got = run_schedule(1, FaultMix::none(), 100);
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedules_are_reproducible_per_seed() {
        let mix = FaultMix::mixed();
        let a = run_schedule(42, mix, 200);
        let b = run_schedule(42, mix, 200);
        assert_eq!(a, b, "same seed, same schedule");
        let c = run_schedule(43, mix, 200);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn links_draw_independent_streams() {
        let mix = FaultMix::drop_heavy();
        let plane = FaultPlane::new(7, mix);
        let (atx, arx) = unbounded();
        let (btx, brx) = unbounded();
        let a = plane.wrap("alpha", atx);
        let b = plane.wrap("beta", btx);
        for i in 0..200 {
            a.send(i).unwrap();
            b.send(i).unwrap();
        }
        drop((a, b));
        let ga = collect_until_quiet(&arx);
        let gb = collect_until_quiet(&brx);
        assert_ne!(ga, gb, "independent per-link schedules");
    }

    #[test]
    fn drops_lose_messages_and_count_them() {
        let got = run_schedule(5, FaultMix::drop_heavy(), 400);
        assert!(got.len() < 400, "some messages dropped");
        // No invented messages, order preserved among survivors.
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(got, sorted);
    }

    #[test]
    fn dups_deliver_twice() {
        let got = run_schedule(5, FaultMix::dup_heavy(), 300);
        assert!(got.len() > 300, "some messages duplicated");
        for w in got.windows(2) {
            assert!(w[1] == w[0] || w[1] == w[0] + 1, "dups are adjacent: {w:?}");
        }
    }

    #[test]
    fn holds_reorder_but_lose_nothing() {
        let got = run_schedule(11, FaultMix::delay_heavy(), 300);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..300).collect::<Vec<_>>(), "permutation, no loss");
        assert_ne!(got, sorted, "actually reordered");
        let stats = {
            // Re-run on a fresh plane to read its counters.
            let (up_tx, up_rx) = unbounded();
            let plane = FaultPlane::new(11, FaultMix::delay_heavy());
            let tx = plane.wrap("test", up_tx);
            for i in 0..300 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let _ = collect_until_quiet(&up_rx);
            plane.stats()
        };
        assert!(stats.held > 0);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn delays_preserve_order_and_lose_nothing() {
        let mix = FaultMix::none().with_latency(0.5, 300);
        let got = run_schedule(17, mix, 200);
        assert_eq!(got, (0..200).collect::<Vec<_>>(), "delay never drops or reorders");
        let (up_tx, up_rx) = unbounded();
        let plane = FaultPlane::new(17, mix);
        let tx = plane.wrap("test", up_tx);
        for i in 0..200u32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let _ = collect_until_quiet(&up_rx);
        let stats = plane.stats();
        assert!(stats.delayed > 0, "some messages delayed: {stats:?}");
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.delivered, 200);
    }

    #[test]
    fn adding_delay_never_shifts_other_fates() {
        // Same seed, same link: the set of dropped/dup'd/held messages
        // must be identical with and without a layered delay term,
        // because delay re-uses the two draws already burned per
        // message and its threshold sits after the existing fates.
        let base = FaultMix::mixed();
        let laced = FaultMix::mixed().with_latency(0.3, 50);
        let mut a = FaultSchedule::new(99, "link", base);
        let mut b = FaultSchedule::new(99, "link", laced);
        for _ in 0..500 {
            let (fa, fb) = (a.next_fate(), b.next_fate());
            match fa {
                Fate::Deliver => assert!(matches!(fb, Fate::Deliver | Fate::Delay { .. })),
                other => assert_eq!(other, fb, "non-deliver fates are unchanged"),
            }
        }
    }

    #[test]
    fn delay_schedule_is_deterministic() {
        let mix = FaultMix::mixed().with_latency(0.4, 700);
        let mut a = FaultSchedule::new(1234, "l", mix);
        let mut b = FaultSchedule::new(1234, "l", mix);
        let fa: Vec<Fate> = (0..400).map(|_| a.next_fate()).collect();
        let fb: Vec<Fate> = (0..400).map(|_| b.next_fate()).collect();
        assert_eq!(fa, fb, "same seed ⇒ same delays, to the microsecond");
        assert!(fa.iter().any(|f| matches!(f, Fate::Delay { .. })));
    }

    #[test]
    fn heal_flushes_and_stops_injecting() {
        let (up_tx, up_rx) = unbounded();
        let plane = FaultPlane::new(3, FaultMix { drop: 1.0, ..FaultMix::none() });
        let tx = plane.wrap("test", up_tx);
        for i in 0..50u32 {
            tx.send(i).unwrap();
        }
        // Give the pump time to drop them all, then heal.
        std::thread::sleep(Duration::from_millis(20));
        plane.heal();
        assert!(!plane.is_active());
        for i in 50..60u32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got = collect_until_quiet(&up_rx);
        assert_eq!(got, (50..60).collect::<Vec<_>>(), "post-heal traffic is clean");
    }

    #[test]
    fn heal_releases_held_messages_on_a_quiet_link() {
        let (up_tx, up_rx) = unbounded();
        // Hold every message far beyond the traffic we send.
        let plane = FaultPlane::new(9, FaultMix { hold: 1.0, max_hold: 1000, ..FaultMix::none() });
        let tx = plane.wrap("test", up_tx);
        for i in 0..5u32 {
            tx.send(i).unwrap();
        }
        std::thread::sleep(Duration::from_millis(10));
        assert!(up_rx.try_recv().is_err(), "everything is held");
        plane.heal();
        let got = collect_until_quiet(&up_rx);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..5).collect::<Vec<_>>(), "heal released the hostages");
        drop(tx);
    }
}
