//! The centralized global resource manager.
//!
//! The server assumes nothing about its transport: requests can be
//! retried, duplicated, delayed, or reordered on the way in (see the
//! `agreements-faults` crate and [`GrmServer::spawn_chaotic`]). Exactly-
//! once *effects* are recovered at the server with client-generated
//! [`RequestId`]s and a bounded dedup window: a duplicated or retried
//! `Request`/`Release`/`ReplayGrant` returns the original decision
//! instead of double-granting (DESIGN.md §8).

use agreements_flow::{AgreementMatrix, FlowError, IncrementalFlow};
use agreements_sched::{
    admission_bound, exceeds_bound, first_binding_resource, AdmissionRequest, Allocation,
    AllocationSolver, BatchedAdmission, HierarchicalScheduler, MultiAdmission, MultiAllocation,
    MultiSolver, SchedError, SystemState,
};
use agreements_telemetry::{HistKind, Telemetry, TelemetryEvent};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::thread::JoinHandle;
use std::time::Instant;

/// Errors surfaced to GRM clients.
#[derive(Debug, Clone, PartialEq)]
pub enum GrmError {
    /// The scheduler rejected the request.
    Sched(SchedError),
    /// An agreement mutation was invalid.
    Flow(FlowError),
    /// Referenced an unregistered LRM.
    UnknownLrm(usize),
    /// The server thread is gone (shut down or panicked).
    Disconnected,
    /// No reply arrived within the caller's per-call deadline.
    DeadlineExceeded {
        /// The deadline that elapsed, in milliseconds.
        millis: u64,
    },
    /// A resilient client gave up after exhausting its retry budget.
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: usize,
    },
    /// The operation is not available on this engine: a hierarchical
    /// GRM renegotiates with `set_inter_group`, a flat GRM with
    /// `set_agreement`; membership changes are flat-only. The payload
    /// names the rejected operation.
    Unsupported(&'static str),
    /// Nothing is listening at the server's address (the daemon is down
    /// or restarting). The call never reached a server, so retrying the
    /// same [`RequestId`] is always safe.
    ConnectionRefused,
    /// The connection died mid-call (reset, broken pipe, or EOF before
    /// the reply). The call may or may not have been decided; the dedup
    /// window makes the retry safe either way.
    ConnectionReset,
    /// A frame failed to decode (bad magic, CRC mismatch, malformed
    /// payload). A poison frame is a protocol bug, not a transient
    /// fault: resending the same bytes reproduces the same failure, so
    /// this is **never** retryable.
    FrameDecode {
        /// What the decoder objected to.
        detail: String,
    },
    /// The server address itself is unusable — e.g. a Unix-socket path
    /// longer than the kernel's `sun_path` limit. Deterministic, so
    /// never retryable: the same endpoint fails the same way.
    BadEndpoint {
        /// What is wrong with the endpoint (names the path and limit).
        detail: String,
    },
}

impl GrmError {
    /// Whether retrying the *same* call (same [`RequestId`]) can succeed.
    ///
    /// Transport-level failures — a missing reply, a dead server that a
    /// cold standby may replace, a refused or reset connection — are
    /// retryable; the server-side dedup window makes such retries safe.
    /// Decisions the server actually made (scheduling rejections,
    /// agreement errors, unknown indices) are not: retrying them re-asks
    /// an already-answered question, and an exhausted retry budget is
    /// itself final. A frame-decode failure is deterministic — the same
    /// bytes fail the same way — so a resilient client must never burn
    /// its retry budget on a poison frame.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            GrmError::Disconnected
                | GrmError::DeadlineExceeded { .. }
                | GrmError::ConnectionRefused
                | GrmError::ConnectionReset
        )
    }
}

impl fmt::Display for GrmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrmError::Sched(e) => write!(f, "scheduler: {e}"),
            GrmError::Flow(e) => write!(f, "agreement: {e}"),
            GrmError::UnknownLrm(i) => write!(f, "unknown LRM {i}"),
            GrmError::Disconnected => write!(f, "GRM server disconnected"),
            GrmError::DeadlineExceeded { millis } => {
                write!(f, "no GRM reply within {millis} ms")
            }
            GrmError::RetriesExhausted { attempts } => {
                write!(f, "GRM unreachable after {attempts} attempts")
            }
            GrmError::Unsupported(what) => {
                write!(f, "unsupported on this engine: {what}")
            }
            GrmError::ConnectionRefused => write!(f, "GRM connection refused"),
            GrmError::ConnectionReset => write!(f, "GRM connection reset mid-call"),
            GrmError::FrameDecode { detail } => write!(f, "undecodable frame: {detail}"),
            GrmError::BadEndpoint { detail } => write!(f, "bad endpoint: {detail}"),
        }
    }
}

impl std::error::Error for GrmError {}

/// A client-generated identifier making an allocation RPC idempotent.
///
/// `client` distinguishes issuers (so independently counting clients
/// never collide); `seq` is the issuer's call counter. Retries of one
/// logical call reuse one id; the server's dedup window then guarantees
/// the call takes effect at most once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestId {
    /// Issuing client.
    pub client: u64,
    /// Per-client sequence number.
    pub seq: u64,
}

/// How many decided calls the server remembers for deduplication. A
/// retry arriving after this many newer calls is treated as new — the
/// window bounds memory, trading exactly-once for "at most once within
/// any plausible retry horizon".
pub const DEDUP_WINDOW: usize = 1024;

/// A decided idempotent call in exportable form: what the dedup window
/// remembers about a [`RequestId`], made public so a durable journal can
/// persist decisions and seed them back into a respawned server
/// ([`GrmHandle::seed_decision`]) — at-most-once then holds across
/// process death, not just within one lifetime.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordedDecision {
    /// The id decided an allocation request.
    Grant(Result<Allocation, GrmError>),
    /// The id decided a multi-resource allocation request.
    GrantMulti(Result<MultiAllocation, GrmError>),
    /// The id decided a release.
    Release(Result<(), GrmError>),
    /// The id decided a degraded-grant replay.
    Replay(Result<(), GrmError>),
}

#[derive(Clone)]
enum Msg {
    Report {
        lrm: usize,
        available: f64,
    },
    Tick {
        now: u64,
        lease: u64,
    },
    Join {
        reply: Sender<usize>,
    },
    Leave {
        lrm: usize,
        reply: Sender<Result<(), GrmError>>,
    },
    Request {
        lrm: usize,
        amount: f64,
        req_id: Option<RequestId>,
        /// Send-time stamp for the queue-wait histogram; `None` when the
        /// issuing handle's telemetry plane is disabled (the stamp costs
        /// a clock read, so it is only taken when someone will look).
        enqueued: Option<Instant>,
        reply: Sender<Result<Allocation, GrmError>>,
    },
    RequestMulti {
        lrm: usize,
        amounts: Vec<f64>,
        req_id: Option<RequestId>,
        enqueued: Option<Instant>,
        reply: Sender<Result<MultiAllocation, GrmError>>,
    },
    ReportMulti {
        lrm: usize,
        available: Vec<f64>,
    },
    AvailabilityMulti {
        reply: Sender<Result<Vec<Vec<f64>>, GrmError>>,
    },
    Release {
        alloc: Allocation,
        req_id: Option<RequestId>,
        reply: Sender<Result<(), GrmError>>,
    },
    ReplayGrant {
        req_id: RequestId,
        lrm: usize,
        amount: f64,
        reply: Sender<Result<(), GrmError>>,
    },
    FulfilShortfall {
        lrm: usize,
        want: f64,
        taken: f64,
    },
    SetAgreement {
        from: usize,
        to: usize,
        share: f64,
        reply: Sender<Result<(), GrmError>>,
    },
    SetInterGroup {
        from_group: usize,
        to_group: usize,
        share: f64,
        reply: Sender<Result<(), GrmError>>,
    },
    SeedDecision {
        id: RequestId,
        decision: RecordedDecision,
        reply: Sender<()>,
    },
    Availability {
        reply: Sender<Vec<f64>>,
    },
    Stats {
        reply: Sender<GrmStats>,
    },
    Shutdown,
}

/// Operational counters maintained by the GRM server.
///
/// All integral counters are `u64` so their width does not vary with the
/// host platform and they line up with the telemetry plane's counters;
/// unit accumulators stay `f64` but are maintained with compensated
/// (Kahan) summation inside the server, so long runs of small grants do
/// not silently lose low-order bits.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GrmStats {
    /// Allocation requests received (dedup hits excluded).
    pub requests: u64,
    /// Requests granted.
    pub granted: u64,
    /// Requests rejected for insufficient capacity.
    pub rejected_capacity: u64,
    /// Total units granted.
    pub granted_units: f64,
    /// Agreement mutations applied.
    pub agreement_updates: u64,
    /// Availability reports processed.
    pub reports: u64,
    /// Duplicated or retried calls answered from the dedup window.
    pub duplicate_requests: u64,
    /// Fulfilments that came up short of the granted draw (LRM pool ran
    /// stale-low; see `Lrm::fulfil`).
    pub partial_fulfils: u64,
    /// Total units of fulfilment shortfall across partial fulfilments.
    pub fulfil_shortfall_units: f64,
    /// Degraded-mode grants replayed by reconciling LRMs.
    pub journaled_grants: u64,
    /// Total units across replayed degraded-mode grants.
    pub journaled_units: f64,
    /// Availability reports superseded by a later report for the same
    /// LRM within one serve-loop wakeup (last-writer-wins coalescing).
    pub coalesced_reports: u64,
    /// Requests rejected by the capacity pre-check without building an
    /// LP (a strict subset of `rejected_capacity`).
    pub fast_rejects: u64,
    /// Flow-table rows recomputed by the incremental maintainer across
    /// all agreement/membership mutations since the server started.
    pub flow_rows_recomputed: u64,
    /// Allocation requests decided through the batched admission front
    /// door (hierarchical engines only). Counts every request routed
    /// through a drained run, including runs of one; the `BatchSize`
    /// telemetry histogram carries the distribution.
    pub batched_allocations: u64,
    /// Times the shard executor (hierarchical engines only) declined a
    /// parallel fan-out in favour of the bit-identical sequential path
    /// — the break-even gate said the dispatch overhead would not pay.
    pub executor_fallbacks_sequential: u64,
}

/// Compensated (Kahan) accumulator for a running `f64` total.
///
/// The server's unit accumulators add many small draws to an ever-larger
/// total; naive summation loses the low-order bits of each addend once
/// the total dwarfs it. Kahan's correction term carries those bits
/// forward, keeping the published total within one rounding of the exact
/// sum regardless of run length.
#[derive(Debug, Clone, Copy, Default)]
struct KahanSum {
    total: f64,
    compensation: f64,
}

impl KahanSum {
    fn add(&mut self, x: f64) {
        let y = x - self.compensation;
        let t = self.total + y;
        self.compensation = (t - self.total) - y;
        self.total = t;
    }

    fn total(&self) -> f64 {
        self.total
    }
}

/// Cloneable client handle to a running GRM.
#[derive(Clone)]
pub struct GrmHandle {
    tx: Sender<Msg>,
    /// The server's telemetry plane, shared so the handle can stamp
    /// requests at send time for the queue-wait histogram. Disabled
    /// (the default) costs one branch per request.
    telemetry: Telemetry,
}

impl GrmHandle {
    /// Dynamic availability report (LRM -> GRM).
    pub fn report(&self, lrm: usize, available: f64) -> Result<(), GrmError> {
        self.tx.send(Msg::Report { lrm, available }).map_err(|_| GrmError::Disconnected)
    }

    /// Advance the GRM's logical clock for lease-based liveness: any LRM
    /// whose last report is older than `lease` ticks has its availability
    /// zeroed until it reports again (a crashed or partitioned LRM must
    /// not be scheduled against). The clock is supplied by the caller so
    /// tests and simulations stay deterministic.
    pub fn tick(&self, now: u64, lease: u64) -> Result<(), GrmError> {
        self.tx.send(Msg::Tick { now, lease }).map_err(|_| GrmError::Disconnected)
    }

    /// A new LRM joins the federation; returns its index. It starts with
    /// no agreements and zero reported availability — wire it in with
    /// [`GrmHandle::set_agreement`] and [`GrmHandle::report`]. Its
    /// liveness lease starts *now*: joining late does not make it
    /// instantly lease-expired.
    pub fn join(&self) -> Result<usize, GrmError> {
        let (reply, rx) = unbounded();
        self.tx.send(Msg::Join { reply }).map_err(|_| GrmError::Disconnected)?;
        rx.recv().map_err(|_| GrmError::Disconnected)
    }

    /// An LRM leaves: all its agreements are dropped (both directions)
    /// and its availability zeroed. Its index stays reserved so other
    /// indices remain stable.
    pub fn leave(&self, lrm: usize) -> Result<(), GrmError> {
        let (reply, rx) = unbounded();
        self.tx.send(Msg::Leave { lrm, reply }).map_err(|_| GrmError::Disconnected)?;
        rx.recv().map_err(|_| GrmError::Disconnected)?
    }

    /// Allocation RPC: LRM `lrm` requests `amount` units under the
    /// agreements. Blocks for the decision. Carries no request id — use
    /// [`GrmHandle::request_idempotent`] (or a `ResilientGrmClient`)
    /// when the call may be retried.
    pub fn request(&self, lrm: usize, amount: f64) -> Result<Allocation, GrmError> {
        let rx = self.issue_request(lrm, amount, None)?;
        rx.recv().map_err(|_| GrmError::Disconnected)?
    }

    /// Allocation RPC with an idempotency id: a duplicated or retried
    /// send inside the server's dedup window returns the original
    /// decision instead of granting twice.
    pub fn request_idempotent(
        &self,
        lrm: usize,
        amount: f64,
        req_id: RequestId,
    ) -> Result<Allocation, GrmError> {
        let rx = self.issue_request(lrm, amount, Some(req_id))?;
        rx.recv().map_err(|_| GrmError::Disconnected)?
    }

    /// Send a request without waiting: returns the reply channel. The
    /// resilient client uses this to apply its own deadline.
    pub(crate) fn issue_request(
        &self,
        lrm: usize,
        amount: f64,
        req_id: Option<RequestId>,
    ) -> Result<Receiver<Result<Allocation, GrmError>>, GrmError> {
        let (reply, rx) = unbounded();
        self.tx
            .send(Msg::Request { lrm, amount, req_id, enqueued: self.telemetry.start(), reply })
            .map_err(|_| GrmError::Disconnected)?;
        Ok(rx)
    }

    /// Multi-resource availability report: LRM `lrm`'s free capacity in
    /// every resource lane (the server's lane order; see
    /// [`GrmHandle::availability_multi`]). Single-resource GRMs ignore
    /// multi reports, as flat GRMs ignore malformed single ones.
    pub fn report_multi(&self, lrm: usize, available: Vec<f64>) -> Result<(), GrmError> {
        self.tx.send(Msg::ReportMulti { lrm, available }).map_err(|_| GrmError::Disconnected)
    }

    /// Multi-resource allocation RPC: LRM `lrm` requests `amounts`
    /// units, one entry per resource lane, granted only when **every**
    /// lane's LP admits; a capacity rejection names the binding
    /// resource. Single-resource GRMs answer
    /// [`GrmError::Unsupported`].
    pub fn request_multi(&self, lrm: usize, amounts: &[f64]) -> Result<MultiAllocation, GrmError> {
        let rx = self.issue_request_multi(lrm, amounts.to_vec(), None)?;
        rx.recv().map_err(|_| GrmError::Disconnected)?
    }

    /// [`GrmHandle::request_multi`] with an idempotency id: a duplicated
    /// or retried send inside the dedup window replays the original
    /// multi-resource decision instead of granting twice.
    pub fn request_multi_idempotent(
        &self,
        lrm: usize,
        amounts: &[f64],
        req_id: RequestId,
    ) -> Result<MultiAllocation, GrmError> {
        let rx = self.issue_request_multi(lrm, amounts.to_vec(), Some(req_id))?;
        rx.recv().map_err(|_| GrmError::Disconnected)?
    }

    pub(crate) fn issue_request_multi(
        &self,
        lrm: usize,
        amounts: Vec<f64>,
        req_id: Option<RequestId>,
    ) -> Result<Receiver<Result<MultiAllocation, GrmError>>, GrmError> {
        let (reply, rx) = unbounded();
        self.tx
            .send(Msg::RequestMulti {
                lrm,
                amounts,
                req_id,
                enqueued: self.telemetry.start(),
                reply,
            })
            .map_err(|_| GrmError::Disconnected)?;
        Ok(rx)
    }

    /// Snapshot of a multi-resource GRM's per-lane availability view
    /// (outer index = resource lane, inner = principal).
    /// Single-resource GRMs answer [`GrmError::Unsupported`].
    pub fn availability_multi(&self) -> Result<Vec<Vec<f64>>, GrmError> {
        let (reply, rx) = unbounded();
        self.tx.send(Msg::AvailabilityMulti { reply }).map_err(|_| GrmError::Disconnected)?;
        rx.recv().map_err(|_| GrmError::Disconnected)?
    }

    /// Send a request without blocking for the decision; returns the
    /// reply channel. Pipelining many in-flight requests this way is
    /// what lets the server's drain loop see them as one batch — a
    /// blocking client hands it runs of one by construction.
    pub fn request_async(
        &self,
        lrm: usize,
        amount: f64,
    ) -> Result<Receiver<Result<Allocation, GrmError>>, GrmError> {
        self.issue_request(lrm, amount, None)
    }

    /// Return a previous allocation's draws to the pool.
    pub fn release(&self, alloc: Allocation) -> Result<(), GrmError> {
        let rx = self.issue_release(alloc, None)?;
        rx.recv().map_err(|_| GrmError::Disconnected)?
    }

    /// Idempotent release: safe to retry or duplicate within the dedup
    /// window — the draws are returned to the pool at most once.
    pub fn release_idempotent(&self, alloc: Allocation, req_id: RequestId) -> Result<(), GrmError> {
        let rx = self.issue_release(alloc, Some(req_id))?;
        rx.recv().map_err(|_| GrmError::Disconnected)?
    }

    pub(crate) fn issue_release(
        &self,
        alloc: Allocation,
        req_id: Option<RequestId>,
    ) -> Result<Receiver<Result<(), GrmError>>, GrmError> {
        let (reply, rx) = unbounded();
        self.tx.send(Msg::Release { alloc, req_id, reply }).map_err(|_| GrmError::Disconnected)?;
        Ok(rx)
    }

    /// Replay a degraded-mode grant during reconciliation: the units were
    /// already drawn from the reporting LRM's own pool while the GRM was
    /// unreachable, so this only settles the books (journaled-grant
    /// counters), idempotently under `req_id`. If the id turns out to
    /// have been granted by the live path (the original RPC's reply was
    /// lost *after* the server granted it), the replay is a no-op.
    pub fn replay_grant(&self, req_id: RequestId, lrm: usize, amount: f64) -> Result<(), GrmError> {
        let rx = self.issue_replay(req_id, lrm, amount)?;
        rx.recv().map_err(|_| GrmError::Disconnected)?
    }

    pub(crate) fn issue_replay(
        &self,
        req_id: RequestId,
        lrm: usize,
        amount: f64,
    ) -> Result<Receiver<Result<(), GrmError>>, GrmError> {
        let (reply, rx) = unbounded();
        self.tx
            .send(Msg::ReplayGrant { req_id, lrm, amount, reply })
            .map_err(|_| GrmError::Disconnected)?;
        Ok(rx)
    }

    /// Report a fulfilment that came up short of the granted draw
    /// (fire-and-forget; see `Lrm::fulfil`).
    pub fn report_fulfil_shortfall(
        &self,
        lrm: usize,
        want: f64,
        taken: f64,
    ) -> Result<(), GrmError> {
        self.tx.send(Msg::FulfilShortfall { lrm, want, taken }).map_err(|_| GrmError::Disconnected)
    }

    /// Agreement-management service: set `S[from][to] = share` and
    /// recompute the transitive flow.
    pub fn set_agreement(&self, from: usize, to: usize, share: f64) -> Result<(), GrmError> {
        let (reply, rx) = unbounded();
        self.tx
            .send(Msg::SetAgreement { from, to, share, reply })
            .map_err(|_| GrmError::Disconnected)?;
        rx.recv().map_err(|_| GrmError::Disconnected)?
    }

    /// Renegotiate one inter-group agreement on a hierarchical GRM (the
    /// coarse analogue of [`GrmHandle::set_agreement`]); requests
    /// decided after the reply see the new share. Flat GRMs answer
    /// [`GrmError::Unsupported`].
    pub fn set_inter_group(
        &self,
        from_group: usize,
        to_group: usize,
        share: f64,
    ) -> Result<(), GrmError> {
        let (reply, rx) = unbounded();
        self.tx
            .send(Msg::SetInterGroup { from_group, to_group, share, reply })
            .map_err(|_| GrmError::Disconnected)?;
        rx.recv().map_err(|_| GrmError::Disconnected)?
    }

    /// Seed one recovered decision into the server's dedup window
    /// (recovery plumbing: a respawned server replays its durable
    /// journal through this before serving traffic, so a duplicate RPC
    /// straddling the restart still replays the original decision
    /// instead of executing twice). Blocks until the seed is applied;
    /// seeds count toward the window's [`DEDUP_WINDOW`] capacity in
    /// insertion order, so replay oldest-first.
    pub fn seed_decision(&self, id: RequestId, decision: RecordedDecision) -> Result<(), GrmError> {
        let (reply, rx) = unbounded();
        self.tx
            .send(Msg::SeedDecision { id, decision, reply })
            .map_err(|_| GrmError::Disconnected)?;
        rx.recv().map_err(|_| GrmError::Disconnected)
    }

    /// Operational counters since the server started.
    pub fn stats(&self) -> Result<GrmStats, GrmError> {
        let (reply, rx) = unbounded();
        self.tx.send(Msg::Stats { reply }).map_err(|_| GrmError::Disconnected)?;
        rx.recv().map_err(|_| GrmError::Disconnected)
    }

    /// Snapshot of the GRM's current availability view.
    pub fn availability(&self) -> Result<Vec<f64>, GrmError> {
        let (reply, rx) = unbounded();
        self.tx.send(Msg::Availability { reply }).map_err(|_| GrmError::Disconnected)?;
        rx.recv().map_err(|_| GrmError::Disconnected)
    }

    /// Ask the server to exit its loop.
    pub fn shutdown(&self) {
        let _ = self.tx.send(Msg::Shutdown);
    }
}

/// The client-side transport surface the retry/failover layer needs: the
/// three idempotent RPCs issued *without blocking* (each reply arrives on
/// the returned channel, so the caller applies its own deadline), plus
/// the two fire-and-forget refreshes. [`GrmHandle`] implements it over
/// in-process channels; a networked client implements it over sockets —
/// and everything layered on top (`ResilientGrmClient`'s deadlines,
/// backoff, rebind; the LRM's degraded-mode journal) works unchanged,
/// because nothing above this trait knows what carries the bytes.
pub trait GrmClient {
    /// Issue an allocation request; the decision arrives on the channel.
    fn issue_request(
        &self,
        lrm: usize,
        amount: f64,
        req_id: Option<RequestId>,
    ) -> Result<Receiver<Result<Allocation, GrmError>>, GrmError>;

    /// Issue a release of a previous allocation; ack on the channel.
    fn issue_release(
        &self,
        alloc: Allocation,
        req_id: Option<RequestId>,
    ) -> Result<Receiver<Result<(), GrmError>>, GrmError>;

    /// Issue a degraded-mode replay settlement; ack on the channel.
    fn issue_replay(
        &self,
        req_id: RequestId,
        lrm: usize,
        amount: f64,
    ) -> Result<Receiver<Result<(), GrmError>>, GrmError>;

    /// Fire-and-forget availability report (LRM → GRM soft state).
    fn report(&self, lrm: usize, available: f64) -> Result<(), GrmError>;

    /// Fire-and-forget lease-clock tick.
    fn tick(&self, now: u64, lease: u64) -> Result<(), GrmError>;
}

impl GrmClient for GrmHandle {
    fn issue_request(
        &self,
        lrm: usize,
        amount: f64,
        req_id: Option<RequestId>,
    ) -> Result<Receiver<Result<Allocation, GrmError>>, GrmError> {
        GrmHandle::issue_request(self, lrm, amount, req_id)
    }

    fn issue_release(
        &self,
        alloc: Allocation,
        req_id: Option<RequestId>,
    ) -> Result<Receiver<Result<(), GrmError>>, GrmError> {
        GrmHandle::issue_release(self, alloc, req_id)
    }

    fn issue_replay(
        &self,
        req_id: RequestId,
        lrm: usize,
        amount: f64,
    ) -> Result<Receiver<Result<(), GrmError>>, GrmError> {
        GrmHandle::issue_replay(self, req_id, lrm, amount)
    }

    fn report(&self, lrm: usize, available: f64) -> Result<(), GrmError> {
        GrmHandle::report(self, lrm, available)
    }

    fn tick(&self, now: u64, lease: u64) -> Result<(), GrmError> {
        GrmHandle::tick(self, now, lease)
    }
}

/// A running GRM server thread.
pub struct GrmServer {
    handle: GrmHandle,
    /// Direct line to the server thread, bypassing any fault plane, so
    /// shutdown/crash cannot be dropped by the chaos schedule.
    control: Sender<Msg>,
    join: Option<JoinHandle<()>>,
}

impl GrmServer {
    /// Spawn a GRM managing `n` LRMs under the given agreements and
    /// transitivity level, scheduling with the LP policy.
    pub fn spawn(agreements: AgreementMatrix, level: usize) -> GrmServer {
        Self::spawn_inner(agreements, level, None, Telemetry::default())
    }

    /// Spawn a GRM with an attached telemetry plane: the serve loop,
    /// the core's admission/grant path, the solver, and the incremental
    /// flow maintainer all record through `telemetry`. Passing
    /// `Telemetry::default()` (disabled) is exactly [`GrmServer::spawn`].
    pub fn spawn_with_telemetry(
        agreements: AgreementMatrix,
        level: usize,
        telemetry: Telemetry,
    ) -> GrmServer {
        Self::spawn_inner(agreements, level, None, telemetry)
    }

    /// Spawn a GRM whose *client-facing* channel passes through a fault
    /// plane link named `link`: every message a [`GrmHandle`] sends is
    /// subject to the plane's seeded drop/duplicate/hold schedule. The
    /// server's own control line stays direct, so shutdown is reliable
    /// even on a fully partitioned link. With an inert or healed plane
    /// the server behaves bit-identically to [`GrmServer::spawn`].
    pub fn spawn_chaotic(
        agreements: AgreementMatrix,
        level: usize,
        plane: &agreements_faults::FaultPlane,
        link: &str,
    ) -> GrmServer {
        Self::spawn_inner(agreements, level, Some((plane, link)), Telemetry::default())
    }

    /// [`GrmServer::spawn_chaotic`] with a telemetry plane attached to
    /// the server side (the fault plane's own drop/dup/hold events are
    /// recorded by whatever telemetry the *plane* carries).
    pub fn spawn_chaotic_with_telemetry(
        agreements: AgreementMatrix,
        level: usize,
        plane: &agreements_faults::FaultPlane,
        link: &str,
        telemetry: Telemetry,
    ) -> GrmServer {
        Self::spawn_inner(agreements, level, Some((plane, link)), telemetry)
    }

    /// Spawn a GRM whose decisions run through a [`HierarchicalScheduler`]
    /// wrapped in the batched admission front door: requests drained in
    /// one wakeup are admitted as a batch (bit-identical to one-by-one),
    /// and the scheduler's shard executor fans the fine solves out when
    /// the measured break-even says the dispatch will pay.
    ///
    /// The engine swap changes the management surface, not the RPC one:
    /// `report`/`tick`/`request`/`release`/`replay_grant` behave as on a
    /// flat GRM, renegotiation goes through
    /// [`GrmHandle::set_inter_group`], and `set_agreement`/`leave`
    /// answer [`GrmError::Unsupported`] (the partition is fixed at
    /// construction).
    pub fn spawn_hierarchical(sched: HierarchicalScheduler) -> GrmServer {
        Self::spawn_hierarchical_with_telemetry(sched, Telemetry::default())
    }

    /// [`GrmServer::spawn_hierarchical`] with a telemetry plane: batch
    /// sizes, queue waits, fine-solve spans, and executor fallbacks all
    /// record through `telemetry`.
    pub fn spawn_hierarchical_with_telemetry(
        sched: HierarchicalScheduler,
        telemetry: Telemetry,
    ) -> GrmServer {
        let (tx, rx) = unbounded();
        let thread_telemetry = telemetry.clone();
        let join = std::thread::Builder::new()
            .name("grm-server".into())
            .spawn(move || {
                let core = ServerCore::hierarchical(sched, thread_telemetry.clone());
                serve_core(core, rx, thread_telemetry);
            })
            .expect("spawn GRM thread");
        GrmServer { handle: GrmHandle { tx: tx.clone(), telemetry }, control: tx, join: Some(join) }
    }

    /// Spawn a **multi-resource** GRM: one warm LP lane per resource
    /// name, all over the same agreement economy (the agreements govern
    /// the principals, not any single resource). Clients use
    /// [`GrmHandle::request_multi`] / [`GrmHandle::report_multi`] /
    /// [`GrmHandle::availability_multi`]; a request is granted only when
    /// every lane's LP admits it, and a capacity rejection names the
    /// binding resource. The single-resource RPCs
    /// (`request`/`release`/`replay_grant`) and membership/agreement
    /// mutations answer [`GrmError::Unsupported`] — the engines do not
    /// mix inside one server.
    pub fn spawn_multi(
        names: Vec<&'static str>,
        agreements: AgreementMatrix,
        level: usize,
    ) -> GrmServer {
        Self::spawn_multi_with_telemetry(names, agreements, level, Telemetry::default())
    }

    /// [`GrmServer::spawn_multi`] with a telemetry plane attached.
    pub fn spawn_multi_with_telemetry(
        names: Vec<&'static str>,
        agreements: AgreementMatrix,
        level: usize,
        telemetry: Telemetry,
    ) -> GrmServer {
        let (tx, rx) = unbounded();
        let thread_telemetry = telemetry.clone();
        let join = std::thread::Builder::new()
            .name("grm-server".into())
            .spawn(move || {
                let core =
                    ServerCore::multi_flat(names, agreements, level, thread_telemetry.clone());
                serve_core(core, rx, thread_telemetry);
            })
            .expect("spawn GRM thread");
        GrmServer { handle: GrmHandle { tx: tx.clone(), telemetry }, control: tx, join: Some(join) }
    }

    /// Spawn a multi-resource GRM whose lanes are hierarchical: one
    /// [`HierarchicalScheduler`] per resource over a shared partition,
    /// wrapped in [`MultiAdmission`]. Same RPC surface as
    /// [`GrmServer::spawn_multi`]; inter-group renegotiation via
    /// [`GrmHandle::set_inter_group`] applies to every lane.
    pub fn spawn_multi_hierarchical(front: MultiAdmission) -> GrmServer {
        Self::spawn_multi_hierarchical_with_telemetry(front, Telemetry::default())
    }

    /// [`GrmServer::spawn_multi_hierarchical`] with a telemetry plane.
    pub fn spawn_multi_hierarchical_with_telemetry(
        front: MultiAdmission,
        telemetry: Telemetry,
    ) -> GrmServer {
        let (tx, rx) = unbounded();
        let thread_telemetry = telemetry.clone();
        let join = std::thread::Builder::new()
            .name("grm-server".into())
            .spawn(move || {
                let core = ServerCore::multi_hierarchical(front, thread_telemetry.clone());
                serve_core(core, rx, thread_telemetry);
            })
            .expect("spawn GRM thread");
        GrmServer { handle: GrmHandle { tx: tx.clone(), telemetry }, control: tx, join: Some(join) }
    }

    fn spawn_inner(
        agreements: AgreementMatrix,
        level: usize,
        chaos: Option<(&agreements_faults::FaultPlane, &str)>,
        telemetry: Telemetry,
    ) -> GrmServer {
        let (tx, rx) = unbounded();
        let handle_telemetry = telemetry.clone();
        let join = std::thread::Builder::new()
            .name("grm-server".into())
            .spawn(move || serve(agreements, level, rx, telemetry))
            .expect("spawn GRM thread");
        let client_tx = match chaos {
            Some((plane, link)) => plane.wrap(link, tx.clone()),
            None => tx.clone(),
        };
        GrmServer {
            handle: GrmHandle { tx: client_tx, telemetry: handle_telemetry },
            control: tx,
            join: Some(join),
        }
    }

    /// Client handle.
    pub fn handle(&self) -> GrmHandle {
        self.handle.clone()
    }

    /// Shut down and join the server thread.
    pub fn shutdown(mut self) {
        let _ = self.control.send(Msg::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }

    /// Abruptly stop the server, losing all volatile state (availability
    /// view, stats, dedup window). In-process this is the same mechanism
    /// as [`GrmServer::shutdown`]; the distinct name marks chaos-harness
    /// crash points, after which clients see [`GrmError::Disconnected`]
    /// (or deadline timeouts through a fault plane) until a cold standby
    /// is rebuilt — see `recovery::AgreementJournal`.
    pub fn crash(self) {
        self.shutdown();
    }
}

impl Drop for GrmServer {
    fn drop(&mut self) {
        let _ = self.control.send(Msg::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// One allocation request lifted out of a drained message run, waiting
/// on the batched admission front door.
struct QueuedRequest {
    lrm: usize,
    amount: f64,
    req_id: Option<RequestId>,
    enqueued: Option<Instant>,
    reply: Sender<Result<Allocation, GrmError>>,
}

/// Where a run entry's answer comes from (see `handle_request_run`).
enum RunSlot {
    /// Answered from the dedup window during pre-screen.
    Answered,
    /// In-run duplicate: replays the decision of the entry at this run
    /// index once it exists.
    DupOf(usize),
    /// Decided inline without touching availability (unknown LRM).
    Decided(Result<Allocation, GrmError>),
    /// Waiting on the admission batch (no payload: batched entries are
    /// matched up positionally — they appear in run order, as do the
    /// batch's decisions).
    Batched,
}

/// What the server remembers about an already-decided idempotent call.
enum CachedReply {
    Grant(Result<Allocation, GrmError>),
    GrantMulti(Result<MultiAllocation, GrmError>),
    Release(Result<(), GrmError>),
    Replay(Result<(), GrmError>),
}

impl From<RecordedDecision> for CachedReply {
    fn from(d: RecordedDecision) -> Self {
        match d {
            RecordedDecision::Grant(r) => CachedReply::Grant(r),
            RecordedDecision::GrantMulti(r) => CachedReply::GrantMulti(r),
            RecordedDecision::Release(r) => CachedReply::Release(r),
            RecordedDecision::Replay(r) => CachedReply::Replay(r),
        }
    }
}

/// The multi-resource decision engine, mirroring the single-resource
/// engine split (flat LP vs hierarchical front door) one level up.
/// Exactly one engine family is live per server: a multi core's flat
/// `state`/`policy` machinery is retained only for the shared
/// lease/clock plumbing and is never consulted for a decision.
enum MultiEngine {
    /// One warm LP lane per resource over a shared agreement economy.
    Flat {
        /// Per-lane persistent state: each shares the core's flow
        /// snapshot but owns its availability vector.
        states: Vec<SystemState>,
        solver: MultiSolver,
        /// Fast-reject bound scratch.
        bound: Vec<f64>,
    },
    /// One hierarchical scheduler per resource behind [`MultiAdmission`].
    Hier {
        front: MultiAdmission,
        /// Per-lane availability (outer = resource, inner = principal).
        avail: Vec<Vec<f64>>,
    },
}

impl MultiEngine {
    fn num_resources(&self) -> usize {
        match self {
            MultiEngine::Flat { states, .. } => states.len(),
            MultiEngine::Hier { front, .. } => front.num_resources(),
        }
    }

    /// Write one LRM's per-lane availability (validated by the caller).
    fn set_availability(&mut self, lrm: usize, available: &[f64]) {
        match self {
            MultiEngine::Flat { states, .. } => {
                for (st, &v) in states.iter_mut().zip(available) {
                    st.availability[lrm] = v;
                }
            }
            MultiEngine::Hier { avail, .. } => {
                for (lane, &v) in avail.iter_mut().zip(available) {
                    lane[lrm] = v;
                }
            }
        }
    }

    /// Zero one LRM's availability in every lane (lease expiry).
    fn zero_principal(&mut self, lrm: usize) {
        match self {
            MultiEngine::Flat { states, .. } => {
                for st in states.iter_mut() {
                    st.availability[lrm] = 0.0;
                }
            }
            MultiEngine::Hier { avail, .. } => {
                for lane in avail.iter_mut() {
                    lane[lrm] = 0.0;
                }
            }
        }
    }

    fn availability(&self) -> Vec<Vec<f64>> {
        match self {
            MultiEngine::Flat { states, .. } => {
                states.iter().map(|st| st.availability.clone()).collect()
            }
            MultiEngine::Hier { avail, .. } => avail.clone(),
        }
    }
}

/// Bounded id → decision memory (recency-ordered eviction).
#[derive(Default)]
struct DedupWindow {
    decisions: HashMap<RequestId, CachedReply>,
    order: VecDeque<RequestId>,
}

impl DedupWindow {
    fn get(&self, id: &RequestId) -> Option<&CachedReply> {
        self.decisions.get(id)
    }

    fn insert(&mut self, id: RequestId, reply: CachedReply) {
        if self.decisions.insert(id, reply).is_some() {
            // Re-deciding an id refreshes its recency: without moving it
            // to the back of `order`, the stale front position would get
            // the *newest* decision evicted first once the window fills.
            // Re-inserts are rare (the dedup hit path answers from cache
            // without re-inserting), so the linear scan is fine.
            if let Some(pos) = self.order.iter().position(|x| *x == id) {
                self.order.remove(pos);
            }
        }
        self.order.push_back(id);
        if self.order.len() > DEDUP_WINDOW {
            if let Some(old) = self.order.pop_front() {
                self.decisions.remove(&old);
            }
        }
    }
}

/// The GRM's single-threaded state machine, factored out of the serve
/// thread so the batched and one-at-a-time delivery paths can be tested
/// against each other deterministically.
///
/// Three hot-path properties hold relative to the straightforward
/// recompute-and-clone loop this replaced, all without moving any grant
/// decision by a single bit:
///
/// - **Incremental flow**: `SetAgreement` repairs only the dirty rows
///   of the flow table through [`IncrementalFlow`] (join/leave still
///   full-recompute); the repaired table is bit-identical to a full
///   recompute by construction.
/// - **Zero-clone requests**: the [`SystemState`] is persistent — the
///   flow snapshot is shared by `Arc` and the availability vector *is*
///   the server's live view, so a request allocates nothing beyond the
///   returned draw vector, and the solver's skeleton check is one
///   pointer compare.
/// - **Capacity fast-reject**: a request exceeding the reachable
///   capacity is rejected from the same admission arithmetic the solver
///   would run (same bounds, same summation order, same `1e-9` slack),
///   skipping LP construction entirely. Because the arithmetic is
///   replicated exactly, the decision and the error payload are the
///   ones the solver would have produced.
struct ServerCore {
    incflow: IncrementalFlow,
    /// Persistent request state: shared flow snapshot + live
    /// availability (`absolute` stays `None` for the centralized GRM).
    state: SystemState,
    /// Logical-clock liveness: last report time per LRM.
    last_report: Vec<u64>,
    clock: u64,
    stats: GrmStats,
    dedup: DedupWindow,
    /// Persistent solver (cached skeleton + workspace). Warm starting
    /// stays off: every grant must be bit-identical to the stateless LP
    /// policy, which is what the adapter tests assert.
    policy: AllocationSolver,
    /// Fast-reject bound scratch.
    bound: Vec<f64>,
    /// Report-run coalescing: `run_stamp[lrm] == run_gen` marks an LRM
    /// already written during the current contiguous run of `Report`s.
    run_stamp: Vec<u64>,
    run_gen: u64,
    /// Compensated unit accumulators; the raw `f64` fields in `stats`
    /// are published from these at `Msg::Stats` time.
    granted_units: KahanSum,
    fulfil_shortfall_units: KahanSum,
    journaled_units: KahanSum,
    /// Telemetry handle; `Telemetry::default()` (disabled) costs one
    /// branch per call site and keeps the server bit-identical.
    telemetry: Telemetry,
    /// The batched admission front door over a hierarchical scheduler.
    /// `Some` switches the decision engine: requests route through
    /// [`BatchedAdmission`] (batch or one-by-one, bit-identical either
    /// way) instead of the flat LP policy, whose `incflow`/`policy`/
    /// fast-reject machinery then goes unused for decisions.
    front: Option<BatchedAdmission>,
    /// Last executor-fallback total mirrored into the telemetry plane
    /// (the executor keeps a cumulative counter; telemetry counters are
    /// additive, so the server publishes deltas).
    last_fallbacks: u64,
    /// The multi-resource decision engine. `Some` makes this a
    /// multi-resource server: `RequestMulti`/`ReportMulti` are the data
    /// path and the single-resource RPCs answer `Unsupported`.
    multi: Option<MultiEngine>,
}

impl ServerCore {
    #[cfg(test)]
    fn new(agreements: AgreementMatrix, level: usize) -> ServerCore {
        Self::with_telemetry(agreements, level, Telemetry::default())
    }

    fn with_telemetry(
        agreements: AgreementMatrix,
        level: usize,
        telemetry: Telemetry,
    ) -> ServerCore {
        let n = agreements.n();
        let mut incflow = IncrementalFlow::new(agreements, level);
        incflow.set_telemetry(telemetry.clone());
        let state =
            SystemState { flow: incflow.snapshot(), absolute: None, availability: vec![0.0; n] };
        let mut policy = AllocationSolver::reduced();
        policy.set_telemetry(telemetry.clone());
        ServerCore {
            incflow,
            state,
            last_report: vec![0; n],
            clock: 0,
            stats: GrmStats::default(),
            dedup: DedupWindow::default(),
            policy,
            bound: Vec::new(),
            run_stamp: vec![0; n],
            run_gen: 0,
            granted_units: KahanSum::default(),
            fulfil_shortfall_units: KahanSum::default(),
            journaled_units: KahanSum::default(),
            telemetry,
            front: None,
            last_fallbacks: 0,
            multi: None,
        }
    }

    /// A core whose decisions run through the batched admission front
    /// door. The flat incremental-flow table is kept (over an empty
    /// agreement matrix) purely so the availability/lease machinery and
    /// the state snapshot stay the single code path they are on a flat
    /// core; it is never consulted for a decision.
    fn hierarchical(sched: HierarchicalScheduler, telemetry: Telemetry) -> ServerCore {
        let n = sched.num_principals();
        let mut front = BatchedAdmission::new(sched);
        front.set_telemetry(telemetry.clone());
        let mut core = Self::with_telemetry(AgreementMatrix::zeros(n), 1, telemetry);
        core.front = Some(front);
        core
    }

    /// A flat multi-resource core: one warm LP lane per resource name,
    /// every lane's [`SystemState`] sharing the core's flow snapshot
    /// over the given economy. The core's own `state`/`policy` stay (the
    /// lease machinery and snapshot plumbing are one code path) but are
    /// never consulted for a decision.
    fn multi_flat(
        names: Vec<&'static str>,
        agreements: AgreementMatrix,
        level: usize,
        telemetry: Telemetry,
    ) -> ServerCore {
        let n = agreements.n();
        let mut core = Self::with_telemetry(agreements, level, telemetry.clone());
        let states = (0..names.len())
            .map(|_| SystemState {
                flow: core.incflow.snapshot(),
                absolute: None,
                availability: vec![0.0; n],
            })
            .collect();
        let mut solver = MultiSolver::reduced(names);
        solver.set_telemetry(telemetry);
        core.multi = Some(MultiEngine::Flat { states, solver, bound: Vec::new() });
        core
    }

    /// A hierarchical multi-resource core over a prebuilt
    /// [`MultiAdmission`] (the lanes share one partition by
    /// construction).
    fn multi_hierarchical(mut front: MultiAdmission, telemetry: Telemetry) -> ServerCore {
        let n = front.num_principals();
        let rk = front.num_resources();
        front.set_telemetry(telemetry.clone());
        let mut core = Self::with_telemetry(AgreementMatrix::zeros(n), 1, telemetry);
        core.multi = Some(MultiEngine::Hier { front, avail: vec![vec![0.0; n]; rk] });
        core
    }

    /// Republish the flow snapshot after a mutation. Requests issued
    /// before the next mutation all share the new `Arc`.
    fn refresh_flow(&mut self) {
        self.state.flow = self.incflow.snapshot();
    }

    /// Apply one availability report. Each call site owns the run
    /// bookkeeping: `run_gen` must be bumped at the start of a run (a
    /// lone report is a run of one).
    fn apply_report(&mut self, lrm: usize, available: f64) {
        if lrm < self.state.n() && available.is_finite() && available >= 0.0 {
            if self.run_stamp[lrm] == self.run_gen {
                // A previous report in this same wakeup run is
                // superseded; its write was wasted, not wrong —
                // sequential overwrite IS last-writer-wins.
                self.stats.coalesced_reports += 1;
            } else {
                self.run_stamp[lrm] = self.run_gen;
            }
            self.state.availability[lrm] = available;
            self.last_report[lrm] = self.clock;
            self.stats.reports += 1;
        }
    }

    /// Apply one multi-resource availability report: all lanes of one
    /// LRM move together (a torn report — some lanes fresh, some stale —
    /// would let a request be judged against a view no report ever
    /// described). Malformed reports are dropped, as on the flat path;
    /// multi reports are not run-coalesced (they are rare relative to
    /// request traffic).
    fn apply_report_multi(&mut self, lrm: usize, available: &[f64]) {
        let n = self.state.n();
        let Some(multi) = self.multi.as_mut() else { return };
        if lrm < n
            && available.len() == multi.num_resources()
            && available.iter().all(|v| v.is_finite() && *v >= 0.0)
        {
            multi.set_availability(lrm, available);
            self.last_report[lrm] = self.clock;
            self.stats.reports += 1;
        }
    }

    fn apply_tick(&mut self, now: u64, lease: u64) {
        self.clock = self.clock.max(now);
        for i in 0..self.state.n() {
            if self.clock.saturating_sub(self.last_report[i]) > lease {
                self.state.availability[i] = 0.0;
                // A lease-expired LRM vanishes from every resource lane
                // at once — scheduling any lane against a dead LRM is as
                // wrong as scheduling the only one.
                if let Some(multi) = self.multi.as_mut() {
                    multi.zero_principal(i);
                }
            }
        }
    }

    /// The externally visible counters: the raw struct plus the
    /// compensated unit totals and the incremental-flow row count.
    fn published_stats(&self) -> GrmStats {
        let mut stats = self.stats;
        stats.granted_units = self.granted_units.total();
        stats.fulfil_shortfall_units = self.fulfil_shortfall_units.total();
        stats.journaled_units = self.journaled_units.total();
        stats.flow_rows_recomputed = self.incflow.rows_recomputed() as u64;
        if let Some(front) = &self.front {
            stats.executor_fallbacks_sequential = front.scheduler().executor_fallbacks();
        }
        stats
    }

    /// Decide an in-range request on the hierarchical engine: the front
    /// door's one-by-one path (a singleton batch, bit for bit). The
    /// front door commits the draws itself; only the books move here.
    fn decide_hier(&mut self, lrm: usize, amount: f64) -> Result<Allocation, GrmError> {
        let front = self.front.as_ref().expect("hierarchical engine");
        let res = front.admit_one(&mut self.state.availability, lrm, amount);
        self.sync_executor_fallbacks();
        match res {
            Ok(alloc) => {
                self.stats.granted += 1;
                self.granted_units.add(alloc.amount);
                self.telemetry.add("grm.granted", 1);
                self.telemetry.record_with(|| TelemetryEvent::Granted {
                    requester: lrm,
                    amount: alloc.amount,
                    theta: alloc.theta,
                    draws: alloc.draws.clone(),
                });
                Ok(alloc)
            }
            Err(e) => {
                if matches!(e, SchedError::InsufficientCapacity { .. }) {
                    self.stats.rejected_capacity += 1;
                }
                Err(GrmError::Sched(e))
            }
        }
    }

    /// Mirror the executor's cumulative sequential-fallback counter into
    /// the telemetry plane as increments. Guarded on `enabled()` so the
    /// disabled plane keeps its one-branch cost (no atomic load).
    fn sync_executor_fallbacks(&mut self) {
        if !self.telemetry.enabled() {
            return;
        }
        if let Some(front) = &self.front {
            let total = front.scheduler().executor_fallbacks();
            let delta = total.saturating_sub(self.last_fallbacks);
            if delta > 0 {
                self.telemetry.add("grm.executor_fallbacks_sequential", delta);
                self.last_fallbacks = total;
            }
        }
    }

    /// Decide an in-range allocation request against the current state.
    fn decide(&mut self, lrm: usize, amount: f64) -> Result<Allocation, GrmError> {
        // The persistent view replaces the per-request
        // `SystemState::new` validation; a poisoned availability (e.g.
        // a release with non-finite draws) must keep failing requests
        // exactly as construction used to.
        if let Some(bad) =
            self.state.availability.iter().copied().find(|v| !v.is_finite() || *v < 0.0)
        {
            return Err(GrmError::Sched(SchedError::InvalidRequest { amount: bad }));
        }
        // Capacity fast-reject: [`admission_bound`] is the *same
        // function* the solver runs — one definition, one summation
        // order, one slack constant — evaluated here without building
        // the LP. Only definite rejections short-cut; everything else
        // (including `amount == 0` and invalid amounts, which the
        // solver answers first) falls through unchanged.
        if amount.is_finite() && amount > 0.0 {
            let reachable = admission_bound(&self.state, lrm, &mut self.bound);
            if exceeds_bound(amount, reachable) {
                self.stats.fast_rejects += 1;
                self.stats.rejected_capacity += 1;
                self.telemetry.add("grm.fast_rejects", 1);
                self.telemetry.record_with(|| TelemetryEvent::FastReject {
                    requester: lrm,
                    requested: amount,
                    bound: reachable,
                    clamped: false,
                });
                return Err(GrmError::Sched(SchedError::InsufficientCapacity {
                    requester: lrm,
                    capacity: reachable,
                    requested: amount,
                    resource: None,
                }));
            }
        }
        match self.policy.allocate(&self.state, lrm, amount) {
            Ok(alloc) => {
                // Commit: deduct the draws from the view.
                for (v, d) in self.state.availability.iter_mut().zip(&alloc.draws) {
                    *v = (*v - d).max(0.0);
                }
                self.stats.granted += 1;
                self.granted_units.add(alloc.amount);
                self.telemetry.add("grm.granted", 1);
                self.telemetry.record_with(|| TelemetryEvent::Granted {
                    requester: lrm,
                    amount: alloc.amount,
                    theta: alloc.theta,
                    draws: alloc.draws.clone(),
                });
                Ok(alloc)
            }
            Err(e) => {
                if matches!(e, SchedError::InsufficientCapacity { .. }) {
                    self.stats.rejected_capacity += 1;
                }
                Err(GrmError::Sched(e))
            }
        }
    }

    /// Decide an in-range multi-resource request. Flat engine: the
    /// poisoned-availability and capacity fast-reject guards mirror
    /// [`ServerCore::decide`] lane by lane — the fast reject runs only
    /// when every amount is valid (an invalid amount must surface as the
    /// lane-ordered validation error the solver would report, not as a
    /// later lane's capacity verdict) and produces exactly the tagged
    /// error the solver's own lane-order evaluation would. Hierarchical
    /// engine: [`MultiAdmission::admit_one`] carries its own guards.
    /// Either way the grant commits every lane or none.
    fn decide_multi(&mut self, lrm: usize, amounts: &[f64]) -> Result<MultiAllocation, GrmError> {
        let multi = self.multi.as_mut().expect("multi engine");
        let res = match multi {
            MultiEngine::Flat { states, solver, bound } => {
                if let Some(bad) = states
                    .iter()
                    .flat_map(|st| st.availability.iter())
                    .copied()
                    .find(|v| !v.is_finite() || *v < 0.0)
                {
                    return Err(GrmError::Sched(SchedError::InvalidRequest { amount: bad }));
                }
                if amounts.len() == states.len()
                    && amounts.iter().all(|a| a.is_finite() && *a >= 0.0)
                {
                    if let Some((lane, reachable)) =
                        first_binding_resource(states, lrm, amounts, bound)
                    {
                        self.stats.fast_rejects += 1;
                        self.stats.rejected_capacity += 1;
                        self.telemetry.add("grm.fast_rejects", 1);
                        self.telemetry.record_with(|| TelemetryEvent::FastReject {
                            requester: lrm,
                            requested: amounts[lane],
                            bound: reachable,
                            clamped: false,
                        });
                        return Err(GrmError::Sched(SchedError::InsufficientCapacity {
                            requester: lrm,
                            capacity: reachable,
                            requested: amounts[lane],
                            resource: Some(solver.names()[lane]),
                        }));
                    }
                }
                solver.allocate(states, lrm, amounts).inspect(|alloc| {
                    for (st, lane) in states.iter_mut().zip(&alloc.lanes) {
                        for (v, d) in st.availability.iter_mut().zip(&lane.draws) {
                            *v = (*v - d).max(0.0);
                        }
                    }
                })
            }
            MultiEngine::Hier { front, avail } => front.admit_one(avail, lrm, amounts),
        };
        match res {
            Ok(alloc) => {
                self.stats.granted += 1;
                self.granted_units.add(alloc.total());
                self.telemetry.add("grm.granted", 1);
                Ok(alloc)
            }
            Err(e) => {
                if matches!(e, SchedError::InsufficientCapacity { .. }) {
                    self.stats.rejected_capacity += 1;
                }
                Err(GrmError::Sched(e))
            }
        }
    }

    /// Decide a contiguous run of drained requests through the batched
    /// admission front door. Equivalent to calling `handle` on each
    /// message in order — same decisions bit for bit, same counters,
    /// same dedup-window contents — because (a) `admit_batch` is
    /// bit-identical to `admit_one` in input order and (b) the entries
    /// answered outside the batch (dedup hits, in-run duplicates,
    /// unknown LRMs) never touch availability, so pulling them out
    /// cannot move any batched decision.
    fn handle_request_run(&mut self, run: Vec<QueuedRequest>) {
        let n = self.state.n();
        let mut slots: Vec<RunSlot> = Vec::with_capacity(run.len());
        // `replay_needed[j]` marks originals some later in-run duplicate
        // replays, so only those pay for keeping a decision clone.
        let mut replay_needed = vec![false; run.len()];
        let mut in_run: HashMap<RequestId, usize> = HashMap::new();
        let mut reqs: Vec<AdmissionRequest> = Vec::new();
        for (i, q) in run.iter().enumerate() {
            self.telemetry.stop(HistKind::QueueWaitSeconds, q.enqueued);
            if let Some(id) = q.req_id {
                if let Some(cached) = self.dedup.get(&id) {
                    self.stats.duplicate_requests += 1;
                    let res = match cached {
                        CachedReply::Grant(r) => r.clone(),
                        _ => Err(GrmError::Sched(SchedError::InvalidRequest { amount: q.amount })),
                    };
                    let _ = q.reply.send(res);
                    slots.push(RunSlot::Answered);
                    continue;
                }
                if let Some(&j) = in_run.get(&id) {
                    // One-at-a-time delivery would find the original's
                    // decision already in the window; here it does not
                    // exist yet, so the reply is deferred.
                    self.stats.duplicate_requests += 1;
                    replay_needed[j] = true;
                    slots.push(RunSlot::DupOf(j));
                    continue;
                }
                in_run.insert(id, i);
            }
            self.stats.requests += 1;
            self.telemetry.add("grm.requests", 1);
            if q.lrm >= n {
                slots.push(RunSlot::Decided(Err(GrmError::UnknownLrm(q.lrm))));
            } else {
                reqs.push(AdmissionRequest { requester: q.lrm, amount: q.amount });
                slots.push(RunSlot::Batched);
            }
        }
        let span = if reqs.is_empty() { None } else { self.telemetry.start() };
        let front = self.front.as_ref().expect("hierarchical engine");
        let decisions = front.admit_batch(&mut self.state.availability, &reqs);
        self.telemetry.stop(HistKind::RequestLatencySeconds, span);
        self.stats.batched_allocations += reqs.len() as u64;
        if !reqs.is_empty() {
            self.telemetry.add("grm.batched_allocations", reqs.len() as u64);
            self.telemetry.observe(HistKind::BatchSize, reqs.len() as f64);
        }
        self.sync_executor_fallbacks();
        // Book, remember, and answer in arrival order. Batched entries
        // consume the decision stream positionally.
        let mut decisions = decisions.into_iter();
        let mut replays: HashMap<usize, Result<Allocation, GrmError>> = HashMap::new();
        for (i, (q, slot)) in run.iter().zip(slots).enumerate() {
            let is_dup = matches!(slot, RunSlot::DupOf(_));
            let res = match slot {
                RunSlot::Answered => continue,
                RunSlot::DupOf(j) => {
                    replays.get(&j).cloned().expect("in-run original decided before its duplicate")
                }
                RunSlot::Decided(r) => r,
                RunSlot::Batched => {
                    match decisions.next().expect("one decision per batched request") {
                        Ok(alloc) => {
                            self.stats.granted += 1;
                            self.granted_units.add(alloc.amount);
                            self.telemetry.add("grm.granted", 1);
                            self.telemetry.record_with(|| TelemetryEvent::Granted {
                                requester: q.lrm,
                                amount: alloc.amount,
                                theta: alloc.theta,
                                draws: alloc.draws.clone(),
                            });
                            Ok(alloc)
                        }
                        Err(e) => {
                            if matches!(e, SchedError::InsufficientCapacity { .. }) {
                                self.stats.rejected_capacity += 1;
                            }
                            Err(GrmError::Sched(e))
                        }
                    }
                }
            };
            if let Some(id) = q.req_id {
                // Dedup hits never re-insert; in-run duplicates mirror
                // that. Everything decided here is remembered.
                if !is_dup {
                    self.dedup.insert(id, CachedReply::Grant(res.clone()));
                }
            }
            if replay_needed[i] {
                replays.insert(i, res.clone());
            }
            let _ = q.reply.send(res);
        }
    }

    /// Handle one message. Returns `false` on `Shutdown`.
    fn handle(&mut self, msg: Msg) -> bool {
        let n = self.state.n();
        match msg {
            Msg::Report { lrm, available } => {
                self.run_gen += 1;
                self.apply_report(lrm, available);
            }
            Msg::Tick { now, lease } => {
                self.apply_tick(now, lease);
            }
            Msg::Join { reply } => {
                if self.front.is_some() || self.multi.is_some() {
                    // The hierarchical partition (and a multi engine's
                    // lane dimensions) are fixed at construction;
                    // `Sender<usize>` cannot carry an error, so the
                    // sentinel answers "no index".
                    let _ = reply.send(usize::MAX);
                    return true;
                }
                let newcomer = self.incflow.grow();
                self.state.availability.push(0.0);
                // The newcomer's lease starts at the current clock: a
                // join after the clock has advanced must not be born
                // lease-expired.
                self.last_report.push(self.clock);
                self.run_stamp.push(0);
                self.refresh_flow();
                let _ = reply.send(newcomer);
            }
            Msg::Leave { lrm, reply } => {
                let res = if self.front.is_some() {
                    Err(GrmError::Unsupported("leave on a hierarchical GRM (fixed partition)"))
                } else if self.multi.is_some() {
                    Err(GrmError::Unsupported("leave on a multi-resource GRM (fixed membership)"))
                } else if lrm < n {
                    self.incflow.isolate(lrm).map_err(GrmError::Flow).map(|()| {
                        self.state.availability[lrm] = 0.0;
                        self.refresh_flow();
                    })
                } else {
                    Err(GrmError::UnknownLrm(lrm))
                };
                let _ = reply.send(res);
            }
            Msg::Request { lrm, amount, req_id, enqueued, reply } => {
                // The queue wait ends the moment processing begins —
                // before the dedup check, which is itself server work.
                self.telemetry.stop(HistKind::QueueWaitSeconds, enqueued);
                if let Some(id) = req_id {
                    if let Some(cached) = self.dedup.get(&id) {
                        self.stats.duplicate_requests += 1;
                        let res = match cached {
                            CachedReply::Grant(r) => r.clone(),
                            // An id reused across call kinds is a client
                            // bug; fail the request rather than grant.
                            _ => Err(GrmError::Sched(SchedError::InvalidRequest { amount })),
                        };
                        let _ = reply.send(res);
                        return true;
                    }
                }
                self.stats.requests += 1;
                self.telemetry.add("grm.requests", 1);
                let span = self.telemetry.start();
                let res = if self.multi.is_some() {
                    Err(GrmError::Unsupported(
                        "single-resource request on a multi-resource GRM; use request_multi",
                    ))
                } else if lrm >= n {
                    Err(GrmError::UnknownLrm(lrm))
                } else if self.front.is_some() {
                    self.decide_hier(lrm, amount)
                } else {
                    self.decide(lrm, amount)
                };
                self.telemetry.stop(HistKind::RequestLatencySeconds, span);
                if let Some(id) = req_id {
                    self.dedup.insert(id, CachedReply::Grant(res.clone()));
                }
                let _ = reply.send(res);
            }
            Msg::RequestMulti { lrm, amounts, req_id, enqueued, reply } => {
                self.telemetry.stop(HistKind::QueueWaitSeconds, enqueued);
                if let Some(id) = req_id {
                    if let Some(cached) = self.dedup.get(&id) {
                        self.stats.duplicate_requests += 1;
                        let res = match cached {
                            CachedReply::GrantMulti(r) => r.clone(),
                            // An id reused across call kinds is a client
                            // bug; fail the request rather than grant.
                            _ => Err(GrmError::Sched(SchedError::InvalidRequest {
                                amount: amounts.first().copied().unwrap_or(f64::NAN),
                            })),
                        };
                        let _ = reply.send(res);
                        return true;
                    }
                }
                self.stats.requests += 1;
                self.telemetry.add("grm.requests", 1);
                let span = self.telemetry.start();
                let res = if self.multi.is_none() {
                    Err(GrmError::Unsupported("multi-resource request on a single-resource GRM"))
                } else if lrm >= n {
                    Err(GrmError::UnknownLrm(lrm))
                } else {
                    self.decide_multi(lrm, &amounts)
                };
                self.telemetry.stop(HistKind::RequestLatencySeconds, span);
                if let Some(id) = req_id {
                    self.dedup.insert(id, CachedReply::GrantMulti(res.clone()));
                }
                let _ = reply.send(res);
            }
            Msg::ReportMulti { lrm, available } => {
                self.apply_report_multi(lrm, &available);
            }
            Msg::AvailabilityMulti { reply } => {
                let res = match &self.multi {
                    Some(engine) => Ok(engine.availability()),
                    None => {
                        Err(GrmError::Unsupported("availability_multi on a single-resource GRM"))
                    }
                };
                let _ = reply.send(res);
            }
            Msg::Release { alloc, req_id, reply } => {
                if let Some(id) = req_id {
                    if let Some(cached) = self.dedup.get(&id) {
                        self.stats.duplicate_requests += 1;
                        let res = match cached {
                            CachedReply::Release(r) => r.clone(),
                            CachedReply::Grant(_)
                            | CachedReply::GrantMulti(_)
                            | CachedReply::Replay(_) => {
                                Err(GrmError::Sched(SchedError::InvalidRequest {
                                    amount: alloc.amount,
                                }))
                            }
                        };
                        let _ = reply.send(res);
                        return true;
                    }
                }
                let res = if self.multi.is_some() {
                    // A single-lane release cannot say which lane to
                    // credit; multi engines are grant-only for now.
                    Err(GrmError::Unsupported("release on a multi-resource GRM"))
                } else if alloc.draws.len() != n {
                    Err(GrmError::Sched(SchedError::DimensionMismatch {
                        expected: n,
                        got: alloc.draws.len(),
                    }))
                } else {
                    for (v, d) in self.state.availability.iter_mut().zip(&alloc.draws) {
                        *v += d;
                    }
                    Ok(())
                };
                if let Some(id) = req_id {
                    self.dedup.insert(id, CachedReply::Release(res.clone()));
                }
                let _ = reply.send(res);
            }
            Msg::ReplayGrant { req_id, lrm, amount, reply } => {
                if let Some(cached) = self.dedup.get(&req_id) {
                    self.stats.duplicate_requests += 1;
                    let res = match cached {
                        CachedReply::Replay(r) => r.clone(),
                        // The live path already granted this id before
                        // the client fell back to degraded mode (its
                        // reply was lost): the intent is settled; the
                        // replay must not count it a second time.
                        CachedReply::Grant(Ok(_)) | CachedReply::GrantMulti(Ok(_)) => Ok(()),
                        CachedReply::Grant(Err(_))
                        | CachedReply::GrantMulti(Err(_))
                        | CachedReply::Release(_) => {
                            Err(GrmError::Sched(SchedError::InvalidRequest { amount }))
                        }
                    };
                    let _ = reply.send(res);
                    return true;
                }
                let res = if self.multi.is_some() {
                    // Degraded-mode draws are single-pool units; a multi
                    // LRM has no single pool to have drawn them from.
                    Err(GrmError::Unsupported("replay_grant on a multi-resource GRM"))
                } else if lrm >= n {
                    Err(GrmError::UnknownLrm(lrm))
                } else if !(amount.is_finite() && amount > 0.0) {
                    Err(GrmError::Sched(SchedError::InvalidRequest { amount }))
                } else {
                    // The units were drawn from the LRM's own pool while
                    // the GRM was unreachable and its re-report already
                    // reflects them; only the books move here.
                    self.stats.journaled_grants += 1;
                    self.journaled_units.add(amount);
                    self.telemetry.add("grm.journaled_replays", 1);
                    self.telemetry
                        .record_with(|| TelemetryEvent::ReconcileReplay { requester: lrm, amount });
                    Ok(())
                };
                self.dedup.insert(req_id, CachedReply::Replay(res.clone()));
                let _ = reply.send(res);
            }
            Msg::FulfilShortfall { lrm, want, taken } => {
                if lrm < n && want.is_finite() && taken.is_finite() && want > taken {
                    self.stats.partial_fulfils += 1;
                    self.fulfil_shortfall_units.add(want - taken);
                }
            }
            Msg::SetAgreement { from, to, share, reply } => {
                let res = if self.front.is_some() {
                    Err(GrmError::Unsupported(
                        "set_agreement on a hierarchical GRM; renegotiate with set_inter_group",
                    ))
                } else if self.multi.is_some() {
                    // A flat multi core's lane states hold clones of the
                    // flow snapshot; renegotiation would have to
                    // republish into every lane atomically. Out of scope
                    // until someone needs it.
                    Err(GrmError::Unsupported("set_agreement on a multi-resource GRM"))
                } else {
                    self.incflow.set(from, to, share).map_err(GrmError::Flow).map(|rows| {
                        self.stats.agreement_updates += 1;
                        self.telemetry.add("grm.agreement_updates", 1);
                        self.telemetry.record_with(|| TelemetryEvent::AgreementSet {
                            from,
                            to,
                            share,
                            dirty_rows: rows as u64,
                        });
                        self.refresh_flow();
                    })
                };
                let _ = reply.send(res);
            }
            Msg::SetInterGroup { from_group, to_group, share, reply } => {
                let res = if let Some(MultiEngine::Hier { front, .. }) = self.multi.as_mut() {
                    // Renegotiation on a hierarchical multi engine
                    // applies to every lane: the inter-group agreement
                    // is between principals, not resources.
                    match front.set_inter(from_group, to_group, share) {
                        Ok(rows) => {
                            self.stats.agreement_updates += 1;
                            self.telemetry.add("grm.agreement_updates", 1);
                            self.telemetry.record_with(|| TelemetryEvent::AgreementSet {
                                from: from_group,
                                to: to_group,
                                share,
                                dirty_rows: rows as u64,
                            });
                            Ok(())
                        }
                        Err(e) => Err(GrmError::Sched(e)),
                    }
                } else if self.multi.is_some() {
                    Err(GrmError::Unsupported("set_inter_group on a flat multi-resource GRM"))
                } else if let Some(front) = self.front.as_mut() {
                    match front.set_inter(from_group, to_group, share) {
                        Ok(rows) => {
                            self.stats.agreement_updates += 1;
                            self.telemetry.add("grm.agreement_updates", 1);
                            self.telemetry.record_with(|| TelemetryEvent::AgreementSet {
                                from: from_group,
                                to: to_group,
                                share,
                                dirty_rows: rows as u64,
                            });
                            Ok(())
                        }
                        Err(e) => Err(GrmError::Sched(e)),
                    }
                } else {
                    Err(GrmError::Unsupported("set_inter_group on a flat GRM"))
                };
                let _ = reply.send(res);
            }
            Msg::SeedDecision { id, decision, reply } => {
                // Recovery plumbing: restore a decision journaled by a
                // previous incarnation so a duplicate RPC straddling
                // the restart replays instead of re-executing. Not a
                // served request — no stats counters move.
                self.dedup.insert(id, decision.into());
                let _ = reply.send(());
            }
            Msg::Availability { reply } => {
                let _ = reply.send(self.state.availability.clone());
            }
            Msg::Stats { reply } => {
                let _ = reply.send(self.published_stats());
            }
            Msg::Shutdown => return false,
        }
        true
    }

    /// Handle one wakeup's worth of drained messages, coalescing
    /// *contiguous* runs of `Report`s (last valid writer per LRM wins —
    /// which in-order overwrite yields by construction; superseded
    /// writes are counted) and of equal-lease `Tick`s (one sweep at the
    /// maximum clock: with `last_report` frozen across the run and the
    /// clock monotone, the LRMs an intermediate tick would zero are a
    /// subset of those the final one zeroes, and zeroing is idempotent
    /// — so the merged sweep leaves the identical state). Runs never
    /// extend across a message of another type, so nothing is reordered
    /// relative to requests, releases, or mutations, and every grant is
    /// bit-identical to one-at-a-time delivery. Returns `false` once
    /// `Shutdown` is reached; anything queued behind it is dropped,
    /// exactly as the old loop's `break` dropped it.
    fn handle_batch(&mut self, batch: &mut Vec<Msg>) -> bool {
        let mut it = batch.drain(..).peekable();
        while let Some(msg) = it.next() {
            match msg {
                Msg::Report { lrm, available } => {
                    self.run_gen += 1;
                    self.apply_report(lrm, available);
                    while let Some(Msg::Report { .. }) = it.peek() {
                        let Some(Msg::Report { lrm, available }) = it.next() else {
                            unreachable!("peeked a Report");
                        };
                        self.apply_report(lrm, available);
                    }
                }
                Msg::Tick { now, lease } => {
                    let mut latest = now;
                    while let Some(&Msg::Tick { now: n2, lease: l2 }) = it.peek() {
                        if l2 != lease {
                            // A different lease changes which LRMs the
                            // sweep zeroes; keep it as its own run.
                            break;
                        }
                        latest = latest.max(n2);
                        it.next();
                    }
                    self.apply_tick(latest, lease);
                }
                Msg::Request { lrm, amount, req_id, enqueued, reply } if self.front.is_some() => {
                    // On the hierarchical engine a contiguous run of
                    // requests becomes one admission batch. Runs never
                    // extend across other message kinds, so nothing is
                    // reordered relative to reports, ticks, releases,
                    // or renegotiations.
                    let mut run = vec![QueuedRequest { lrm, amount, req_id, enqueued, reply }];
                    while let Some(Msg::Request { .. }) = it.peek() {
                        let Some(Msg::Request { lrm, amount, req_id, enqueued, reply }) = it.next()
                        else {
                            unreachable!("peeked a Request");
                        };
                        run.push(QueuedRequest { lrm, amount, req_id, enqueued, reply });
                    }
                    self.handle_request_run(run);
                }
                other => {
                    if !self.handle(other) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

fn serve(agreements: AgreementMatrix, level: usize, rx: Receiver<Msg>, telemetry: Telemetry) {
    let core = ServerCore::with_telemetry(agreements, level, telemetry.clone());
    serve_core(core, rx, telemetry);
}

fn serve_core(mut core: ServerCore, rx: Receiver<Msg>, telemetry: Telemetry) {
    // Coalescing drain loop: block for the first message of a wakeup,
    // then drain everything already queued and hand the batch to the
    // core, so a burst of reports costs one pass instead of one wakeup
    // each (and, on a hierarchical engine, a burst of requests becomes
    // one admission batch).
    let mut batch: Vec<Msg> = Vec::new();
    while let Ok(first) = rx.recv() {
        batch.push(first);
        while let Ok(more) = rx.try_recv() {
            batch.push(more);
        }
        telemetry.add("grm.wakeups", 1);
        let span = telemetry.start();
        let alive = core.handle_batch(&mut batch);
        telemetry.stop(HistKind::ServeDrainSeconds, span);
        if !alive {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize, share: f64) -> AgreementMatrix {
        let mut s = AgreementMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s.set(i, j, share).unwrap();
                }
            }
        }
        s
    }

    #[test]
    fn report_then_request_round_trip() {
        let grm = GrmServer::spawn(complete(3, 0.5), 2);
        let h = grm.handle();
        h.report(0, 0.0).unwrap();
        h.report(1, 10.0).unwrap();
        h.report(2, 10.0).unwrap();
        let alloc = h.request(0, 6.0).unwrap();
        assert!((alloc.amount - 6.0).abs() < 1e-9);
        assert!((alloc.draws[1] + alloc.draws[2] - 6.0).abs() < 1e-9);
        // The GRM's view reflects the commit.
        let avail = h.availability().unwrap();
        assert!((avail.iter().sum::<f64>() - 14.0).abs() < 1e-9);
        grm.shutdown();
    }

    #[test]
    fn release_restores_view() {
        let grm = GrmServer::spawn(complete(2, 0.5), 1);
        let h = grm.handle();
        h.report(0, 5.0).unwrap();
        h.report(1, 5.0).unwrap();
        let alloc = h.request(0, 4.0).unwrap();
        h.release(alloc).unwrap();
        let avail = h.availability().unwrap();
        assert!((avail.iter().sum::<f64>() - 10.0).abs() < 1e-9);
        grm.shutdown();
    }

    #[test]
    fn insufficient_capacity_propagates() {
        let grm = GrmServer::spawn(complete(2, 0.1), 1);
        let h = grm.handle();
        h.report(0, 1.0).unwrap();
        h.report(1, 1.0).unwrap();
        match h.request(0, 5.0) {
            Err(GrmError::Sched(SchedError::InsufficientCapacity { .. })) => {}
            other => panic!("expected capacity error, got {other:?}"),
        }
        grm.shutdown();
    }

    #[test]
    fn agreement_updates_take_effect() {
        let grm = GrmServer::spawn(AgreementMatrix::zeros(2), 1);
        let h = grm.handle();
        h.report(0, 0.0).unwrap();
        h.report(1, 10.0).unwrap();
        assert!(h.request(0, 2.0).is_err(), "no agreements yet");
        h.set_agreement(1, 0, 0.5).unwrap();
        let alloc = h.request(0, 2.0).unwrap();
        assert!((alloc.draws[1] - 2.0).abs() < 1e-9);
        // Invalid mutation is rejected.
        assert!(matches!(h.set_agreement(0, 0, 0.1), Err(GrmError::Flow(_))));
        grm.shutdown();
    }

    #[test]
    fn unknown_lrm_rejected() {
        let grm = GrmServer::spawn(complete(2, 0.5), 1);
        let h = grm.handle();
        assert!(matches!(h.request(7, 1.0), Err(GrmError::UnknownLrm(7))));
        grm.shutdown();
    }

    #[test]
    fn concurrent_clients_conserve_resources() {
        let grm = GrmServer::spawn(complete(4, 0.3), 3);
        let h = grm.handle();
        for i in 0..4 {
            h.report(i, 25.0).unwrap();
        }
        // 8 client threads each grab 5 units for a random-ish requester.
        let total_granted: f64 = agreements_util::par_map((0..8usize).collect(), |c| {
            let h = grm.handle();
            let mut granted = 0.0;
            for _ in 0..3 {
                if let Ok(a) = h.request(c % 4, 5.0) {
                    granted += a.amount;
                }
            }
            granted
        })
        .into_iter()
        .sum();
        let remaining: f64 = h.availability().unwrap().iter().sum();
        assert!(
            (total_granted + remaining - 100.0).abs() < 1e-6,
            "granted {total_granted} + remaining {remaining} != 100"
        );
        grm.shutdown();
    }

    #[test]
    fn stats_track_operations() {
        let grm = GrmServer::spawn(complete(2, 0.5), 1);
        let h = grm.handle();
        h.report(0, 10.0).unwrap();
        h.report(1, 10.0).unwrap();
        let ok = h.request(0, 5.0).unwrap();
        assert!(h.request(0, 100.0).is_err());
        h.set_agreement(0, 1, 0.4).unwrap();
        h.release(ok).unwrap();
        let s = h.stats().unwrap();
        assert_eq!(s.reports, 2);
        assert_eq!(s.requests, 2);
        assert_eq!(s.granted, 1);
        assert_eq!(s.rejected_capacity, 1);
        assert!((s.granted_units - 5.0).abs() < 1e-9);
        assert_eq!(s.agreement_updates, 1);
        assert_eq!(s.duplicate_requests, 0);
        assert_eq!(s.partial_fulfils, 0);
        grm.shutdown();
    }

    #[test]
    fn duplicated_request_returns_original_grant_once() {
        let grm = GrmServer::spawn(complete(2, 1.0), 1);
        let h = grm.handle();
        h.report(0, 0.0).unwrap();
        h.report(1, 10.0).unwrap();
        let id = RequestId { client: 7, seq: 0 };
        let first = h.request_idempotent(0, 4.0, id).unwrap();
        // A retry (lost reply) and a transport duplicate both come back
        // with the original decision; the pool moved only once.
        let retry = h.request_idempotent(0, 4.0, id).unwrap();
        assert_eq!(first.draws, retry.draws);
        assert!((first.amount - retry.amount).abs() < 1e-12);
        let avail = h.availability().unwrap();
        assert!((avail.iter().sum::<f64>() - 6.0).abs() < 1e-9, "single commit: {avail:?}");
        let s = h.stats().unwrap();
        assert_eq!(s.requests, 1);
        assert_eq!(s.granted, 1);
        assert_eq!(s.duplicate_requests, 1);
        assert!((s.granted_units - 4.0).abs() < 1e-9);
        grm.shutdown();
    }

    #[test]
    fn duplicated_rejection_is_replayed_not_recomputed() {
        let grm = GrmServer::spawn(complete(2, 0.1), 1);
        let h = grm.handle();
        h.report(0, 1.0).unwrap();
        h.report(1, 1.0).unwrap();
        let id = RequestId { client: 1, seq: 9 };
        assert!(h.request_idempotent(0, 5.0, id).is_err());
        assert!(h.request_idempotent(0, 5.0, id).is_err());
        let s = h.stats().unwrap();
        assert_eq!(s.requests, 1, "decision computed once");
        assert_eq!(s.rejected_capacity, 1);
        assert_eq!(s.duplicate_requests, 1);
        grm.shutdown();
    }

    #[test]
    fn duplicated_release_restores_pool_once() {
        let grm = GrmServer::spawn(complete(2, 0.5), 1);
        let h = grm.handle();
        h.report(0, 5.0).unwrap();
        h.report(1, 5.0).unwrap();
        let alloc = h.request(0, 4.0).unwrap();
        let id = RequestId { client: 2, seq: 1 };
        h.release_idempotent(alloc.clone(), id).unwrap();
        h.release_idempotent(alloc, id).unwrap();
        let avail = h.availability().unwrap();
        assert!((avail.iter().sum::<f64>() - 10.0).abs() < 1e-9, "released once: {avail:?}");
        grm.shutdown();
    }

    #[test]
    fn replay_grant_settles_books_idempotently() {
        let grm = GrmServer::spawn(complete(2, 0.5), 1);
        let h = grm.handle();
        let id = RequestId { client: 3, seq: 0 };
        h.replay_grant(id, 0, 2.5).unwrap();
        h.replay_grant(id, 0, 2.5).unwrap();
        let s = h.stats().unwrap();
        assert_eq!(s.journaled_grants, 1);
        assert!((s.journaled_units - 2.5).abs() < 1e-12);
        // A replay for an id the live path already granted is a no-op.
        h.report(0, 0.0).unwrap();
        h.report(1, 10.0).unwrap();
        let gid = RequestId { client: 3, seq: 1 };
        let _ = h.request_idempotent(0, 3.0, gid).unwrap();
        h.replay_grant(gid, 0, 3.0).unwrap();
        let s = h.stats().unwrap();
        assert_eq!(s.journaled_grants, 1, "live-granted id not double counted");
        assert_eq!(s.granted, 1);
        grm.shutdown();
    }

    #[test]
    fn dedup_window_is_bounded() {
        let grm = GrmServer::spawn(complete(2, 1.0), 1);
        let h = grm.handle();
        h.report(0, 0.0).unwrap();
        h.report(1, 1e9).unwrap();
        let id = RequestId { client: 0, seq: 0 };
        let _ = h.request_idempotent(0, 1.0, id).unwrap();
        // Push the id out of the window with newer decisions.
        for seq in 1..=(DEDUP_WINDOW as u64 + 1) {
            let _ = h.request_idempotent(0, 0.001, RequestId { client: 0, seq }).unwrap();
        }
        // The evicted id is treated as a fresh request again.
        let before = h.stats().unwrap();
        let _ = h.request_idempotent(0, 1.0, id).unwrap();
        let after = h.stats().unwrap();
        assert_eq!(after.requests, before.requests + 1, "evicted id recomputed");
        assert_eq!(after.duplicate_requests, before.duplicate_requests);
        grm.shutdown();
    }

    #[test]
    fn dedup_reinsert_refreshes_recency_at_window_boundary() {
        // Re-deciding an id must move it to the back of the eviction
        // order. Regression: the old `insert` kept the stale front
        // position, so at exactly DEDUP_WINDOW entries the *refreshed*
        // id was evicted first while an older untouched id survived.
        let mut w = DedupWindow::default();
        let id = |seq| RequestId { client: 0, seq };
        w.insert(id(0), CachedReply::Replay(Ok(())));
        for seq in 1..DEDUP_WINDOW as u64 {
            w.insert(id(seq), CachedReply::Replay(Ok(())));
        }
        // Window is exactly full; re-insert the oldest id.
        w.insert(id(0), CachedReply::Replay(Ok(())));
        assert_eq!(w.order.len(), DEDUP_WINDOW, "re-insert must not grow the window");
        // One more new id evicts the now-oldest entry: seq 1, not seq 0.
        w.insert(id(DEDUP_WINDOW as u64), CachedReply::Replay(Ok(())));
        assert!(w.get(&id(0)).is_some(), "refreshed id survives the eviction");
        assert!(w.get(&id(1)).is_none(), "stalest untouched id is evicted instead");
        assert_eq!(w.decisions.len(), w.order.len(), "map and order stay in lock-step");
    }

    #[test]
    fn mismatched_id_kind_is_rejected() {
        let grm = GrmServer::spawn(complete(2, 0.5), 1);
        let h = grm.handle();
        h.report(0, 5.0).unwrap();
        h.report(1, 5.0).unwrap();
        let id = RequestId { client: 4, seq: 4 };
        let alloc = h.request_idempotent(0, 2.0, id).unwrap();
        assert!(matches!(
            h.release_idempotent(alloc, id),
            Err(GrmError::Sched(SchedError::InvalidRequest { .. }))
        ));
        grm.shutdown();
    }

    #[test]
    fn stale_lrms_are_excluded_by_lease() {
        let grm = GrmServer::spawn(complete(2, 1.0), 1);
        let h = grm.handle();
        h.report(0, 0.0).unwrap();
        h.report(1, 10.0).unwrap();
        h.tick(0, 3).unwrap();
        // Within the lease: LRM 1's capacity is usable.
        let a = h.request(0, 4.0).unwrap();
        h.release(a).unwrap();
        // LRM 0 keeps reporting; LRM 1 goes silent past the lease.
        h.tick(2, 3).unwrap();
        h.report(0, 0.0).unwrap();
        h.tick(6, 3).unwrap();
        match h.request(0, 4.0) {
            Err(GrmError::Sched(SchedError::InsufficientCapacity { capacity, .. })) => {
                assert!(capacity.abs() < 1e-9, "stale owner zeroed: {capacity}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // A fresh report revives it.
        h.report(1, 10.0).unwrap();
        h.tick(7, 3).unwrap();
        assert!(h.request(0, 4.0).is_ok());
        grm.shutdown();
    }

    #[test]
    fn lease_expiry_boundary_is_exclusive() {
        let grm = GrmServer::spawn(complete(2, 1.0), 1);
        let h = grm.handle();
        h.report(0, 0.0).unwrap();
        h.report(1, 10.0).unwrap(); // last_report = 0
                                    // now - last_report == lease: still within the lease.
        h.tick(3, 3).unwrap();
        let a = h.request(0, 4.0).unwrap();
        h.release(a).unwrap();
        assert!((h.availability().unwrap()[1] - 10.0).abs() < 1e-9);
        // One tick past the lease: expired, availability zeroed.
        h.tick(4, 3).unwrap();
        assert!(h.availability().unwrap()[1].abs() < 1e-12);
        assert!(h.request(0, 4.0).is_err());
        grm.shutdown();
    }

    #[test]
    fn re_report_resurrects_expired_lrm() {
        let grm = GrmServer::spawn(complete(2, 1.0), 1);
        let h = grm.handle();
        h.report(0, 0.0).unwrap();
        h.report(1, 8.0).unwrap();
        h.tick(10, 2).unwrap();
        assert!(h.availability().unwrap()[1].abs() < 1e-12, "expired");
        // Resurrection: the lease restarts at the report's clock.
        h.report(1, 8.0).unwrap();
        h.tick(12, 2).unwrap(); // 12 - 10 == lease: still alive
        assert!((h.availability().unwrap()[1] - 8.0).abs() < 1e-9);
        h.tick(13, 2).unwrap(); // one past: expired again
        assert!(h.availability().unwrap()[1].abs() < 1e-12);
        grm.shutdown();
    }

    #[test]
    fn join_grows_the_federation() {
        let grm = GrmServer::spawn(complete(2, 0.5), 1);
        let h = grm.handle();
        h.report(0, 5.0).unwrap();
        h.report(1, 5.0).unwrap();
        let newbie = h.join().unwrap();
        assert_eq!(newbie, 2);
        // No agreements yet: the newcomer reaches nothing.
        h.report(newbie, 0.0).unwrap();
        assert!(h.request(newbie, 1.0).is_err());
        // Wire it in and it participates.
        h.set_agreement(0, newbie, 0.4).unwrap();
        let alloc = h.request(newbie, 2.0).unwrap();
        assert!((alloc.draws[0] - 2.0).abs() < 1e-9);
        assert_eq!(alloc.draws.len(), 3);
        grm.shutdown();
    }

    #[test]
    fn late_joiner_is_not_born_lease_expired() {
        let grm = GrmServer::spawn(complete(2, 1.0), 1);
        let h = grm.handle();
        h.report(0, 5.0).unwrap();
        h.report(1, 5.0).unwrap();
        // The clock is already far along when the newcomer joins.
        h.tick(100, 3).unwrap();
        h.report(0, 5.0).unwrap();
        h.report(1, 5.0).unwrap();
        let newbie = h.join().unwrap();
        h.set_agreement(newbie, 0, 1.0).unwrap();
        h.report(newbie, 7.0).unwrap();
        // A tick *within* the newcomer's lease must not zero it: its
        // lease began at the join-time clock (100), not 0.
        h.tick(102, 3).unwrap();
        assert!(
            (h.availability().unwrap()[newbie] - 7.0).abs() < 1e-9,
            "late joiner instantly lease-expired"
        );
        // A request beyond the old federation's reach (5 + 5 = 10) can
        // only succeed because the newcomer's 7 units are schedulable.
        let alloc = h.request(0, 16.0).unwrap();
        assert!((alloc.amount - 16.0).abs() < 1e-9);
        assert!(alloc.draws[newbie] >= 6.0 - 1e-9, "{:?}", alloc.draws);
        grm.shutdown();
    }

    #[test]
    fn leave_cuts_all_agreements() {
        let grm = GrmServer::spawn(complete(3, 0.5), 2);
        let h = grm.handle();
        for i in 0..3 {
            h.report(i, 10.0).unwrap();
        }
        h.leave(2).unwrap();
        // Requester 0 can now only reach its own 10 + 50% of LRM 1.
        match h.request(0, 15.1) {
            Err(GrmError::Sched(SchedError::InsufficientCapacity { capacity, .. })) => {
                assert!((capacity - 15.0).abs() < 1e-9, "capacity {capacity}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert!(matches!(h.leave(9), Err(GrmError::UnknownLrm(9))));
        grm.shutdown();
    }

    #[test]
    fn leave_then_rejoin_reserves_old_index_and_appends_new() {
        let grm = GrmServer::spawn(complete(2, 0.5), 1);
        let h = grm.handle();
        h.report(0, 10.0).unwrap();
        h.report(1, 10.0).unwrap();
        h.leave(1).unwrap();
        assert!(h.availability().unwrap()[1].abs() < 1e-12, "left LRM zeroed");
        // Re-joining is a fresh join: a *new* index is appended; the old
        // index stays reserved (isolated, zero agreements) so nobody's
        // indices shift.
        let rejoined = h.join().unwrap();
        assert_eq!(rejoined, 2);
        // The old index still accepts reports (it is a valid principal)
        // but its pool reaches nobody: requester 0 is on its own.
        h.report(1, 10.0).unwrap();
        assert!(h.request(0, 10.5).is_err(), "old index's pool is not reachable");
        // Wire the new incarnation in and it serves.
        h.set_agreement(rejoined, 0, 0.5).unwrap();
        h.report(rejoined, 10.0).unwrap();
        let alloc = h.request(0, 10.5).unwrap();
        assert!((alloc.draws[rejoined] - 0.5).abs() < 1e-9, "{:?}", alloc.draws);
        grm.shutdown();
    }

    #[test]
    fn handle_survives_clone_and_reports_after_shutdown_fail() {
        let grm = GrmServer::spawn(complete(2, 0.5), 1);
        let h1 = grm.handle();
        let h2 = h1.clone();
        h1.report(0, 1.0).unwrap();
        h2.report(1, 1.0).unwrap();
        grm.shutdown();
        assert!(matches!(h1.availability(), Err(GrmError::Disconnected)));
    }

    #[test]
    fn error_taxonomy_classifies_retryability() {
        assert!(GrmError::Disconnected.is_retryable());
        assert!(GrmError::DeadlineExceeded { millis: 5 }.is_retryable());
        assert!(!GrmError::RetriesExhausted { attempts: 3 }.is_retryable());
        assert!(!GrmError::UnknownLrm(1).is_retryable());
        assert!(!GrmError::Unsupported("leave").is_retryable());
        assert!(!GrmError::Sched(SchedError::InvalidRequest { amount: -1.0 }).is_retryable());
        // Transport-level taxonomy: a refused or reset connection is the
        // socket analogue of a lost message — safe to retry under an
        // idempotent id. An undecodable frame is *not*: resending the
        // same poison bytes can never succeed, so the resilient client
        // must surface it instead of burning its retry budget.
        assert!(GrmError::ConnectionRefused.is_retryable());
        assert!(GrmError::ConnectionReset.is_retryable());
        assert!(!GrmError::FrameDecode { detail: "bad magic".into() }.is_retryable());
        // Display strings exist for the new variants.
        assert!(GrmError::DeadlineExceeded { millis: 5 }.to_string().contains("5 ms"));
        assert!(GrmError::RetriesExhausted { attempts: 3 }.to_string().contains("3 attempts"));
        assert!(GrmError::ConnectionRefused.to_string().contains("refused"));
        assert!(GrmError::ConnectionReset.to_string().contains("reset"));
        assert!(GrmError::FrameDecode { detail: "bad magic".into() }
            .to_string()
            .contains("bad magic"));
    }

    #[test]
    fn seeded_decision_replays_for_duplicate_across_respawn() {
        // First incarnation decides a grant under an idempotent id.
        let grm = GrmServer::spawn(complete(2, 1.0), 1);
        let h = grm.handle();
        h.report(0, 0.0).unwrap();
        h.report(1, 10.0).unwrap();
        let id = RequestId { client: 7, seq: 0 };
        let alloc = h.request_idempotent(0, 4.0, id).unwrap();
        grm.crash();

        // A cold standby is seeded with the journaled decision before it
        // serves traffic — the durable-journal recovery path in miniature.
        let standby = GrmServer::spawn(complete(2, 1.0), 1);
        let h2 = standby.handle();
        h2.seed_decision(id, RecordedDecision::Grant(Ok(alloc.clone()))).unwrap();
        h2.report(0, 0.0).unwrap();
        h2.report(1, 6.0).unwrap();

        // The client's retry of the same id replays the original grant —
        // bit-identical draws — instead of executing a second time.
        let before = h2.stats().unwrap();
        let replayed = h2.request_idempotent(0, 4.0, id).unwrap();
        assert_eq!(replayed.draws, alloc.draws, "original decision replayed verbatim");
        let after = h2.stats().unwrap();
        assert_eq!(after.duplicate_requests, before.duplicate_requests + 1);
        assert_eq!(after.requests, before.requests, "no second execution");
        assert_eq!(after.granted, 0, "seeding and replay never move the grant counters");
        // Availability is untouched by the replay: the standby's pool
        // still holds the 6 units LRM 1 re-reported.
        let avail = h2.availability().unwrap();
        assert!((avail.iter().sum::<f64>() - 6.0).abs() < 1e-9);
        standby.shutdown();
    }

    #[test]
    fn seeded_release_and_replay_decisions_dedup_by_kind() {
        let grm = GrmServer::spawn(complete(2, 1.0), 1);
        let h = grm.handle();
        h.report(0, 2.0).unwrap();
        h.report(1, 2.0).unwrap();
        let rid = RequestId { client: 8, seq: 0 };
        let jid = RequestId { client: 8, seq: 1 };
        h.seed_decision(rid, RecordedDecision::Release(Ok(()))).unwrap();
        h.seed_decision(jid, RecordedDecision::Replay(Ok(()))).unwrap();
        // A duplicate release under the seeded id is answered from the
        // window without touching the pool.
        let alloc = Allocation { requester: 0, amount: 1.0, draws: vec![1.0, 0.0], theta: 1.0 };
        h.release_idempotent(alloc, rid).unwrap();
        let avail = h.availability().unwrap();
        assert!((avail.iter().sum::<f64>() - 4.0).abs() < 1e-9, "seeded release not re-applied");
        // A duplicate degraded-mode replay likewise settles to a no-op.
        h.replay_grant(jid, 0, 1.0).unwrap();
        let s = h.stats().unwrap();
        assert_eq!(s.journaled_grants, 0, "seeded replay not double-counted");
        assert_eq!(s.duplicate_requests, 2);
        grm.shutdown();
    }

    /// A chain `0 → 1 → 2`, where an edit at the tail touches only the
    /// rows upstream of it (exercises the incremental dirty set).
    fn chain3(share: f64) -> AgreementMatrix {
        let mut s = AgreementMatrix::zeros(3);
        s.set(0, 1, share).unwrap();
        s.set(1, 2, share).unwrap();
        s
    }

    #[test]
    fn batched_delivery_is_bit_identical_to_one_at_a_time() {
        // One message trace, delivered two ways: one `handle` call per
        // message vs a single `handle_batch` over the whole vector.
        // Every reply and the final server state must agree bit for
        // bit; only `coalesced_reports` (bookkeeping for superseded
        // writes) may differ.
        let build_trace = || {
            let mut msgs = Vec::new();
            let mut replies = Vec::new();
            // A report burst with two writers to LRM 1: in a batch the
            // second supersedes the first.
            msgs.push(Msg::Report { lrm: 0, available: 4.0 });
            msgs.push(Msg::Report { lrm: 1, available: 3.0 });
            msgs.push(Msg::Report { lrm: 1, available: 9.0 });
            msgs.push(Msg::Report { lrm: 2, available: 2.0 });
            // Equal-lease ticks arriving out of clock order.
            msgs.push(Msg::Tick { now: 5, lease: 10 });
            msgs.push(Msg::Tick { now: 3, lease: 10 });
            // A request in the middle: runs must not reorder around it.
            let (tx, rx) = unbounded();
            msgs.push(Msg::Request {
                lrm: 0,
                amount: 6.0,
                req_id: None,
                enqueued: None,
                reply: tx,
            });
            replies.push(rx);
            // A fresh report, a lease-expiring tick, then an over-ask
            // that must reject identically on both paths.
            msgs.push(Msg::Report { lrm: 0, available: 1.0 });
            msgs.push(Msg::Tick { now: 20, lease: 10 });
            let (tx, rx) = unbounded();
            msgs.push(Msg::Request {
                lrm: 2,
                amount: 100.0,
                req_id: None,
                enqueued: None,
                reply: tx,
            });
            replies.push(rx);
            (msgs, replies)
        };

        let (msgs_one, replies_one) = build_trace();
        let (msgs_batch, replies_batch) = build_trace();

        let mut one = ServerCore::new(complete(3, 0.5), 2);
        for m in msgs_one {
            assert!(one.handle(m));
        }
        let mut batched = ServerCore::new(complete(3, 0.5), 2);
        let mut batch = msgs_batch;
        assert!(batched.handle_batch(&mut batch));
        assert!(batch.is_empty(), "batch fully drained");

        for (ra, rb) in replies_one.iter().zip(&replies_batch) {
            assert_eq!(ra.try_recv().unwrap(), rb.try_recv().unwrap());
        }
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&one.state.availability), bits(&batched.state.availability));
        assert_eq!(one.clock, batched.clock);
        assert_eq!(one.last_report, batched.last_report);
        let (mut s1, mut s2) = (one.published_stats(), batched.published_stats());
        assert_eq!(s1.coalesced_reports, 0, "one-at-a-time never coalesces");
        assert_eq!(s2.coalesced_reports, 1, "LRM 1's first report superseded in-batch");
        s1.coalesced_reports = 0;
        s2.coalesced_reports = 0;
        assert_eq!(s1, s2, "all other counters agree");
    }

    #[test]
    fn batch_stops_at_shutdown_and_drops_the_rest() {
        let mut core = ServerCore::new(complete(2, 0.5), 1);
        let mut batch = vec![
            Msg::Report { lrm: 0, available: 5.0 },
            Msg::Shutdown,
            Msg::Report { lrm: 1, available: 7.0 },
        ];
        assert!(!core.handle_batch(&mut batch));
        assert_eq!(core.stats.reports, 1, "messages behind Shutdown are dropped");
        assert_eq!(core.state.availability[1].to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn capacity_fast_reject_matches_solver_verdict_and_counts() {
        let mut core = ServerCore::new(complete(3, 0.5), 2);
        for (lrm, avail) in [(0, 0.0), (1, 10.0), (2, 10.0)] {
            core.run_gen += 1;
            core.apply_report(lrm, avail);
        }
        // Reachable for 0: clamped two-level flow 0.5 + 0.25 = 0.75 per
        // peer ⇒ 7.5 + 7.5 = 15. Asking 16 rejects without an LP build,
        // with the exact error payload the solver would produce.
        let err = core.decide(0, 16.0).unwrap_err();
        match err {
            GrmError::Sched(SchedError::InsufficientCapacity {
                requester,
                capacity,
                requested,
                ..
            }) => {
                assert_eq!(requester, 0);
                assert!((capacity - 15.0).abs() < 1e-9, "capacity {capacity}");
                assert_eq!(requested.to_bits(), 16.0f64.to_bits());
            }
            other => panic!("expected capacity rejection, got {other:?}"),
        }
        assert_eq!(core.stats.fast_rejects, 1);
        assert_eq!(core.stats.rejected_capacity, 1);
        // A feasible request is untouched by the fast path and grants.
        let alloc = core.decide(0, 6.0).unwrap();
        assert!((alloc.amount - 6.0).abs() < 1e-9);
        assert_eq!(core.stats.fast_rejects, 1, "grant path never fast-rejects");
        assert_eq!(core.stats.granted, 1);
    }

    #[test]
    fn poisoned_availability_still_fails_requests() {
        // A release with non-finite draws poisons the persistent view;
        // `decide` must keep answering like the removed per-request
        // `SystemState::new` validation did.
        let grm = GrmServer::spawn(complete(2, 0.5), 1);
        let h = grm.handle();
        h.report(0, 5.0).unwrap();
        h.report(1, 5.0).unwrap();
        let poison =
            Allocation { requester: 0, amount: f64::NAN, draws: vec![f64::NAN, 0.0], theta: 0.0 };
        h.release(poison).unwrap();
        assert!(matches!(
            h.request(0, 1.0),
            Err(GrmError::Sched(SchedError::InvalidRequest { .. }))
        ));
        grm.shutdown();
    }

    #[test]
    fn stats_expose_incremental_flow_rows() {
        let grm = GrmServer::spawn(chain3(0.5), 2);
        let h = grm.handle();
        // Editing the tail edge 1 → 2 dirties only rows {0, 1}: row 2's
        // simple paths cannot traverse an out-edge of their endpoint.
        h.set_agreement(1, 2, 0.9).unwrap();
        let stats = h.stats().unwrap();
        assert_eq!(stats.agreement_updates, 1);
        assert_eq!(stats.flow_rows_recomputed, 2, "incremental repair, not a full recompute");
        grm.shutdown();
    }

    /// Two groups of two with symmetric 50% inter-group sharing.
    fn hier_sched(parallel: bool) -> HierarchicalScheduler {
        let mut inter = AgreementMatrix::zeros(2);
        inter.set(0, 1, 0.5).unwrap();
        inter.set(1, 0, 0.5).unwrap();
        let mut sched =
            HierarchicalScheduler::new(vec![vec![0, 1], vec![2, 3]], &inter, 1).unwrap();
        sched.set_parallel_fine(parallel);
        sched
    }

    #[test]
    fn hierarchical_grm_round_trip() {
        let grm = GrmServer::spawn_hierarchical(hier_sched(false));
        let h = grm.handle();
        for i in 0..4 {
            h.report(i, 10.0).unwrap();
        }
        // Within the home group (0's group holds 20 units).
        let alloc = h.request(0, 15.0).unwrap();
        assert!((alloc.amount - 15.0).abs() < 1e-9);
        let avail = h.availability().unwrap();
        assert!((avail.iter().sum::<f64>() - 25.0).abs() < 1e-9);
        h.release(alloc).unwrap();
        assert!((h.availability().unwrap().iter().sum::<f64>() - 40.0).abs() < 1e-9);
        // Beyond every agreement's reach: home 20 + 50% of group 1's 20.
        match h.request(0, 31.0) {
            Err(GrmError::Sched(SchedError::InsufficientCapacity { .. })) => {}
            other => panic!("expected capacity rejection, got {other:?}"),
        }
        let s = h.stats().unwrap();
        assert_eq!(s.requests, 2);
        assert_eq!(s.granted, 1);
        assert_eq!(s.rejected_capacity, 1);
        assert!((s.granted_units - 15.0).abs() < 1e-9);
        assert_eq!(s.batched_allocations, 2, "every request went through the front door");
        grm.shutdown();
    }

    #[test]
    fn hierarchical_grm_rejects_flat_only_management_ops() {
        let grm = GrmServer::spawn_hierarchical(hier_sched(false));
        let h = grm.handle();
        assert!(matches!(h.set_agreement(0, 1, 0.5), Err(GrmError::Unsupported(_))));
        assert!(matches!(h.leave(0), Err(GrmError::Unsupported(_))));
        assert_eq!(h.join().unwrap(), usize::MAX, "fixed partition: no index to give");
        grm.shutdown();
        // And the coarse renegotiation is hierarchical-only.
        let flat = GrmServer::spawn(complete(2, 0.5), 1);
        assert!(matches!(flat.handle().set_inter_group(0, 1, 0.4), Err(GrmError::Unsupported(_))));
        flat.shutdown();
    }

    #[test]
    fn set_inter_group_renegotiates_mid_stream() {
        let inter = AgreementMatrix::zeros(2);
        let sched = HierarchicalScheduler::new(vec![vec![0], vec![1]], &inter, 1).unwrap();
        let grm = GrmServer::spawn_hierarchical(sched);
        let h = grm.handle();
        h.report(0, 0.0).unwrap();
        h.report(1, 10.0).unwrap();
        assert!(h.request(0, 2.0).is_err(), "no inter-group agreement yet");
        h.set_inter_group(1, 0, 0.5).unwrap();
        let alloc = h.request(0, 2.0).unwrap();
        assert!((alloc.draws[1] - 2.0).abs() < 1e-9);
        let s = h.stats().unwrap();
        assert_eq!(s.agreement_updates, 1);
        grm.shutdown();
    }

    /// One message trace with a contiguous request run, delivered one
    /// `handle` call at a time vs through `handle_batch`'s batched front
    /// door. Every reply, the availability vector, and the counters must
    /// agree bit for bit (`batched_allocations` — bookkeeping for which
    /// door decided — is the one permitted difference).
    fn hier_batched_run_matches_one_by_one(parallel: bool) {
        let id_a = RequestId { client: 1, seq: 1 };
        let id_b = RequestId { client: 1, seq: 2 };
        let build_trace = || {
            let mut msgs = Vec::new();
            let mut replies = Vec::new();
            for (lrm, avail) in [(0, 6.0), (1, 4.0), (2, 10.0), (3, 2.0)] {
                msgs.push(Msg::Report { lrm, available: avail });
            }
            // A run mixing grants, an in-run duplicate, an unknown LRM,
            // a capacity rejection, and an invalid amount.
            for (lrm, amount, req_id) in [
                (0, 3.0, Some(id_a)),
                (2, 5.0, None),
                (0, 3.0, Some(id_a)), // in-run duplicate: replays, no re-grant
                (7, 1.0, None),       // unknown LRM
                (1, 100.0, None),     // beyond reach
                (3, 4.0, Some(id_b)), // needs the coarse cross-group path
                (3, -1.0, None),      // invalid amount
            ] {
                let (tx, rx) = unbounded();
                msgs.push(Msg::Request { lrm, amount, req_id, enqueued: None, reply: tx });
                replies.push(rx);
            }
            // A report breaks the run; the retry of `id_a` behind it is
            // a window hit on both paths.
            msgs.push(Msg::Report { lrm: 1, available: 9.0 });
            let (tx, rx) = unbounded();
            msgs.push(Msg::Request {
                lrm: 0,
                amount: 3.0,
                req_id: Some(id_a),
                enqueued: None,
                reply: tx,
            });
            replies.push(rx);
            (msgs, replies)
        };

        let (msgs_one, replies_one) = build_trace();
        let (msgs_batch, replies_batch) = build_trace();

        let mut one = ServerCore::hierarchical(hier_sched(parallel), Telemetry::default());
        for m in msgs_one {
            assert!(one.handle(m));
        }
        let mut batched = ServerCore::hierarchical(hier_sched(parallel), Telemetry::default());
        let mut batch = msgs_batch;
        assert!(batched.handle_batch(&mut batch));

        for (ra, rb) in replies_one.iter().zip(&replies_batch) {
            let (a, b) = (ra.try_recv().unwrap(), rb.try_recv().unwrap());
            assert_eq!(a, b);
            if let (Ok(a), Ok(b)) = (&a, &b) {
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&a.draws), bits(&b.draws), "draws bit-identical");
            }
        }
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&one.state.availability), bits(&batched.state.availability));
        let (mut s1, mut s2) = (one.published_stats(), batched.published_stats());
        assert_eq!(s1.batched_allocations, 0, "one-at-a-time delivery never batches");
        assert_eq!(
            s2.batched_allocations, 5,
            "the dup, the unknown LRM, and the window hit stay out of the batch"
        );
        assert_eq!(s1.duplicate_requests, 2);
        assert_eq!(s2.duplicate_requests, 2);
        // The executor decides per-wave whether fanning out pays, so the
        // fallback counter legitimately differs between a batch and 8
        // runs of one.
        s1.batched_allocations = 0;
        s2.batched_allocations = 0;
        s1.executor_fallbacks_sequential = 0;
        s2.executor_fallbacks_sequential = 0;
        assert_eq!(s1, s2, "all other counters agree");
    }

    #[test]
    fn hierarchical_batched_run_matches_one_by_one_sequential() {
        hier_batched_run_matches_one_by_one(false);
    }

    #[test]
    fn hierarchical_batched_run_matches_one_by_one_parallel() {
        hier_batched_run_matches_one_by_one(true);
    }

    #[test]
    fn chaotic_spawn_with_inert_plane_is_transparent() {
        use agreements_faults::FaultPlane;
        let plane = FaultPlane::inert(1);
        let grm = GrmServer::spawn_chaotic(complete(3, 0.5), 2, &plane, "grm");
        let h = grm.handle();
        h.report(0, 0.0).unwrap();
        h.report(1, 10.0).unwrap();
        h.report(2, 10.0).unwrap();
        let alloc = h.request(0, 6.0).unwrap();
        assert!((alloc.amount - 6.0).abs() < 1e-9);
        let avail = h.availability().unwrap();
        assert!((avail.iter().sum::<f64>() - 14.0).abs() < 1e-9);
        grm.shutdown();
    }

    // ---- multi-resource engine ----------------------------------------

    fn spawn_two_lane(share: f64) -> GrmServer {
        GrmServer::spawn_multi(vec!["cpu", "bandwidth"], complete(2, share), 1)
    }

    /// Satellite of the multi-resource work: a request that fits in CPU
    /// but not in bandwidth must be rejected *citing bandwidth* — the
    /// binding resource, not the first lane.
    #[test]
    fn multi_rejection_names_the_binding_resource() {
        let grm = spawn_two_lane(0.5);
        let h = grm.handle();
        h.report_multi(0, vec![10.0, 0.2]).unwrap();
        h.report_multi(1, vec![10.0, 0.2]).unwrap();
        // CPU reachable for 0: 10 + 0.5*10 = 15; bandwidth: 0.2 + 0.1 = 0.3.
        let err = h.request_multi(0, &[1.0, 2.0]).unwrap_err();
        match err {
            GrmError::Sched(SchedError::InsufficientCapacity {
                requester,
                requested,
                resource,
                ..
            }) => {
                assert_eq!(requester, 0);
                assert_eq!(resource, Some("bandwidth"), "must cite the binding lane, not cpu");
                assert!((requested - 2.0).abs() < 1e-12);
            }
            other => panic!("expected a bandwidth capacity rejection, got {other:?}"),
        }
        // Flip the pressure: now CPU binds and is cited.
        let err = h.request_multi(0, &[40.0, 0.1]).unwrap_err();
        assert!(
            matches!(
                err,
                GrmError::Sched(SchedError::InsufficientCapacity { resource: Some("cpu"), .. })
            ),
            "got {err:?}"
        );
        // The rejections moved nothing.
        let lanes = h.availability_multi().unwrap();
        assert_eq!(lanes, vec![vec![10.0, 10.0], vec![0.2, 0.2]]);
        grm.shutdown();
    }

    #[test]
    fn multi_grant_commits_every_lane_and_books_the_total() {
        let grm = spawn_two_lane(0.5);
        let h = grm.handle();
        h.report_multi(0, vec![4.0, 3.0]).unwrap();
        h.report_multi(1, vec![4.0, 3.0]).unwrap();
        let alloc = h.request_multi(0, &[2.0, 1.0]).unwrap();
        assert_eq!(alloc.lanes.len(), 2);
        assert!((alloc.lanes[0].amount - 2.0).abs() < 1e-9);
        assert!((alloc.lanes[1].amount - 1.0).abs() < 1e-9);
        let lanes = h.availability_multi().unwrap();
        assert!((lanes[0].iter().sum::<f64>() - 6.0).abs() < 1e-9, "cpu pool down by 2");
        assert!((lanes[1].iter().sum::<f64>() - 5.0).abs() < 1e-9, "bandwidth pool down by 1");
        let stats = h.stats().unwrap();
        assert_eq!(stats.granted, 1);
        assert!((stats.granted_units - 3.0).abs() < 1e-9, "units sum across lanes");
        grm.shutdown();
    }

    #[test]
    fn multi_fast_reject_skips_the_solver_and_counts() {
        let grm = spawn_two_lane(0.5);
        let h = grm.handle();
        h.report_multi(0, vec![4.0, 3.0]).unwrap();
        h.report_multi(1, vec![4.0, 3.0]).unwrap();
        // Hopeless in bandwidth: reachable is 3 + 1.5 = 4.5.
        let err = h.request_multi(0, &[1.0, 100.0]).unwrap_err();
        assert!(matches!(
            err,
            GrmError::Sched(SchedError::InsufficientCapacity { resource: Some("bandwidth"), .. })
        ));
        let stats = h.stats().unwrap();
        assert_eq!(stats.fast_rejects, 1);
        assert_eq!(stats.rejected_capacity, 1);
        // A grantable request never fast-rejects.
        h.request_multi(0, &[1.0, 1.0]).unwrap();
        assert_eq!(h.stats().unwrap().fast_rejects, 1);
        grm.shutdown();
    }

    #[test]
    fn multi_request_is_idempotent_under_the_dedup_window() {
        let grm = spawn_two_lane(0.5);
        let h = grm.handle();
        h.report_multi(0, vec![4.0, 3.0]).unwrap();
        h.report_multi(1, vec![4.0, 3.0]).unwrap();
        let id = RequestId { client: 7, seq: 1 };
        let first = h.request_multi_idempotent(0, &[2.0, 1.0], id).unwrap();
        let after_first = h.availability_multi().unwrap();
        let replay = h.request_multi_idempotent(0, &[2.0, 1.0], id).unwrap();
        assert_eq!(first, replay, "the retry replays the original decision");
        assert_eq!(h.availability_multi().unwrap(), after_first, "no double grant");
        let stats = h.stats().unwrap();
        assert_eq!(stats.requests, 1, "dedup hits are not new requests");
        assert_eq!(stats.duplicate_requests, 1);
        // A single-resource call reusing the id is a client bug and fails.
        assert!(matches!(
            h.request_idempotent(0, 1.0, id),
            Err(GrmError::Sched(SchedError::InvalidRequest { .. }))
        ));
        grm.shutdown();
    }

    #[test]
    fn cross_engine_calls_are_unsupported() {
        let multi = spawn_two_lane(0.5);
        let h = multi.handle();
        h.report_multi(0, vec![4.0, 3.0]).unwrap();
        assert!(matches!(h.request(0, 1.0), Err(GrmError::Unsupported(_))));
        assert!(matches!(h.leave(0), Err(GrmError::Unsupported(_))));
        assert!(matches!(h.set_agreement(0, 1, 0.2), Err(GrmError::Unsupported(_))));
        assert!(matches!(h.set_inter_group(0, 1, 0.2), Err(GrmError::Unsupported(_))));
        assert_eq!(h.join().unwrap(), usize::MAX, "fixed membership sentinel");
        multi.shutdown();

        let flat = GrmServer::spawn(complete(2, 0.5), 1);
        let h = flat.handle();
        assert!(matches!(h.request_multi(0, &[1.0, 1.0]), Err(GrmError::Unsupported(_))));
        assert!(matches!(h.availability_multi(), Err(GrmError::Unsupported(_))));
        flat.shutdown();
    }

    #[test]
    fn multi_lease_expiry_zeroes_every_lane() {
        let grm = spawn_two_lane(0.5);
        let h = grm.handle();
        h.tick(10, 5).unwrap();
        h.report_multi(0, vec![4.0, 3.0]).unwrap();
        h.report_multi(1, vec![4.0, 3.0]).unwrap();
        h.tick(16, 5).unwrap();
        let lanes = h.availability_multi().unwrap();
        assert_eq!(lanes, vec![vec![0.0, 0.0], vec![0.0, 0.0]], "stale LRMs vanish everywhere");
        grm.shutdown();
    }

    #[test]
    fn multi_hierarchical_engine_grants_and_renegotiates_all_lanes() {
        use agreements_sched::MultiAdmission;

        // Two groups of two per lane, symmetric 50% inter-group sharing —
        // the same shape as `hier_sched`, once per resource.
        let lanes: Vec<HierarchicalScheduler> = (0..2).map(|_| hier_sched(false)).collect();
        let front = MultiAdmission::new(vec!["cpu", "bandwidth"], lanes).unwrap();
        let grm = GrmServer::spawn_multi_hierarchical(front);
        let h = grm.handle();
        for p in 0..4 {
            h.report_multi(p, vec![5.0, 2.0]).unwrap();
        }
        let alloc = h.request_multi(0, &[3.0, 1.0]).unwrap();
        assert!((alloc.total() - 4.0).abs() < 1e-9);
        let err = h.request_multi(1, &[0.5, 50.0]).unwrap_err();
        assert!(
            matches!(
                err,
                GrmError::Sched(SchedError::InsufficientCapacity {
                    resource: Some("bandwidth"),
                    ..
                })
            ),
            "got {err:?}"
        );
        // Inter-group renegotiation reaches every lane (no Unsupported).
        h.set_inter_group(0, 1, 0.9).unwrap();
        grm.shutdown();
    }
}
